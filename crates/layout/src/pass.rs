//! The layout-transformation driver — Algorithm 1 of the paper.
//!
//! For every array of a program: determine the Data-to-Core mapping
//! (weighted over all references, §5.2), then customize the layout for the
//! configured cache organization and interleaving granularity (§5.3),
//! approximating indexed references from their profiled tables (§5.4) and
//! declining to optimize arrays that approximate too poorly.

use crate::approx::approximate_table;
use crate::binding::ThreadBinding;
use crate::customize::{ArrayLayout, Granularity, L2Mode, SharedPolicy};
use crate::data_to_core::{determine_data_to_core, DataToCore, DATA_PARTITION_DIM};
use crate::error::LayoutError;
use hoploc_affine::{AccessFn, ArrayId, IMat, IVec, Program};
use hoploc_noc::L2ToMcMapping;

/// Configuration of one pass invocation (the INPUT line of Algorithm 1).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PassConfig {
    /// Interleaving granularity of physical addresses across MCs.
    pub granularity: Granularity,
    /// Last-level cache organization.
    pub l2_mode: L2Mode,
    /// Shared-L2 localization priority (ignored for private L2s).
    pub shared_policy: SharedPolicy,
    /// L2 cache line size in bytes (Table 1: 256).
    pub line_bytes: u32,
    /// OS page size in bytes (Table 1: 4096).
    pub page_bytes: u32,
    /// Maximum tolerated indexed-approximation inaccuracy (§5.4: 30%).
    pub approx_threshold: f64,
}

impl Default for PassConfig {
    fn default() -> Self {
        Self {
            granularity: Granularity::CacheLine,
            l2_mode: L2Mode::Private,
            shared_policy: SharedPolicy::OnChipFirst,
            line_bytes: 256,
            page_bytes: 4096,
            approx_threshold: 0.30,
        }
    }
}

impl PassConfig {
    /// The interleave unit implied by the granularity.
    pub fn unit_bytes(&self) -> u32 {
        match self.granularity {
            Granularity::CacheLine => self.line_bytes,
            Granularity::Page => self.page_bytes,
        }
    }
}

/// Per-array outcome, feeding Table 2 of the paper.
#[derive(Clone, Debug)]
pub struct ArrayReport {
    /// The array.
    pub array: ArrayId,
    /// Its declared name.
    pub name: String,
    /// Whether a customized layout was produced.
    pub optimized: bool,
    /// Why not, when `optimized` is false.
    pub reason: Option<LayoutError>,
    /// References (affine satisfied + well-approximated indexed) the chosen
    /// layout serves.
    pub satisfied_refs: usize,
    /// All references to the array.
    pub total_refs: usize,
}

/// The result of optimizing a whole program.
#[derive(Clone, Debug)]
pub struct ProgramLayout {
    layouts: Vec<ArrayLayout>,
    reports: Vec<ArrayReport>,
    binding: ThreadBinding,
    config: PassConfig,
}

impl ProgramLayout {
    /// The layout chosen for an array (customized or original).
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn layout(&self, array: ArrayId) -> &ArrayLayout {
        &self.layouts[array.0]
    }

    /// All layouts, indexed by [`ArrayId`].
    pub fn layouts(&self) -> &[ArrayLayout] {
        &self.layouts
    }

    /// Per-array reports (Table 2 feed).
    pub fn reports(&self) -> &[ArrayReport] {
        &self.reports
    }

    /// The thread binding the layouts assume (trace generation must use the
    /// same one).
    pub fn binding(&self) -> &ThreadBinding {
        &self.binding
    }

    /// The configuration used.
    pub fn config(&self) -> &PassConfig {
        &self.config
    }

    /// Fraction of arrays optimized (Table 2, second column).
    pub fn arrays_optimized(&self) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports.iter().filter(|r| r.optimized).count() as f64 / self.reports.len() as f64
    }

    /// Fraction of references satisfied (Table 2, third column).
    pub fn refs_satisfied(&self) -> f64 {
        let total: usize = self.reports.iter().map(|r| r.total_refs).sum();
        if total == 0 {
            return 0.0;
        }
        let sat: usize = self.reports.iter().map(|r| r.satisfied_refs).sum();
        sat as f64 / total as f64
    }
}

/// The baseline "layout": every array keeps its original row-major
/// placement, threads bound identically. Used for the unoptimized runs.
pub fn baseline_layout(program: &Program, num_threads: usize) -> ProgramLayout {
    ProgramLayout {
        layouts: program.arrays().iter().map(ArrayLayout::original).collect(),
        reports: program
            .arrays()
            .iter()
            .enumerate()
            .map(|(i, a)| ArrayReport {
                array: ArrayId(i),
                name: a.name().to_string(),
                optimized: false,
                reason: None,
                satisfied_refs: 0,
                total_refs: program.refs_to(ArrayId(i)).count(),
            })
            .collect(),
        binding: ThreadBinding::identity(num_threads),
        config: PassConfig::default(),
    }
}

/// Runs Algorithm 1 over a program.
///
/// Returns a customized layout per array where possible and the original
/// layout (with the reason) otherwise. The pass itself never fails: an
/// unoptimizable array is a missed optimization, not an error.
pub fn optimize_program(
    program: &Program,
    mapping: &L2ToMcMapping,
    config: PassConfig,
) -> ProgramLayout {
    let binding = ThreadBinding::cluster_major(mapping);
    let unit = config.unit_bytes();
    let mut layouts = Vec::with_capacity(program.arrays().len());
    let mut reports = Vec::with_capacity(program.arrays().len());

    for (i, decl) in program.arrays().iter().enumerate() {
        let array = ArrayId(i);
        let total_refs = program.refs_to(array).count();

        // A unit that holds no whole number of elements cannot be laid out
        // (customization would panic); report it instead of optimizing.
        // Reachable from user-supplied `PassConfig::line_bytes`/`page_bytes`.
        if unit == 0 || !unit.is_multiple_of(decl.elem_size()) {
            layouts.push(ArrayLayout::original(decl));
            reports.push(ArrayReport {
                array,
                name: decl.name().to_string(),
                optimized: false,
                reason: Some(LayoutError::BadInterleaveUnit {
                    array,
                    unit_bytes: unit,
                    elem_size: decl.elem_size(),
                }),
                satisfied_refs: 0,
                total_refs,
            });
            continue;
        }

        let (indexed_ok, indexed_bad, worst_inaccuracy) =
            classify_indexed(program, array, config.approx_threshold);
        let affine_refs = program
            .refs_to(array)
            .filter(|(_, r)| r.access.as_affine().is_some())
            .count();

        // Determine the Data-to-Core mapping from affine references; a
        // purely indexed (necessarily 1-D in our IR) array partitions its
        // only dimension directly when it approximates well.
        let d2c = if affine_refs > 0 {
            determine_data_to_core(program, array)
        } else if indexed_ok > 0 {
            Ok(identity_d2c(array, decl.rank(), indexed_ok + indexed_bad))
        } else {
            Err(LayoutError::ApproximationTooInaccurate {
                array,
                inaccuracy: worst_inaccuracy,
            })
        };

        match d2c {
            Ok(d2c) if total_refs > 0 => {
                let layout = match config.l2_mode {
                    L2Mode::Private => {
                        ArrayLayout::localized_private(decl, &d2c, mapping, &binding, unit)
                    }
                    L2Mode::Shared => ArrayLayout::localized_shared(
                        decl,
                        &d2c,
                        mapping,
                        &binding,
                        unit,
                        config.shared_policy,
                    ),
                };
                layouts.push(layout);
                reports.push(ArrayReport {
                    array,
                    name: decl.name().to_string(),
                    optimized: true,
                    reason: None,
                    satisfied_refs: d2c.satisfied_refs + indexed_ok,
                    total_refs,
                });
            }
            Ok(_) | Err(_) => {
                let reason = match d2c {
                    Err(e) => Some(e),
                    Ok(_) => Some(LayoutError::NoReferences(array)),
                };
                layouts.push(ArrayLayout::original(decl));
                reports.push(ArrayReport {
                    array,
                    name: decl.name().to_string(),
                    optimized: false,
                    reason,
                    satisfied_refs: 0,
                    total_refs,
                });
            }
        }
    }

    ProgramLayout {
        layouts,
        reports,
        binding,
        config,
    }
}

/// Counts indexed references to `array` whose tables approximate within /
/// beyond the threshold, and the worst inaccuracy observed.
fn classify_indexed(program: &Program, array: ArrayId, threshold: f64) -> (usize, usize, f64) {
    let extent = program.array(array).num_elements();
    let mut ok = 0;
    let mut bad = 0;
    let mut worst = 0.0f64;
    for (_, r) in program.refs_to(array) {
        if let AccessFn::Indexed { table, .. } = &r.access {
            let fit = approximate_table(program.table(*table), extent);
            worst = worst.max(fit.inaccuracy);
            if fit.inaccuracy <= threshold {
                ok += 1;
            } else {
                bad += 1;
            }
        }
    }
    (ok, bad, worst)
}

/// A trivial Data-to-Core mapping (identity `U`) used for well-approximated
/// purely indexed arrays.
fn identity_d2c(array: ArrayId, rank: usize, refs: usize) -> DataToCore {
    DataToCore {
        array,
        u: IMat::identity(rank),
        g_v: IVec::unit(rank, DATA_PARTITION_DIM),
        satisfied_refs: 0,
        total_refs: refs,
        satisfied_weight: 0,
        total_weight: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_affine::{AffineAccess, AffineExpr, ArrayDecl, ArrayRef, Loop, LoopNest, Statement};
    use hoploc_noc::{McPlacement, Mesh};

    fn mapping() -> L2ToMcMapping {
        L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners)
    }

    fn stencil_program() -> Program {
        let mut p = Program::new("stencil");
        let z = p.add_array(ArrayDecl::new("Z", vec![512, 512], 8));
        let a = hoploc_affine::IMat::from_rows(&[&[0, 1], &[1, 0]]);
        p.add_nest(LoopNest::new(
            vec![Loop::constant(1, 511), Loop::constant(1, 511)],
            0,
            vec![Statement::new(
                vec![
                    ArrayRef::read(z, AffineAccess::new(a.clone(), IVec::new(vec![-1, 0]))),
                    ArrayRef::read(z, AffineAccess::new(a.clone(), IVec::zeros(2))),
                    ArrayRef::write(z, AffineAccess::new(a, IVec::zeros(2))),
                ],
                4,
            )],
            10,
        ));
        p
    }

    #[test]
    fn stencil_is_fully_optimized() {
        let p = stencil_program();
        let out = optimize_program(&p, &mapping(), PassConfig::default());
        assert_eq!(out.arrays_optimized(), 1.0);
        assert_eq!(out.refs_satisfied(), 1.0);
        assert!(!out.layout(ArrayId(0)).is_original());
    }

    #[test]
    fn unreferenced_array_stays_original() {
        let mut p = stencil_program();
        let dead = p.add_array(ArrayDecl::new("dead", vec![64], 8));
        let out = optimize_program(&p, &mapping(), PassConfig::default());
        assert!(out.layout(dead).is_original());
        assert!((out.arrays_optimized() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn shuffled_indexed_array_not_optimized() {
        let mut p = Program::new("shuffle");
        let x = p.add_array(ArrayDecl::new("X", vec![1024], 8));
        let n = 1024i64;
        let shuffled: Vec<i64> = (0..n).map(|k| (k * 389) % n).collect();
        let t = p.add_table(shuffled);
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 1024)],
            0,
            vec![Statement::new(
                vec![ArrayRef::indexed_read(x, t, AffineExpr::var(1, 0))],
                1,
            )],
            1,
        ));
        let out = optimize_program(&p, &mapping(), PassConfig::default());
        assert!(out.layout(x).is_original());
        assert!(matches!(
            out.reports()[0].reason,
            Some(LayoutError::ApproximationTooInaccurate { .. })
        ));
    }

    #[test]
    fn near_affine_indexed_array_is_optimized() {
        let mut p = Program::new("crs");
        let x = p.add_array(ArrayDecl::new("X", vec![4096], 8));
        // A banded-matrix column-index pattern: close to the diagonal.
        let tab: Vec<i64> = (0..4096i64)
            .map(|k| (k + (k % 5) - 2).clamp(0, 4095))
            .collect();
        let t = p.add_table(tab);
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 4096)],
            0,
            vec![Statement::new(
                vec![ArrayRef::indexed_read(x, t, AffineExpr::var(1, 0))],
                1,
            )],
            1,
        ));
        let out = optimize_program(&p, &mapping(), PassConfig::default());
        assert!(!out.layout(x).is_original());
        assert_eq!(out.refs_satisfied(), 1.0);
    }

    #[test]
    fn shared_mode_produces_shared_layouts() {
        let p = stencil_program();
        let cfg = PassConfig {
            l2_mode: L2Mode::Shared,
            ..PassConfig::default()
        };
        let out = optimize_program(&p, &mapping(), cfg);
        assert!(!out.layout(ArrayId(0)).is_original());
    }

    #[test]
    fn page_granularity_uses_page_units() {
        let p = stencil_program();
        let cfg = PassConfig {
            granularity: Granularity::Page,
            ..PassConfig::default()
        };
        let out = optimize_program(&p, &mapping(), cfg);
        assert_eq!(out.layout(ArrayId(0)).unit_elems(), 4096 / 8);
    }

    #[test]
    fn bad_interleave_unit_reported_not_panicked() {
        let p = stencil_program();
        let cfg = PassConfig {
            line_bytes: 100, // not a multiple of the 8 B element size
            ..PassConfig::default()
        };
        let out = optimize_program(&p, &mapping(), cfg);
        assert!(out.layout(ArrayId(0)).is_original());
        assert!(matches!(
            out.reports()[0].reason,
            Some(LayoutError::BadInterleaveUnit {
                unit_bytes: 100,
                elem_size: 8,
                ..
            })
        ));
    }

    #[test]
    fn baseline_keeps_everything_original() {
        let p = stencil_program();
        let base = baseline_layout(&p, 64);
        assert!(base.layout(ArrayId(0)).is_original());
        assert_eq!(base.arrays_optimized(), 0.0);
    }
}
