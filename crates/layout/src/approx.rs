//! Profile-guided affine approximation of indexed references (§5.4).
//!
//! Indexed accesses such as the CRS SpMV of *hpccg* (`x[col_idx[k]]`) are
//! not affine, but their *dense access pattern* often is: the index table,
//! viewed as a function of lookup position, may track an affine ramp
//! closely. The pass fits `table[pos] ≈ slope · pos + intercept` by least
//! squares over the profiled table and measures the fraction of entries
//! whose prediction is badly off. Arrays whose references approximate worse
//! than the configured threshold (30% in the paper) are left unoptimized —
//! an over- or under-approximation "does not create a correctness issue but
//! can only lead to a performance issue".

/// An affine fit of an index table.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct IndexedApproximation {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Fraction of table entries whose prediction misses by more than 5%
    /// of the value range.
    pub inaccuracy: f64,
}

impl IndexedApproximation {
    /// Predicted index for a lookup position.
    pub fn predict(&self, pos: i64) -> i64 {
        (self.slope * pos as f64 + self.intercept).round() as i64
    }
}

/// Relative-error tolerance defining a "bad" prediction (5% of the value
/// range).
const TOLERANCE: f64 = 0.05;

/// Fits an affine function to an index table and scores its accuracy.
///
/// `extent` is the size of the indexed array (prediction errors are
/// measured relative to it). Returns a fit with `inaccuracy = 1.0` for an
/// empty table (nothing to profile — never optimize).
///
/// # Examples
///
/// ```
/// use hoploc_layout::approximate_table;
///
/// // A perfectly affine table approximates exactly.
/// let ramp: Vec<i64> = (0..100).map(|k| 2 * k + 5).collect();
/// let fit = approximate_table(&ramp, 256);
/// assert!(fit.inaccuracy < 0.01);
/// assert_eq!(fit.predict(10), 25);
/// ```
pub fn approximate_table(table: &[i64], extent: i64) -> IndexedApproximation {
    if table.is_empty() || extent <= 0 {
        return IndexedApproximation {
            slope: 0.0,
            intercept: 0.0,
            inaccuracy: 1.0,
        };
    }
    let n = table.len() as f64;
    let mean_x = (table.len() as f64 - 1.0) / 2.0;
    let mean_y = table.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (i, &v) in table.iter().enumerate() {
        let dx = i as f64 - mean_x;
        cov += dx * (v as f64 - mean_y);
        var += dx * dx;
    }
    let slope = if var == 0.0 { 0.0 } else { cov / var };
    let intercept = mean_y - slope * mean_x;
    let tol = TOLERANCE * extent as f64;
    let bad = table
        .iter()
        .enumerate()
        .filter(|(i, &v)| {
            let pred = slope * *i as f64 + intercept;
            (pred - v as f64).abs() > tol
        })
        .count();
    IndexedApproximation {
        slope,
        intercept,
        inaccuracy: bad as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_table_is_exact() {
        let t: Vec<i64> = (0..1000).map(|k| 3 * k - 7).collect();
        let fit = approximate_table(&t, 3000);
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!(fit.inaccuracy < 1e-9);
    }

    #[test]
    fn noisy_ramp_stays_accurate() {
        // Small bounded noise (±2% of extent) stays within tolerance.
        let extent = 1000;
        let t: Vec<i64> = (0..500).map(|k| 2 * k + ((k * 37) % 20) - 10).collect();
        let fit = approximate_table(&t, extent);
        assert!(
            fit.inaccuracy < 0.3,
            "inaccuracy {} too high",
            fit.inaccuracy
        );
    }

    #[test]
    fn shuffled_table_is_inaccurate() {
        // A pseudo-random permutation has no affine structure.
        let n = 1024i64;
        let t: Vec<i64> = (0..n).map(|k| (k * 389) % n).collect();
        let fit = approximate_table(&t, n);
        assert!(
            fit.inaccuracy > 0.5,
            "inaccuracy {} too low",
            fit.inaccuracy
        );
    }

    #[test]
    fn empty_table_never_optimizes() {
        let fit = approximate_table(&[], 100);
        assert_eq!(fit.inaccuracy, 1.0);
    }

    #[test]
    fn constant_table_is_affine() {
        let t = vec![42i64; 64];
        let fit = approximate_table(&t, 100);
        assert!(fit.inaccuracy < 1e-9);
        assert_eq!(fit.predict(7), 42);
    }
}
