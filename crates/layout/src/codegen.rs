//! Source-to-source rendering of the transformed code (Figure 9).
//!
//! The pass is conceptually a source-to-source translator (the paper
//! implements it in Open64). This module renders the three stages of
//! Figure 9 for documentation, debugging, and the examples:
//!
//! 1. the original parallel nest;
//! 2. the nest after the Data-to-Core transformation (`r⃗′ = U·r⃗`);
//! 3. the nest after layout customization (strip-mined/permuted subscripts
//!    with the concrete `b`, `k`, `p` constants).

use crate::customize::ArrayLayout;
use crate::data_to_core::DataToCore;
use hoploc_affine::{AccessFn, AffineAccess, LoopNest, Program};

/// Renders one affine subscript expression (a row of `A·i⃗ + o⃗`).
fn subscript(access: &AffineAccess, row: usize) -> String {
    let mut s = String::new();
    for c in 0..access.depth() {
        let k = access.matrix()[(row, c)];
        if k == 0 {
            continue;
        }
        if !s.is_empty() {
            s.push_str(if k < 0 { " - " } else { " + " });
            if k.abs() != 1 {
                s.push_str(&format!("{}*", k.abs()));
            }
        } else if k == -1 {
            s.push('-');
        } else if k != 1 {
            s.push_str(&format!("{k}*"));
        }
        s.push_str(&format!("i{c}"));
    }
    let o = access.offset()[row];
    if s.is_empty() {
        s = o.to_string();
    } else if o != 0 {
        s.push_str(&format!(" {} {}", if o < 0 { "-" } else { "+" }, o.abs()));
    }
    s
}

/// Renders a reference `Name[e1][e2]…`.
fn render_ref(name: &str, access: &AffineAccess) -> String {
    let mut s = name.to_string();
    for r in 0..access.rank() {
        s.push_str(&format!("[{}]", subscript(access, r)));
    }
    s
}

/// Renders a loop nest with the given per-reference renderer.
fn render_nest<F>(nest: &LoopNest, mut render: F) -> String
where
    F: FnMut(&hoploc_affine::ArrayRef) -> String,
{
    let mut out = String::new();
    for (k, l) in nest.loops().iter().enumerate() {
        out.push_str(&"  ".repeat(k));
        out.push_str(&format!(
            "{}for (i{k} = {}; i{k} < {}; i{k}++)\n",
            if k == nest.parallel_dim() {
                "#pragma omp parallel\n".to_owned() + &"  ".repeat(k)
            } else {
                String::new()
            },
            l.lower,
            l.upper
        ));
    }
    let indent = "  ".repeat(nest.depth());
    for stmt in nest.body() {
        for r in &stmt.refs {
            out.push_str(&indent);
            out.push_str(&render(r));
            out.push_str(";\n");
        }
    }
    out
}

/// Stage 1: the original parallel code (Figure 9a).
pub fn render_original(program: &Program, nest: &LoopNest) -> String {
    render_nest(nest, |r| {
        let name = program.array(r.array).name();
        match &r.access {
            AccessFn::Affine(a) => render_ref(name, a),
            AccessFn::Indexed { table, pos } => {
                format!("{name}[T{}[{}]]", table.0, pos)
            }
        }
    })
}

/// Stage 2: after determining the Data-to-Core mapping (Figure 9b) —
/// subscripts are rewritten through each array's `U`.
pub fn render_data_to_core(
    program: &Program,
    nest: &LoopNest,
    d2c: &[Option<DataToCore>],
) -> String {
    render_nest(nest, |r| {
        let name = program.array(r.array).name();
        match &r.access {
            AccessFn::Affine(a) => match &d2c[r.array.0] {
                Some(d) => render_ref(&format!("{name}'"), &a.transformed(&d.u)),
                None => render_ref(name, a),
            },
            AccessFn::Indexed { table, pos } => {
                format!("{name}[T{}[{}]]", table.0, pos)
            }
        }
    })
}

/// Stage 3: after layout customization (Figure 9c) — the strip-mined and
/// permuted form, with the concrete block (`b`), controllers-per-cluster
/// (`k`), and unit (`p`) constants of the chosen layout.
pub fn render_customized(
    program: &Program,
    nest: &LoopNest,
    d2c: &[Option<DataToCore>],
    layouts: &[ArrayLayout],
) -> String {
    render_nest(nest, |r| {
        let name = program.array(r.array).name();
        match &r.access {
            AccessFn::Affine(a) => {
                let layout = &layouts[r.array.0];
                if layout.is_original() {
                    return render_ref(name, a);
                }
                let t = match &d2c[r.array.0] {
                    Some(d) => a.transformed(&d.u),
                    None => a.clone(),
                };
                let p = layout.unit_elems();
                // Linearized offset of the non-partition dims.
                let mut rest = String::new();
                for row in 1..t.rank() {
                    if !rest.is_empty() {
                        rest.push_str(" ++ ");
                    }
                    rest.push_str(&subscript(&t, row));
                }
                if rest.is_empty() {
                    rest = "0".to_string();
                }
                let v = subscript(&t, 0);
                format!("{name}''[({rest})/{p}][R({v})][({rest})%{p}]",)
            }
            AccessFn::Indexed { table, pos } => {
                format!("{name}[T{}[{}]]", table.0, pos)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_to_core::determine_data_to_core;
    use crate::pass::{optimize_program, PassConfig};
    use hoploc_affine::{
        AffineAccess, ArrayDecl, ArrayRef, IMat, IVec, Loop, LoopNest, Program, Statement,
    };
    use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh};

    fn fig9() -> Program {
        let mut p = Program::new("fig9");
        let z = p.add_array(ArrayDecl::new("Z", vec![512, 512], 8));
        let a = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        p.add_nest(LoopNest::new(
            vec![Loop::constant(2, 511), Loop::constant(2, 511)],
            0,
            vec![Statement::new(
                vec![
                    ArrayRef::write(z, AffineAccess::new(a.clone(), IVec::zeros(2))),
                    ArrayRef::read(z, AffineAccess::new(a, IVec::new(vec![-1, 0]))),
                ],
                1,
            )],
            1,
        ));
        p
    }

    #[test]
    fn original_shows_z_j_i() {
        let p = fig9();
        let text = render_original(&p, &p.nests()[0]);
        assert!(text.contains("Z[i1][i0]"), "got:\n{text}");
        assert!(text.contains("#pragma omp parallel"));
    }

    #[test]
    fn data_to_core_swaps_subscripts() {
        let p = fig9();
        let d2c = vec![Some(
            determine_data_to_core(&p, hoploc_affine::ArrayId(0)).unwrap(),
        )];
        let text = render_data_to_core(&p, &p.nests()[0], &d2c);
        // After U, the partition (first) subscript tracks i0.
        assert!(
            text.contains("Z'[i0][i1]") || text.contains("Z'[i0]"),
            "got:\n{text}"
        );
    }

    #[test]
    fn customized_shows_strip_mining() {
        let p = fig9();
        let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners);
        let out = optimize_program(&p, &mapping, PassConfig::default());
        let d2c = vec![Some(
            determine_data_to_core(&p, hoploc_affine::ArrayId(0)).unwrap(),
        )];
        let text = render_customized(&p, &p.nests()[0], &d2c, out.layouts());
        assert!(
            text.contains("/32]"),
            "expected /p strip-mining, got:\n{text}"
        );
        assert!(
            text.contains("R("),
            "expected cluster selector, got:\n{text}"
        );
    }
}
