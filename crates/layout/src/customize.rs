//! Layout customization (§5.3): turning a Data-to-Core mapping and an
//! L2-to-MC mapping into a concrete virtual-memory placement.
//!
//! The paper expresses the customized layout as strip-mined/permuted array
//! references such as `(…, rₙ/(k·p), R(r_v), rₙ%(k·p))ᵀ`. This module
//! implements the equivalent *address function*: a bijection from original
//! data vectors to element offsets within the array's (padded) allocation,
//! arranged so that under the hardware's interleaving every element's
//! off-chip request goes to a memory controller assigned to the cluster of
//! the thread that owns the element.
//!
//! The arrangement is built from **interleave units** (cache lines or
//! pages, `p` elements each) grouped into **super-groups** of
//! `n_slots_total` consecutive units. Unit `slot` of every super-group maps
//! to the same memory controller (`slot % N'`), because the array base is
//! aligned to a whole super-group. Each owner (a cluster for private L2s, a
//! thread's home bank for shared L2) is assigned fixed slots, and its data
//! fills its slots across successive super-groups in order.

use crate::binding::ThreadBinding;
use crate::data_to_core::{transformed_bounds, DataToCore};
use hoploc_affine::{ArrayDecl, BlockPartition, IMat, IVec};
use hoploc_noc::{L2ToMcMapping, McId, NodeId};

/// Interleaving granularity of physical addresses across MCs (§3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Granularity {
    /// Cache-block interleaving: consecutive L2 lines rotate across MCs;
    /// the selection bits survive virtual-to-physical translation, so the
    /// compiler controls them directly.
    CacheLine,
    /// Page interleaving: the selection bits are chosen by the OS page
    /// allocator; the layout records a *desired* MC per virtual unit and
    /// relies on the modified allocation policy (§5.3, *Page Interleaving*).
    Page,
}

/// Last-level cache organization (§1, Figure 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum L2Mode {
    /// Per-core private L2s with an MC-side directory (Figure 2a).
    Private,
    /// Shared SNUCA L2: each line has a home bank issuing its off-chip
    /// requests (Figure 2b).
    Shared,
}

/// Priority between on-chip and off-chip localization in the shared-L2
/// case, where §5.3 proves both cannot always be localized simultaneously.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SharedPolicy {
    /// The paper's default: generate an on-chip-localized layout first,
    /// then displace elements only as far as needed for the off-chip
    /// request to reach the desired (or an adjacent) controller.
    OnChipFirst,
    /// Force every unit onto a slot whose MC is exactly a desired one,
    /// accepting larger home-bank displacement (the paper's "one could
    /// also first generate the layout localized for off-chip accesses").
    OffChipFirst,
}

/// How the address function arranges one array.
#[derive(Clone, Debug)]
enum Plan {
    /// Untransformed row-major layout (unoptimized arrays).
    Original,
    /// The localized layout described in the module docs.
    Localized(Box<LocalizedPlan>),
}

#[derive(Clone, Debug)]
struct LocalizedPlan {
    /// Elements per interleave unit (`p` in the paper).
    p_elems: i64,
    /// Product of the transformed extents of all non-partition dimensions.
    slab: i64,
    /// Block partition of the (transformed) partition dimension over
    /// threads.
    part: BlockPartition,
    /// Owner group of each thread (cluster index for private L2, thread
    /// index for shared L2).
    thread_group: Vec<u32>,
    /// First partition-dimension coordinate owned by each group.
    group_v_lo: Vec<i64>,
    /// The interleave-unit slots of each group within a super-group.
    group_slots: Vec<Vec<u32>>,
    /// Units per super-group.
    n_slots_total: u32,
    /// Number of MCs (for desired-MC queries).
    n_mcs: u32,
}

/// A read-only view of a localized plan's internals, exposed for the
/// `hoploc-check` layout-legality verifier (and for tests that need to
/// assert plan structure). The fields mirror [`LocalizedPlan`]; see the
/// module docs for the super-group/slot arrangement they describe.
#[derive(Clone, Copy, Debug)]
pub struct PlanView<'a> {
    /// Elements per interleave unit (`p` in the paper).
    pub p_elems: i64,
    /// Product of the transformed extents of all non-partition dimensions.
    pub slab: i64,
    /// Partition-dimension block size per thread.
    pub block_size: i64,
    /// Owner group of each thread (index = thread id).
    pub thread_group: &'a [u32],
    /// First partition-dimension coordinate owned by each group.
    pub group_v_lo: &'a [i64],
    /// The interleave-unit slots of each group within a super-group.
    pub group_slots: &'a [Vec<u32>],
    /// Units per super-group.
    pub n_slots_total: u32,
    /// Number of memory controllers.
    pub n_mcs: u32,
}

/// The customized layout of one array: a bijection from original data
/// vectors to element offsets, plus the metadata the OS and simulator need.
#[derive(Clone, Debug)]
pub struct ArrayLayout {
    u: IMat,
    mins: Vec<i64>,
    extents: Vec<i64>,
    dims: Vec<i64>,
    elem_size: u32,
    unit_bytes: u32,
    plan: Plan,
    span_elements: i64,
}

impl ArrayLayout {
    /// The untransformed row-major layout of an array (the baseline, and
    /// the fallback for arrays the pass declines to optimize).
    pub fn original(decl: &ArrayDecl) -> Self {
        let n = decl.rank();
        Self {
            u: IMat::identity(n),
            mins: vec![0; n],
            extents: decl.dims().to_vec(),
            dims: decl.dims().to_vec(),
            elem_size: decl.elem_size(),
            unit_bytes: 0,
            plan: Plan::Original,
            span_elements: decl.num_elements(),
        }
    }

    /// Builds the customized layout for the **private-L2** case (§5.3,
    /// lines 38–42 of Algorithm 1).
    ///
    /// `unit_bytes` is the interleave unit: the L2 line size for cache-line
    /// interleaving or the page size for page interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `unit_bytes` is not a positive multiple of the element
    /// size.
    pub fn localized_private(
        decl: &ArrayDecl,
        d2c: &DataToCore,
        mapping: &L2ToMcMapping,
        binding: &ThreadBinding,
        unit_bytes: u32,
    ) -> Self {
        let (u, mins, extents) = Self::frame(decl, d2c);
        let n_threads = binding.len();
        let n_mcs = mapping.num_mcs() as u32;

        // Owner group of a thread = its cluster (in cluster-major binding,
        // thread blocks are cluster-contiguous).
        let thread_group: Vec<u32> = (0..n_threads)
            .map(|t| mapping.cluster_of(binding.node_of(t)).0 as u32)
            .collect();

        // Slot assignment: each cluster occupies the slots of its assigned
        // MCs. When several clusters share an MC, they stack into extended
        // super-groups (slot + r·N′ still maps to the same controller).
        let mut per_mc_round: Vec<u32> = vec![0; n_mcs as usize];
        let mut group_slots: Vec<Vec<u32>> = Vec::with_capacity(mapping.num_clusters());
        for c in 0..mapping.num_clusters() {
            let mut slots: Vec<u32> = mapping
                .cluster_mcs(hoploc_noc::ClusterId(c as u16))
                .iter()
                .map(|mc| {
                    let r = per_mc_round[mc.0 as usize];
                    per_mc_round[mc.0 as usize] += 1;
                    mc.0 as u32 + r * n_mcs
                })
                .collect();
            slots.sort_unstable();
            group_slots.push(slots);
        }
        let rounds = per_mc_round.iter().copied().max().unwrap_or(1).max(1);
        let n_slots_total = n_mcs * rounds;

        Self::assemble(
            decl,
            u,
            mins,
            extents,
            unit_bytes,
            thread_group,
            group_slots,
            n_slots_total,
            n_mcs,
            n_threads,
        )
    }

    /// Builds the customized layout for the **shared-L2** case (§5.3,
    /// lines 43–56): one slot per thread, chosen so the home bank stays
    /// near the owning core while the unit's MC serves the core's cluster.
    ///
    /// # Panics
    ///
    /// Panics if `unit_bytes` is not a positive multiple of the element
    /// size.
    pub fn localized_shared(
        decl: &ArrayDecl,
        d2c: &DataToCore,
        mapping: &L2ToMcMapping,
        binding: &ThreadBinding,
        unit_bytes: u32,
        policy: SharedPolicy,
    ) -> Self {
        let (u, mins, extents) = Self::frame(decl, d2c);
        let n_threads = binding.len();
        let n_mcs = mapping.num_mcs() as u32;
        let slots = assign_shared_slots(mapping, binding, policy);
        let n_slots_total = slots.iter().copied().max().unwrap_or(0) / n_threads as u32
            * n_threads as u32
            + n_threads as u32;
        let thread_group: Vec<u32> = (0..n_threads as u32).collect();
        let group_slots: Vec<Vec<u32>> = slots.into_iter().map(|s| vec![s]).collect();
        Self::assemble(
            decl,
            u,
            mins,
            extents,
            unit_bytes,
            thread_group,
            group_slots,
            n_slots_total,
            n_mcs,
            n_threads,
        )
    }

    fn frame(decl: &ArrayDecl, d2c: &DataToCore) -> (IMat, Vec<i64>, Vec<i64>) {
        let (mins, extents) = transformed_bounds(&d2c.u, decl.dims());
        (d2c.u.clone(), mins, extents)
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        decl: &ArrayDecl,
        u: IMat,
        mins: Vec<i64>,
        extents: Vec<i64>,
        unit_bytes: u32,
        thread_group: Vec<u32>,
        group_slots: Vec<Vec<u32>>,
        n_slots_total: u32,
        n_mcs: u32,
        n_threads: usize,
    ) -> Self {
        assert!(unit_bytes > 0, "interleave unit must be positive");
        assert_eq!(
            unit_bytes % decl.elem_size(),
            0,
            "interleave unit must be a multiple of the element size"
        );
        let p_elems = (unit_bytes / decl.elem_size()) as i64;
        let slab: i64 = extents[1..].iter().product::<i64>().max(1);
        let part = BlockPartition::new(extents[0], n_threads);

        // First v-coordinate of each group: groups own contiguous thread
        // blocks (cluster-major binding), hence contiguous v ranges.
        let n_groups = group_slots.len();
        let mut group_v_lo = vec![i64::MAX; n_groups];
        let mut group_v_hi = vec![0i64; n_groups];
        #[allow(clippy::needless_range_loop)]
        for t in 0..n_threads {
            let g = thread_group[t] as usize;
            let v_lo = ((t as i64) * part.block_size()).min(extents[0]);
            let v_hi = ((t as i64 + 1) * part.block_size()).min(extents[0]);
            group_v_lo[g] = group_v_lo[g].min(v_lo);
            group_v_hi[g] = group_v_hi[g].max(v_hi);
        }
        for v in group_v_lo.iter_mut() {
            if *v == i64::MAX {
                *v = 0;
            }
        }

        // Span: every group needs ceil(its element span / (p·k))
        // super-groups; the array occupies the max over groups, each
        // super-group being n_slots_total units. Using the v-range rather
        // than the element count keeps the span valid even for bindings
        // where a group's threads are not contiguous.
        let mut max_supergroups = 0i64;
        for g in 0..n_groups {
            let v_extent = (group_v_hi[g] - group_v_lo[g]).max(0);
            let elems = v_extent * slab;
            // `from_parts` performs no legality validation: a hand-built
            // plan may leave a group slotless. Size its span as if it had
            // one slot so construction succeeds and the hoploc-check
            // verifier can reject the plan instead of a panic here.
            let k = (group_slots[g].len() as i64).max(1);
            let units = (elems + p_elems - 1) / p_elems;
            let sg = (units + k - 1) / k;
            max_supergroups = max_supergroups.max(sg);
        }
        let span_elements = max_supergroups.max(1) * n_slots_total as i64 * p_elems;

        Self {
            u,
            mins,
            extents,
            dims: decl.dims().to_vec(),
            elem_size: decl.elem_size(),
            unit_bytes,
            plan: Plan::Localized(Box::new(LocalizedPlan {
                p_elems,
                slab,
                part,
                thread_group,
                group_v_lo,
                group_slots,
                n_slots_total,
                n_mcs,
            })),
            span_elements,
        }
    }

    /// Assembles a localized layout directly from plan internals, skipping
    /// the slot-assignment machinery of [`ArrayLayout::localized_private`]
    /// / [`ArrayLayout::localized_shared`].
    ///
    /// **For verification tooling and tests only**: no legality validation
    /// is performed, so the result may alias elements or run past its span
    /// — exactly what the `hoploc-check` layout verifier exists to detect.
    /// `thread_group[t]` names the owner group of thread `t`;
    /// `group_slots[g]` lists group `g`'s interleave-unit slots within a
    /// super-group of `n_slots_total` units.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not square in the array rank, or `unit_bytes` is
    /// not a positive multiple of the element size.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        decl: &ArrayDecl,
        u: IMat,
        unit_bytes: u32,
        thread_group: Vec<u32>,
        group_slots: Vec<Vec<u32>>,
        n_slots_total: u32,
        n_mcs: u32,
    ) -> Self {
        let (mins, extents) = transformed_bounds(&u, decl.dims());
        let n_threads = thread_group.len();
        Self::assemble(
            decl,
            u,
            mins,
            extents,
            unit_bytes,
            thread_group,
            group_slots,
            n_slots_total,
            n_mcs,
            n_threads,
        )
    }

    /// The layout transformation matrix `U`.
    pub fn u(&self) -> &IMat {
        &self.u
    }

    /// The internals of a localized plan, for the layout-legality verifier.
    /// `None` for the original layout (nothing to verify).
    pub fn plan_view(&self) -> Option<PlanView<'_>> {
        match &self.plan {
            Plan::Original => None,
            Plan::Localized(p) => Some(PlanView {
                p_elems: p.p_elems,
                slab: p.slab,
                block_size: p.part.block_size(),
                thread_group: &p.thread_group,
                group_v_lo: &p.group_v_lo,
                group_slots: &p.group_slots,
                n_slots_total: p.n_slots_total,
                n_mcs: p.n_mcs,
            }),
        }
    }

    /// Per-dimension minima of the transformed index box (the shift that
    /// normalizes transformed coordinates to start at zero).
    pub fn mins(&self) -> &[i64] {
        &self.mins
    }

    /// The declared (original) dimension sizes.
    pub fn dims(&self) -> &[i64] {
        &self.dims
    }

    /// Element size in bytes.
    pub fn elem_size(&self) -> u32 {
        self.elem_size
    }

    /// Interleave unit in bytes (0 for the original layout).
    pub fn unit_bytes(&self) -> u32 {
        self.unit_bytes
    }

    /// Whether this is the untransformed baseline layout.
    pub fn is_original(&self) -> bool {
        matches!(self.plan, Plan::Original)
    }

    /// Total element span of the allocation, including padding.
    pub fn span_elements(&self) -> i64 {
        self.span_elements
    }

    /// Total byte span of the allocation, including padding.
    pub fn span_bytes(&self) -> i64 {
        self.span_elements * self.elem_size as i64
    }

    /// Required base alignment in bytes: a whole super-group, so that slot
    /// arithmetic survives linearization (the paper's padding, §5.3).
    pub fn base_alignment_bytes(&self) -> i64 {
        match &self.plan {
            Plan::Original => self.elem_size as i64,
            Plan::Localized(p) => p.n_slots_total as i64 * self.unit_bytes as i64,
        }
    }

    /// Maps an original data vector to its element offset within the
    /// array's allocation.
    ///
    /// # Panics
    ///
    /// Panics if the subscript count differs from the array rank.
    pub fn place(&self, dvec: &[i64]) -> i64 {
        assert_eq!(
            dvec.len(),
            self.dims.len(),
            "subscript count must match rank"
        );
        match &self.plan {
            Plan::Original => {
                let mut off = 0i64;
                for (k, &s) in dvec.iter().enumerate() {
                    let s = s.clamp(0, self.dims[k] - 1);
                    off = off * self.dims[k] + s;
                }
                off
            }
            Plan::Localized(p) => {
                let t = self.transform_clamped(dvec);
                let thread = p.part.block_of(t[0]) as usize;
                let g = p.thread_group[thread] as usize;
                let s = (t[0] - p.group_v_lo[g]) * p.slab + rest_offset(&t, &self.extents);
                let unit = s / p.p_elems;
                let within = s % p.p_elems;
                let slots = &p.group_slots[g];
                let k = slots.len() as i64;
                let supergroup = unit / k;
                let slot = slots[(unit % k) as usize] as i64;
                (supergroup * p.n_slots_total as i64 + slot) * p.p_elems + within
            }
        }
    }

    /// The thread that owns a data element (the thread whose iterations
    /// access it under the block distribution). Meaningful only for
    /// localized layouts; returns `None` for the original layout.
    pub fn owner_thread(&self, dvec: &[i64]) -> Option<usize> {
        match &self.plan {
            Plan::Original => None,
            Plan::Localized(p) => {
                let t = self.transform_clamped(dvec);
                Some(p.part.block_of(t[0]) as usize)
            }
        }
    }

    /// The desired memory controller of an interleave unit (unit index =
    /// element offset / `p`). Used by the OS-assisted page allocation
    /// policy under page interleaving. Returns `None` for the original
    /// layout (no preference).
    pub fn desired_unit_mc(&self, unit: i64) -> Option<McId> {
        match &self.plan {
            Plan::Original => None,
            Plan::Localized(p) => {
                let slot = (unit % p.n_slots_total as i64) as u32;
                Some(McId((slot % p.n_mcs) as u16))
            }
        }
    }

    /// Elements per interleave unit (0 for the original layout).
    pub fn unit_elems(&self) -> i64 {
        match &self.plan {
            Plan::Original => 0,
            Plan::Localized(p) => p.p_elems,
        }
    }

    /// The memory controllers serving thread `t`'s data under this layout:
    /// the MCs of the slots assigned to the thread's owner group, one entry
    /// per slot (so a controller holding two of the group's slots appears
    /// twice — callers treating the list as a traffic split get the right
    /// weights). `None` for the original layout, whose units interleave
    /// uniformly across all controllers.
    ///
    /// This is the static traffic-split query the locality estimator
    /// (`hoploc-est`) builds its hop-expectation and queue-pressure models
    /// on.
    pub fn thread_mcs(&self, thread: usize) -> Option<Vec<McId>> {
        match &self.plan {
            Plan::Original => None,
            Plan::Localized(p) => {
                let g = *p.thread_group.get(thread)? as usize;
                Some(
                    p.group_slots[g]
                        .iter()
                        .map(|&slot| McId((slot % p.n_mcs) as u16))
                        .collect(),
                )
            }
        }
    }

    /// Transformed extents (after `U` and shifting).
    pub fn extents(&self) -> &[i64] {
        &self.extents
    }

    fn transform_clamped(&self, dvec: &[i64]) -> Vec<i64> {
        let clamped: Vec<i64> = dvec
            .iter()
            .zip(&self.dims)
            .map(|(&s, &d)| s.clamp(0, d - 1))
            .collect();
        let v = self.u.mul_vec(&IVec::new(clamped));
        v.iter()
            .zip(&self.mins)
            .zip(&self.extents)
            .map(|((x, m), e)| (x - m).clamp(0, e - 1))
            .collect()
    }
}

/// Row-major offset of the non-partition dimensions of a transformed
/// vector.
fn rest_offset(t: &[i64], extents: &[i64]) -> i64 {
    let mut off = 0i64;
    for k in 1..t.len() {
        off = off * extents[k] + t[k];
    }
    off
}

/// Assigns each thread a home-bank slot for the shared-L2 layout.
///
/// Every slot `s` places the thread's units on home bank `s % N` and
/// controller `s % N'`. [`SharedPolicy::OnChipFirst`] keeps `s` as close to
/// the thread's own node id as possible while requiring the controller to
/// be desired *or adjacent to* a desired one; [`SharedPolicy::OffChipFirst`]
/// requires exactly a desired controller.
fn assign_shared_slots(
    mapping: &L2ToMcMapping,
    binding: &ThreadBinding,
    policy: SharedPolicy,
) -> Vec<u32> {
    let n = binding.len();
    let n_mcs = mapping.num_mcs();
    let mesh = mapping.mesh();
    // Adjacency: controllers within half the mesh perimeter-step of a
    // desired controller (nearest neighbours on the chip boundary).
    let adj_threshold = (mesh.width().max(mesh.height())) as u32;

    let mut taken = vec![false; 2 * n]; // allow one extension round
    let mut out = vec![0u32; n];
    #[allow(clippy::needless_range_loop)]
    for t in 0..n {
        let node = binding.node_of(t);
        let desired = mapping.mcs_of_node(node);
        let is_ok = |mc: McId| -> (bool, bool) {
            let exact = desired.contains(&mc);
            let adjacent = desired.iter().any(|&d| {
                mesh.hop_distance(mapping.mc_node(d), mapping.mc_node(mc)) <= adj_threshold
            });
            (exact, adjacent)
        };
        // Rank all free slots by (constraint satisfaction, |s - node|, s).
        let mut best: Option<(u32, u64, usize)> = None;
        #[allow(clippy::needless_range_loop)]
        for s in 0..2 * n {
            if taken[s] {
                continue;
            }
            let mc = McId((s % n_mcs) as u16);
            let (exact, adjacent) = is_ok(mc);
            let class = match policy {
                SharedPolicy::OffChipFirst => {
                    if exact {
                        0
                    } else if adjacent {
                        2
                    } else {
                        3
                    }
                }
                SharedPolicy::OnChipFirst => {
                    if exact {
                        0
                    } else if adjacent {
                        1
                    } else {
                        3
                    }
                }
            };
            let home = (s % n) as i64;
            let dist =
                mesh.hop_distance(node, NodeId(home as u16)) as u64 + if s >= n { 1 } else { 0 }; // discourage the extension round
            let key = (class, dist, s);
            if best.map(|b| key < (b.0, b.1, b.2)).unwrap_or(true) {
                best = Some(key);
            }
        }
        let (_, _, s) = best.expect(
            "invariant: 2n candidate slots for n threads, each thread takes one, \
             so at least n remain free when thread t < n picks",
        );
        taken[s] = true;
        out[t] = s as u32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_to_core::determine_data_to_core;
    use hoploc_affine::{AffineAccess, ArrayDecl, ArrayRef, Loop, LoopNest, Program, Statement};
    use hoploc_noc::{McPlacement, Mesh};
    use std::collections::HashSet;

    fn setup() -> (L2ToMcMapping, ThreadBinding) {
        let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners);
        let binding = ThreadBinding::cluster_major(&mapping);
        (mapping, binding)
    }

    fn simple_program(dims: Vec<i64>) -> (Program, hoploc_affine::ArrayId) {
        let mut p = Program::new("t");
        let n = dims.len();
        let x = p.add_array(ArrayDecl::new("X", dims.clone(), 8));
        p.add_nest(LoopNest::new(
            dims.iter().map(|&d| Loop::constant(0, d)).collect(),
            0,
            vec![Statement::new(
                vec![ArrayRef::read(x, AffineAccess::identity(n))],
                1,
            )],
            1,
        ));
        (p, x)
    }

    fn private_layout(dims: Vec<i64>) -> (ArrayLayout, L2ToMcMapping, ThreadBinding) {
        let (p, x) = simple_program(dims);
        let d2c = determine_data_to_core(&p, x).unwrap();
        let (mapping, binding) = setup();
        let l = ArrayLayout::localized_private(p.array(x), &d2c, &mapping, &binding, 256);
        (l, mapping, binding)
    }

    #[test]
    fn private_layout_is_injective() {
        let (l, _, _) = private_layout(vec![256, 64]);
        let mut seen = HashSet::new();
        for a0 in 0..256 {
            for a1 in 0..64 {
                let off = l.place(&[a0, a1]);
                assert!(off >= 0 && off < l.span_elements());
                assert!(seen.insert(off), "collision at ({a0},{a1})");
            }
        }
    }

    #[test]
    fn private_layout_sends_units_to_owner_cluster_mc() {
        let (l, mapping, binding) = private_layout(vec![256, 64]);
        let p = 256 / 8; // elements per 256B unit
        for a0 in (0..256).step_by(7) {
            for a1 in (0..64).step_by(5) {
                let off = l.place(&[a0, a1]);
                let unit = off / p;
                let mc = McId((unit % mapping.num_mcs() as i64) as u16);
                let owner = l.owner_thread(&[a0, a1]).unwrap();
                let cluster = mapping.cluster_of(binding.node_of(owner));
                assert!(
                    mapping.cluster_mcs(cluster).contains(&mc),
                    "element ({a0},{a1}) owner thread {owner} got {mc} not in cluster set"
                );
            }
        }
    }

    #[test]
    fn private_layout_units_are_owner_pure() {
        // No interleave unit mixes elements of different owner clusters.
        let (l, mapping, binding) = private_layout(vec![256, 64]);
        let p = 256 / 8;
        let mut unit_owner: std::collections::HashMap<i64, u16> = Default::default();
        for a0 in 0..256 {
            for a1 in 0..64 {
                let unit = l.place(&[a0, a1]) / p;
                let owner = l.owner_thread(&[a0, a1]).unwrap();
                let cluster = mapping.cluster_of(binding.node_of(owner)).0;
                if let Some(&prev) = unit_owner.get(&unit) {
                    assert_eq!(prev, cluster, "unit {unit} mixes clusters");
                } else {
                    unit_owner.insert(unit, cluster);
                }
            }
        }
    }

    #[test]
    fn m2_units_round_robin_over_two_mcs() {
        let (p, x) = simple_program(vec![256, 64]);
        let d2c = determine_data_to_core(&p, x).unwrap();
        let mapping = L2ToMcMapping::halves(Mesh::new(8, 8), &McPlacement::Corners);
        let binding = ThreadBinding::cluster_major(&mapping);
        let l = ArrayLayout::localized_private(p.array(x), &d2c, &mapping, &binding, 256);
        let pe = 256 / 8;
        // Collect the set of MCs used by elements of thread 0 (left half).
        let mut mcs = HashSet::new();
        for a0 in 0..4 {
            for a1 in 0..64 {
                let unit = l.place(&[a0, a1]) / pe;
                mcs.insert((unit % 4) as u16);
            }
        }
        let cluster = mapping.cluster_of(binding.node_of(0));
        let expect: HashSet<u16> = mapping.cluster_mcs(cluster).iter().map(|m| m.0).collect();
        assert_eq!(mcs, expect, "left-half data must rotate over both left MCs");
        assert_eq!(mcs.len(), 2);
    }

    #[test]
    fn shared_layout_is_injective_and_bounded() {
        let (p, x) = simple_program(vec![256, 64]);
        let d2c = determine_data_to_core(&p, x).unwrap();
        let (mapping, binding) = setup();
        let l = ArrayLayout::localized_shared(
            p.array(x),
            &d2c,
            &mapping,
            &binding,
            256,
            SharedPolicy::OnChipFirst,
        );
        let mut seen = HashSet::new();
        for a0 in 0..256 {
            for a1 in 0..64 {
                let off = l.place(&[a0, a1]);
                assert!(
                    off >= 0 && off < l.span_elements(),
                    "offset {off} out of span"
                );
                assert!(seen.insert(off), "collision at ({a0},{a1})");
            }
        }
    }

    #[test]
    fn shared_offchip_first_hits_exact_mcs() {
        let (p, x) = simple_program(vec![256, 64]);
        let d2c = determine_data_to_core(&p, x).unwrap();
        let (mapping, binding) = setup();
        let l = ArrayLayout::localized_shared(
            p.array(x),
            &d2c,
            &mapping,
            &binding,
            256,
            SharedPolicy::OffChipFirst,
        );
        let pe = 256 / 8;
        for a0 in (0..256).step_by(11) {
            let off = l.place(&[a0, 0]);
            let unit = off / pe;
            let mc = McId((unit % 4) as u16);
            let owner = l.owner_thread(&[a0, 0]).unwrap();
            let cluster = mapping.cluster_of(binding.node_of(owner));
            assert!(mapping.cluster_mcs(cluster).contains(&mc));
        }
    }

    #[test]
    fn original_layout_is_row_major() {
        let decl = ArrayDecl::new("X", vec![4, 8], 8);
        let l = ArrayLayout::original(&decl);
        assert_eq!(l.place(&[0, 0]), 0);
        assert_eq!(l.place(&[1, 2]), 10);
        assert!(l.is_original());
        assert_eq!(l.span_elements(), 32);
        assert_eq!(l.desired_unit_mc(0), None);
    }

    #[test]
    fn desired_unit_mc_matches_place() {
        let (l, mapping, _) = private_layout(vec![256, 64]);
        let p = 256 / 8;
        for a0 in (0..256).step_by(13) {
            let off = l.place(&[a0, 3]);
            let unit = off / p;
            let by_query = l.desired_unit_mc(unit).unwrap();
            let by_arith = McId((unit % mapping.num_mcs() as i64) as u16);
            assert_eq!(by_query, by_arith);
        }
    }

    #[test]
    fn base_alignment_covers_supergroup() {
        let (l, mapping, _) = private_layout(vec![256, 64]);
        assert_eq!(l.base_alignment_bytes(), mapping.num_mcs() as i64 * 256);
    }

    #[test]
    fn span_padding_is_bounded() {
        // Padding should stay a small multiple of the raw size.
        let (l, _, _) = private_layout(vec![256, 64]);
        let raw = 256 * 64;
        assert!(l.span_elements() >= raw);
        assert!(l.span_elements() <= raw * 2, "padding overhead too large");
    }

    #[test]
    fn plan_view_exposes_localized_internals() {
        let (l, mapping, _) = private_layout(vec![256, 64]);
        let v = l.plan_view().expect("localized layout has a plan");
        assert_eq!(v.p_elems, 256 / 8);
        assert_eq!(v.n_mcs, mapping.num_mcs() as u32);
        assert_eq!(v.thread_group.len(), 64);
        assert_eq!(v.group_slots.len(), mapping.num_clusters());
        let decl = ArrayDecl::new("X", vec![4, 4], 8);
        assert!(ArrayLayout::original(&decl).plan_view().is_none());
    }

    #[test]
    fn from_parts_can_build_an_aliasing_plan() {
        // Two groups deliberately sharing slot 0: distinct elements must
        // collide — the defect the hoploc-check verifier exists to catch.
        let decl = ArrayDecl::new("X", vec![64, 32], 8);
        let l = ArrayLayout::from_parts(
            &decl,
            IMat::identity(2),
            256,
            vec![0; 32].into_iter().chain(vec![1; 32]).collect(),
            vec![vec![0], vec![0]],
            4,
            4,
        );
        let mut seen = HashSet::new();
        let mut collided = false;
        for a0 in 0..64 {
            for a1 in 0..32 {
                collided |= !seen.insert(l.place(&[a0, a1]));
            }
        }
        assert!(collided, "shared slot must alias the two groups' units");
    }

    #[test]
    fn shared_slots_are_distinct() {
        let (mapping, binding) = setup();
        for policy in [SharedPolicy::OnChipFirst, SharedPolicy::OffChipFirst] {
            let slots = assign_shared_slots(&mapping, &binding, policy);
            let set: HashSet<u32> = slots.iter().copied().collect();
            assert_eq!(
                set.len(),
                slots.len(),
                "slots must be distinct ({policy:?})"
            );
        }
    }

    #[test]
    fn shared_onchip_first_keeps_home_near() {
        let (mapping, binding) = setup();
        let mesh = *mapping.mesh();
        let slots = assign_shared_slots(&mapping, &binding, SharedPolicy::OnChipFirst);
        let n = binding.len();
        let avg_disp: f64 = (0..n)
            .map(|t| {
                let home = NodeId((slots[t] as usize % n) as u16);
                mesh.hop_distance(binding.node_of(t), home) as f64
            })
            .sum::<f64>()
            / n as f64;
        // Average displacement must be well under the mesh diameter.
        assert!(
            avg_disp < 4.0,
            "average home displacement {avg_disp} too large"
        );
    }
}
