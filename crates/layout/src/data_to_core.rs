//! Determining the Data-to-Core mapping (§5.2).
//!
//! For each array, find a unimodular transformation `U` such that, in the
//! transformed data space, the elements accessed by one thread lie between
//! parallel hyperplanes orthogonal to the data partitioning dimension `v`.
//! The defining condition is `Bᵀ gᵥᵀ = 0` (Eq. 3), where `B` is the access
//! matrix with the iteration-partition column removed and `gᵥ` is the
//! `v`-th row of `U`.
//!
//! With multiple references, each distinct submatrix is weighted by the
//! dynamic iteration counts of the nests containing its references, and the
//! heaviest satisfiable submatrix wins; the chosen `U` then *satisfies*
//! every reference whose own system it solves.

use crate::error::LayoutError;
use hoploc_affine::{
    complete_unimodular, solve_homogeneous, AffineAccess, ArrayId, IMat, IVec, Program,
};

/// The data partitioning dimension `v`. The paper always chooses the
/// slowest-varying dimension (first in row-major) to minimize padding
/// overhead (§5.2, footnote 3).
pub const DATA_PARTITION_DIM: usize = 0;

/// Outcome of the Data-to-Core analysis for one array.
#[derive(Clone, PartialEq, Debug)]
pub struct DataToCore {
    /// The array analyzed.
    pub array: ArrayId,
    /// The unimodular layout transformation (identity when the dominant
    /// system is unconstrained).
    pub u: IMat,
    /// The partitioning row `gᵥ` of `U`.
    pub g_v: IVec,
    /// Affine references whose systems the chosen `gᵥ` satisfies.
    pub satisfied_refs: usize,
    /// All affine references to the array.
    pub total_refs: usize,
    /// Dynamic weight (estimated access count) satisfied.
    pub satisfied_weight: u64,
    /// Total dynamic weight of affine references.
    pub total_weight: u64,
}

impl DataToCore {
    /// Fraction of affine references satisfied (1.0 when there are none).
    pub fn satisfaction(&self) -> f64 {
        if self.total_refs == 0 {
            1.0
        } else {
            self.satisfied_refs as f64 / self.total_refs as f64
        }
    }
}

/// The thread count assumed when deciding whether a reference's residual
/// within-hyperplane variation still fits inside one thread's data block.
const BLOCK_THREADS: i64 = 64;

/// One reference's constraint system together with its dynamic weight.
#[derive(Clone, Debug)]
struct WeightedSystem {
    /// `Bᵀ` of the reference, or `None` when the nest has no sequential
    /// dimension (depth-1 fully parallel nest: every layout satisfies it).
    bt: Option<IMat>,
    weight: u64,
    /// A *broadcast* reference: the access matrix's parallel-iterator
    /// column is zero, so every thread touches the same elements. No
    /// layout can partition such a reference across threads — it must not
    /// vote for a transformation and can never be satisfied.
    broadcast: bool,
    /// The full access (for block-level satisfaction checks).
    access: AffineAccess,
    /// Estimated trip counts of the enclosing nest.
    trips: Vec<i64>,
    /// The nest's parallel dimension.
    u: usize,
}

/// Collects the constraint systems of all affine references to `array`.
fn systems(program: &Program, array: ArrayId) -> Vec<WeightedSystem> {
    let mut out = Vec::new();
    for nest in program.nests() {
        let weight = nest.iteration_estimate().max(1);
        let u = nest.parallel_dim();
        for stmt in nest.body() {
            for r in &stmt.refs {
                if r.array != array {
                    continue;
                }
                if let Some(acc) = r.access.as_affine() {
                    let broadcast = acc.matrix().col(u).is_zero();
                    let bt = if acc.depth() >= 2 {
                        Some(acc.submatrix(u).transpose())
                    } else {
                        None
                    };
                    out.push(WeightedSystem {
                        bt,
                        weight,
                        broadcast,
                        access: acc.clone(),
                        trips: nest.trip_count_estimates(),
                        u,
                    });
                }
            }
        }
    }
    out
}

/// Whether `g` solves a reference's system (`Bᵀ·g = 0`); unconstrained
/// references are always satisfied.
fn satisfies(g: &IVec, sys: &WeightedSystem, extent_v: i64) -> bool {
    if sys.broadcast {
        return false;
    }
    let strict = match &sys.bt {
        None => true,
        Some(bt) => bt.cols() == g.len() && bt.mul_vec(g).is_zero(),
    };
    strict || block_satisfies(g, sys, extent_v)
}

/// Block-level satisfaction: even when Eq. (3) has no exact solution, a
/// partitioning works if the residual variation of `g·r⃗` over the
/// non-parallel iterators stays within one thread's data block — the case
/// for linearized accesses such as `val[8·i + j]`, whose per-hyperplane
/// spread (`j < 8`) is far below the block size. This realizes the paper's
/// block (rather than single-hyperplane) partitioning of §5.2 for `w = 1`.
fn block_satisfies(g: &IVec, sys: &WeightedSystem, extent_v: i64) -> bool {
    if g.len() != sys.access.rank() || extent_v <= 0 {
        return false;
    }
    // The parallel iterator must actually move g·r⃗ (otherwise this is a
    // broadcast in disguise).
    let ga: Vec<i64> = (0..sys.access.depth())
        .map(|c| {
            (0..g.len())
                .map(|r| g[r] * sys.access.matrix()[(r, c)])
                .sum::<i64>()
        })
        .collect();
    if ga[sys.u] == 0 {
        return false;
    }
    let variation: i64 = (0..ga.len())
        .filter(|&c| c != sys.u)
        .map(|c| ga[c].abs() * (sys.trips.get(c).copied().unwrap_or(1) - 1).max(0))
        .sum();
    variation <= extent_v / BLOCK_THREADS
}

/// Determines the Data-to-Core mapping for one array (§5.2; lines 1–15 and
/// 16–31 of Algorithm 1).
///
/// # Errors
///
/// Returns [`LayoutError::NoReferences`] when the array is never referenced
/// affinely, and [`LayoutError::NoPartitioningHyperplane`] when no weighted
/// system admits a non-trivial solution whose completion is unimodular.
pub fn determine_data_to_core(
    program: &Program,
    array: ArrayId,
) -> Result<DataToCore, LayoutError> {
    let rank = program.array(array).rank();
    let systems = systems(program, array);
    let dims = program.array(array).dims().to_vec();
    if systems.is_empty() {
        return Err(LayoutError::NoReferences(array));
    }
    let total_refs = systems.len();
    let total_weight: u64 = systems.iter().map(|s| s.weight).sum();

    // Group identical submatrices, accumulating weights (W(Bᵢ) = Σ nⱼ).
    // Broadcast references cannot be partitioned by any layout and do not
    // vote.
    let mut groups: Vec<(Option<IMat>, u64)> = Vec::new();
    for s in systems.iter().filter(|s| !s.broadcast) {
        if let Some(g) = groups.iter_mut().find(|(bt, _)| *bt == s.bt) {
            g.1 += s.weight;
        } else {
            groups.push((s.bt.clone(), s.weight));
        }
    }
    // Heaviest group first; deterministic tie-break by insertion order.
    groups.sort_by_key(|g| std::cmp::Reverse(g.1));

    // The heaviest affine access drives the locality-preserving row order
    // of the completed transformation.
    let dominant_access = dominant_access(&systems_access(program, array));

    // Try groups in weight order until one yields a valid transformation.
    for (bt, _) in &groups {
        let g_v = match bt {
            // Unconstrained: prefer partitioning the slowest dimension as-is.
            None => Some(IVec::unit(rank, DATA_PARTITION_DIM)),
            Some(bt) => solve_homogeneous(bt, DATA_PARTITION_DIM),
        };
        let Some(g_v) = g_v else { continue };
        let Some(mut u) = complete_unimodular(&g_v, DATA_PARTITION_DIM) else {
            continue;
        };
        if let Some(a) = &dominant_access {
            reorder_for_locality(&mut u, a);
        }
        let g_v = u.row(DATA_PARTITION_DIM);
        let (_, extents) = transformed_bounds(&u, &dims);
        let satisfied: Vec<&WeightedSystem> = systems
            .iter()
            .filter(|s| satisfies(&g_v, s, extents[0]))
            .collect();
        return Ok(DataToCore {
            array,
            satisfied_refs: satisfied.len(),
            satisfied_weight: satisfied.iter().map(|s| s.weight).sum(),
            total_refs,
            total_weight,
            u,
            g_v,
        });
    }
    // No exact hyperplane family exists for any group; fall back to the
    // untransformed partitioning if block-level satisfaction holds for at
    // least one reference (linearized accesses).
    let g_v = IVec::unit(rank, DATA_PARTITION_DIM);
    let u = IMat::identity(rank);
    let extent0 = dims[DATA_PARTITION_DIM];
    let satisfied: Vec<&WeightedSystem> = systems
        .iter()
        .filter(|s| satisfies(&g_v, s, extent0))
        .collect();
    if !satisfied.is_empty() {
        return Ok(DataToCore {
            array,
            satisfied_refs: satisfied.len(),
            satisfied_weight: satisfied.iter().map(|s| s.weight).sum(),
            total_refs,
            total_weight,
            u,
            g_v,
        });
    }
    Err(LayoutError::NoPartitioningHyperplane(array))
}

/// Collects `(access, weight)` for all non-broadcast affine references.
fn systems_access(program: &Program, array: ArrayId) -> Vec<(AffineAccess, u64)> {
    let mut out = Vec::new();
    for nest in program.nests() {
        let weight = nest.iteration_estimate().max(1);
        let u = nest.parallel_dim();
        for stmt in nest.body() {
            for r in &stmt.refs {
                if r.array != array {
                    continue;
                }
                if let Some(acc) = r.access.as_affine() {
                    if !acc.matrix().col(u).is_zero() {
                        out.push((acc.clone(), weight));
                    }
                }
            }
        }
    }
    out
}

/// The heaviest-weighted access (the one whose walk order should stay
/// contiguous after transformation).
fn dominant_access(accesses: &[(AffineAccess, u64)]) -> Option<AffineAccess> {
    accesses
        .iter()
        .max_by_key(|(_, w)| *w)
        .map(|(a, _)| a.clone())
}

/// Permutes the non-partition rows of `U` so that spatial locality of the
/// dominant access survives the transformation: row `r` of `U·A` depends
/// on some deepest loop iterator; ordering rows by that depth puts the
/// fastest-varying iterator in the fastest-varying (innermost) data
/// dimension. Row permutations preserve `|det U| = 1`.
fn reorder_for_locality(u: &mut IMat, access: &AffineAccess) {
    let n = u.rows();
    if n <= 2 || access.matrix().rows() != n {
        return;
    }
    let t = &*u * access.matrix();
    // Deepest loop each non-partition row depends on (rows with no
    // dependence sort first).
    let mut keyed: Vec<(usize, i64)> = (0..n)
        .filter(|&r| r != DATA_PARTITION_DIM)
        .map(|r| {
            let depth = (0..t.cols()).rev().find(|&c| t[(r, c)] != 0);
            (r, depth.map(|d| d as i64).unwrap_or(-1))
        })
        .collect();
    keyed.sort_by_key(|&(_, d)| d);
    // Rebuild U with the sorted rows occupying the non-partition slots.
    let orig = u.clone();
    let mut slot = 0;
    for d in 0..n {
        if d == DATA_PARTITION_DIM {
            continue;
        }
        let (src, _) = keyed[slot];
        for c in 0..n {
            u[(d, c)] = orig[(src, c)];
        }
        slot += 1;
    }
    debug_assert!(u.is_unimodular());
}

/// Computes the transformed bounding box of an array under `U`.
///
/// Returns `(mins, extents)` per transformed dimension: interval arithmetic
/// over the original index ranges `[0, dims[k])` row by row. The layout
/// customization shifts by `-mins` so transformed coordinates are
/// non-negative.
pub fn transformed_bounds(u: &IMat, dims: &[i64]) -> (Vec<i64>, Vec<i64>) {
    assert_eq!(u.cols(), dims.len(), "U must match the array rank");
    let mut mins = Vec::with_capacity(u.rows());
    let mut extents = Vec::with_capacity(u.rows());
    for r in 0..u.rows() {
        let mut lo = 0i64;
        let mut hi = 0i64;
        for (k, &d) in dims.iter().enumerate() {
            let c = u[(r, k)];
            if c > 0 {
                hi += c * (d - 1);
            } else {
                lo += c * (d - 1);
            }
        }
        mins.push(lo);
        extents.push(hi - lo + 1);
    }
    (mins, extents)
}

/// Evaluates the transformed, shifted data vector `U·a⃗ − mins` for an
/// original data vector.
pub fn transform_dvec(u: &IMat, mins: &[i64], dvec: &[i64]) -> Vec<i64> {
    let v = u.mul_vec(&IVec::from(dvec));
    v.iter().zip(mins).map(|(x, m)| x - m).collect()
}

/// Convenience: checks that a chosen `gᵥ` satisfies one access (used in
/// tests and reports).
pub fn g_satisfies_access(g_v: &IVec, access: &AffineAccess, parallel_dim: usize) -> bool {
    if access.depth() < 2 {
        return true;
    }
    access
        .submatrix(parallel_dim)
        .transpose()
        .mul_vec(g_v)
        .is_zero()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_affine::{ArrayDecl, ArrayRef, Loop, LoopNest, Program, Statement};

    /// Builds the paper's Figure 9(a): Z[j][i], Z[j-1][i], Z[j+1][i] in an
    /// (i, j) nest with i parallel.
    fn figure9_program() -> (Program, ArrayId) {
        let mut p = Program::new("fig9");
        let z = p.add_array(ArrayDecl::new("Z", vec![64, 64], 8));
        let a = IMat::from_rows(&[&[0, 1], &[1, 0]]); // Z[j][i]
        let refs = vec![
            ArrayRef::read(z, AffineAccess::new(a.clone(), IVec::new(vec![-1, 0]))),
            ArrayRef::read(z, AffineAccess::new(a.clone(), IVec::zeros(2))),
            ArrayRef::read(z, AffineAccess::new(a.clone(), IVec::new(vec![1, 0]))),
            ArrayRef::write(z, AffineAccess::new(a, IVec::zeros(2))),
        ];
        p.add_nest(LoopNest::new(
            vec![Loop::constant(2, 63), Loop::constant(2, 63)],
            0,
            vec![Statement::new(refs, 2)],
            1,
        ));
        (p, z)
    }

    #[test]
    fn figure9_yields_dimension_swap() {
        let (p, z) = figure9_program();
        let d2c = determine_data_to_core(&p, z).unwrap();
        assert!(d2c.u.is_unimodular());
        // All four references share the same submatrix, so all satisfied.
        assert_eq!(d2c.satisfied_refs, 4);
        assert_eq!(d2c.total_refs, 4);
        // Transformed reference must track the parallel iterator i in the
        // partition dimension: row v of U·A = λ·e_u.
        let a = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let ua = &d2c.u * &a;
        assert_ne!(ua[(DATA_PARTITION_DIM, 0)], 0, "partition dim must track i");
        assert_eq!(
            ua[(DATA_PARTITION_DIM, 1)],
            0,
            "partition dim must ignore j"
        );
    }

    #[test]
    fn identity_access_needs_no_transform() {
        let mut p = Program::new("id");
        let x = p.add_array(ArrayDecl::new("X", vec![32, 32], 8));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 32), Loop::constant(0, 32)],
            0,
            vec![Statement::new(
                vec![ArrayRef::read(x, AffineAccess::identity(2))],
                1,
            )],
            1,
        ));
        let d2c = determine_data_to_core(&p, x).unwrap();
        let a = IMat::identity(2);
        let ua = &d2c.u * &a;
        assert_ne!(ua[(0, 0)], 0);
        assert_eq!(ua[(0, 1)], 0);
    }

    #[test]
    fn weights_pick_the_hot_reference() {
        // Two nests disagree: the hot one accesses X[i][j] (i parallel),
        // the cold one X[j][i]. The layout should satisfy the hot one.
        let mut p = Program::new("w");
        let x = p.add_array(ArrayDecl::new("X", vec![32, 32], 8));
        let ident = AffineAccess::identity(2);
        let swap = AffineAccess::new(IMat::from_rows(&[&[0, 1], &[1, 0]]), IVec::zeros(2));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 32), Loop::constant(0, 32)],
            0,
            vec![Statement::new(vec![ArrayRef::read(x, ident)], 1)],
            100, // hot
        ));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 32), Loop::constant(0, 32)],
            0,
            vec![Statement::new(vec![ArrayRef::read(x, swap)], 1)],
            1, // cold
        ));
        let d2c = determine_data_to_core(&p, x).unwrap();
        assert_eq!(d2c.satisfied_refs, 1);
        assert_eq!(d2c.total_refs, 2);
        assert!(d2c.satisfied_weight > d2c.total_weight / 2);
        // Hot reference is identity: partition dim tracks i directly.
        let ua = &d2c.u * &IMat::identity(2);
        assert_ne!(ua[(0, 0)], 0);
        assert_eq!(ua[(0, 1)], 0);
    }

    #[test]
    fn no_references_is_an_error() {
        let mut p = Program::new("none");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        assert_eq!(
            determine_data_to_core(&p, x).unwrap_err(),
            LayoutError::NoReferences(x)
        );
    }

    #[test]
    fn one_dimensional_arrays_take_identity() {
        let mut p = Program::new("vec");
        let x = p.add_array(ArrayDecl::new("X", vec![128], 8));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 128)],
            0,
            vec![Statement::new(
                vec![ArrayRef::read(x, AffineAccess::identity(1))],
                1,
            )],
            1,
        ));
        let d2c = determine_data_to_core(&p, x).unwrap();
        assert_eq!(d2c.u, IMat::identity(1));
        assert_eq!(d2c.satisfaction(), 1.0);
    }

    #[test]
    fn transformed_bounds_swap() {
        let u = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let (mins, extents) = transformed_bounds(&u, &[4, 9]);
        assert_eq!(mins, vec![0, 0]);
        assert_eq!(extents, vec![9, 4]);
    }

    #[test]
    fn transformed_bounds_negative_row() {
        // U row (1, -1) over dims (4, 4): range [-(3), 3] → min -3, extent 7.
        let u = IMat::from_rows(&[&[1, -1], &[0, 1]]);
        let (mins, extents) = transformed_bounds(&u, &[4, 4]);
        assert_eq!(mins[0], -3);
        assert_eq!(extents[0], 7);
        // Shifted transform stays within [0, extent).
        for a0 in 0..4 {
            for a1 in 0..4 {
                let t = transform_dvec(&u, &mins, &[a0, a1]);
                assert!((0..7).contains(&t[0]));
                assert!((0..4).contains(&t[1]));
            }
        }
    }

    #[test]
    fn transform_is_injective_on_box() {
        let u = IMat::from_rows(&[&[1, 2], &[0, 1]]);
        assert!(u.is_unimodular());
        let (mins, extents) = transformed_bounds(&u, &[5, 5]);
        let mut seen = std::collections::HashSet::new();
        for a0 in 0..5 {
            for a1 in 0..5 {
                let t = transform_dvec(&u, &mins, &[a0, a1]);
                assert!(t.iter().zip(&extents).all(|(x, e)| *x >= 0 && x < e));
                assert!(seen.insert(t), "collision at ({a0},{a1})");
            }
        }
    }
}
