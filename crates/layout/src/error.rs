//! Error types of the layout pass.

use hoploc_affine::ArrayId;
use std::fmt;

/// Why the layout pass declined to optimize an array.
///
/// Per §5.4 and the footnote to Table 2, arrays can be left untouched
/// ("the reason why we could not transform some arrays is because they use
/// pointer accesses or index array accesses which could not be
/// approximated"). Skipping is never a correctness problem — the original
/// layout remains valid — only a missed optimization.
#[derive(Clone, PartialEq, Debug)]
pub enum LayoutError {
    /// The array has no references in the program.
    NoReferences(ArrayId),
    /// All references are indexed and the affine approximation exceeded the
    /// inaccuracy budget (§5.4: "more than 30%, in which case our
    /// implementation simply does not optimize those references").
    ApproximationTooInaccurate {
        /// The array concerned.
        array: ArrayId,
        /// Measured inaccuracy in `[0, 1]`.
        inaccuracy: f64,
    },
    /// The homogeneous system `Bᵀ gᵥᵀ = 0` has only the trivial solution
    /// for every weighted submatrix, so no partitioning hyperplane exists.
    NoPartitioningHyperplane(ArrayId),
    /// The L2-to-MC mapping's MC sets overlap or do not cover all MCs, so
    /// no interleaving-compatible slot assignment exists.
    UnroutableMapping,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::NoReferences(a) => {
                write!(f, "array #{} has no references to optimize", a.0)
            }
            LayoutError::ApproximationTooInaccurate { array, inaccuracy } => write!(
                f,
                "indexed references to array #{} approximate too poorly ({:.0}% inaccuracy)",
                array.0,
                inaccuracy * 100.0
            ),
            LayoutError::NoPartitioningHyperplane(a) => {
                write!(
                    f,
                    "no data partitioning hyperplane satisfies array #{}",
                    a.0
                )
            }
            LayoutError::UnroutableMapping => {
                write!(
                    f,
                    "L2-to-MC mapping does not partition the memory controllers"
                )
            }
        }
    }
}

impl std::error::Error for LayoutError {}
