//! Error types of the layout pass.

use hoploc_affine::{ArrayId, Program};
use std::fmt;

/// Why the layout pass declined to optimize an array.
///
/// Per §5.4 and the footnote to Table 2, arrays can be left untouched
/// ("the reason why we could not transform some arrays is because they use
/// pointer accesses or index array accesses which could not be
/// approximated"). Skipping is never a correctness problem — the original
/// layout remains valid — only a missed optimization.
#[derive(Clone, PartialEq, Debug)]
pub enum LayoutError {
    /// The array has no references in the program.
    NoReferences(ArrayId),
    /// All references are indexed and the affine approximation exceeded the
    /// inaccuracy budget (§5.4: "more than 30%, in which case our
    /// implementation simply does not optimize those references").
    ApproximationTooInaccurate {
        /// The array concerned.
        array: ArrayId,
        /// Measured inaccuracy in `[0, 1]`.
        inaccuracy: f64,
    },
    /// The homogeneous system `Bᵀ gᵥᵀ = 0` has only the trivial solution
    /// for every weighted submatrix, so no partitioning hyperplane exists.
    NoPartitioningHyperplane(ArrayId),
    /// The L2-to-MC mapping's MC sets overlap or do not cover all MCs, so
    /// no interleaving-compatible slot assignment exists.
    UnroutableMapping,
    /// The configured interleave unit is not a positive multiple of the
    /// array's element size, so no whole number of elements fits one unit.
    BadInterleaveUnit {
        /// The array concerned.
        array: ArrayId,
        /// The configured interleave unit in bytes.
        unit_bytes: u32,
        /// The array's element size in bytes.
        elem_size: u32,
    },
}

impl LayoutError {
    /// The array the error concerns, when there is one.
    pub fn array(&self) -> Option<ArrayId> {
        match self {
            LayoutError::NoReferences(a)
            | LayoutError::NoPartitioningHyperplane(a)
            | LayoutError::ApproximationTooInaccurate { array: a, .. }
            | LayoutError::BadInterleaveUnit { array: a, .. } => Some(*a),
            LayoutError::UnroutableMapping => None,
        }
    }

    /// Renders the error with array *names* resolved through the program
    /// that produced it, instead of the raw `ArrayId` numbers the bare
    /// [`fmt::Display`] impl falls back to.
    pub fn render(&self, program: &Program) -> String {
        let name = |a: &ArrayId| {
            program
                .try_array(*a)
                .map(|d| format!("`{}`", d.name()))
                .unwrap_or_else(|| format!("#{} (stale id)", a.0))
        };
        match self {
            LayoutError::NoReferences(a) => {
                format!("array {} has no references to optimize", name(a))
            }
            LayoutError::ApproximationTooInaccurate { array, inaccuracy } => format!(
                "indexed references to array {} approximate too poorly ({:.0}% inaccuracy)",
                name(array),
                inaccuracy * 100.0
            ),
            LayoutError::NoPartitioningHyperplane(a) => {
                format!(
                    "no data partitioning hyperplane satisfies array {}",
                    name(a)
                )
            }
            LayoutError::UnroutableMapping => self.to_string(),
            LayoutError::BadInterleaveUnit {
                array,
                unit_bytes,
                elem_size,
            } => format!(
                "interleave unit of {unit_bytes} B is not a multiple of array {}'s \
                 {elem_size} B element size",
                name(array)
            ),
        }
    }
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::NoReferences(a) => {
                write!(f, "array #{} has no references to optimize", a.0)
            }
            LayoutError::ApproximationTooInaccurate { array, inaccuracy } => write!(
                f,
                "indexed references to array #{} approximate too poorly ({:.0}% inaccuracy)",
                array.0,
                inaccuracy * 100.0
            ),
            LayoutError::NoPartitioningHyperplane(a) => {
                write!(
                    f,
                    "no data partitioning hyperplane satisfies array #{}",
                    a.0
                )
            }
            LayoutError::UnroutableMapping => {
                write!(
                    f,
                    "L2-to-MC mapping does not partition the memory controllers"
                )
            }
            LayoutError::BadInterleaveUnit {
                array,
                unit_bytes,
                elem_size,
            } => write!(
                f,
                "interleave unit of {unit_bytes} B is not a multiple of array #{}'s \
                 {elem_size} B element size",
                array.0
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_affine::ArrayDecl;

    #[test]
    fn render_uses_array_names() {
        let mut p = Program::new("t");
        let x = p.add_array(ArrayDecl::new("velocity", vec![64], 8));
        let e = LayoutError::NoPartitioningHyperplane(x);
        assert!(e.render(&p).contains("`velocity`"));
        // The bare Display still works without a program.
        assert!(e.to_string().contains("#0"));
    }

    #[test]
    fn render_survives_stale_ids() {
        let p = Program::new("t");
        let e = LayoutError::NoReferences(ArrayId(7));
        assert!(e.render(&p).contains("stale id"));
    }

    #[test]
    fn bad_unit_reports_both_sizes() {
        let mut p = Program::new("t");
        let x = p.add_array(ArrayDecl::new("X", vec![64], 12));
        let e = LayoutError::BadInterleaveUnit {
            array: x,
            unit_bytes: 256,
            elem_size: 12,
        };
        let r = e.render(&p);
        assert!(r.contains("256 B") && r.contains("12 B") && r.contains("`X`"));
        assert_eq!(e.array(), Some(x));
    }
}
