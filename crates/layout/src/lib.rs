//! # hoploc-layout
//!
//! The core contribution of *Optimizing Off-Chip Accesses in Multicores*
//! (PLDI 2015): a compiler-guided data-layout transformation that places
//! array elements in virtual memory so that each off-chip (main-memory)
//! access travels a minimal number of NoC hops to a memory controller
//! serving the requesting core's cluster.
//!
//! The pass runs in two steps (Figure 7):
//!
//! 1. **Determining the Data-to-Core mapping** (§5.2,
//!    [`determine_data_to_core`]): solve `Bᵀ gᵥᵀ = 0` by integer Gaussian
//!    elimination for each weighted reference group and complete `gᵥ` into
//!    a unimodular transformation `U`.
//! 2. **Layout customization** (§5.3, [`ArrayLayout`]): strip-mine and
//!    permute the transformed layout so that, under the hardware's
//!    cache-line or page interleaving, every element's interleave unit maps
//!    to a controller assigned to its owner cluster — with separate
//!    constructions for private L2s, shared SNUCA L2 (where §5.3 proves
//!    perfect on-chip *and* off-chip localization is impossible), and
//!    OS-assisted page interleaving.
//!
//! [`optimize_program`] is Algorithm 1: it drives both steps over every
//! array of a [`hoploc_affine::Program`], approximating indexed references
//! from profiled tables (§5.4, [`approximate_table`]) and skipping arrays
//! that approximate too poorly. [`select_mapping`] implements the §4
//! analysis that chooses among candidate L2-to-MC mappings by weighing
//! distance-to-MC against memory-level parallelism.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod approx;
mod binding;
pub mod codegen;
mod customize;
mod data_to_core;
mod error;
mod pass;
mod select;

pub use approx::{approximate_table, IndexedApproximation};
pub use binding::ThreadBinding;
pub use customize::{ArrayLayout, Granularity, L2Mode, PlanView, SharedPolicy};
pub use data_to_core::{
    determine_data_to_core, g_satisfies_access, transform_dvec, transformed_bounds, DataToCore,
    DATA_PARTITION_DIM,
};
pub use error::LayoutError;
pub use pass::{baseline_layout, optimize_program, ArrayReport, PassConfig, ProgramLayout};
pub use select::{mapping_cost, select_mapping, AppProfile, SelectModel};
