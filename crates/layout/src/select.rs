//! Compiler analysis for choosing among candidate L2-to-MC mappings (§4,
//! final paragraph).
//!
//! "We implemented a compiler analysis that identifies, given a set of
//! L2-to-MC mappings, the most effective one by weighing two metrics:
//! (1) distance-to-MC and (2) memory-level parallelism (MLP)."
//!
//! The analysis estimates, per candidate mapping, the expected cost of an
//! off-chip access as *network round-trip* plus *queueing delay* at the
//! controller. Localizing onto fewer controllers shortens the round trip
//! but concentrates load; the queueing term (an M/M/1-style waiting-time
//! estimate over the cluster's controllers and their banks) captures the
//! pressure that makes the paper's *fma3d* and *minighost* prefer M2.

use hoploc_noc::L2ToMcMapping;

/// Compile-time estimate of an application's memory behaviour, derived
/// from the program (footprint vs. cache capacity, reference counts) or
/// from profiling.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AppProfile {
    /// Estimated off-chip requests issued per core per kilo-cycle.
    pub offchip_per_kcycle: f64,
    /// Fraction of data shared between cores (raises directory and bank
    /// pressure; fma3d/minighost have the highest values in Table 2's
    /// discussion).
    pub sharing_fraction: f64,
}

/// Cost model constants for the selection analysis.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SelectModel {
    /// Cycles per hop (link + router).
    pub hop_cost: f64,
    /// Mean DRAM service time per request, in cycles.
    pub service_cycles: f64,
    /// Banks per memory controller.
    pub banks_per_mc: f64,
}

impl Default for SelectModel {
    fn default() -> Self {
        Self {
            hop_cost: 6.0,
            service_cycles: 60.0,
            banks_per_mc: 4.0,
        }
    }
}

/// Scores one mapping: expected off-chip access cost in cycles (lower is
/// better).
pub fn mapping_cost(mapping: &L2ToMcMapping, profile: &AppProfile, model: &SelectModel) -> f64 {
    // Round-trip network distance to the cluster's controllers.
    let distance_cost = 2.0 * mapping.avg_distance_to_mc() * model.hop_cost;

    // Bank pressure: steady-state per-MC load is mapping-independent
    // (cluster size scales with k), so what distinguishes mappings is how
    // a *burst* of outstanding requests spreads over the banks reachable
    // from one cluster (k controllers × B banks each). Sharing inflates
    // the burst (coherence refills target the same rows). Requests beyond
    // the reachable bank count serialize.
    let k = mapping.mcs_per_cluster() as f64;
    let burst = profile.offchip_per_kcycle * (1.0 + profile.sharing_fraction);
    let reachable_banks = k * model.banks_per_mc;
    let overflow = (burst - reachable_banks).max(0.0);
    let queue_cost = overflow / reachable_banks * model.service_cycles;

    distance_cost + queue_cost
}

/// Picks the best mapping among candidates; returns its index.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn select_mapping(
    candidates: &[L2ToMcMapping],
    profile: &AppProfile,
    model: &SelectModel,
) -> usize {
    assert!(
        !candidates.is_empty(),
        "need at least one candidate mapping"
    );
    candidates
        .iter()
        .enumerate()
        .map(|(i, m)| (i, mapping_cost(m, profile, model)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are finite"))
        .map(|(i, _)| i)
        .expect("non-empty candidates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_noc::{McPlacement, Mesh};

    fn m1m2() -> Vec<L2ToMcMapping> {
        let mesh = Mesh::new(8, 8);
        vec![
            L2ToMcMapping::nearest_cluster(mesh, &McPlacement::Corners),
            L2ToMcMapping::halves(mesh, &McPlacement::Corners),
        ]
    }

    #[test]
    fn light_apps_prefer_m1() {
        // Most applications: modest off-chip pressure → locality wins (§6.2).
        let profile = AppProfile {
            offchip_per_kcycle: 2.0,
            sharing_fraction: 0.1,
        };
        assert_eq!(
            select_mapping(&m1m2(), &profile, &SelectModel::default()),
            0
        );
    }

    #[test]
    fn bank_bound_apps_prefer_m2() {
        // fma3d / minighost: much higher memory parallelism demand.
        let profile = AppProfile {
            offchip_per_kcycle: 14.0,
            sharing_fraction: 0.5,
        };
        assert_eq!(
            select_mapping(&m1m2(), &profile, &SelectModel::default()),
            1
        );
    }

    #[test]
    fn cost_is_monotone_in_pressure() {
        let m = &m1m2()[0];
        let model = SelectModel::default();
        let lo = mapping_cost(
            m,
            &AppProfile {
                offchip_per_kcycle: 1.0,
                sharing_fraction: 0.0,
            },
            &model,
        );
        let hi = mapping_cost(
            m,
            &AppProfile {
                offchip_per_kcycle: 10.0,
                sharing_fraction: 0.0,
            },
            &model,
        );
        assert!(hi > lo);
    }

    #[test]
    fn queue_cost_saturates_not_explodes() {
        let m = &m1m2()[0];
        let profile = AppProfile {
            offchip_per_kcycle: 10_000.0,
            sharing_fraction: 1.0,
        };
        let c = mapping_cost(m, &profile, &SelectModel::default());
        assert!(c.is_finite());
    }
}
