//! Thread-to-core binding.
//!
//! Footnote 5 of the paper: *"We bind each thread to a core through a
//! system call to ensure that the order of the cores is consistent with the
//! order of memory controllers in the target two-dimensional grid."* The
//! binding below enumerates clusters in order and, within each cluster, its
//! nodes row-major — so consecutive thread blocks fill one cluster before
//! moving to the next, making each cluster's share of the partitioned data
//! dimension contiguous.

use hoploc_noc::{ClusterId, L2ToMcMapping, NodeId};

/// A bijection between thread indices and mesh nodes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ThreadBinding {
    to_node: Vec<NodeId>,
    to_thread: Vec<u32>,
}

impl ThreadBinding {
    /// The cluster-major binding the paper's footnote 5 requires: threads
    /// fill cluster 0's nodes (row-major within the cluster), then cluster
    /// 1's, and so on.
    pub fn cluster_major(mapping: &L2ToMcMapping) -> Self {
        let mesh = mapping.mesh();
        let mut to_node = Vec::with_capacity(mesh.num_nodes());
        for c in 0..mapping.num_clusters() {
            let mut members: Vec<NodeId> = mesh
                .nodes()
                .filter(|&n| mapping.cluster_of(n) == ClusterId(c as u16))
                .collect();
            members.sort();
            to_node.extend(members);
        }
        Self::from_nodes(to_node)
    }

    /// The identity binding: thread `t` runs on node `t`. Used as the
    /// unoptimized baseline (OS default placement).
    pub fn identity(num_nodes: usize) -> Self {
        Self::from_nodes((0..num_nodes as u16).map(NodeId).collect())
    }

    fn from_nodes(to_node: Vec<NodeId>) -> Self {
        let mut to_thread = vec![u32::MAX; to_node.len()];
        for (t, n) in to_node.iter().enumerate() {
            assert!(
                (n.0 as usize) < to_node.len() && to_thread[n.0 as usize] == u32::MAX,
                "binding must be a bijection"
            );
            to_thread[n.0 as usize] = t as u32;
        }
        Self { to_node, to_thread }
    }

    /// Number of threads (= nodes).
    pub fn len(&self) -> usize {
        self.to_node.len()
    }

    /// Whether the binding is empty.
    pub fn is_empty(&self) -> bool {
        self.to_node.is_empty()
    }

    /// The node thread `t` runs on.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn node_of(&self, t: usize) -> NodeId {
        self.to_node[t]
    }

    /// The thread bound to a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn thread_of(&self, n: NodeId) -> usize {
        self.to_thread[n.0 as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_noc::{McPlacement, Mesh};

    #[test]
    fn cluster_major_groups_threads_by_cluster() {
        let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners);
        let b = ThreadBinding::cluster_major(&mapping);
        assert_eq!(b.len(), 64);
        // First 16 threads all live in one cluster, next 16 in another, etc.
        for chunk in 0..4 {
            let c0 = mapping.cluster_of(b.node_of(chunk * 16));
            for t in chunk * 16..(chunk + 1) * 16 {
                assert_eq!(mapping.cluster_of(b.node_of(t)), c0, "thread {t}");
            }
        }
    }

    #[test]
    fn binding_round_trips() {
        let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners);
        for b in [
            ThreadBinding::cluster_major(&mapping),
            ThreadBinding::identity(64),
        ] {
            for t in 0..64 {
                assert_eq!(b.thread_of(b.node_of(t)), t);
            }
        }
    }

    #[test]
    fn identity_binding_is_identity() {
        let b = ThreadBinding::identity(16);
        assert_eq!(b.node_of(5), NodeId(5));
    }
}
