//! Property-based tests of the layout pass's core guarantees: placement
//! bijectivity, controller correctness, and bounds.

use hoploc_affine::{AffineAccess, ArrayDecl, ArrayRef, Loop, LoopNest, Program, Statement};
use hoploc_layout::{optimize_program, Granularity, L2Mode, PassConfig, SharedPolicy};
use hoploc_noc::{L2ToMcMapping, McId, McPlacement, Mesh};
use hoploc_ptest::run_cases;
use std::collections::HashSet;

fn build_program(d0: i64, d1: i64) -> Program {
    let mut p = Program::new("prop");
    let x = p.add_array(ArrayDecl::new("X", vec![d0, d1], 8));
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, d0), Loop::constant(0, d1)],
        0,
        vec![Statement::new(
            vec![ArrayRef::read(x, AffineAccess::identity(2))],
            1,
        )],
        1,
    ));
    p
}

fn mappings() -> Vec<L2ToMcMapping> {
    let mesh = Mesh::new(8, 8);
    vec![
        L2ToMcMapping::nearest_cluster(mesh, &McPlacement::Corners),
        L2ToMcMapping::halves(mesh, &McPlacement::Corners),
        L2ToMcMapping::nearest_cluster(mesh, &McPlacement::Eight),
    ]
}

#[test]
fn private_placement_is_a_bounded_bijection() {
    run_cases("private_placement_is_a_bounded_bijection", 24, |rng| {
        let d0 = rng.i64_in(64..320);
        let d1 = rng.i64_in(8..64);
        let p = build_program(d0, d1);
        let mapping = &mappings()[rng.usize_in(0..3)];
        let out = optimize_program(&p, mapping, PassConfig::default());
        let l = out.layout(hoploc_affine::ArrayId(0));
        let mut seen = HashSet::new();
        for a0 in 0..d0 {
            for a1 in 0..d1 {
                let off = l.place(&[a0, a1]);
                assert!(
                    off >= 0 && off < l.span_elements(),
                    "offset {off} outside span {}",
                    l.span_elements()
                );
                assert!(seen.insert(off), "collision at ({a0},{a1})");
            }
        }
    });
}

#[test]
fn private_units_go_to_owner_cluster() {
    run_cases("private_units_go_to_owner_cluster", 24, |rng| {
        let d0 = rng.i64_in(64..256);
        let d1 = rng.i64_in(8..48);
        let p = build_program(d0, d1);
        let mapping = &mappings()[rng.usize_in(0..3)];
        let out = optimize_program(&p, mapping, PassConfig::default());
        let l = out.layout(hoploc_affine::ArrayId(0));
        let pe = l.unit_elems();
        assert!(pe > 0);
        for a0 in (0..d0).step_by(11) {
            for a1 in (0..d1).step_by(5) {
                let owner = l.owner_thread(&[a0, a1]).expect("localized");
                let node = out.binding().node_of(owner);
                let unit = l.place(&[a0, a1]) / pe;
                let mc = McId((unit % mapping.num_mcs() as i64) as u16);
                assert!(mapping.mcs_of_node(node).contains(&mc));
            }
        }
    });
}

#[test]
fn shared_placement_is_a_bounded_bijection() {
    run_cases("shared_placement_is_a_bounded_bijection", 24, |rng| {
        let d0 = rng.i64_in(64..256);
        let d1 = rng.i64_in(8..48);
        let p = build_program(d0, d1);
        let mapping = &mappings()[0];
        let cfg = PassConfig {
            l2_mode: L2Mode::Shared,
            shared_policy: if rng.flip() {
                SharedPolicy::OffChipFirst
            } else {
                SharedPolicy::OnChipFirst
            },
            ..PassConfig::default()
        };
        let out = optimize_program(&p, mapping, cfg);
        let l = out.layout(hoploc_affine::ArrayId(0));
        let mut seen = HashSet::new();
        for a0 in 0..d0 {
            for a1 in 0..d1 {
                let off = l.place(&[a0, a1]);
                assert!(off >= 0 && off < l.span_elements());
                assert!(seen.insert(off));
            }
        }
    });
}

#[test]
fn page_units_have_valid_desired_mcs() {
    run_cases("page_units_have_valid_desired_mcs", 24, |rng| {
        let d0 = rng.i64_in(64..256);
        let d1 = rng.i64_in(8..48);
        let p = build_program(d0, d1);
        let mapping = &mappings()[0];
        let cfg = PassConfig {
            granularity: Granularity::Page,
            ..PassConfig::default()
        };
        let out = optimize_program(&p, mapping, cfg);
        let l = out.layout(hoploc_affine::ArrayId(0));
        let units = l.span_elements() / l.unit_elems();
        for u in 0..units {
            let mc = l
                .desired_unit_mc(u)
                .expect("localized layout has preferences");
            assert!((mc.0 as usize) < mapping.num_mcs());
        }
    });
}

#[test]
fn padding_overhead_is_bounded() {
    run_cases("padding_overhead_is_bounded", 24, |rng| {
        let d0 = rng.i64_in(64..512);
        let d1 = rng.i64_in(8..64);
        let p = build_program(d0, d1);
        let mapping = &mappings()[0];
        let out = optimize_program(&p, mapping, PassConfig::default());
        let l = out.layout(hoploc_affine::ArrayId(0));
        let raw = d0 * d1;
        assert!(l.span_elements() >= raw);
        // Padding should never triple the array.
        assert!(
            l.span_elements() <= raw * 3,
            "span {} too large for raw {raw}",
            l.span_elements()
        );
    });
}
