//! # hoploc-prefetch
//!
//! Hardware prefetching for the hoploc L2 slices: the complementary lever
//! to the paper's layout localization. Each L2 slice owns a
//! [`SlicePrefetcher`] with two candidate engines — a reference-keyed
//! stride table with confidence counters and a region-based stream
//! detector — plus a perceptron-style **off-chip predictor** (tag-hashed
//! weight tables over region features, trained on demand outcomes). In
//! [`PrefetchMode::Gated`] the predictor filters every candidate: lines it
//! expects to be found on-chip are dropped before they cost NoC or DRAM
//! bandwidth, and a measured-accuracy throttle adapts the prefetch degree
//! (the adaptive filtering of Jamet et al., "A Two Level Neural Approach
//! Combining Off-Chip Prediction with Adaptive Prefetch Filtering").
//!
//! Everything here is plain integer arithmetic with no clocks and no
//! randomness: given the same demand stream, a prefetcher emits the same
//! candidates in the same order, which is what lets the simulator keep its
//! bit-identical determinism guarantees with prefetching enabled.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Which prefetch machinery is active.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PrefetchMode {
    /// No prefetching: the simulator must behave bit-identically to a
    /// build without the subsystem.
    #[default]
    Off,
    /// Stride engine only, ungated, fixed degree.
    Stride,
    /// Stream engine only, ungated, fixed degree.
    Stream,
    /// Both engines, candidates gated by the off-chip predictor, degree
    /// throttled by measured accuracy.
    Gated,
}

impl PrefetchMode {
    /// Canonical lowercase name (CLI flag value / serve wire value).
    pub fn name(self) -> &'static str {
        match self {
            PrefetchMode::Off => "off",
            PrefetchMode::Stride => "stride",
            PrefetchMode::Stream => "stream",
            PrefetchMode::Gated => "gated",
        }
    }

    /// Parses a [`name`](Self::name) back to a mode.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(PrefetchMode::Off),
            "stride" => Ok(PrefetchMode::Stride),
            "stream" => Ok(PrefetchMode::Stream),
            "gated" => Ok(PrefetchMode::Gated),
            other => Err(format!(
                "unknown prefetch mode {other:?} (expected off|stride|stream|gated)"
            )),
        }
    }

    /// All modes, in canonical order.
    pub fn all() -> [PrefetchMode; 4] {
        [
            PrefetchMode::Off,
            PrefetchMode::Stride,
            PrefetchMode::Stream,
            PrefetchMode::Gated,
        ]
    }
}

/// Prefetcher configuration. `Default` is [`PrefetchMode::Off`] with the
/// tuned engine geometry, so embedding the struct in a simulator config
/// changes nothing until a mode is selected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PrefetchConfig {
    /// Active machinery.
    pub mode: PrefetchMode,
    /// Lines fetched ahead per trigger (before throttling).
    pub degree: u32,
    /// Stream lookahead: how many lines beyond the detected head the
    /// stream engine targets.
    pub distance: u32,
    /// Stride-table entries per slice (direct-mapped by reference id).
    pub stride_entries: usize,
    /// Stream-detector entries per slice (direct-mapped by region).
    pub stream_entries: usize,
    /// In-flight prefetches a slice may have toward memory; candidates
    /// beyond the cap are dropped, never queued across triggers.
    pub queue_cap: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self {
            mode: PrefetchMode::Off,
            degree: 1,
            distance: 4,
            stride_entries: 64,
            stream_entries: 16,
            queue_cap: 32,
        }
    }
}

impl PrefetchConfig {
    /// A config with the given mode and tuned defaults otherwise.
    pub fn with_mode(mode: PrefetchMode) -> Self {
        Self {
            mode,
            ..Self::default()
        }
    }

    /// Whether any prefetch machinery is active.
    pub fn enabled(&self) -> bool {
        self.mode != PrefetchMode::Off
    }
}

/// What happened to the demand access that triggered training: the
/// predictor's ground truth.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DemandOutcome {
    /// Hit in the L2 slice on an ordinary (demand-installed) line.
    L2Hit,
    /// Hit on a line a prefetch installed, or joined a still-in-flight
    /// prefetch. Trains as *off-chip*: without the prefetch this access
    /// would have left the chip, and labeling it by what actually
    /// happened would make the predictor ungate under its own success
    /// and oscillate.
    PrefetchedHit,
    /// Satisfied by another on-chip cache (directory forward).
    OnChip,
    /// Went to a memory controller.
    OffChip,
}

/// Aggregate prefetch counters for one run. Lives in the simulator's
/// `RunStats`; `Default` (all zero) marks a run with prefetching off, which
/// is what keeps serialized records byte-identical to pre-prefetch builds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PrefetchSummary {
    /// Candidate lines the engines produced.
    pub candidates: u64,
    /// Candidates the off-chip predictor filtered out (Gated mode only).
    pub gated: u64,
    /// Prefetch requests actually sent toward a memory controller.
    pub issued: u64,
    /// Prefetched lines later hit by a demand access.
    pub useful: u64,
    /// Demand misses that joined a still-in-flight prefetch.
    pub late: u64,
    /// Prefetched lines evicted untouched (cache pollution).
    pub harmful: u64,
    /// Prefetches dropped: slice queue full, target controller dark, or a
    /// DRAM transient error (prefetches are never retried or re-homed).
    pub dropped: u64,
    /// Off-chip predictions that matched the demand outcome.
    pub pred_correct: u64,
    /// Demand accesses the predictor scored.
    pub pred_total: u64,
}

impl PrefetchSummary {
    /// Fraction of issued prefetches that proved accurate (useful or
    /// joined late). 0.0 when nothing was issued.
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            (self.useful + self.late) as f64 / self.issued as f64
        }
    }

    /// Fraction of would-be off-chip demand misses covered by a prefetch,
    /// given the run's demand off-chip count. 0.0 when there were none.
    pub fn coverage(&self, demand_offchip: u64) -> f64 {
        let covered = self.useful + self.late;
        let base = demand_offchip + covered;
        if base == 0 {
            0.0
        } else {
            covered as f64 / base as f64
        }
    }

    /// Measured accuracy of the off-chip predictor over demand outcomes.
    pub fn pred_accuracy(&self) -> f64 {
        if self.pred_total == 0 {
            0.0
        } else {
            self.pred_correct as f64 / self.pred_total as f64
        }
    }

    /// Whether any prefetch activity (or prediction) happened at all.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

/// splitmix64 finalizer: the same deterministic mixer the rest of the
/// workspace uses for hashing-without-a-crate.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Clone, Copy, Default)]
struct StrideEntry {
    tag: u32,
    valid: bool,
    last_line: u64,
    stride: i64,
    conf: u8,
}

#[derive(Clone, Copy, Default)]
struct StreamEntry {
    region: u64,
    valid: bool,
    last_line: u64,
    dir: i8,
    count: u8,
}

/// Perceptron-style off-chip hit/miss predictor: three tag-hashed weight
/// tables indexed by region features of the line plus the reference id.
/// Predicts "off-chip" when the summed weights are non-negative; trains on
/// every demand outcome when the prediction was wrong or under-confident.
struct Predictor {
    w: [[i8; Predictor::TABLE]; 3],
}

impl Predictor {
    const TABLE: usize = 256;
    /// Train-on-correct margin (classic perceptron theta).
    const THETA: i32 = 8;
    /// Gating margin: a *candidate* is issued only when the summed
    /// weights clear this bar, not merely the sign — speculative
    /// bandwidth is spent only where the off-chip evidence is strong.
    const GATE: i32 = 8;
    const WMAX: i8 = 63;

    fn new() -> Self {
        Self {
            w: [[0; Self::TABLE]; 3],
        }
    }

    fn idx(line: u64, ref_id: u32) -> [usize; 3] {
        [
            (mix(line >> 2) & 0xff) as usize,
            (mix(line >> 6) & 0xff) as usize,
            (mix(ref_id as u64 ^ 0x9e37_79b9_7f4a_7c15) & 0xff) as usize,
        ]
    }

    fn sum(&self, idx: &[usize; 3]) -> i32 {
        idx.iter()
            .enumerate()
            .map(|(t, &i)| self.w[t][i] as i32)
            .sum()
    }

    fn predict_offchip(&self, line: u64, ref_id: u32) -> bool {
        self.sum(&Self::idx(line, ref_id)) >= 0
    }

    fn confident_offchip(&self, line: u64, ref_id: u32) -> bool {
        self.sum(&Self::idx(line, ref_id)) >= Self::GATE
    }

    fn train(&mut self, line: u64, ref_id: u32, offchip: bool) {
        let idx = Self::idx(line, ref_id);
        let sum = self.sum(&idx);
        let predicted = sum >= 0;
        if predicted != offchip || sum.abs() <= Self::THETA {
            let delta: i8 = if offchip { 1 } else { -1 };
            for (t, &i) in idx.iter().enumerate() {
                let w = &mut self.w[t][i];
                *w = w.saturating_add(delta).clamp(-Self::WMAX, Self::WMAX);
            }
        }
    }
}

/// Accuracy-driven degree throttle: an exponentially-decayed window of
/// prefetch resolutions (useful and late count as accurate; harmful as
/// inaccurate). High accuracy keeps the configured degree, mediocre
/// accuracy halves it, poor accuracy drops to one line per trigger.
struct Throttle {
    good: u32,
    total: u32,
}

impl Throttle {
    const WINDOW: u32 = 64;
    const WARMUP: u32 = 8;

    fn new() -> Self {
        Self { good: 0, total: 0 }
    }

    fn record(&mut self, accurate: bool) {
        self.total += 1;
        if accurate {
            self.good += 1;
        }
        if self.total >= Self::WINDOW {
            self.total /= 2;
            self.good /= 2;
        }
    }

    fn degree(&self, base: u32) -> u32 {
        if self.total < Self::WARMUP {
            return base;
        }
        if self.good * 2 >= self.total {
            base
        } else if self.good * 4 >= self.total {
            (base / 2).max(1)
        } else {
            1
        }
    }
}

/// The per-L2-slice prefetch unit: both candidate engines, the off-chip
/// predictor, and the accuracy throttle.
///
/// The simulator calls [`on_demand`](Self::on_demand) for every demand L2
/// access (training plus candidate generation) and
/// [`resolve`](Self::resolve) when an issued prefetch's fate becomes
/// known, and is itself responsible for issue-side filtering (lines
/// already cached or in flight), transport, and installation.
pub struct SlicePrefetcher {
    cfg: PrefetchConfig,
    strides: Vec<StrideEntry>,
    streams: Vec<StreamEntry>,
    predictor: Predictor,
    throttle: Throttle,
}

/// Lines per stream region (64 lines = 16 KB at 256 B lines).
const REGION_SHIFT: u32 = 6;

impl SlicePrefetcher {
    /// A fresh slice prefetcher.
    pub fn new(cfg: PrefetchConfig) -> Self {
        Self {
            strides: vec![StrideEntry::default(); cfg.stride_entries.max(1)],
            streams: vec![StreamEntry::default(); cfg.stream_entries.max(1)],
            predictor: Predictor::new(),
            throttle: Throttle::new(),
            cfg,
        }
    }

    /// The configuration this slice runs.
    pub fn config(&self) -> &PrefetchConfig {
        &self.cfg
    }

    /// Feeds one demand L2 access: trains the engines and the predictor on
    /// the observed `outcome`, scores the predictor, and appends surviving
    /// candidate lines to `out` (deduplicated within the trigger). Updates
    /// `summary.candidates`, `summary.gated`, and the predictor score
    /// counters; the caller owns issued/useful/late/harmful/dropped.
    pub fn on_demand(
        &mut self,
        ref_id: u32,
        line: u64,
        outcome: DemandOutcome,
        summary: &mut PrefetchSummary,
        out: &mut Vec<u64>,
    ) {
        if self.cfg.mode == PrefetchMode::Off {
            return;
        }
        // Miss-triggered prefetching: plain local hits neither train nor
        // trigger. An L2 line absorbs ~line_bytes/elem same-line re-hits
        // after every fill; folding those into the predictor drowns the
        // off-chip signal in trivially-on-chip noise (the per-reference
        // weight saturates negative and gates every candidate), and
        // letting them trigger the engines multiplies issue volume with
        // no new information — the *miss* stream is the pattern to cover.
        // A hit on a prefetched line stays a trigger (it is the covered
        // continuation of a stream the engines must keep running ahead
        // of) and trains as off-chip (without the prefetch it would have
        // been — the "would-miss" labeling of Jamet et al., which keeps
        // the predictor stable under the prefetcher's own success).
        if outcome == DemandOutcome::L2Hit {
            return;
        }
        // Score, then train: the prediction must not see its own update.
        let offchip = matches!(
            outcome,
            DemandOutcome::OffChip | DemandOutcome::PrefetchedHit
        );
        summary.pred_total += 1;
        if self.predictor.predict_offchip(line, ref_id) == offchip {
            summary.pred_correct += 1;
        }
        self.predictor.train(line, ref_id, offchip);

        let degree = match self.cfg.mode {
            PrefetchMode::Gated => self.throttle.degree(self.cfg.degree),
            _ => self.cfg.degree,
        };
        let base = out.len();
        if matches!(self.cfg.mode, PrefetchMode::Stride | PrefetchMode::Gated) {
            self.stride_candidates(ref_id, line, degree, out);
        }
        // In Gated mode the stream engine is a fallback for references the
        // stride table cannot lock (its hashed regions collide, so running
        // it alongside an armed stride entry only adds mispredictions).
        let stream_too = match self.cfg.mode {
            PrefetchMode::Stream => true,
            PrefetchMode::Gated => out.len() == base,
            _ => false,
        };
        if stream_too {
            self.stream_candidates(line, degree, out);
        }
        // Within-trigger dedup, preserving first-engine order.
        let mut k = base;
        for i in base..out.len() {
            let cand = out[i];
            if cand != line && !out[base..k].contains(&cand) {
                out[k] = cand;
                k += 1;
            }
        }
        out.truncate(k);
        summary.candidates += (out.len() - base) as u64;
        if self.cfg.mode == PrefetchMode::Gated {
            let mut k = base;
            for i in base..out.len() {
                let cand = out[i];
                if self.predictor.confident_offchip(cand, ref_id) {
                    out[k] = cand;
                    k += 1;
                } else {
                    summary.gated += 1;
                }
            }
            out.truncate(k);
        }
    }

    /// Reports the fate of an issued prefetch to the accuracy throttle:
    /// `accurate` for useful or late-joined lines, inaccurate for lines
    /// evicted untouched.
    pub fn resolve(&mut self, accurate: bool) {
        self.throttle.record(accurate);
    }

    fn stride_candidates(&mut self, ref_id: u32, line: u64, degree: u32, out: &mut Vec<u64>) {
        let n = self.strides.len();
        let e = &mut self.strides[ref_id as usize % n];
        if !e.valid || e.tag != ref_id {
            *e = StrideEntry {
                tag: ref_id,
                valid: true,
                last_line: line,
                stride: 0,
                conf: 0,
            };
            return;
        }
        let stride = line as i64 - e.last_line as i64;
        e.last_line = line;
        if stride == 0 {
            return;
        }
        if stride == e.stride {
            e.conf = (e.conf + 1).min(3);
        } else if e.conf > 0 {
            e.conf -= 1;
            return;
        } else {
            e.stride = stride;
            return;
        }
        if e.conf >= 2 {
            // Next line(s) only: the workloads' miss streams run in short
            // bursts, so a deep lookahead overshoots the burst end and
            // pollutes — a near prefetch that joins late still hides most
            // of the round trip.
            let stride = e.stride;
            for k in 1..=degree as i64 {
                let target = line as i64 + stride * k;
                if target >= 0 {
                    out.push(target as u64);
                }
            }
        }
    }

    fn stream_candidates(&mut self, line: u64, degree: u32, out: &mut Vec<u64>) {
        let region = line >> REGION_SHIFT;
        let n = self.streams.len();
        let e = &mut self.streams[(mix(region) as usize) % n];
        if !e.valid || e.region != region {
            *e = StreamEntry {
                region,
                valid: true,
                last_line: line,
                dir: 0,
                count: 0,
            };
            return;
        }
        let dir: i8 = match line.cmp(&e.last_line) {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
        };
        e.last_line = line;
        if dir == 0 {
            return;
        }
        if dir == e.dir {
            e.count = (e.count + 1).min(7);
        } else {
            e.dir = dir;
            e.count = 1;
            return;
        }
        if e.count >= 2 {
            let distance = self.cfg.distance as i64;
            for k in 0..degree as i64 {
                let target = line as i64 + dir as i64 * (distance + k);
                if target >= 0 {
                    out.push(target as u64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> PrefetchSummary {
        PrefetchSummary::default()
    }

    fn drive(
        pf: &mut SlicePrefetcher,
        ref_id: u32,
        lines: impl IntoIterator<Item = u64>,
        outcome: DemandOutcome,
    ) -> (PrefetchSummary, Vec<u64>) {
        let mut s = summary();
        let mut out = Vec::new();
        for l in lines {
            pf.on_demand(ref_id, l, outcome, &mut s, &mut out);
        }
        (s, out)
    }

    #[test]
    fn mode_names_round_trip() {
        for m in PrefetchMode::all() {
            assert_eq!(PrefetchMode::parse(m.name()).unwrap(), m);
        }
        assert!(PrefetchMode::parse("bogus").is_err());
        assert_eq!(PrefetchMode::default(), PrefetchMode::Off);
        assert!(!PrefetchConfig::default().enabled());
        assert!(PrefetchConfig::with_mode(PrefetchMode::Gated).enabled());
    }

    #[test]
    fn off_mode_is_inert() {
        let mut pf = SlicePrefetcher::new(PrefetchConfig::default());
        let (s, out) = drive(&mut pf, 1, (0..100).map(|k| k * 2), DemandOutcome::OffChip);
        assert!(out.is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn stride_engine_locks_onto_constant_stride() {
        let mut pf = SlicePrefetcher::new(PrefetchConfig::with_mode(PrefetchMode::Stride));
        let (s, out) = drive(
            &mut pf,
            7,
            (0..8).map(|k| 100 + k * 3),
            DemandOutcome::OffChip,
        );
        assert!(!out.is_empty(), "confident stride must emit candidates");
        // Every candidate extends the +3 stride beyond the trigger line.
        assert!(out.iter().all(|&c| (c as i64 - 100) % 3 == 0));
        assert_eq!(s.candidates, out.len() as u64);
        assert_eq!(s.gated, 0, "stride mode never gates");
    }

    #[test]
    fn stride_engine_ignores_erratic_references() {
        let mut pf = SlicePrefetcher::new(PrefetchConfig::with_mode(PrefetchMode::Stride));
        // An indexed-style reference: strides never repeat.
        let lines = [5u64, 900, 13, 4421, 2, 777, 30_000, 8, 1234];
        let (_, out) = drive(&mut pf, 9, lines, DemandOutcome::OffChip);
        assert!(
            out.is_empty(),
            "no repeating stride, no candidates: {out:?}"
        );
    }

    #[test]
    fn stream_engine_follows_ascending_runs() {
        let mut pf = SlicePrefetcher::new(PrefetchConfig::with_mode(PrefetchMode::Stream));
        let (_, out) = drive(&mut pf, 0, 200..210, DemandOutcome::OffChip);
        assert!(!out.is_empty());
        let distance = pf.config().distance as u64;
        assert!(
            out.iter().all(|&c| c > 200 + distance - 1),
            "stream candidates run ahead of the head: {out:?}"
        );
    }

    #[test]
    fn stream_engine_follows_descending_runs() {
        let mut pf = SlicePrefetcher::new(PrefetchConfig::with_mode(PrefetchMode::Stream));
        let (_, out) = drive(&mut pf, 0, (200..210).rev(), DemandOutcome::OffChip);
        assert!(!out.is_empty());
        let distance = pf.config().distance as u64;
        assert!(
            out.iter().all(|&c| c <= 209 - distance),
            "stream candidates run ahead (downward) of the head: {out:?}"
        );
    }

    #[test]
    fn candidates_are_deduplicated_and_never_the_trigger_line() {
        let mut pf = SlicePrefetcher::new(PrefetchConfig::with_mode(PrefetchMode::Gated));
        let mut s = summary();
        let mut out = Vec::new();
        for l in 0..64u64 {
            out.clear();
            pf.on_demand(3, l, DemandOutcome::OffChip, &mut s, &mut out);
            let mut d = out.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), out.len(), "dup candidates at line {l}: {out:?}");
            assert!(!out.contains(&l));
        }
    }

    #[test]
    fn predictor_learns_offchip_regions() {
        let mut pf = SlicePrefetcher::new(PrefetchConfig::with_mode(PrefetchMode::Gated));
        let mut s = summary();
        let mut out = Vec::new();
        // Region A (lines 0..) always resolves on-chip; region B (lines
        // 1<<20..) always misses off-chip. After training, gating keeps
        // B, drops A. (Local L2 hits train nothing — the predictor only
        // sees the miss path.)
        for rep in 0..40u64 {
            for l in 0..8u64 {
                pf.on_demand(1, l + (rep % 8), DemandOutcome::OnChip, &mut s, &mut out);
                pf.on_demand(
                    2,
                    (1 << 20) + rep * 8 + l,
                    DemandOutcome::OffChip,
                    &mut s,
                    &mut out,
                );
            }
        }
        assert!(
            s.pred_accuracy() > 0.8,
            "predictor should converge: {}",
            s.pred_accuracy()
        );
        assert!(s.gated > 0, "on-chip region candidates must be gated");
    }

    #[test]
    fn throttle_cuts_degree_under_poor_accuracy() {
        let mut t = Throttle::new();
        for _ in 0..32 {
            t.record(false);
        }
        assert_eq!(t.degree(4), 1);
        let mut t = Throttle::new();
        for _ in 0..32 {
            t.record(true);
        }
        assert_eq!(t.degree(4), 4);
        let mut t = Throttle::new();
        for i in 0..32 {
            t.record(i % 3 == 0);
        }
        assert_eq!(t.degree(4), 2, "mediocre accuracy halves the degree");
        // Warmup: no verdict before enough resolutions.
        let mut t = Throttle::new();
        t.record(false);
        assert_eq!(t.degree(4), 4);
    }

    #[test]
    fn summary_ratios_are_total() {
        let s = summary();
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.coverage(0), 0.0);
        assert_eq!(s.pred_accuracy(), 0.0);
        let s = PrefetchSummary {
            issued: 10,
            useful: 4,
            late: 1,
            pred_correct: 8,
            pred_total: 10,
            ..summary()
        };
        assert!((s.accuracy() - 0.5).abs() < 1e-12);
        assert!((s.coverage(15) - 0.25).abs() < 1e-12);
        assert!((s.pred_accuracy() - 0.8).abs() < 1e-12);
        assert!(!s.is_empty());
    }

    #[test]
    fn deterministic_given_same_stream() {
        let run = || {
            let mut pf = SlicePrefetcher::new(PrefetchConfig::with_mode(PrefetchMode::Gated));
            let mut s = summary();
            let mut out = Vec::new();
            let mut x: u64 = 0x1234_5678;
            for i in 0..2000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let line = if i % 3 == 0 { i * 2 } else { x % 4096 };
                let outcome = if line % 5 == 0 {
                    DemandOutcome::L2Hit
                } else {
                    DemandOutcome::OffChip
                };
                pf.on_demand((i % 11) as u32, line, outcome, &mut s, &mut out);
            }
            (s, out)
        };
        assert_eq!(run(), run());
    }
}
