//! # hoploc-harness
//!
//! The suite harness: one code path that evaluates the full
//! (application × run-kind) matrix of the PLDI'15 reproduction — for the
//! integration tests, the figure benches, the `hoploc` binary, and the
//! examples — in parallel, with memoization of the expensive stages.
//!
//! Two content-keyed caches sit under every run:
//!
//! * **Layout plans.** [`hoploc_workloads::layout_with`] output per
//!   (app, layout class). The
//!   Baseline, FirstTouch, and Optimal run kinds all use the original
//!   (baseline) layouts, so one compile serves three run kinds; Optimized
//!   compiles once and is reused across repeat runs.
//! * **Trace workloads.** Generated access traces (plus the compiler's
//!   desired-page map) per (app, layout class). Trace generation walks
//!   every iteration of every nest and dominates sweep time; Baseline,
//!   FirstTouch, and Optimal runs of the same app share one generation.
//!
//! Parallel execution is *observably deterministic*: results are collected
//! by spec index, every cached artifact is a pure function of its key, all
//! per-run randomness is derived from fixed per-thread seeds inside trace
//! generation, and the memory controller / network / cache models carry no
//! cross-run state. A [`Suite::run_matrix`] at any `jobs` count is
//! bit-identical (`RunStats: PartialEq`, including the floating-point link
//! utilizations) to the sequential path — the integration suite asserts
//! this against `run_app` itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use hoploc_fault::{FaultPlan, FaultTopo};
use hoploc_noc::{L2ToMcMapping, McId};
use hoploc_obs::{ObsConfig, ObsReport};
use hoploc_sim::{AddressSpace, PagePolicy, RunStats, SimConfig, Simulator, TraceWorkload};
use hoploc_workloads::{App, RunKind, TraceGen};

pub use hoploc_workloads::RunKind as Kind;

/// One cell of the run matrix: which app (by index into the suite) and
/// which side of the comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunSpec {
    /// Index into [`Suite::apps`].
    pub app: usize,
    /// Which run kind to simulate.
    pub kind: RunKind,
}

/// A finished run: the spec it came from plus its statistics.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Application name.
    pub app: String,
    /// Run kind.
    pub kind: RunKind,
    /// Full simulation statistics.
    pub stats: RunStats,
}

/// A finished traced run: statistics plus the observability report
/// (spans, metric registry, exportable snapshots).
#[derive(Debug)]
pub struct TracedRecord {
    /// Application name.
    pub app: String,
    /// Run kind.
    pub kind: RunKind,
    /// Full simulation statistics.
    pub stats: RunStats,
    /// The run's observability report.
    pub report: ObsReport,
}

/// Which compiled layout a run kind uses — the cache key discriminant.
/// Baseline, FirstTouch, and Optimal all run the original layouts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum LayoutClass {
    Baseline,
    Optimized,
}

impl LayoutClass {
    fn of(kind: RunKind) -> Self {
        match kind {
            RunKind::Optimized => LayoutClass::Optimized,
            RunKind::Baseline | RunKind::FirstTouch | RunKind::Optimal => LayoutClass::Baseline,
        }
    }
}

/// One slot of a [`Memo`]: the compute-once cell plus the logical access
/// time used by the eviction policy.
struct MemoEntry<V> {
    cell: Arc<OnceLock<Arc<V>>>,
    last_used: u64,
}

/// A compute-once memo table. Concurrent lookups of the same key block on
/// one computation (via `OnceLock`), so every artifact is built exactly
/// once per suite regardless of the thread schedule.
///
/// With a capacity (`cap = Some(n)`), the table holds at most `n`
/// *completed* entries: inserting past the cap evicts the
/// least-recently-used initialized entry. In-flight cells (still being
/// built) are never evicted, so the table can transiently exceed the cap
/// while builds race; outstanding `Arc<V>` handles keep evicted artifacts
/// alive until their users drop them. Because every artifact is a pure
/// function of its key, an evict-then-rebuild returns a bit-identical
/// value — eviction trades recompute time for bounded residency, which is
/// what a long-lived server process needs.
struct Memo<K, V> {
    map: Mutex<HashMap<K, MemoEntry<V>>>,
    tick: AtomicU64,
    cap: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> Memo<K, V> {
    fn new(cap: Option<usize>) -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn get_or(&self, key: K, build: impl FnOnce() -> V) -> Arc<V> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let cell = {
            let mut map = self.map.lock().expect("memo poisoned");
            let entry = map.entry(key.clone()).or_insert_with(|| MemoEntry {
                cell: Arc::new(OnceLock::new()),
                last_used: now,
            });
            entry.last_used = now;
            entry.cell.clone()
        };
        // A miss is a build actually performed by this call; a lookup that
        // waits out (or arrives after) another thread's build is a hit.
        // Counting at the init closure keeps misses == builds even when
        // concurrent lookups race on an uninitialized cell.
        let mut built = false;
        let value = cell
            .get_or_init(|| {
                built = true;
                Arc::new(build())
            })
            .clone();
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(cap) = self.cap {
            self.evict_to(cap, &key);
        }
        value
    }

    /// Evicts least-recently-used *initialized* entries until at most `cap`
    /// remain, never removing `keep` (the key the caller just touched).
    fn evict_to(&self, cap: usize, keep: &K) {
        let mut map = self.map.lock().expect("memo poisoned");
        while map.len() > cap.max(1) {
            let victim = map
                .iter()
                .filter(|(k, e)| *k != keep && e.cell.get().is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Everything else is still in flight: allow the transient
                // overflow rather than tearing down a racing build.
                None => break,
            }
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.lock().expect("memo poisoned").len()
    }
}

/// Everything trace generation produces for one (app, layout class):
/// the workload plus the compiler's desired-page map (used only by
/// Optimized runs, empty for baseline layouts).
struct TraceBundle {
    workload: TraceWorkload,
    desired: HashMap<u64, McId>,
}

/// Cache traffic counters of one suite, for the aggregated report.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheCounters {
    /// Layout-plan cache hits / misses.
    pub layout_hits: u64,
    /// Layout-plan cache misses (compiles performed).
    pub layout_misses: u64,
    /// Layout-plan entries evicted by the capacity bound.
    pub layout_evictions: u64,
    /// Trace cache hits.
    pub trace_hits: u64,
    /// Trace cache misses (generations performed).
    pub trace_misses: u64,
    /// Trace entries evicted by the capacity bound.
    pub trace_evictions: u64,
}

/// A fixed (apps, mapping, config, threads-per-core) context whose run
/// matrix can be evaluated in parallel with shared caches.
///
/// Configurations are part of the key by construction: one `Suite` is one
/// config, and experiments that sweep configs (mesh sizes, placements,
/// granularities) build one suite per point.
pub struct Suite {
    apps: Vec<App>,
    mapping: L2ToMcMapping,
    sim: SimConfig,
    threads_per_core: usize,
    approx_threshold: f64,
    layouts: Memo<(usize, LayoutClass), hoploc_layout::ProgramLayout>,
    traces: Memo<(usize, LayoutClass), TraceBundle>,
}

impl Suite {
    /// Creates a suite over `apps` under one mapping and simulator config.
    /// The layout/trace caches are unbounded — right for one-shot sweeps
    /// where the whole matrix is live at once; resident processes should
    /// bound them with [`with_cache_caps`](Self::with_cache_caps).
    pub fn new(apps: Vec<App>, mapping: L2ToMcMapping, sim: SimConfig) -> Self {
        Self {
            apps,
            mapping,
            sim,
            threads_per_core: 1,
            approx_threshold: hoploc_layout::PassConfig::default().approx_threshold,
            layouts: Memo::new(None),
            traces: Memo::new(None),
        }
    }

    /// Creates a suite whose geometry comes from a unified
    /// [`hoploc_noc::Placement`]: the config's MC placement and the
    /// mapping are taken from the same value, so the simulator's
    /// placement/mapping agreement assertion holds by construction.
    /// Design-space search verifies candidates through this entry point.
    pub fn for_placement(
        apps: Vec<App>,
        placement: &hoploc_noc::Placement,
        sim: SimConfig,
    ) -> Self {
        let cfg = SimConfig {
            placement: placement.mc_placement().clone(),
            ..sim
        };
        Self::new(apps, placement.mapping().clone(), cfg)
    }

    /// Sets the threads-per-core count (Figure 24). Resets nothing: the
    /// builder is consumed before any run.
    pub fn with_threads_per_core(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread per core");
        self.threads_per_core = threads;
        self
    }

    /// Sets the layout pass's approximation threshold for Optimized
    /// layouts. Builder-style: call before the first run, so the layout
    /// cache never mixes plans compiled under different thresholds.
    pub fn with_approx_threshold(mut self, approx_threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&approx_threshold),
            "approx threshold must be a fraction"
        );
        self.approx_threshold = approx_threshold;
        self
    }

    /// Bounds the layout and trace caches to at most `layout_cap` /
    /// `trace_cap` completed entries each (least-recently-used eviction;
    /// `0` means unbounded). Builder-style: call before the first run. The
    /// caps never change results — every cached artifact is a pure
    /// function of its key, so a rebuild after eviction is bit-identical —
    /// they only bound the memory a long-lived process can pin.
    pub fn with_cache_caps(mut self, layout_cap: usize, trace_cap: usize) -> Self {
        let cap = |n: usize| if n == 0 { None } else { Some(n) };
        self.layouts = Memo::new(cap(layout_cap));
        self.traces = Memo::new(cap(trace_cap));
        self
    }

    /// The applications in suite order.
    pub fn apps(&self) -> &[App] {
        &self.apps
    }

    /// The L2-to-MC mapping all runs use.
    pub fn mapping(&self) -> &L2ToMcMapping {
        &self.mapping
    }

    /// The simulator configuration all runs use.
    pub fn sim(&self) -> &SimConfig {
        &self.sim
    }

    /// Builds the full matrix: every app crossed with every given kind,
    /// apps varying fastest (matching the sequential suite loops).
    pub fn full_matrix(&self, kinds: &[RunKind]) -> Vec<RunSpec> {
        let mut specs = Vec::with_capacity(self.apps.len() * kinds.len());
        for &kind in kinds {
            for app in 0..self.apps.len() {
                specs.push(RunSpec { app, kind });
            }
        }
        specs
    }

    /// The compiled (or original) layout plan for one matrix cell, through
    /// the layout-plan cache.
    fn layout(&self, app: usize, class: LayoutClass) -> Arc<hoploc_layout::ProgramLayout> {
        let kind = match class {
            LayoutClass::Baseline => RunKind::Baseline,
            LayoutClass::Optimized => RunKind::Optimized,
        };
        self.layouts.get_or((app, class), || {
            hoploc_workloads::layout_with(
                &self.apps[app],
                &self.mapping,
                &self.sim,
                kind,
                self.approx_threshold,
            )
        })
    }

    /// The generated trace workload (and desired-page map) for one matrix
    /// cell, through the trace cache.
    fn traces(&self, app: usize, class: LayoutClass) -> Arc<TraceBundle> {
        self.traces.get_or((app, class), || {
            let layout = self.layout(app, class);
            let a = &self.apps[app];
            let space = AddressSpace::build(&a.program, &layout, 0);
            let desired = match class {
                LayoutClass::Optimized => {
                    space.desired_page_mcs(&a.program, &layout, self.sim.page_bytes)
                }
                LayoutClass::Baseline => HashMap::new(),
            };
            let gen = TraceGen {
                threads_per_core: self.threads_per_core,
                ..a.gen
            };
            let workload = hoploc_workloads::generate_traces(&a.program, &layout, &space, &gen);
            TraceBundle { workload, desired }
        })
    }

    /// The compiled (or original) layout plan for one matrix cell, shared
    /// through the suite's layout cache. This is the cross-validation entry
    /// point the static estimator (`hoploc-est`) uses: predictions are made
    /// from the *same* plan object the cycle simulation replays, so a
    /// prediction/simulation mismatch can only come from the model, never
    /// from divergent layout inputs.
    pub fn layout_plan(&self, app: usize, kind: RunKind) -> Arc<hoploc_layout::ProgramLayout> {
        self.layout(app, LayoutClass::of(kind))
    }

    /// Builds the simulator and workload for one matrix cell — the shared
    /// setup under both the plain and traced run paths.
    fn prepare(&self, spec: RunSpec) -> (Simulator, Arc<TraceBundle>) {
        self.prepare_faulted(spec, None)
    }

    /// [`prepare`](Self::prepare) with an optional fault-plan override:
    /// `Some(plan)` replaces whatever `sim.faults` the suite config holds.
    fn prepare_faulted(
        &self,
        spec: RunSpec,
        faults: Option<&FaultPlan>,
    ) -> (Simulator, Arc<TraceBundle>) {
        let app = &self.apps[spec.app];
        let class = LayoutClass::of(spec.kind);
        let bundle = self.traces(spec.app, class);
        let policy = match spec.kind {
            RunKind::Optimized => {
                if bundle.desired.is_empty() {
                    PagePolicy::Interleaved
                } else {
                    PagePolicy::Desired(bundle.desired.clone())
                }
            }
            RunKind::FirstTouch => PagePolicy::FirstTouch,
            RunKind::Baseline | RunKind::Optimal => PagePolicy::Interleaved,
        };
        let mut cfg = self.sim.clone();
        if let Some(plan) = faults {
            cfg.faults = Some(plan.clone());
        }
        cfg.optimal = spec.kind == RunKind::Optimal;
        cfg.mlp = app.mlp;
        let sim = Simulator::new(cfg, self.mapping.clone(), policy);
        (sim, bundle)
    }

    /// Runs one matrix cell. Pure in the spec: bit-identical to
    /// `hoploc_workloads::run_app_threads` with the same arguments.
    pub fn run_one(&self, spec: RunSpec) -> RunStats {
        let (sim, bundle) = self.prepare(spec);
        sim.run(&bundle.workload)
    }

    /// Runs one matrix cell with observability enabled. The statistics are
    /// bit-identical to [`run_one`](Self::run_one) — the sink only mirrors
    /// what the models already compute — and the report's counters mirror
    /// those statistics exactly.
    pub fn run_one_traced(&self, spec: RunSpec, obs: ObsConfig) -> (RunStats, ObsReport) {
        let (sim, bundle) = self.prepare(spec);
        sim.with_obs(obs).run_traced(&bundle.workload)
    }

    /// Runs one matrix cell under a fault plan. The empty plan is provably
    /// inert: `run_one_faulted(spec, &FaultPlan::none())` is bit-identical
    /// to [`run_one`](Self::run_one) (asserted by the fault suite).
    pub fn run_one_faulted(&self, spec: RunSpec, plan: &FaultPlan) -> RunStats {
        let (sim, bundle) = self.prepare_faulted(spec, Some(plan));
        sim.run(&bundle.workload)
    }

    /// [`run_one_faulted`](Self::run_one_faulted) with observability.
    pub fn run_one_faulted_traced(
        &self,
        spec: RunSpec,
        plan: &FaultPlan,
        obs: ObsConfig,
    ) -> (RunStats, ObsReport) {
        let (sim, bundle) = self.prepare_faulted(spec, Some(plan));
        sim.with_obs(obs).run_traced(&bundle.workload)
    }

    /// Fans a fault-plan sweep of one matrix cell across `jobs` workers,
    /// collected in plan order (deterministic at any job count, like
    /// [`run_matrix`](Self::run_matrix)).
    pub fn run_fault_sweep(
        &self,
        spec: RunSpec,
        plans: &[FaultPlan],
        jobs: usize,
    ) -> Vec<RunStats> {
        parallel_map(plans, jobs, |plan| self.run_one_faulted(spec, plan))
    }

    /// Runs a matrix of specs across `jobs` worker threads and collects
    /// results **by index**: the output order is the spec order no matter
    /// how the scheduler interleaves workers, and every record is
    /// bit-identical to what `jobs = 1` (or the un-cached sequential path)
    /// produces.
    pub fn run_matrix(&self, specs: &[RunSpec], jobs: usize) -> Vec<RunRecord> {
        let stats = parallel_map(specs, jobs, |spec| self.run_one(*spec));
        specs
            .iter()
            .zip(stats)
            .map(|(spec, stats)| RunRecord {
                app: self.apps[spec.app].name().to_string(),
                kind: spec.kind,
                stats,
            })
            .collect()
    }

    /// Convenience: run the full (apps × kinds) matrix.
    pub fn run_full(&self, kinds: &[RunKind], jobs: usize) -> Vec<RunRecord> {
        self.run_matrix(&self.full_matrix(kinds), jobs)
    }

    /// Runs a matrix of specs with observability enabled on every cell,
    /// across `jobs` workers, collected by index like
    /// [`run_matrix`](Self::run_matrix). Each run owns its sink, so the
    /// parallel fan-out stays deterministic: only the finished
    /// [`ObsReport`]s (plain data) cross threads.
    pub fn run_matrix_traced(
        &self,
        specs: &[RunSpec],
        jobs: usize,
        obs: ObsConfig,
    ) -> Vec<TracedRecord> {
        let results = parallel_map(specs, jobs, |spec| self.run_one_traced(*spec, obs));
        specs
            .iter()
            .zip(results)
            .map(|(spec, (stats, report))| TracedRecord {
                app: self.apps[spec.app].name().to_string(),
                kind: spec.kind,
                stats,
                report,
            })
            .collect()
    }

    /// Convenience: run the full (apps × kinds) matrix with tracing.
    pub fn run_full_traced(
        &self,
        kinds: &[RunKind],
        jobs: usize,
        obs: ObsConfig,
    ) -> Vec<TracedRecord> {
        self.run_matrix_traced(&self.full_matrix(kinds), jobs, obs)
    }

    /// Cache counters accumulated so far.
    pub fn cache_counters(&self) -> CacheCounters {
        CacheCounters {
            layout_hits: self.layouts.hits.load(Ordering::Relaxed),
            layout_misses: self.layouts.misses.load(Ordering::Relaxed),
            layout_evictions: self.layouts.evictions.load(Ordering::Relaxed),
            trace_hits: self.traces.hits.load(Ordering::Relaxed),
            trace_misses: self.traces.misses.load(Ordering::Relaxed),
            trace_evictions: self.traces.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Maps `f` over `items` across `jobs` worker threads and collects the
/// results **by index**: the output order is the item order no matter how
/// the scheduler interleaves workers. Workers pull items off a shared
/// atomic queue, so uneven item costs balance automatically. With
/// `jobs <= 1` (or a single item) this degenerates to a sequential map.
///
/// This is the fan-out primitive under [`Suite::run_matrix`] and the
/// `hoploc check` subcommand; `f` must be pure in its item for the
/// determinism guarantee to mean anything.
pub fn parallel_map<T: Sync, R: Send + Sync>(
    items: &[T],
    jobs: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let jobs = jobs.clamp(1, items.len().max(1));
    let slots: Vec<OnceLock<R>> = items.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                if slots[i].set(r).is_err() {
                    unreachable!("item index claimed twice");
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("invariant: the scope joins every worker, so each slot was filled")
        })
        .collect()
}

/// The fault-plan topology implied by a simulator configuration: the shape
/// [`hoploc_fault::FaultPlan::from_seed`] generates against and
/// [`hoploc_fault::FaultPlan::validate`] checks.
pub fn fault_topo(sim: &SimConfig) -> FaultTopo {
    FaultTopo {
        links: (sim.num_nodes() * 4) as u32,
        mcs: sim.num_mcs() as u16,
        banks_per_mc: sim.mc.banks as u16,
    }
}

/// A sensible default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Lower-case display name of a run kind (stable across `Debug` changes).
pub fn kind_name(kind: RunKind) -> &'static str {
    match kind {
        RunKind::Baseline => "baseline",
        RunKind::Optimized => "optimized",
        RunKind::FirstTouch => "first-touch",
        RunKind::Optimal => "optimal",
    }
}

/// Renders the aggregated per-run statistics table every harness consumer
/// prints: one row per record, in spec order.
pub fn render_table(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<11} {:<12} {:>12} {:>12} {:>10} {:>9} {:>10}",
        "app", "kind", "exec cycles", "accesses", "off-chip", "avg hops", "mem lat"
    );
    for r in records {
        let _ = writeln!(
            out,
            "{:<11} {:<12} {:>12} {:>12} {:>10} {:>9.2} {:>10.1}",
            r.app,
            kind_name(r.kind),
            r.stats.exec_cycles,
            r.stats.total_accesses,
            r.stats.offchip_accesses,
            r.stats.net.off_chip.avg_hops(),
            r.stats.memory_latency(),
        );
    }
    out
}

/// Serializes one run record as a single-line JSON object — the canonical
/// machine-readable form of a run. This is the *unit* every consumer
/// agrees on byte-for-byte: [`to_json`] embeds it per run, and the
/// `hoploc-serve` job server replies with exactly these bytes, so a served
/// result can be compared literally against a direct `run_matrix` run.
pub fn record_json(r: &RunRecord) -> String {
    let s = &r.stats;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"app\": {}, \"kind\": \"{}\", \"exec_cycles\": {}, \
         \"total_accesses\": {}, \"l1_hits\": {}, \"l2_hits\": {}, \
         \"cache_to_cache\": {}, \"offchip_accesses\": {}, \
         \"offchip_fraction\": {:.6}, \"avg_offchip_hops\": {:.6}, \
         \"onchip_net_latency\": {:.6}, \"offchip_net_latency\": {:.6}, \
         \"memory_latency\": {:.6}, \"os_fallbacks\": {}, \
         \"rehomed\": {}, \"dropped\": {}, \"backstop_flushes\": {}}}",
        json_string(&r.app),
        kind_name(r.kind),
        s.exec_cycles,
        s.total_accesses,
        s.l1_hits,
        s.l2_hits,
        s.cache_to_cache,
        s.offchip_accesses,
        s.offchip_fraction(),
        s.net.off_chip.avg_hops(),
        s.onchip_net_latency(),
        s.offchip_net_latency(),
        s.memory_latency(),
        s.os_fallbacks,
        s.rehomed_requests,
        s.dropped_requests,
        s.backstop_flushes,
    );
    // The prefetch block exists only when the run prefetched: an Off run's
    // record stays byte-identical to pre-prefetch builds.
    if !s.prefetch.is_empty() {
        let p = &s.prefetch;
        out.truncate(out.len() - 1);
        let _ = write!(
            out,
            ", \"prefetch\": {{\"issued\": {}, \"useful\": {}, \"late\": {}, \
             \"harmful\": {}, \"dropped\": {}, \"accuracy\": {:.6}, \
             \"coverage\": {:.6}, \"pred_accuracy\": {:.6}}}}}",
            p.issued,
            p.useful,
            p.late,
            p.harmful,
            p.dropped,
            p.accuracy(),
            p.coverage(s.offchip_accesses),
            p.pred_accuracy(),
        );
    }
    out
}

/// Serializes run records (plus optional cache counters) as a JSON
/// document — the machine-readable summary `BENCH_*.json` trajectories
/// are built from. Hand-rolled: the workspace has no serde and builds
/// offline.
pub fn to_json(records: &[RunRecord], counters: Option<CacheCounters>) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&record_json(r));
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    if let Some(c) = counters {
        let _ = write!(
            out,
            ",\n  \"cache\": {{\"layout_hits\": {}, \"layout_misses\": {}, \
             \"layout_evictions\": {}, \"trace_hits\": {}, \"trace_misses\": {}, \
             \"trace_evictions\": {}}}",
            c.layout_hits,
            c.layout_misses,
            c.layout_evictions,
            c.trace_hits,
            c.trace_misses,
            c.trace_evictions
        );
    }
    out.push_str("\n}\n");
    out
}

/// JSON string literal with escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_noc::Mesh;
    use hoploc_workloads::{mgrid, run_app, swim, Scale};

    fn suite2() -> Suite {
        let sim = SimConfig::scaled();
        let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &sim.placement);
        Suite::new(vec![swim(Scale::Test), mgrid(Scale::Test)], mapping, sim)
    }

    #[test]
    fn parallel_matches_sequential_and_run_app() {
        let s = suite2();
        let kinds = [
            RunKind::Baseline,
            RunKind::Optimized,
            RunKind::FirstTouch,
            RunKind::Optimal,
        ];
        let specs = s.full_matrix(&kinds);
        let par = s.run_matrix(&specs, 4);
        let seq = s.run_matrix(&specs, 1);
        for ((p, q), spec) in par.iter().zip(&seq).zip(&specs) {
            assert_eq!(p.stats, q.stats, "jobs=4 diverged from jobs=1 on {spec:?}");
            let direct = run_app(&s.apps()[spec.app], s.mapping(), s.sim(), spec.kind);
            assert_eq!(p.stats, direct, "harness diverged from run_app on {spec:?}");
        }
    }

    #[test]
    fn caches_share_baseline_class_work() {
        let s = suite2();
        let kinds = [RunKind::Baseline, RunKind::FirstTouch, RunKind::Optimal];
        s.run_full(&kinds, 2);
        let c = s.cache_counters();
        // 2 apps × 1 baseline layout class: exactly 2 trace generations
        // serve all 6 runs.
        assert_eq!(c.trace_misses, 2, "{c:?}");
        assert_eq!(c.trace_hits, 4, "{c:?}");
    }

    #[test]
    fn traced_matrix_matches_untraced_and_is_deterministic() {
        let s = suite2();
        let kinds = [RunKind::Baseline, RunKind::Optimized];
        let specs = s.full_matrix(&kinds);
        let plain = s.run_matrix(&specs, 2);
        let par = s.run_matrix_traced(&specs, 4, ObsConfig::default());
        let seq = s.run_matrix_traced(&specs, 1, ObsConfig::default());
        for ((p, q), r) in par.iter().zip(&seq).zip(&plain) {
            assert_eq!(p.stats, r.stats, "tracing perturbed the simulation");
            assert_eq!(p.stats, q.stats, "jobs=4 diverged from jobs=1");
            assert_eq!(
                p.report.metrics_json(),
                q.report.metrics_json(),
                "metrics snapshot differs across job counts"
            );
            assert_eq!(
                p.report.chrome_trace_json(),
                q.report.chrome_trace_json(),
                "event stream differs across job counts"
            );
            assert_eq!(p.report.offchip(), r.stats.offchip_accesses);
        }
    }

    #[test]
    fn records_keep_spec_order() {
        let s = suite2();
        let specs = vec![
            RunSpec {
                app: 1,
                kind: RunKind::Optimized,
            },
            RunSpec {
                app: 0,
                kind: RunKind::Baseline,
            },
        ];
        let recs = s.run_matrix(&specs, 8);
        assert_eq!(recs[0].app, "mgrid");
        assert_eq!(recs[1].app, "swim");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let s = suite2();
        let recs = s.run_matrix(
            &[RunSpec {
                app: 0,
                kind: RunKind::Baseline,
            }],
            1,
        );
        let j = to_json(&recs, Some(s.cache_counters()));
        assert!(j.starts_with("{\n"));
        assert!(j.contains("\"app\": \"swim\""));
        assert!(j.contains("\"kind\": \"baseline\""));
        assert!(j.contains("\"cache\""));
        assert!(j.trim_end().ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn fault_sweep_is_deterministic_and_empty_plan_inert() {
        use hoploc_fault::FaultRates;
        let s = suite2();
        let spec = RunSpec {
            app: 0,
            kind: RunKind::Baseline,
        };
        // Empty plan == no plan, bit for bit.
        assert_eq!(
            s.run_one_faulted(spec, &FaultPlan::none()),
            s.run_one(spec),
            "empty plan must be inert"
        );
        let topo = fault_topo(s.sim());
        let plans: Vec<FaultPlan> = (0..6)
            .map(|seed| FaultPlan::from_seed(seed, &topo, &FaultRates::moderate()))
            .collect();
        let par = s.run_fault_sweep(spec, &plans, 4);
        let seq = s.run_fault_sweep(spec, &plans, 1);
        assert_eq!(par, seq, "fault sweep diverged across job counts");
    }

    #[test]
    fn bounded_memo_evicts_lru_and_rebuilds_identically() {
        let memo: Memo<u32, u32> = Memo::new(Some(2));
        assert_eq!(*memo.get_or(1, || 10), 10);
        assert_eq!(*memo.get_or(2, || 20), 20);
        assert_eq!(*memo.get_or(1, || 10), 10); // refresh key 1
        assert_eq!(*memo.get_or(3, || 30), 30); // evicts key 2 (LRU)
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.evictions.load(Ordering::Relaxed), 1);
        // Key 2 was evicted: rebuilding is a miss but yields the same value.
        assert_eq!(*memo.get_or(2, || 20), 20);
        assert_eq!(memo.evictions.load(Ordering::Relaxed), 2);
        assert_eq!(memo.hits.load(Ordering::Relaxed), 1);
        assert_eq!(memo.misses.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn bounded_memo_is_safe_under_contention() {
        let memo: Memo<u64, u64> = Memo::new(Some(3));
        let keys: Vec<u64> = (0..64).map(|i| i % 9).collect();
        let out = parallel_map(&keys, 8, |&k| *memo.get_or(k, || k * k));
        for (k, v) in keys.iter().zip(out) {
            assert_eq!(v, k * k);
        }
        assert!(memo.len() <= 3 + 8, "cap plus in-flight slack exceeded");
    }

    #[test]
    fn bounded_suite_caches_match_unbounded_results() {
        let kinds = [RunKind::Baseline, RunKind::Optimized, RunKind::Optimal];
        let unbounded = suite2();
        let plain = unbounded.run_full(&kinds, 2);
        let sim = SimConfig::scaled();
        let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &sim.placement);
        let bounded = Suite::new(vec![swim(Scale::Test), mgrid(Scale::Test)], mapping, sim)
            .with_cache_caps(1, 1);
        let tight = bounded.run_full(&kinds, 2);
        for (a, b) in plain.iter().zip(&tight) {
            assert_eq!(a.stats, b.stats, "eviction changed a result");
        }
        let c = bounded.cache_counters();
        assert!(
            c.layout_evictions > 0 && c.trace_evictions > 0,
            "cap 1 across 2 apps x 2 layout classes must evict: {c:?}"
        );
    }

    #[test]
    fn record_json_is_the_unit_of_to_json() {
        let s = suite2();
        let recs = s.run_matrix(
            &[RunSpec {
                app: 0,
                kind: RunKind::Baseline,
            }],
            1,
        );
        let unit = record_json(&recs[0]);
        assert!(unit.starts_with('{') && unit.ends_with('}'));
        assert!(!unit.contains('\n'), "record_json must be single-line");
        assert!(to_json(&recs, None).contains(&unit));
    }

    #[test]
    fn record_json_adds_prefetch_block_only_when_prefetching_happened() {
        use hoploc_sim::{PrefetchConfig, PrefetchMode};
        let spec = [RunSpec {
            app: 0,
            kind: RunKind::Optimized,
        }];
        let off = suite2().run_matrix(&spec, 1);
        let off_json = record_json(&off[0]);
        assert!(
            !off_json.contains("prefetch"),
            "prefetch-off records must stay byte-identical to pre-prefetch \
             builds: {off_json}"
        );

        let mut sim = SimConfig::scaled();
        sim.prefetch = PrefetchConfig::with_mode(PrefetchMode::Gated);
        let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &sim.placement);
        let on = Suite::new(vec![swim(Scale::Test), mgrid(Scale::Test)], mapping, sim)
            .run_matrix(&spec, 1);
        let on_json = record_json(&on[0]);
        assert!(
            on_json.contains("\"prefetch\": {\"issued\": ")
                && on_json.contains("\"pred_accuracy\": "),
            "gated run must report its prefetch block: {on_json}"
        );
        assert!(!on_json.contains('\n'), "record stays single-line");
        assert!(on_json.ends_with("}}"));
    }

    #[test]
    fn parallel_map_keeps_item_order_at_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [0, 1, 3, 8, 200] {
            assert_eq!(
                parallel_map(&items, jobs, |&x| x * x),
                expect,
                "jobs={jobs}"
            );
        }
        assert!(parallel_map(&Vec::<u64>::new(), 4, |&x| x).is_empty());
    }
}
