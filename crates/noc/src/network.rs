//! The contention-aware mesh interconnect model.
//!
//! Messages traverse XY routes hop by hop. Every directed link serializes
//! the flits of each message crossing it, so two messages sharing a link at
//! the same time queue behind one another. This is the mechanism coupling
//! on-chip and off-chip traffic that the paper exploits: localizing
//! off-chip accesses frees link bandwidth, which also speeds up on-chip
//! (cache/coherence) traffic.

use crate::geometry::{Mesh, NodeId};
use hoploc_obs::{NetClass, ReqTag, Sink};
use std::fmt;

/// Classification of a message for statistics, mirroring the paper's
/// on-chip vs. off-chip latency breakdown.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrafficClass {
    /// Cache-to-cache / directory / L1→L2 traffic.
    OnChip,
    /// Traffic between an L2/core and a memory controller (either
    /// direction).
    OffChip,
}

/// Maximum number of hops tracked by the histogram (covers meshes up to
/// 16×16).
pub const MAX_HOPS: usize = 32;

/// Per-class accumulated network statistics.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ClassStats {
    /// Messages sent.
    pub messages: u64,
    /// Sum of end-to-end network latencies (cycles).
    pub total_latency: u64,
    /// Sum of hop counts.
    pub total_hops: u64,
    /// `hist[h]` counts messages that traversed exactly `h` links.
    pub hop_histogram: Vec<u64>,
}

impl ClassStats {
    fn new() -> Self {
        Self {
            hop_histogram: vec![0; MAX_HOPS],
            ..Default::default()
        }
    }

    /// Mean network latency in cycles (0 if no messages).
    pub fn avg_latency(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.messages as f64
        }
    }

    /// Mean hops per message (0 if no messages).
    pub fn avg_hops(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.messages as f64
        }
    }

    /// Cumulative distribution of hop counts: `cdf()[h]` is the fraction of
    /// messages that traversed `h` or fewer links (Figure 15).
    pub fn cdf(&self) -> Vec<f64> {
        let total = self.messages.max(1) as f64;
        let mut acc = 0u64;
        self.hop_histogram
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total
            })
            .collect()
    }
}

/// Network-wide statistics, split by [`TrafficClass`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NetStats {
    /// On-chip (cache / coherence) traffic.
    pub on_chip: ClassStats,
    /// Off-chip (to/from memory controllers) traffic.
    pub off_chip: ClassStats,
    /// Link traversals that crossed an active [`LinkFault`] window.
    pub fault_hops: u64,
    /// Total extra cycles charged by link-fault windows.
    pub fault_cycles: u64,
}

impl NetStats {
    fn new() -> Self {
        Self {
            on_chip: ClassStats::new(),
            off_chip: ClassStats::new(),
            ..Default::default()
        }
    }

    /// The stats bucket for a class.
    pub fn class(&self, class: TrafficClass) -> &ClassStats {
        match class {
            TrafficClass::OnChip => &self.on_chip,
            TrafficClass::OffChip => &self.off_chip,
        }
    }
}

/// Dimension-ordered routing variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Routing {
    /// X first, then Y (Table 1's XY routing).
    #[default]
    XY,
    /// Y first, then X — the other deadlock-free dimension order, exposed
    /// so experiments can check their conclusions are not artifacts of
    /// one route shape.
    YX,
}

/// Timing parameters of the interconnect (defaults match Table 1).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct NocConfig {
    /// Per-hop link traversal latency in cycles (Table 1: 4).
    pub hop_cycles: u64,
    /// Router pipeline depth in cycles (Table 1: 2).
    pub router_cycles: u64,
    /// Link width in bytes (Table 1: 16 B).
    pub link_bytes: u32,
    /// Whether links serialize competing messages. Disable for the
    /// contention-free ablation.
    pub contention: bool,
    /// Dimension order of the deterministic routes.
    pub routing: Routing,
}

impl Default for NocConfig {
    fn default() -> Self {
        Self {
            hop_cycles: 4,
            router_cycles: 2,
            link_bytes: 16,
            contention: true,
            routing: Routing::default(),
        }
    }
}

/// A window of degraded service on one directed link.
///
/// While `from <= cycle < until`, every message hop that departs on
/// `link` is charged `extra_cycles` of additional traversal latency, and
/// (under contention) holds the link that much longer — modelling a
/// marginal link that has dropped to a slower signalling rate or is
/// retransmitting at the physical layer. Link ids use the same
/// `node * 4 + direction` encoding as [`Network::link_utilization`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkFault {
    /// Directed link id (`node * 4 + direction`).
    pub link: u32,
    /// First cycle of the window (inclusive).
    pub from: u64,
    /// End of the window (exclusive).
    pub until: u64,
    /// Extra cycles per traversal while the window is active.
    pub extra_cycles: u64,
}

impl LinkFault {
    /// Whether the window is active at `cycle`.
    pub fn active_at(&self, cycle: u64) -> bool {
        self.from <= cycle && cycle < self.until
    }
}

/// The mesh interconnect with per-link occupancy tracking.
///
/// # Examples
///
/// ```
/// use hoploc_noc::{Mesh, Network, NocConfig, NodeId, TrafficClass};
///
/// let mut net = Network::new(Mesh::new(4, 4), NocConfig::default());
/// let arrival = net.send(NodeId(0), NodeId(15), 8, TrafficClass::OffChip, 100);
/// assert!(arrival > 100);
/// assert_eq!(net.stats().off_chip.messages, 1);
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    mesh: Mesh,
    config: NocConfig,
    /// `free_at[node * 4 + dir]`: cycle at which the directed link leaving
    /// `node` in direction `dir` becomes free.
    free_at: Vec<u64>,
    /// Flit-cycles consumed per directed link (utilization accounting).
    flit_cycles: Vec<u64>,
    /// Injected fault windows per directed link; empty when no fault plan
    /// is installed, in which case the send path is byte-identical to a
    /// fault-free network.
    faults: Vec<Vec<LinkFault>>,
    stats: NetStats,
}

/// Direction encoding for link ids.
const EAST: usize = 0;
const WEST: usize = 1;
const NORTH: usize = 2;
const SOUTH: usize = 3;

impl Network {
    /// Creates an idle network.
    pub fn new(mesh: Mesh, config: NocConfig) -> Self {
        Self {
            mesh,
            config,
            free_at: vec![0; mesh.num_nodes() * 4],
            flit_cycles: vec![0; mesh.num_nodes() * 4],
            faults: Vec::new(),
            stats: NetStats::new(),
        }
    }

    /// Installs link-fault windows. Passing an empty slice clears them and
    /// restores the exact fault-free timing path. Panics on a link id
    /// outside the mesh (plans are validated upstream; this is a backstop).
    pub fn set_link_faults(&mut self, faults: &[LinkFault]) {
        let links = self.mesh.num_nodes() * 4;
        if faults.is_empty() {
            self.faults = Vec::new();
            return;
        }
        let mut table = vec![Vec::new(); links];
        for f in faults {
            assert!(
                (f.link as usize) < links,
                "link fault on {} but mesh has {} directed links",
                f.link,
                links
            );
            table[f.link as usize].push(*f);
        }
        self.faults = table;
    }

    /// Sum of extra cycles from windows active on `link` at `cycle`.
    fn fault_extra(&self, link: usize, cycle: u64) -> u64 {
        self.faults[link]
            .iter()
            .filter(|f| f.active_at(cycle))
            .map(|f| f.extra_cycles)
            .sum()
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The timing configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets statistics (link state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::new();
    }

    /// Number of flits a payload of `bytes` occupies on a link.
    pub fn flits(&self, bytes: u32) -> u64 {
        (bytes as u64)
            .div_ceil(self.config.link_bytes as u64)
            .max(1)
    }

    /// Sends a message and returns its arrival cycle at `dst`.
    ///
    /// A message of `bytes` payload departs `src` at cycle `now`, traverses
    /// the XY route, and serializes on each directed link. Sending to self
    /// arrives immediately at `now`.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        class: TrafficClass,
        now: u64,
    ) -> u64 {
        self.send_obs(src, dst, bytes, class, now, ReqTag::NONE, &Sink::disabled())
    }

    /// [`send`](Self::send) with observability: per-hop link-wait/flit
    /// events attributed to `tag` and per-class message counters mirrored
    /// into `sink`. The untraced [`send`](Self::send) delegates here with a
    /// disabled sink, so traced and untraced runs share one timing path and
    /// the mirrored counters match [`stats`](Self::stats) by construction.
    #[allow(clippy::too_many_arguments)]
    pub fn send_obs(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        class: TrafficClass,
        now: u64,
        tag: ReqTag,
        sink: &Sink,
    ) -> u64 {
        let hops = self.mesh.hop_distance(src, dst) as usize;
        let flits = self.flits(bytes);
        let mut t = now;
        if hops > 0 {
            let route = match self.config.routing {
                Routing::XY => self.mesh.xy_route(src, dst),
                Routing::YX => self.mesh.yx_route(src, dst),
            };
            let mut from = src;
            for &next in &route {
                let link = self.link_id(from, next);
                self.flit_cycles[link] += flits;
                let depart = if self.config.contention {
                    t.max(self.free_at[link])
                } else {
                    t
                };
                // A fault window active at departure slows this traversal
                // and (under contention) occupies the link for the extra
                // cycles, so faults back-pressure later traffic too.
                let extra = if self.faults.is_empty() {
                    0
                } else {
                    self.fault_extra(link, depart)
                };
                if self.config.contention {
                    self.free_at[link] = depart + flits + extra;
                }
                sink.hop(link as u32, depart, depart - t, flits, tag);
                if extra > 0 {
                    self.stats.fault_hops += 1;
                    self.stats.fault_cycles += extra;
                    sink.link_fault(link as u32, depart, extra, tag);
                }
                // Wire + downstream router pipeline; the final hop still
                // pays the router to reach the ejection port.
                t = depart + extra + self.config.hop_cycles + self.config.router_cycles;
                from = next;
            }
        }
        let stats = match class {
            TrafficClass::OnChip => &mut self.stats.on_chip,
            TrafficClass::OffChip => &mut self.stats.off_chip,
        };
        stats.messages += 1;
        stats.total_latency += t - now;
        stats.total_hops += hops as u64;
        stats.hop_histogram[hops.min(MAX_HOPS - 1)] += 1;
        let obs_class = match class {
            TrafficClass::OnChip => NetClass::OnChip,
            TrafficClass::OffChip => NetClass::OffChip,
        };
        sink.net_msg(obs_class, hops, t - now, now);
        t
    }

    /// Utilization of every directed link over `elapsed` cycles: the
    /// fraction of cycles each link spent transmitting flits. Index is
    /// `node*4 + direction` (E, W, N, S). Quantifies the corner hotspots
    /// that bound localized configurations.
    pub fn link_utilization(&self, elapsed: u64) -> Vec<f64> {
        let e = elapsed.max(1) as f64;
        self.flit_cycles.iter().map(|&f| f as f64 / e).collect()
    }

    /// The most-utilized directed link over `elapsed` cycles, as
    /// `(node, direction, utilization)`.
    pub fn hottest_link(&self, elapsed: u64) -> (NodeId, usize, f64) {
        let util = self.link_utilization(elapsed);
        let (idx, &u) = util
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .expect("invariant: flit counts over elapsed.max(1) are finite, never NaN")
            })
            .map(|(i, _)| (i, &util[i]))
            .expect("invariant: a mesh has at least one node, hence four directed links");
        (NodeId((idx / 4) as u16), idx % 4, u)
    }

    /// Pure-distance latency of a message without mutating link state:
    /// what [`send`](Self::send) would return on an idle network.
    pub fn uncontended_latency(&self, src: NodeId, dst: NodeId) -> u64 {
        let hops = self.mesh.hop_distance(src, dst) as u64;
        hops * (self.config.hop_cycles + self.config.router_cycles)
    }

    fn link_id(&self, from: NodeId, to: NodeId) -> usize {
        let (fx, fy) = self.mesh.coords(from);
        let (tx, ty) = self.mesh.coords(to);
        let dir = if tx == fx + 1 && ty == fy {
            EAST
        } else if fx == tx + 1 && ty == fy {
            WEST
        } else if tx == fx && ty == fy + 1 {
            SOUTH
        } else if tx == fx && fy == ty + 1 {
            NORTH
        } else {
            panic!("link between non-adjacent nodes {from} -> {to}");
        };
        from.0 as usize * 4 + dir
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} mesh, on-chip: {} msgs avg {:.1}cy, off-chip: {} msgs avg {:.1}cy",
            self.mesh.width(),
            self.mesh.height(),
            self.stats.on_chip.messages,
            self.stats.on_chip.avg_latency(),
            self.stats.off_chip.messages,
            self.stats.off_chip.avg_latency(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net4() -> Network {
        Network::new(Mesh::new(4, 4), NocConfig::default())
    }

    #[test]
    fn idle_latency_is_hops_times_cost() {
        let mut net = net4();
        // 0 -> 3 is 3 hops; each hop costs 4 + 2 cycles.
        let arrival = net.send(NodeId(0), NodeId(3), 8, TrafficClass::OnChip, 0);
        assert_eq!(arrival, 3 * 6);
        assert_eq!(net.uncontended_latency(NodeId(0), NodeId(3)), 18);
    }

    #[test]
    fn self_send_is_free() {
        let mut net = net4();
        assert_eq!(
            net.send(NodeId(5), NodeId(5), 64, TrafficClass::OnChip, 42),
            42
        );
        assert_eq!(net.stats().on_chip.hop_histogram[0], 1);
    }

    #[test]
    fn contention_delays_second_message() {
        let mut net = net4();
        // Two large messages over the same first link at the same time.
        let a = net.send(NodeId(0), NodeId(3), 256, TrafficClass::OffChip, 0);
        let b = net.send(NodeId(0), NodeId(3), 256, TrafficClass::OffChip, 0);
        assert!(b > a, "second message must queue behind the first");
    }

    #[test]
    fn disjoint_routes_do_not_interfere() {
        let mut net = net4();
        let a = net.send(NodeId(0), NodeId(1), 256, TrafficClass::OnChip, 0);
        let b = net.send(NodeId(14), NodeId(15), 256, TrafficClass::OnChip, 0);
        assert_eq!(a, b, "disjoint messages see identical latency");
    }

    #[test]
    fn contention_off_is_pure_distance() {
        let mut net = Network::new(
            Mesh::new(4, 4),
            NocConfig {
                contention: false,
                ..NocConfig::default()
            },
        );
        let a = net.send(NodeId(0), NodeId(3), 256, TrafficClass::OffChip, 0);
        let b = net.send(NodeId(0), NodeId(3), 256, TrafficClass::OffChip, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn stats_split_by_class() {
        let mut net = net4();
        net.send(NodeId(0), NodeId(1), 8, TrafficClass::OnChip, 0);
        net.send(NodeId(0), NodeId(2), 8, TrafficClass::OffChip, 0);
        net.send(NodeId(0), NodeId(3), 8, TrafficClass::OffChip, 0);
        assert_eq!(net.stats().on_chip.messages, 1);
        assert_eq!(net.stats().off_chip.messages, 2);
        assert_eq!(net.stats().off_chip.total_hops, 5);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let mut net = net4();
        for d in 0..4u16 {
            net.send(NodeId(0), NodeId(d), 8, TrafficClass::OffChip, 0);
        }
        let cdf = net.stats().off_chip.cdf();
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((cdf[MAX_HOPS - 1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn yx_routing_changes_route_not_distance() {
        let mesh = Mesh::new(4, 4);
        let mut xy = Network::new(mesh, NocConfig::default());
        let mut yx = Network::new(
            mesh,
            NocConfig {
                routing: Routing::YX,
                ..NocConfig::default()
            },
        );
        let a = xy.send(NodeId(1), NodeId(14), 8, TrafficClass::OnChip, 0);
        let b = yx.send(NodeId(1), NodeId(14), 8, TrafficClass::OnChip, 0);
        assert_eq!(a, b, "idle latency is route-shape independent");
        assert_eq!(xy.stats().on_chip.total_hops, yx.stats().on_chip.total_hops);
    }

    #[test]
    fn link_utilization_tracks_flit_cycles() {
        let mut net = net4();
        // 256B over the single 0->1 link: 16 flits.
        net.send(NodeId(0), NodeId(1), 256, TrafficClass::OffChip, 0);
        let util = net.link_utilization(160);
        let east0 = util[0]; // node 0, EAST
        assert!(
            (east0 - 0.1).abs() < 1e-9,
            "16 flit-cycles / 160 = 0.1, got {east0}"
        );
        let (node, _, u) = net.hottest_link(160);
        assert_eq!(node, NodeId(0));
        assert!((u - 0.1).abs() < 1e-9);
    }

    #[test]
    fn flit_count_rounds_up() {
        let net = net4();
        assert_eq!(net.flits(8), 1);
        assert_eq!(net.flits(16), 1);
        assert_eq!(net.flits(17), 2);
        assert_eq!(net.flits(256), 16);
    }

    #[test]
    fn send_obs_mirrors_stats_into_sink() {
        use hoploc_obs::{ObsConfig, Topology};
        let mut net = net4();
        let topo = Topology {
            mesh_width: 4,
            mesh_height: 4,
            mcs: 1,
            banks_per_mc: 1,
        };
        let sink = Sink::recording(topo, ObsConfig::default());
        for d in [3u16, 12, 15, 0] {
            net.send_obs(
                NodeId(0),
                NodeId(d),
                64,
                TrafficClass::OffChip,
                5,
                ReqTag::NONE,
                &sink,
            );
        }
        net.send_obs(
            NodeId(1),
            NodeId(2),
            8,
            TrafficClass::OnChip,
            0,
            ReqTag::NONE,
            &sink,
        );
        let rep = sink.into_report(1000).unwrap();
        let s = net.stats();
        assert_eq!(rep.counter("net.offchip.msgs"), s.off_chip.messages);
        assert_eq!(
            rep.counter("net.offchip.latency_cycles"),
            s.off_chip.total_latency
        );
        assert_eq!(rep.counter("net.offchip.hops"), s.off_chip.total_hops);
        assert_eq!(
            rep.hop_histogram("offchip"),
            s.off_chip.hop_histogram.as_slice()
        );
        assert_eq!(rep.counter("net.onchip.msgs"), s.on_chip.messages);
        assert_eq!(
            rep.hop_histogram("onchip"),
            s.on_chip.hop_histogram.as_slice()
        );
        // Link flit-cycle counters mirror the utilization accounting.
        let flits = rep.counter_family("net.link.flit_cycles");
        let util = net.link_utilization(1000);
        for (link, &u) in util.iter().enumerate() {
            assert!((u - flits[link] as f64 / 1000.0).abs() < 1e-12);
        }
    }

    #[test]
    fn link_fault_window_adds_latency_and_backpressure() {
        let mut clean = net4();
        let base = clean.send(NodeId(0), NodeId(3), 8, TrafficClass::OffChip, 0);
        let mut faulty = net4();
        faulty.set_link_faults(&[LinkFault {
            link: 0, // node 0, EAST: the first hop of 0 -> 3
            from: 0,
            until: 1_000,
            extra_cycles: 7,
        }]);
        let a = faulty.send(NodeId(0), NodeId(3), 8, TrafficClass::OffChip, 0);
        assert_eq!(a, base + 7, "one faulted hop adds exactly its extra cycles");
        assert_eq!(faulty.stats().fault_hops, 1);
        assert_eq!(faulty.stats().fault_cycles, 7);
        // Outside the window the link is healthy again.
        let b = faulty.send(NodeId(0), NodeId(3), 8, TrafficClass::OffChip, 2_000);
        assert_eq!(b - 2_000, base);
        assert_eq!(faulty.stats().fault_hops, 1);
    }

    #[test]
    fn faulted_link_backpressures_followers() {
        // The extra cycles extend link occupancy, so a message right behind
        // the faulted one queues longer than under a clean link.
        let mut clean = net4();
        clean.send(NodeId(0), NodeId(1), 256, TrafficClass::OffChip, 0);
        let clean_follow = clean.send(NodeId(0), NodeId(1), 8, TrafficClass::OnChip, 0);
        let mut faulty = net4();
        faulty.set_link_faults(&[LinkFault {
            link: 0,
            from: 0,
            until: 10,
            extra_cycles: 50,
        }]);
        faulty.send(NodeId(0), NodeId(1), 256, TrafficClass::OffChip, 0);
        let faulty_follow = faulty.send(NodeId(0), NodeId(1), 8, TrafficClass::OnChip, 0);
        // The follower departs after the window closed, so it pays no extra
        // itself — only the inherited occupancy delay.
        assert_eq!(faulty_follow, clean_follow + 50);
        assert_eq!(faulty.stats().fault_hops, 1);
    }

    #[test]
    fn empty_fault_set_is_inert() {
        let mut clean = net4();
        let mut cleared = net4();
        cleared.set_link_faults(&[LinkFault {
            link: 0,
            from: 0,
            until: u64::MAX,
            extra_cycles: 99,
        }]);
        cleared.set_link_faults(&[]);
        for d in [3u16, 12, 15, 0, 7] {
            let a = clean.send(NodeId(0), NodeId(d), 64, TrafficClass::OffChip, 5);
            let b = cleared.send(NodeId(0), NodeId(d), 64, TrafficClass::OffChip, 5);
            assert_eq!(a, b);
        }
        assert_eq!(clean.stats(), cleared.stats());
        assert_eq!(clean.stats().fault_cycles, 0);
    }

    #[test]
    #[should_panic(expected = "directed links")]
    fn out_of_range_link_fault_panics() {
        net4().set_link_faults(&[LinkFault {
            link: 4 * 4 * 4, // one past the last directed link of a 4x4 mesh
            from: 0,
            until: 1,
            extra_cycles: 1,
        }]);
    }

    #[test]
    fn big_messages_slower_than_small_under_load() {
        let mut net = net4();
        // Saturate a link with many data messages, then measure a control
        // message's latency; it must exceed the idle latency.
        for _ in 0..10 {
            net.send(NodeId(0), NodeId(3), 256, TrafficClass::OffChip, 0);
        }
        let arrival = net.send(NodeId(0), NodeId(3), 8, TrafficClass::OnChip, 0);
        assert!(arrival > net.uncontended_latency(NodeId(0), NodeId(3)));
    }
}
