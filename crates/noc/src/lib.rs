//! # hoploc-noc
//!
//! A cycle-approximate two-dimensional mesh network-on-chip model with XY
//! routing, per-link contention, and the cluster/memory-controller geometry
//! vocabulary of *Optimizing Off-Chip Accesses in Multicores* (PLDI 2015).
//!
//! The crate provides:
//!
//! * [`Mesh`], [`NodeId`], [`McId`] — geometry, Manhattan distances, XY
//!   routes, and the paper's MC placements P1/P2/P3 plus the 8- and 16-MC
//!   configurations ([`McPlacement`]);
//! * [`L2ToMcMapping`] — validated cluster → memory-controller mappings,
//!   including the paper's M1 (quadrants, `k = 1`) and M2 (halves,
//!   `k = 2`) examples, with the distance / MLP metrics used by the
//!   compiler's mapping-selection analysis;
//! * [`Placement`] — MC attach coordinates *plus* a validated cluster
//!   map as one value, consistent by construction, so design-space
//!   search, the estimator, and the simulator provably agree on
//!   geometry;
//! * [`Network`] — the contention model: messages serialize per directed
//!   link, so off-chip and on-chip traffic interfere exactly as the paper
//!   describes, with per-class latency and hop-histogram statistics
//!   ([`NetStats`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cluster;
mod geometry;
mod network;
mod placement;

pub use cluster::{ClusterId, L2ToMcMapping, MappingError};
pub use geometry::{McId, McPlacement, Mesh, NodeId};
pub use network::{
    ClassStats, LinkFault, NetStats, Network, NocConfig, Routing, TrafficClass, MAX_HOPS,
};
pub use placement::Placement;
