//! A unified placement: MC attach coordinates plus the L2-to-MC cluster
//! map, kept consistent by construction.
//!
//! Historically each layer carried its own half of the geometry: the
//! simulator takes an [`McPlacement`] in its config *and* an
//! [`L2ToMcMapping`] at construction, and asserts at runtime that
//! `mapping.mc_nodes() == placement.attach_nodes(&mesh)`. Code that
//! builds candidate designs (the `hoploc-search` optimizer, the serve
//! engine, the CLI) had to re-derive both halves and hope they agreed.
//!
//! [`Placement`] packages the pair and guarantees the invariant: the
//! wrapped mapping's MC nodes *are* the attach nodes of the wrapped
//! [`McPlacement`], always. Every constructor either derives one half
//! from the other or validates the pair, so a `Placement` can be split
//! into a simulator config + mapping without any possibility of the
//! runtime assertion firing.

use crate::cluster::{L2ToMcMapping, MappingError};
use crate::geometry::{McId, McPlacement, Mesh, NodeId};

/// MC attach nodes and the L2-to-MC cluster map, consistent by
/// construction (see module docs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Placement {
    mc_placement: McPlacement,
    mapping: L2ToMcMapping,
}

impl Placement {
    /// The paper's M1 mapping over a named placement: nearest-cluster
    /// grid, one distinct MC per cluster.
    ///
    /// # Panics
    ///
    /// Panics if the MC count is not 4, 8, or 16 (the grids
    /// [`L2ToMcMapping::nearest_cluster`] supports).
    pub fn nearest(mesh: Mesh, mc_placement: &McPlacement) -> Self {
        let mapping = L2ToMcMapping::nearest_cluster(mesh, mc_placement);
        Self {
            mc_placement: mc_placement.clone(),
            mapping,
        }
    }

    /// The paper's M2 mapping over a placement: two half-mesh clusters
    /// with two MCs each.
    ///
    /// # Panics
    ///
    /// Panics if the placement does not have exactly 4 MCs split 2+2
    /// across the mesh midline.
    pub fn halves(mesh: Mesh, mc_placement: &McPlacement) -> Self {
        let mapping = L2ToMcMapping::halves(mesh, mc_placement);
        Self {
            mc_placement: mc_placement.clone(),
            mapping,
        }
    }

    /// A fully custom placement: explicit MC attach nodes, cluster
    /// tiling, and per-cluster MC assignments.
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] if two MCs share an attach node, a
    /// node is outside the mesh, or the mapping violates the paper's
    /// validity constraints (uneven tiling, unequal per-cluster MC
    /// counts, unknown ids, empty assignments).
    pub fn custom(
        mesh: Mesh,
        mc_nodes: Vec<NodeId>,
        cluster_w: u16,
        cluster_h: u16,
        assignments: Vec<Vec<McId>>,
    ) -> Result<Self, MappingError> {
        for (i, &a) in mc_nodes.iter().enumerate() {
            if a.0 as usize >= mesh.num_nodes() {
                return Err(MappingError::UnknownMc(McId(i as u16)));
            }
            if mc_nodes[..i].contains(&a) {
                return Err(MappingError::DuplicateMcNode(a));
            }
        }
        let mapping =
            L2ToMcMapping::new(mesh, cluster_w, cluster_h, mc_nodes.clone(), assignments)?;
        Ok(Self {
            mc_placement: McPlacement::Custom(mc_nodes),
            mapping,
        })
    }

    /// The [`McPlacement`] half, suitable for a simulator config. Its
    /// `attach_nodes` equal [`Self::mapping`]'s `mc_nodes` by
    /// construction.
    pub fn mc_placement(&self) -> &McPlacement {
        &self.mc_placement
    }

    /// The L2-to-MC mapping half.
    pub fn mapping(&self) -> &L2ToMcMapping {
        &self.mapping
    }

    /// Consumes the placement, yielding the mapping.
    pub fn into_mapping(self) -> L2ToMcMapping {
        self.mapping
    }

    /// The mesh both halves are defined over.
    pub fn mesh(&self) -> &Mesh {
        self.mapping.mesh()
    }

    /// MC attach nodes, indexed by [`McId`].
    pub fn mc_nodes(&self) -> &[NodeId] {
        self.mapping.mc_nodes()
    }

    /// Average hop distance from a core to the MCs serving its cluster
    /// (the compiler's mapping-selection metric, §4).
    pub fn avg_distance_to_mc(&self) -> f64 {
        self.mapping.avg_distance_to_mc()
    }

    /// A stable one-line canonical form: `mcs=a+b+..;tile=WxH;assign=
    /// 0|1|..` where each `assign` group lists the MC ids of one cluster
    /// joined by `+`. Two placements are geometrically identical iff
    /// their canonical forms are byte-equal.
    pub fn canon(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("mcs=");
        for (i, n) in self.mc_nodes().iter().enumerate() {
            if i > 0 {
                s.push('+');
            }
            let _ = write!(s, "{}", n.0);
        }
        let _ = write!(
            s,
            ";tile={}x{};assign=",
            self.mapping.cores_x(),
            self.mapping.cores_y()
        );
        for c in 0..self.mapping.num_clusters() {
            if c > 0 {
                s.push('|');
            }
            for (i, mc) in self
                .mapping
                .cluster_mcs(crate::cluster::ClusterId(c as u16))
                .iter()
                .enumerate()
            {
                if i > 0 {
                    s.push('+');
                }
                let _ = write!(s, "{}", mc.0);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn nearest_upholds_machine_invariant() {
        let p = Placement::nearest(mesh8(), &McPlacement::Corners);
        assert_eq!(
            p.mapping().mc_nodes(),
            p.mc_placement().attach_nodes(&mesh8())
        );
    }

    #[test]
    fn custom_upholds_machine_invariant() {
        let nodes = vec![NodeId(18), NodeId(21), NodeId(42), NodeId(45)];
        let p = Placement::custom(
            mesh8(),
            nodes.clone(),
            4,
            4,
            vec![vec![McId(0)], vec![McId(1)], vec![McId(2)], vec![McId(3)]],
        )
        .unwrap();
        assert_eq!(p.mc_placement().attach_nodes(&mesh8()), nodes);
        assert_eq!(p.mapping().mc_nodes(), nodes);
    }

    #[test]
    fn custom_rejects_duplicate_attach_node() {
        let err = Placement::custom(
            mesh8(),
            vec![NodeId(0), NodeId(0), NodeId(7), NodeId(56)],
            4,
            4,
            vec![vec![McId(0)], vec![McId(1)], vec![McId(2)], vec![McId(3)]],
        )
        .unwrap_err();
        assert_eq!(err, MappingError::DuplicateMcNode(NodeId(0)));
    }

    #[test]
    fn custom_rejects_out_of_mesh_node() {
        let err = Placement::custom(
            mesh8(),
            vec![NodeId(0), NodeId(64)],
            4,
            8,
            vec![vec![McId(0)], vec![McId(1)]],
        )
        .unwrap_err();
        assert_eq!(err, MappingError::UnknownMc(McId(1)));
    }

    #[test]
    fn custom_propagates_mapping_errors() {
        let err = Placement::custom(
            mesh8(),
            vec![NodeId(0), NodeId(7)],
            3,
            8,
            vec![vec![McId(0)], vec![McId(1)]],
        )
        .unwrap_err();
        assert_eq!(err, MappingError::UnevenTiling { axis: 'x' });
    }

    #[test]
    fn canon_is_stable_and_discriminating() {
        let a = Placement::nearest(mesh8(), &McPlacement::Corners);
        assert_eq!(a.canon(), "mcs=0+7+56+63;tile=4x4;assign=0|1|2|3");
        let b = Placement::halves(mesh8(), &McPlacement::Corners);
        assert_eq!(b.canon(), "mcs=0+7+56+63;tile=4x8;assign=0+2|1+3");
        assert_ne!(a.canon(), b.canon());
    }

    #[test]
    fn shared_mcs_across_clusters_are_legal() {
        // Validity (§4) requires equal per-cluster MC counts, not that
        // every MC is used exactly once — search moves rely on this.
        let p = Placement::custom(
            mesh8(),
            vec![NodeId(0), NodeId(7), NodeId(56), NodeId(63)],
            4,
            4,
            vec![vec![McId(0)], vec![McId(0)], vec![McId(3)], vec![McId(3)]],
        )
        .unwrap();
        assert_eq!(p.mapping().num_clusters(), 4);
    }
}
