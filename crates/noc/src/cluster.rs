//! L2-to-MC mappings: clusters of cores and their assigned memory
//! controllers (§4 of the paper, Figure 8).
//!
//! A *valid* mapping tiles the mesh into equal rectangular clusters and
//! assigns every cluster the same number `k` of memory controllers. The
//! paper's two running examples are:
//!
//! * **M1** (Figure 8a): four quadrant clusters, each bound to its nearest
//!   corner MC (`k = 1`) — best locality;
//! * **M2** (Figure 8b): two half-mesh clusters, each bound to the two MCs
//!   on its side (`k = 2`) — better memory-level parallelism.

use crate::geometry::{McId, McPlacement, Mesh, NodeId};
use std::fmt;

/// Identifies a cluster within an [`L2ToMcMapping`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClusterId(pub u16);

/// Error produced when an L2-to-MC mapping violates the paper's validity
/// constraints.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MappingError {
    /// Cluster dimensions do not evenly tile the mesh.
    UnevenTiling {
        /// Mesh dimension that failed to divide.
        axis: char,
    },
    /// Clusters are assigned differing numbers of MCs.
    UnequalMcCounts,
    /// An assignment refers to an MC id that does not exist.
    UnknownMc(McId),
    /// The number of cluster assignments differs from the cluster count.
    WrongClusterCount {
        /// Number of assignment entries provided.
        got: usize,
        /// Number of clusters the tiling produces.
        expected: usize,
    },
    /// A cluster was assigned no MCs.
    EmptyAssignment(ClusterId),
    /// Two memory controllers attach to the same mesh node.
    DuplicateMcNode(NodeId),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::UnevenTiling { axis } => {
                write!(f, "cluster size does not divide the mesh along {axis}")
            }
            MappingError::UnequalMcCounts => {
                write!(f, "all clusters must be assigned the same number of MCs")
            }
            MappingError::UnknownMc(mc) => write!(f, "assignment references unknown {mc}"),
            MappingError::WrongClusterCount { got, expected } => {
                write!(f, "expected {expected} cluster assignments, got {got}")
            }
            MappingError::EmptyAssignment(c) => {
                write!(f, "cluster {} has no assigned MC", c.0)
            }
            MappingError::DuplicateMcNode(n) => {
                write!(f, "two memory controllers attach to node {}", n.0)
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// An L2-to-MC mapping: the user-provided input of the layout pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct L2ToMcMapping {
    mesh: Mesh,
    cluster_w: u16,
    cluster_h: u16,
    mc_nodes: Vec<NodeId>,
    assignments: Vec<Vec<McId>>,
}

impl L2ToMcMapping {
    /// Creates a mapping from cluster dimensions and per-cluster MC
    /// assignments.
    ///
    /// Clusters tile the mesh row-major: cluster `(cx, cy)` covers nodes
    /// with `x in [cx*cluster_w, (cx+1)*cluster_w)` etc. `assignments[c]`
    /// lists the MCs serving cluster `c` (round-robin across them for
    /// consecutive data chunks, per §5.3).
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] if the tiling is uneven, assignment counts
    /// differ (the paper's two validity constraints), or ids are invalid.
    pub fn new(
        mesh: Mesh,
        cluster_w: u16,
        cluster_h: u16,
        mc_nodes: Vec<NodeId>,
        assignments: Vec<Vec<McId>>,
    ) -> Result<Self, MappingError> {
        if cluster_w == 0 || !mesh.width().is_multiple_of(cluster_w) {
            return Err(MappingError::UnevenTiling { axis: 'x' });
        }
        if cluster_h == 0 || !mesh.height().is_multiple_of(cluster_h) {
            return Err(MappingError::UnevenTiling { axis: 'y' });
        }
        let n_clusters = (mesh.width() / cluster_w) as usize * (mesh.height() / cluster_h) as usize;
        if assignments.len() != n_clusters {
            return Err(MappingError::WrongClusterCount {
                got: assignments.len(),
                expected: n_clusters,
            });
        }
        let k = assignments[0].len();
        for (c, a) in assignments.iter().enumerate() {
            if a.is_empty() {
                return Err(MappingError::EmptyAssignment(ClusterId(c as u16)));
            }
            if a.len() != k {
                return Err(MappingError::UnequalMcCounts);
            }
            for &mc in a {
                if mc.0 as usize >= mc_nodes.len() {
                    return Err(MappingError::UnknownMc(mc));
                }
            }
        }
        Ok(Self {
            mesh,
            cluster_w,
            cluster_h,
            mc_nodes,
            assignments,
        })
    }

    /// The paper's default mapping **M1**: each cluster is the quadrant (or
    /// general grid cell) nearest to one MC, with exactly one MC per
    /// cluster. Works for any placement whose MC count tiles the mesh into
    /// a grid (4 → 2×2, 8 → 4×2, 16 → 4×4).
    ///
    /// Each grid cell is assigned the MC whose attach node is nearest to
    /// the cell centre.
    ///
    /// # Panics
    ///
    /// Panics if the MC count is not 4, 8, or 16, or the mesh cannot be
    /// tiled accordingly.
    pub fn nearest_cluster(mesh: Mesh, placement: &McPlacement) -> Self {
        let mc_nodes = placement.attach_nodes(&mesh);
        let (gx, gy) = match mc_nodes.len() {
            4 => (2u16, 2u16),
            8 => (4, 2),
            16 => (4, 4),
            n => panic!("unsupported MC count {n} for nearest_cluster"),
        };
        assert!(
            mesh.width().is_multiple_of(gx) && mesh.height().is_multiple_of(gy),
            "mesh does not tile into {gx}x{gy} clusters"
        );
        let cw = mesh.width() / gx;
        let ch = mesh.height() / gy;
        let mut assignments = Vec::with_capacity((gx * gy) as usize);
        let mut used = vec![false; mc_nodes.len()];
        for cy in 0..gy {
            for cx in 0..gx {
                // Cluster centre in node coordinates (doubled to stay integral).
                let cen_x2 = 2 * cx * cw + cw - 1;
                let cen_y2 = 2 * cy * ch + ch - 1;
                // Nearest unused MC to the centre; break ties by id. Using
                // each MC exactly once keeps load balanced (paper M1).
                let (best, _) = mc_nodes
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !used[*i])
                    .map(|(i, &n)| {
                        let (x, y) = mesh.coords(n);
                        let d = (2 * x).abs_diff(cen_x2) + (2 * y).abs_diff(cen_y2);
                        (i, d)
                    })
                    .min_by_key(|&(i, d)| (d, i))
                    .expect(
                        "invariant: the loop assigns one MC per cluster and there are \
                         exactly as many clusters as MCs, so an unused MC remains",
                    );
                used[best] = true;
                assignments.push(vec![McId(best as u16)]);
            }
        }
        Self::new(mesh, cw, ch, mc_nodes, assignments).expect(
            "invariant: the tiling was asserted even and the loop assigned one \
                 distinct in-range MC per cluster, satisfying every Self::new check",
        )
    }

    /// The paper's alternate mapping **M2** (Figure 8b): two half-mesh
    /// clusters (left / right), each assigned the two MCs on its side
    /// (`k = 2`), trading locality for memory-level parallelism.
    ///
    /// # Panics
    ///
    /// Panics if the placement does not have exactly 4 MCs or the mesh
    /// width is odd.
    pub fn halves(mesh: Mesh, placement: &McPlacement) -> Self {
        let mc_nodes = placement.attach_nodes(&mesh);
        assert_eq!(mc_nodes.len(), 4, "halves mapping requires 4 MCs");
        assert_eq!(
            mesh.width() % 2,
            0,
            "halves mapping requires even mesh width"
        );
        let cw = mesh.width() / 2;
        // Sort MCs into left / right of the mesh midline.
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (i, &n) in mc_nodes.iter().enumerate() {
            let (x, _) = mesh.coords(n);
            if x < cw {
                left.push(McId(i as u16));
            } else {
                right.push(McId(i as u16));
            }
        }
        assert_eq!(left.len(), 2, "placement must put two MCs on each side");
        Self::new(mesh, cw, mesh.height(), mc_nodes, vec![left, right]).expect(
            "invariant: the asserted 2+2 left/right split gives both clusters \
                 equal non-empty in-range MC sets, satisfying every Self::new check",
        )
    }

    /// The mesh this mapping is defined over.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Cluster grid width `c_x` (clusters along X).
    pub fn clusters_x(&self) -> u16 {
        self.mesh.width() / self.cluster_w
    }

    /// Cluster grid height `c_y` (clusters along Y).
    pub fn clusters_y(&self) -> u16 {
        self.mesh.height() / self.cluster_h
    }

    /// Cores per cluster along X (`n_x`).
    pub fn cores_x(&self) -> u16 {
        self.cluster_w
    }

    /// Cores per cluster along Y (`n_y`).
    pub fn cores_y(&self) -> u16 {
        self.cluster_h
    }

    /// Total number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.assignments.len()
    }

    /// Cores per cluster.
    pub fn cores_per_cluster(&self) -> usize {
        self.cluster_w as usize * self.cluster_h as usize
    }

    /// MCs assigned to each cluster (`k` of §5.3).
    pub fn mcs_per_cluster(&self) -> usize {
        self.assignments[0].len()
    }

    /// Number of memory controllers.
    pub fn num_mcs(&self) -> usize {
        self.mc_nodes.len()
    }

    /// Attachment node of a memory controller.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn mc_node(&self, mc: McId) -> NodeId {
        self.mc_nodes[mc.0 as usize]
    }

    /// All MC attachment nodes, indexed by [`McId`].
    pub fn mc_nodes(&self) -> &[NodeId] {
        &self.mc_nodes
    }

    /// The cluster containing a node.
    pub fn cluster_of(&self, n: NodeId) -> ClusterId {
        let (x, y) = self.mesh.coords(n);
        let cx = x / self.cluster_w;
        let cy = y / self.cluster_h;
        ClusterId(cy * self.clusters_x() + cx)
    }

    /// The MCs serving a cluster.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cluster_mcs(&self, c: ClusterId) -> &[McId] {
        &self.assignments[c.0 as usize]
    }

    /// The MCs serving the cluster of a node.
    pub fn mcs_of_node(&self, n: NodeId) -> &[McId] {
        self.cluster_mcs(self.cluster_of(n))
    }

    /// The MC nearest to a node (used by the *optimal scheme* of §2 and by
    /// first-touch style policies).
    pub fn nearest_mc(&self, n: NodeId) -> McId {
        let (best, _) = self
            .mc_nodes
            .iter()
            .enumerate()
            .map(|(i, &m)| (i, self.mesh.hop_distance(n, m)))
            .min_by_key(|&(i, d)| (d, i))
            .expect("invariant: Self::new rejects mappings with an empty MC set");
        McId(best as u16)
    }

    /// Average hop distance from a node to the MCs serving its cluster —
    /// the *distance-to-MC* metric of the compiler's mapping-selection
    /// analysis (§4, final paragraph).
    pub fn avg_distance_to_mc(&self) -> f64 {
        let mut total = 0u64;
        let mut count = 0u64;
        for n in self.mesh.nodes() {
            for &mc in self.mcs_of_node(n) {
                total += self.mesh.hop_distance(n, self.mc_node(mc)) as u64;
                count += 1;
            }
        }
        total as f64 / count as f64
    }

    /// Memory-level-parallelism metric: how many MCs serve each cluster.
    pub fn mlp_degree(&self) -> usize {
        self.mcs_per_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn m1_has_four_singleton_clusters() {
        let m1 = L2ToMcMapping::nearest_cluster(mesh8(), &McPlacement::Corners);
        assert_eq!(m1.num_clusters(), 4);
        assert_eq!(m1.mcs_per_cluster(), 1);
        assert_eq!(m1.cores_per_cluster(), 16);
        // Top-left quadrant maps to the top-left corner MC (MC id 0 at node 0).
        assert_eq!(m1.cluster_mcs(m1.cluster_of(NodeId(0))), &[McId(0)]);
        // Bottom-right quadrant maps to node 63's MC.
        assert_eq!(
            m1.mc_node(m1.cluster_mcs(m1.cluster_of(NodeId(63)))[0]),
            NodeId(63)
        );
    }

    #[test]
    fn m1_clusters_use_distinct_mcs() {
        let m1 = L2ToMcMapping::nearest_cluster(mesh8(), &McPlacement::Corners);
        let mut seen: Vec<McId> = (0..4).map(|c| m1.cluster_mcs(ClusterId(c))[0]).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn m2_has_two_clusters_with_two_mcs() {
        let m2 = L2ToMcMapping::halves(mesh8(), &McPlacement::Corners);
        assert_eq!(m2.num_clusters(), 2);
        assert_eq!(m2.mcs_per_cluster(), 2);
        assert_eq!(m2.cores_per_cluster(), 32);
        // Left half nodes see the two left corners.
        let left = m2.mcs_of_node(NodeId(0));
        for &mc in left {
            let (x, _) = mesh8().coords(m2.mc_node(mc));
            assert!(x < 4);
        }
    }

    #[test]
    fn m1_beats_m2_on_distance_m2_beats_m1_on_mlp() {
        // The locality-vs-parallelism tradeoff of §4.
        let m1 = L2ToMcMapping::nearest_cluster(mesh8(), &McPlacement::Corners);
        let m2 = L2ToMcMapping::halves(mesh8(), &McPlacement::Corners);
        assert!(m1.avg_distance_to_mc() < m2.avg_distance_to_mc());
        assert!(m2.mlp_degree() > m1.mlp_degree());
    }

    #[test]
    fn invalid_tiling_rejected() {
        let err = L2ToMcMapping::new(Mesh::new(8, 8), 3, 4, vec![NodeId(0)], vec![vec![McId(0)]])
            .unwrap_err();
        assert_eq!(err, MappingError::UnevenTiling { axis: 'x' });
    }

    #[test]
    fn unequal_mc_counts_rejected() {
        let err = L2ToMcMapping::new(
            Mesh::new(8, 8),
            4,
            8,
            vec![NodeId(0), NodeId(7)],
            vec![vec![McId(0)], vec![McId(0), McId(1)]],
        )
        .unwrap_err();
        assert_eq!(err, MappingError::UnequalMcCounts);
    }

    #[test]
    fn unknown_mc_rejected() {
        let err = L2ToMcMapping::new(
            Mesh::new(8, 8),
            4,
            8,
            vec![NodeId(0)],
            vec![vec![McId(0)], vec![McId(9)]],
        )
        .unwrap_err();
        assert_eq!(err, MappingError::UnknownMc(McId(9)));
    }

    #[test]
    fn nearest_mc_is_closest() {
        let m1 = L2ToMcMapping::nearest_cluster(mesh8(), &McPlacement::Corners);
        let mesh = mesh8();
        for n in mesh.nodes() {
            let nearest = m1.nearest_mc(n);
            let d = mesh.hop_distance(n, m1.mc_node(nearest));
            for mc in 0..4 {
                assert!(d <= mesh.hop_distance(n, m1.mc_node(McId(mc))));
            }
        }
    }

    #[test]
    fn eight_mc_nearest_cluster_valid() {
        let m = L2ToMcMapping::nearest_cluster(mesh8(), &McPlacement::Eight);
        assert_eq!(m.num_clusters(), 8);
        assert_eq!(m.mcs_per_cluster(), 1);
    }

    #[test]
    fn sixteen_mc_nearest_cluster_valid() {
        let m = L2ToMcMapping::nearest_cluster(mesh8(), &McPlacement::Sixteen);
        assert_eq!(m.num_clusters(), 16);
        assert_eq!(m.cores_per_cluster(), 4);
    }
}
