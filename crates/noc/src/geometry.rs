//! Mesh geometry: nodes, coordinates, hop distances, and XY routes.

use std::fmt;

/// Identifies a node (core + router + local cache slice) in the mesh.
///
/// Node ids are assigned in row-major order: node `y * width + x` sits at
/// coordinates `(x, y)`, matching Figure 1 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a memory controller.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct McId(pub u16);

impl fmt::Display for McId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MC{}", self.0 + 1)
    }
}

/// A two-dimensional mesh of the given width × height.
///
/// # Examples
///
/// ```
/// use hoploc_noc::{Mesh, NodeId};
///
/// let mesh = Mesh::new(8, 8);
/// assert_eq!(mesh.num_nodes(), 64);
/// assert_eq!(mesh.hop_distance(NodeId(0), NodeId(63)), 14);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        Self { width, height }
    }

    /// Mesh width (columns).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Coordinates `(x, y)` of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the mesh.
    pub fn coords(&self, n: NodeId) -> (u16, u16) {
        assert!((n.0 as usize) < self.num_nodes(), "node outside mesh");
        (n.0 % self.width, n.0 / self.width)
    }

    /// The node at coordinates `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn node_at(&self, x: u16, y: u16) -> NodeId {
        assert!(
            x < self.width && y < self.height,
            "coordinates outside mesh"
        );
        NodeId(y * self.width + x)
    }

    /// Manhattan (hop) distance between two nodes — the number of links an
    /// XY-routed message traverses.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }

    /// The XY route from `src` to `dst` as the sequence of nodes visited
    /// (excluding `src`, including `dst`): first all X movement, then all Y
    /// movement, matching the paper's deterministic XY routing.
    pub fn xy_route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut path = Vec::with_capacity(self.hop_distance(src, dst) as usize);
        let mut x = sx;
        while x != dx {
            x = if dx > x { x + 1 } else { x - 1 };
            path.push(self.node_at(x, sy));
        }
        let mut y = sy;
        while y != dy {
            y = if dy > y { y + 1 } else { y - 1 };
            path.push(self.node_at(dx, y));
        }
        path
    }

    /// The YX route from `src` to `dst`: all Y movement first, then X —
    /// the mirror of [`Mesh::xy_route`].
    pub fn yx_route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut path = Vec::with_capacity(self.hop_distance(src, dst) as usize);
        let mut y = sy;
        while y != dy {
            y = if dy > y { y + 1 } else { y - 1 };
            path.push(self.node_at(sx, y));
        }
        let mut x = sx;
        while x != dx {
            x = if dx > x { x + 1 } else { x - 1 };
            path.push(self.node_at(x, dy));
        }
        path
    }

    /// Iterates over all nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u16).map(NodeId)
    }
}

/// Where the memory controllers attach to the mesh.
///
/// The paper's default (P1, Figure 8a) attaches 4 MCs at the corners;
/// Figure 26 explores two alternatives (P2, P3), and Figure 27 increases
/// the MC count to 8 and 16.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum McPlacement {
    /// Four MCs at the mesh corners (the paper's P1 / default).
    Corners,
    /// Four MCs at the midpoints of the four mesh edges (P2 — lower average
    /// distance-to-controller, per §6.2 "placement P2 generates slightly
    /// better results").
    EdgeMidpoints,
    /// Four MCs placed along the main diagonal (P3).
    Diagonal,
    /// Eight MCs: the four corners plus the four edge midpoints
    /// (Figure 27a).
    Eight,
    /// Sixteen MCs spread around the perimeter (Figure 27b).
    Sixteen,
    /// Arbitrary user-chosen attachment nodes.
    Custom(Vec<NodeId>),
}

impl McPlacement {
    /// Resolves the placement to concrete attachment nodes on a mesh.
    ///
    /// # Panics
    ///
    /// Panics if the mesh is too small for the placement (all built-in
    /// placements need at least a 4×4 mesh) or a custom node is outside the
    /// mesh.
    pub fn attach_nodes(&self, mesh: &Mesh) -> Vec<NodeId> {
        let w = mesh.width();
        let h = mesh.height();
        let mx = w / 2;
        let my = h / 2;
        match self {
            McPlacement::Corners => vec![
                mesh.node_at(0, 0),
                mesh.node_at(w - 1, 0),
                mesh.node_at(0, h - 1),
                mesh.node_at(w - 1, h - 1),
            ],
            McPlacement::EdgeMidpoints => vec![
                mesh.node_at(mx, 0),
                mesh.node_at(0, my),
                mesh.node_at(w - 1, my),
                mesh.node_at(mx, h - 1),
            ],
            McPlacement::Diagonal => {
                assert!(w >= 4 && h >= 4, "diagonal placement needs a 4x4 mesh");
                (0..4)
                    .map(|k| {
                        let x = (k * (w - 1) as usize / 3) as u16;
                        let y = (k * (h - 1) as usize / 3) as u16;
                        mesh.node_at(x, y)
                    })
                    .collect()
            }
            McPlacement::Eight => {
                let mut v = McPlacement::Corners.attach_nodes(mesh);
                v.extend(McPlacement::EdgeMidpoints.attach_nodes(mesh));
                v
            }
            McPlacement::Sixteen => {
                assert!(w >= 8 && h >= 8, "sixteen-MC placement needs an 8x8 mesh");
                let q1 = w / 4;
                let q3 = 3 * w / 4;
                let r1 = h / 4;
                let r3 = 3 * h / 4;
                let mut v = McPlacement::Eight.attach_nodes(mesh);
                v.extend([
                    mesh.node_at(q1, 0),
                    mesh.node_at(q3, 0),
                    mesh.node_at(0, r1),
                    mesh.node_at(0, r3),
                    mesh.node_at(w - 1, r1),
                    mesh.node_at(w - 1, r3),
                    mesh.node_at(q1, h - 1),
                    mesh.node_at(q3, h - 1),
                ]);
                v
            }
            McPlacement::Custom(nodes) => {
                for n in nodes {
                    assert!(
                        (n.0 as usize) < mesh.num_nodes(),
                        "custom MC node outside mesh"
                    );
                }
                nodes.clone()
            }
        }
    }

    /// Number of memory controllers this placement creates.
    pub fn mc_count(&self) -> usize {
        match self {
            McPlacement::Corners | McPlacement::EdgeMidpoints | McPlacement::Diagonal => 4,
            McPlacement::Eight => 8,
            McPlacement::Sixteen => 16,
            McPlacement::Custom(nodes) => nodes.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let m = Mesh::new(8, 8);
        for n in m.nodes() {
            let (x, y) = m.coords(n);
            assert_eq!(m.node_at(x, y), n);
        }
    }

    #[test]
    fn hop_distance_is_manhattan() {
        let m = Mesh::new(8, 8);
        assert_eq!(m.hop_distance(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.hop_distance(m.node_at(0, 0), m.node_at(7, 7)), 14);
        assert_eq!(m.hop_distance(m.node_at(2, 3), m.node_at(5, 1)), 5);
    }

    #[test]
    fn xy_route_length_matches_distance() {
        let m = Mesh::new(8, 8);
        let src = m.node_at(1, 2);
        let dst = m.node_at(6, 5);
        let route = m.xy_route(src, dst);
        assert_eq!(route.len() as u32, m.hop_distance(src, dst));
        assert_eq!(*route.last().unwrap(), dst);
    }

    #[test]
    fn xy_route_goes_x_first() {
        let m = Mesh::new(4, 4);
        let route = m.xy_route(m.node_at(0, 0), m.node_at(2, 2));
        assert_eq!(
            route,
            vec![
                m.node_at(1, 0),
                m.node_at(2, 0),
                m.node_at(2, 1),
                m.node_at(2, 2)
            ]
        );
    }

    #[test]
    fn yx_route_mirrors_xy() {
        let m = Mesh::new(4, 4);
        let src = m.node_at(0, 0);
        let dst = m.node_at(2, 2);
        let yx = m.yx_route(src, dst);
        assert_eq!(
            yx,
            vec![
                m.node_at(0, 1),
                m.node_at(0, 2),
                m.node_at(1, 2),
                m.node_at(2, 2)
            ]
        );
        assert_eq!(yx.len(), m.xy_route(src, dst).len());
    }

    #[test]
    fn xy_route_to_self_is_empty() {
        let m = Mesh::new(4, 4);
        assert!(m.xy_route(NodeId(5), NodeId(5)).is_empty());
    }

    #[test]
    fn corner_placement_is_p1() {
        let m = Mesh::new(8, 8);
        let mcs = McPlacement::Corners.attach_nodes(&m);
        assert_eq!(mcs, vec![NodeId(0), NodeId(7), NodeId(56), NodeId(63)]);
    }

    #[test]
    fn placements_have_declared_counts() {
        let m = Mesh::new(8, 8);
        for p in [
            McPlacement::Corners,
            McPlacement::EdgeMidpoints,
            McPlacement::Diagonal,
            McPlacement::Eight,
            McPlacement::Sixteen,
        ] {
            let nodes = p.attach_nodes(&m);
            assert_eq!(nodes.len(), p.mc_count(), "{p:?}");
            // All attach points distinct.
            let mut sorted = nodes.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), nodes.len(), "duplicate attach nodes in {p:?}");
        }
    }

    #[test]
    fn edge_midpoint_placement_has_lower_average_distance() {
        // The paper observes P2 beats P1 because average distance-to-MC is
        // lower when each node uses its nearest controller.
        let m = Mesh::new(8, 8);
        let avg = |p: &McPlacement| -> f64 {
            let mcs = p.attach_nodes(&m);
            let total: u32 = m
                .nodes()
                .map(|n| mcs.iter().map(|&mc| m.hop_distance(n, mc)).min().unwrap())
                .sum();
            total as f64 / m.num_nodes() as f64
        };
        assert!(avg(&McPlacement::EdgeMidpoints) < avg(&McPlacement::Corners));
    }
}
