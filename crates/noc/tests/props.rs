//! Property-based tests of mesh geometry and the contention model.

use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh, Network, NocConfig, NodeId, TrafficClass};
use hoploc_ptest::run_cases;

#[test]
fn route_length_equals_distance() {
    run_cases("route_length_equals_distance", 128, |rng| {
        let mesh = Mesh::new(rng.u16_in(2..10), rng.u16_in(2..10));
        let n = mesh.num_nodes() as u16;
        let (a, b) = (
            NodeId(rng.u16_in(0..100) % n),
            NodeId(rng.u16_in(0..100) % n),
        );
        let route = mesh.xy_route(a, b);
        assert_eq!(route.len() as u32, mesh.hop_distance(a, b));
        // Every step in the route is between adjacent nodes.
        let mut prev = a;
        for &next in &route {
            assert_eq!(mesh.hop_distance(prev, next), 1);
            prev = next;
        }
        if !route.is_empty() {
            assert_eq!(*route.last().unwrap(), b);
        }
    });
}

#[test]
fn distance_is_a_metric() {
    run_cases("distance_is_a_metric", 256, |rng| {
        let mesh = Mesh::new(8, 8);
        let (a, b, c) = (
            NodeId(rng.u16_in(0..64)),
            NodeId(rng.u16_in(0..64)),
            NodeId(rng.u16_in(0..64)),
        );
        assert_eq!(mesh.hop_distance(a, b), mesh.hop_distance(b, a));
        assert_eq!(mesh.hop_distance(a, a), 0);
        assert!(mesh.hop_distance(a, c) <= mesh.hop_distance(a, b) + mesh.hop_distance(b, c));
    });
}

#[test]
fn send_latency_at_least_uncontended() {
    run_cases("send_latency_at_least_uncontended", 128, |rng| {
        let mesh = Mesh::new(8, 8);
        let mut net = Network::new(mesh, NocConfig::default());
        let warmups = rng.usize_in(0..20);
        for k in 0..warmups {
            net.send(
                NodeId((k % 64) as u16),
                NodeId(((k * 7) % 64) as u16),
                256,
                TrafficClass::OnChip,
                0,
            );
        }
        let (src, dst) = (NodeId(rng.u16_in(0..64)), NodeId(rng.u16_in(0..64)));
        let bytes = rng.u32_in(1..512);
        let arrival = net.send(src, dst, bytes, TrafficClass::OffChip, 100);
        assert!(arrival >= 100 + net.uncontended_latency(src, dst));
    });
}

#[test]
fn histogram_totals_match_message_count() {
    run_cases("histogram_totals_match_message_count", 128, |rng| {
        let n_sends = rng.usize_in(1..40);
        let sends: Vec<(u16, u16)> = (0..n_sends)
            .map(|_| (rng.u16_in(0..64), rng.u16_in(0..64)))
            .collect();
        let mut net = Network::new(Mesh::new(8, 8), NocConfig::default());
        for &(s, d) in &sends {
            net.send(NodeId(s), NodeId(d), 8, TrafficClass::OffChip, 0);
        }
        let stats = net.stats();
        assert_eq!(
            stats.off_chip.hop_histogram.iter().sum::<u64>(),
            sends.len() as u64
        );
        assert_eq!(stats.off_chip.messages, sends.len() as u64);
    });
}

#[test]
fn nearest_mc_minimizes_distance() {
    run_cases("nearest_mc_minimizes_distance", 192, |rng| {
        let mesh = Mesh::new(8, 8);
        let placements = [
            McPlacement::Corners,
            McPlacement::EdgeMidpoints,
            McPlacement::Diagonal,
        ];
        let mapping = L2ToMcMapping::nearest_cluster(mesh, &placements[rng.usize_in(0..3)]);
        let n = NodeId(rng.u16_in(0..64));
        let nearest = mapping.nearest_mc(n);
        let d = mesh.hop_distance(n, mapping.mc_node(nearest));
        for mc in 0..mapping.num_mcs() {
            assert!(d <= mesh.hop_distance(n, mapping.mc_node(hoploc_noc::McId(mc as u16))));
        }
    });
}

#[test]
fn every_node_belongs_to_exactly_one_cluster() {
    run_cases("every_node_belongs_to_exactly_one_cluster", 64, |rng| {
        let mesh = Mesh::new(8, 8);
        let mapping = L2ToMcMapping::nearest_cluster(mesh, &McPlacement::Corners);
        let c = mapping.cluster_of(NodeId(rng.u16_in(0..64)));
        assert!((c.0 as usize) < mapping.num_clusters());
        assert!(!mapping.cluster_mcs(c).is_empty());
    });
}
