//! Property-based tests of mesh geometry and the contention model.

use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh, Network, NocConfig, NodeId, TrafficClass};
use proptest::prelude::*;

proptest! {
    #[test]
    fn route_length_equals_distance(
        w in 2u16..10, h in 2u16..10,
        a in 0u16..100, b in 0u16..100,
    ) {
        let mesh = Mesh::new(w, h);
        let n = mesh.num_nodes() as u16;
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        let route = mesh.xy_route(a, b);
        prop_assert_eq!(route.len() as u32, mesh.hop_distance(a, b));
        // Every step in the route is between adjacent nodes.
        let mut prev = a;
        for &next in &route {
            prop_assert_eq!(mesh.hop_distance(prev, next), 1);
            prev = next;
        }
        if !route.is_empty() {
            prop_assert_eq!(*route.last().unwrap(), b);
        }
    }

    #[test]
    fn distance_is_a_metric(
        a in 0u16..64, b in 0u16..64, c in 0u16..64,
    ) {
        let mesh = Mesh::new(8, 8);
        let (a, b, c) = (NodeId(a), NodeId(b), NodeId(c));
        prop_assert_eq!(mesh.hop_distance(a, b), mesh.hop_distance(b, a));
        prop_assert_eq!(mesh.hop_distance(a, a), 0);
        prop_assert!(
            mesh.hop_distance(a, c) <= mesh.hop_distance(a, b) + mesh.hop_distance(b, c)
        );
    }

    #[test]
    fn send_latency_at_least_uncontended(
        src in 0u16..64, dst in 0u16..64,
        bytes in 1u32..512,
        warmups in 0usize..20,
    ) {
        let mesh = Mesh::new(8, 8);
        let mut net = Network::new(mesh, NocConfig::default());
        for k in 0..warmups {
            net.send(NodeId((k % 64) as u16), NodeId(((k * 7) % 64) as u16), 256,
                TrafficClass::OnChip, 0);
        }
        let (src, dst) = (NodeId(src), NodeId(dst));
        let arrival = net.send(src, dst, bytes, TrafficClass::OffChip, 100);
        prop_assert!(arrival >= 100 + net.uncontended_latency(src, dst));
    }

    #[test]
    fn histogram_totals_match_message_count(
        sends in proptest::collection::vec((0u16..64, 0u16..64), 1..40),
    ) {
        let mut net = Network::new(Mesh::new(8, 8), NocConfig::default());
        for &(s, d) in &sends {
            net.send(NodeId(s), NodeId(d), 8, TrafficClass::OffChip, 0);
        }
        let stats = net.stats();
        prop_assert_eq!(
            stats.off_chip.hop_histogram.iter().sum::<u64>(),
            sends.len() as u64
        );
        prop_assert_eq!(stats.off_chip.messages, sends.len() as u64);
    }

    #[test]
    fn nearest_mc_minimizes_distance(node in 0u16..64, which in 0usize..3) {
        let mesh = Mesh::new(8, 8);
        let placements = [McPlacement::Corners, McPlacement::EdgeMidpoints, McPlacement::Diagonal];
        let mapping = L2ToMcMapping::nearest_cluster(mesh, &placements[which]);
        let n = NodeId(node);
        let nearest = mapping.nearest_mc(n);
        let d = mesh.hop_distance(n, mapping.mc_node(nearest));
        for mc in 0..mapping.num_mcs() {
            prop_assert!(d <= mesh.hop_distance(n, mapping.mc_node(hoploc_noc::McId(mc as u16))));
        }
    }

    #[test]
    fn every_node_belongs_to_exactly_one_cluster(node in 0u16..64) {
        let mesh = Mesh::new(8, 8);
        let mapping = L2ToMcMapping::nearest_cluster(mesh, &McPlacement::Corners);
        let c = mapping.cluster_of(NodeId(node));
        prop_assert!((c.0 as usize) < mapping.num_clusters());
        prop_assert!(!mapping.cluster_mcs(c).is_empty());
    }
}
