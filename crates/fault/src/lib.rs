//! # hoploc-fault
//!
//! Seeded, deterministic fault plans for the hoploc NoC/MC/DRAM stack.
//!
//! A [`FaultPlan`] bundles three failure modes, all expressed as cycle
//! windows so plans are machine-independent and replayable:
//!
//! * **link faults** ([`LinkFault`]) — extra traversal latency on directed
//!   mesh links, injected into `hoploc_noc::Network`;
//! * **bank faults** ([`BankFault`] pinned to a controller via
//!   [`McBankFault`]) — DRAM bank stall windows and deterministic transient
//!   errors, retried under a bounded exponential-backoff [`RetryPolicy`]
//!   inside `hoploc_mem::MemoryController`'s FR-FCFS path;
//! * **MC outages** ([`McOutage`]) — whole-controller dark windows; the
//!   simulator degrades gracefully by re-homing affected requests to the
//!   nearest live controller.
//!
//! Plans are either generated from a seed ([`FaultPlan::from_seed`], using
//! the in-tree `hoploc-ptest` xorshift PRNG — same seed, same plan, same
//! bytes) or written in a small line-oriented text format
//! ([`FaultPlan::parse`] / [`FaultPlan::render`], which round-trip).
//!
//! An **empty plan is inert by construction**: every injection site keeps
//! its fault state as `None`/empty and the timing paths are byte-identical
//! to a build without any plan installed — asserted by the differential
//! tests in `tests/fault_suite.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod gen;
mod plan;
mod text;

pub use gen::FaultRates;
pub use plan::{FaultPlan, FaultTopo, McBankFault, McOutage};

// Re-export the component-level fault vocabulary so plan consumers need
// only this crate.
pub use hoploc_mem::{BankFault, McFaults, RetryPolicy};
pub use hoploc_noc::LinkFault;
