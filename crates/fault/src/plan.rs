//! Plan types, validation, and per-component compilation.

use hoploc_mem::{BankFault, McFaults, RetryPolicy};
use hoploc_noc::LinkFault;

/// A whole-controller outage window: while `from <= cycle < until`, no new
/// request may be routed to controller `mc`. Requests already queued there
/// when the window opens are still drained — the outage is a routing-time
/// decision, modelling the OS fencing a failing controller off the
/// interleave rather than losing its queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct McOutage {
    /// Controller index.
    pub mc: u16,
    /// First cycle of the window (inclusive).
    pub from: u64,
    /// End of the window (exclusive).
    pub until: u64,
}

impl McOutage {
    /// Whether the controller is dark at `cycle`.
    pub fn active_at(&self, cycle: u64) -> bool {
        self.from <= cycle && cycle < self.until
    }
}

/// A [`BankFault`] pinned to one controller.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct McBankFault {
    /// Controller index.
    pub mc: u16,
    /// The bank-fault window on that controller.
    pub fault: BankFault,
}

/// Static shape a plan targets, used for validation and seeded generation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultTopo {
    /// Directed link count (`nodes * 4`).
    pub links: u32,
    /// Number of memory controllers.
    pub mcs: u16,
    /// DRAM banks per controller.
    pub banks_per_mc: u16,
}

/// A complete, deterministic fault plan.
///
/// # Examples
///
/// ```
/// use hoploc_fault::{FaultPlan, FaultRates, FaultTopo};
///
/// let topo = FaultTopo { links: 64 * 4, mcs: 4, banks_per_mc: 8 };
/// let plan = FaultPlan::from_seed(7, &topo, &FaultRates::moderate());
/// assert_eq!(plan, FaultPlan::from_seed(7, &topo, &FaultRates::moderate()));
/// plan.validate(&topo).unwrap();
/// let round = FaultPlan::parse(&plan.render()).unwrap();
/// assert_eq!(plan, round);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Seed mixed into transient-error decisions (and recorded by
    /// [`FaultPlan::from_seed`] for provenance).
    pub seed: u64,
    /// Link-fault windows.
    pub links: Vec<LinkFault>,
    /// Bank-fault windows, each pinned to a controller.
    pub banks: Vec<McBankFault>,
    /// Whole-controller outage windows.
    pub outages: Vec<McOutage>,
    /// Retry/backoff policy for transient bank errors.
    pub retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: provably inert when installed.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            links: Vec::new(),
            banks: Vec::new(),
            outages: Vec::new(),
            retry: RetryPolicy::default(),
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.banks.is_empty() && self.outages.is_empty()
    }

    /// The fault inputs for controller `mc`: its bank windows plus the
    /// plan-wide seed and retry policy.
    pub fn mc_faults(&self, mc: u16) -> McFaults {
        McFaults {
            seed: self.seed,
            banks: self
                .banks
                .iter()
                .filter(|b| b.mc == mc)
                .map(|b| b.fault)
                .collect(),
            retry: self.retry,
        }
    }

    /// Whether any outage windows exist at all (cheap gate for the
    /// simulator's per-request re-home check).
    pub fn has_outages(&self) -> bool {
        !self.outages.is_empty()
    }

    /// Whether controller `mc` is dark at `cycle`.
    pub fn mc_down(&self, mc: u16, cycle: u64) -> bool {
        self.outages
            .iter()
            .any(|o| o.mc == mc && o.active_at(cycle))
    }

    /// Checks every window against the target shape: link/mc/bank indices
    /// in range, `from < until`, and a sane retry policy.
    pub fn validate(&self, topo: &FaultTopo) -> Result<(), String> {
        for (i, l) in self.links.iter().enumerate() {
            if l.link >= topo.links {
                return Err(format!(
                    "link fault {i}: link {} out of range (mesh has {} directed links)",
                    l.link, topo.links
                ));
            }
            if l.from >= l.until {
                return Err(format!(
                    "link fault {i}: empty window {}..{}",
                    l.from, l.until
                ));
            }
        }
        for (i, b) in self.banks.iter().enumerate() {
            if b.mc >= topo.mcs {
                return Err(format!(
                    "bank fault {i}: mc {} out of range ({} controllers)",
                    b.mc, topo.mcs
                ));
            }
            if b.fault.bank >= topo.banks_per_mc {
                return Err(format!(
                    "bank fault {i}: bank {} out of range ({} banks per controller)",
                    b.fault.bank, topo.banks_per_mc
                ));
            }
            if b.fault.from >= b.fault.until {
                return Err(format!(
                    "bank fault {i}: empty window {}..{}",
                    b.fault.from, b.fault.until
                ));
            }
        }
        for (i, o) in self.outages.iter().enumerate() {
            if o.mc >= topo.mcs {
                return Err(format!(
                    "outage {i}: mc {} out of range ({} controllers)",
                    o.mc, topo.mcs
                ));
            }
            if o.from >= o.until {
                return Err(format!("outage {i}: empty window {}..{}", o.from, o.until));
            }
        }
        if self.retry.max_backoff < self.retry.base_backoff {
            return Err(format!(
                "retry: max_backoff {} < base_backoff {}",
                self.retry.max_backoff, self.retry.base_backoff
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> FaultTopo {
        FaultTopo {
            links: 16,
            mcs: 2,
            banks_per_mc: 4,
        }
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.has_outages());
        p.validate(&topo()).unwrap();
        assert!(p.mc_faults(0).banks.is_empty());
    }

    #[test]
    fn mc_faults_filters_by_controller() {
        let f = BankFault {
            bank: 1,
            from: 0,
            until: 10,
            stall_cycles: 5,
            error_period: 0,
        };
        let p = FaultPlan {
            banks: vec![
                McBankFault { mc: 0, fault: f },
                McBankFault { mc: 1, fault: f },
                McBankFault { mc: 0, fault: f },
            ],
            ..FaultPlan::none()
        };
        assert_eq!(p.mc_faults(0).banks.len(), 2);
        assert_eq!(p.mc_faults(1).banks.len(), 1);
    }

    #[test]
    fn mc_down_respects_windows() {
        let p = FaultPlan {
            outages: vec![McOutage {
                mc: 1,
                from: 100,
                until: 200,
            }],
            ..FaultPlan::none()
        };
        assert!(!p.mc_down(1, 99));
        assert!(p.mc_down(1, 100));
        assert!(p.mc_down(1, 199));
        assert!(!p.mc_down(1, 200));
        assert!(!p.mc_down(0, 150));
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let t = topo();
        let bad_link = FaultPlan {
            links: vec![LinkFault {
                link: 16,
                from: 0,
                until: 1,
                extra_cycles: 1,
            }],
            ..FaultPlan::none()
        };
        assert!(bad_link.validate(&t).is_err());
        let empty_window = FaultPlan {
            outages: vec![McOutage {
                mc: 0,
                from: 5,
                until: 5,
            }],
            ..FaultPlan::none()
        };
        assert!(empty_window.validate(&t).is_err());
        let bad_bank = FaultPlan {
            banks: vec![McBankFault {
                mc: 0,
                fault: BankFault {
                    bank: 4,
                    from: 0,
                    until: 1,
                    stall_cycles: 0,
                    error_period: 0,
                },
            }],
            ..FaultPlan::none()
        };
        assert!(bad_bank.validate(&t).is_err());
        let bad_retry = FaultPlan {
            retry: RetryPolicy {
                base_backoff: 100,
                max_backoff: 10,
                max_retries: 1,
            },
            ..FaultPlan::none()
        };
        assert!(bad_retry.validate(&t).is_err());
    }
}
