//! Seeded plan generation: same seed + shape + rates → the same plan,
//! bit for bit, on every host.

use crate::plan::{FaultPlan, FaultTopo, McBankFault, McOutage};
use hoploc_mem::{BankFault, RetryPolicy};
use hoploc_noc::LinkFault;
use hoploc_ptest::SmallRng;

/// Fault-volume knobs for seeded generation. The `at_level` ladder is what
/// the resilience bench sweeps: level 0 is a quiet machine, each level up
/// adds more and harsher windows, and outages appear from level 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultRates {
    /// Number of link-fault windows to place.
    pub link_faults: u32,
    /// Maximum extra cycles per faulted link traversal (≥ 1 when used).
    pub link_extra_max: u64,
    /// Number of bank-fault windows to place.
    pub bank_faults: u32,
    /// Maximum stall cycles per bank window.
    pub bank_stall_max: u64,
    /// Transient-error period inside bank windows (`0` = stalls only).
    pub error_period: u64,
    /// Number of whole-controller outage windows to place.
    pub mc_outages: u32,
    /// Cycle horizon windows are placed within (clamped to ≥ 16).
    pub horizon: u64,
    /// Retry policy the generated plan carries.
    pub retry: RetryPolicy,
}

impl FaultRates {
    /// Intensity ladder: volume and harshness grow with `level`; level 0
    /// generates the empty plan.
    pub fn at_level(level: u32) -> FaultRates {
        FaultRates {
            link_faults: 4 * level,
            link_extra_max: 8 + 4 * level as u64,
            bank_faults: 2 * level,
            bank_stall_max: 32 * level as u64,
            error_period: if level == 0 {
                0
            } else {
                // 128 at level 1, halving down to 2 from level 7 on.
                (256u64 >> level.min(7)).max(2)
            },
            mc_outages: level.saturating_sub(2),
            horizon: 1 << 20,
            retry: RetryPolicy::default(),
        }
    }

    /// No faults at all.
    pub fn quiet() -> FaultRates {
        FaultRates::at_level(0)
    }

    /// A few shallow windows.
    pub fn light() -> FaultRates {
        FaultRates::at_level(1)
    }

    /// The default chaos-suite intensity: stalls, errors, and one outage.
    pub fn moderate() -> FaultRates {
        FaultRates::at_level(3)
    }

    /// Heavy degradation: frequent errors and several outages.
    pub fn severe() -> FaultRates {
        FaultRates::at_level(6)
    }

    /// The same rates with a different placement horizon.
    pub fn with_horizon(self, horizon: u64) -> FaultRates {
        FaultRates { horizon, ..self }
    }
}

impl FaultPlan {
    /// Generates a plan from `seed`. Each fault category draws from its own
    /// forked PRNG stream, so changing one rate never perturbs the windows
    /// of the others.
    pub fn from_seed(seed: u64, topo: &FaultTopo, rates: &FaultRates) -> FaultPlan {
        assert!(
            topo.links > 0 && topo.mcs > 0 && topo.banks_per_mc > 0,
            "fault generation needs a non-degenerate topology"
        );
        let root = SmallRng::seed_from_u64(seed);
        let h = rates.horizon.max(16);
        let mut plan = FaultPlan {
            seed,
            retry: rates.retry,
            ..FaultPlan::none()
        };
        let mut r = root.fork(1);
        for _ in 0..rates.link_faults {
            let from = r.u64_below(h);
            let len = r.u64_in(h / 16..h / 2);
            plan.links.push(LinkFault {
                link: r.u32_in(0..topo.links),
                from,
                until: from.saturating_add(len),
                extra_cycles: r.u64_in(1..rates.link_extra_max.max(1).saturating_add(1)),
            });
        }
        let mut r = root.fork(2);
        for _ in 0..rates.bank_faults {
            let from = r.u64_below(h);
            let len = r.u64_in(h / 16..h / 2);
            plan.banks.push(McBankFault {
                mc: r.u16_in(0..topo.mcs),
                fault: BankFault {
                    bank: r.u16_in(0..topo.banks_per_mc),
                    from,
                    until: from.saturating_add(len),
                    stall_cycles: r.u64_below(rates.bank_stall_max.saturating_add(1)),
                    error_period: rates.error_period,
                },
            });
        }
        let mut r = root.fork(3);
        for _ in 0..rates.mc_outages {
            let from = r.u64_below(h);
            let len = r.u64_in(h / 16..h / 4);
            plan.outages.push(McOutage {
                mc: r.u16_in(0..topo.mcs),
                from,
                until: from.saturating_add(len),
            });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> FaultTopo {
        FaultTopo {
            links: 64 * 4,
            mcs: 4,
            banks_per_mc: 8,
        }
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        let t = topo();
        for seed in 0..20 {
            let a = FaultPlan::from_seed(seed, &t, &FaultRates::moderate());
            let b = FaultPlan::from_seed(seed, &t, &FaultRates::moderate());
            assert_eq!(a, b, "seed {seed}");
            a.validate(&t).unwrap();
        }
    }

    #[test]
    fn seeds_differ() {
        let t = topo();
        let a = FaultPlan::from_seed(1, &t, &FaultRates::moderate());
        let b = FaultPlan::from_seed(2, &t, &FaultRates::moderate());
        assert_ne!(a, b);
    }

    #[test]
    fn level_zero_is_empty() {
        let p = FaultPlan::from_seed(99, &topo(), &FaultRates::quiet());
        assert!(p.is_empty());
    }

    #[test]
    fn levels_monotonically_add_volume() {
        let t = topo();
        let mut last = 0;
        for level in 0..=6 {
            let rates = FaultRates::at_level(level);
            let p = FaultPlan::from_seed(5, &t, &rates);
            let volume = p.links.len() + p.banks.len() + p.outages.len();
            assert!(volume >= last, "level {level} shrank the plan");
            last = volume;
        }
        assert!(last > 0);
    }

    #[test]
    fn categories_draw_from_independent_streams() {
        // Turning outages off must not change the link/bank windows.
        let t = topo();
        let with = FaultPlan::from_seed(7, &t, &FaultRates::severe());
        let without = FaultPlan::from_seed(
            7,
            &t,
            &FaultRates {
                mc_outages: 0,
                ..FaultRates::severe()
            },
        );
        assert_eq!(with.links, without.links);
        assert_eq!(with.banks, without.banks);
        assert!(without.outages.is_empty());
    }
}
