//! The line-oriented plan text format.
//!
//! ```text
//! # hoploc fault plan
//! seed 42
//! retry base=16 max=4096 cap=4
//! link 12 from=1000 until=5000 extra=8
//! bank mc=0 bank=3 from=0 until=10000 stall=50 error=64
//! mc 2 from=5000 until=20000
//! ```
//!
//! Blank lines and `#` comments are ignored. [`FaultPlan::render`] emits
//! exactly this shape and [`FaultPlan::parse`] reads it back; the pair
//! round-trips every plan bit-for-bit.

use crate::plan::{FaultPlan, McBankFault, McOutage};
use hoploc_mem::{BankFault, RetryPolicy};
use hoploc_noc::LinkFault;
use std::fmt::Write;

/// Parses `key=value` fields from the tail of a plan line, checking that
/// exactly the expected keys appear, in any order.
fn fields(parts: &[&str], keys: &[&str], line_no: usize) -> Result<Vec<u64>, String> {
    let mut out = vec![None; keys.len()];
    for part in parts {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("line {line_no}: expected key=value, got `{part}`"))?;
        let slot = keys
            .iter()
            .position(|&want| want == k)
            .ok_or_else(|| format!("line {line_no}: unknown field `{k}`"))?;
        if out[slot].is_some() {
            return Err(format!("line {line_no}: duplicate field `{k}`"));
        }
        out[slot] = Some(
            v.parse::<u64>()
                .map_err(|_| format!("line {line_no}: `{k}` is not a number: `{v}`"))?,
        );
    }
    out.into_iter()
        .enumerate()
        .map(|(i, v)| v.ok_or_else(|| format!("line {line_no}: missing field `{}`", keys[i])))
        .collect()
}

impl FaultPlan {
    /// Parses the text plan format. Returns a message naming the offending
    /// line on malformed input. Shape validation (index ranges) is separate:
    /// call [`FaultPlan::validate`] with the target topology.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts[0] {
                "seed" => {
                    let [v] = parts[1..] else {
                        return Err(format!("line {line_no}: expected `seed <n>`"));
                    };
                    plan.seed = v
                        .parse()
                        .map_err(|_| format!("line {line_no}: bad seed `{v}`"))?;
                }
                "retry" => {
                    let f = fields(&parts[1..], &["base", "max", "cap"], line_no)?;
                    plan.retry = RetryPolicy {
                        base_backoff: f[0],
                        max_backoff: f[1],
                        max_retries: u32::try_from(f[2])
                            .map_err(|_| format!("line {line_no}: cap too large"))?,
                    };
                }
                "link" => {
                    let link = parts
                        .get(1)
                        .and_then(|v| v.parse::<u32>().ok())
                        .ok_or_else(|| format!("line {line_no}: expected `link <id> ...`"))?;
                    let f = fields(&parts[2..], &["from", "until", "extra"], line_no)?;
                    plan.links.push(LinkFault {
                        link,
                        from: f[0],
                        until: f[1],
                        extra_cycles: f[2],
                    });
                }
                "bank" => {
                    let f = fields(
                        &parts[1..],
                        &["mc", "bank", "from", "until", "stall", "error"],
                        line_no,
                    )?;
                    plan.banks.push(McBankFault {
                        mc: u16::try_from(f[0])
                            .map_err(|_| format!("line {line_no}: mc too large"))?,
                        fault: BankFault {
                            bank: u16::try_from(f[1])
                                .map_err(|_| format!("line {line_no}: bank too large"))?,
                            from: f[2],
                            until: f[3],
                            stall_cycles: f[4],
                            error_period: f[5],
                        },
                    });
                }
                "mc" => {
                    let mc = parts
                        .get(1)
                        .and_then(|v| v.parse::<u16>().ok())
                        .ok_or_else(|| format!("line {line_no}: expected `mc <id> ...`"))?;
                    let f = fields(&parts[2..], &["from", "until"], line_no)?;
                    plan.outages.push(McOutage {
                        mc,
                        from: f[0],
                        until: f[1],
                    });
                }
                other => {
                    return Err(format!("line {line_no}: unknown directive `{other}`"));
                }
            }
        }
        Ok(plan)
    }

    /// Renders the plan in the text format [`FaultPlan::parse`] reads.
    pub fn render(&self) -> String {
        let mut s = String::from("# hoploc fault plan\n");
        let _ = writeln!(s, "seed {}", self.seed);
        let _ = writeln!(
            s,
            "retry base={} max={} cap={}",
            self.retry.base_backoff, self.retry.max_backoff, self.retry.max_retries
        );
        for l in &self.links {
            let _ = writeln!(
                s,
                "link {} from={} until={} extra={}",
                l.link, l.from, l.until, l.extra_cycles
            );
        }
        for b in &self.banks {
            let _ = writeln!(
                s,
                "bank mc={} bank={} from={} until={} stall={} error={}",
                b.mc,
                b.fault.bank,
                b.fault.from,
                b.fault.until,
                b.fault.stall_cycles,
                b.fault.error_period
            );
        }
        for o in &self.outages {
            let _ = writeln!(s, "mc {} from={} until={}", o.mc, o.from, o.until);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_example() {
        let text = "\
# hoploc fault plan
seed 42
retry base=16 max=4096 cap=4

link 12 from=1000 until=5000 extra=8
bank mc=0 bank=3 from=0 until=10000 stall=50 error=64
mc 2 from=5000 until=20000
";
        let p = FaultPlan::parse(text).unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.links.len(), 1);
        assert_eq!(p.links[0].extra_cycles, 8);
        assert_eq!(p.banks.len(), 1);
        assert_eq!(p.banks[0].fault.error_period, 64);
        assert_eq!(
            p.outages,
            vec![McOutage {
                mc: 2,
                from: 5000,
                until: 20000
            }]
        );
        assert_eq!(p.retry.max_retries, 4);
    }

    #[test]
    fn fields_accept_any_order() {
        let p = FaultPlan::parse("mc 1 until=9 from=3\n").unwrap();
        assert_eq!(p.outages[0].from, 3);
        assert_eq!(p.outages[0].until, 9);
    }

    #[test]
    fn errors_name_the_line() {
        for (text, needle) in [
            ("seed x\n", "line 1"),
            ("link 0 from=1\n", "missing field `until`"),
            (
                "bank mc=0 bank=0 from=0 until=1 stall=0 error=0 error=1\n",
                "duplicate",
            ),
            ("warp 9\n", "unknown directive"),
            ("link 0 from=1 until=2 extra=3 wat=4\n", "unknown field"),
        ] {
            let err = FaultPlan::parse(text).unwrap_err();
            assert!(err.contains(needle), "`{text}` -> `{err}`");
        }
    }

    #[test]
    fn empty_text_is_the_empty_plan() {
        let p = FaultPlan::parse("# nothing\n\n").unwrap();
        assert!(p.is_empty());
        assert_eq!(p, FaultPlan::none());
    }

    #[test]
    fn render_round_trips() {
        use crate::{FaultRates, FaultTopo};
        let topo = FaultTopo {
            links: 256,
            mcs: 4,
            banks_per_mc: 8,
        };
        for seed in 0..10 {
            let p = FaultPlan::from_seed(seed, &topo, &FaultRates::severe());
            assert_eq!(FaultPlan::parse(&p.render()).unwrap(), p, "seed {seed}");
        }
        assert_eq!(
            FaultPlan::parse(&FaultPlan::none().render()).unwrap(),
            FaultPlan::none()
        );
    }
}
