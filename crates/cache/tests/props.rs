//! Property-based tests of the cache and directory invariants.

use hoploc_cache::{CacheConfig, Directory, SetAssocCache};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn accessed_line_becomes_resident(lines in proptest::collection::vec(0u64..4096, 1..200)) {
        let mut c = SetAssocCache::new(CacheConfig::l1_default());
        for &l in &lines {
            c.access(l);
            prop_assert!(c.contains(l), "line {l} not resident right after access");
        }
    }

    #[test]
    fn capacity_is_never_exceeded(lines in proptest::collection::vec(0u64..100_000, 1..400)) {
        let cfg = CacheConfig { size_bytes: 1024, line_bytes: 64, ways: 2 };
        let capacity = (cfg.size_bytes / cfg.line_bytes) as usize;
        let mut c = SetAssocCache::new(cfg);
        let mut resident: HashSet<u64> = HashSet::new();
        for &l in &lines {
            let r = c.access(l);
            if let Some(e) = r.evicted {
                resident.remove(&e);
            }
            resident.insert(l);
            prop_assert!(resident.len() <= capacity);
        }
        // The model agrees with our shadow set.
        for &l in &resident {
            prop_assert!(c.contains(l));
        }
    }

    #[test]
    fn hits_plus_misses_equals_accesses(lines in proptest::collection::vec(0u64..512, 1..300)) {
        let mut c = SetAssocCache::new(CacheConfig::l2_default());
        for &l in &lines {
            c.access(l);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, lines.len() as u64);
        prop_assert_eq!(s.hits + s.misses(), s.accesses);
    }

    #[test]
    fn invalidate_removes(line in 0u64..10_000) {
        let mut c = SetAssocCache::new(CacheConfig::l1_default());
        c.access(line);
        prop_assert!(c.invalidate(line));
        prop_assert!(!c.contains(line));
    }

    #[test]
    fn directory_tracks_sharers_exactly(
        ops in proptest::collection::vec((0u64..64, 0usize..32, proptest::bool::ANY), 1..200)
    ) {
        let mut dir = Directory::new();
        let mut shadow: std::collections::HashMap<u64, HashSet<usize>> = Default::default();
        for &(line, node, add) in &ops {
            if add {
                dir.add_sharer(line, node);
                shadow.entry(line).or_default().insert(node);
            } else {
                dir.remove_sharer(line, node);
                if let Some(s) = shadow.get_mut(&line) {
                    s.remove(&node);
                }
            }
        }
        for (line, sharers) in &shadow {
            let mut expect: Vec<usize> = sharers.iter().copied().collect();
            expect.sort_unstable();
            prop_assert_eq!(dir.sharers(*line), expect);
        }
    }
}
