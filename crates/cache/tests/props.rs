//! Property-based tests of the cache and directory invariants.

use hoploc_cache::{CacheConfig, Directory, SetAssocCache};
use hoploc_ptest::run_cases;
use std::collections::HashSet;

#[test]
fn accessed_line_becomes_resident() {
    run_cases("accessed_line_becomes_resident", 64, |rng| {
        let lines = rng.vec_u64(1..200, 0..4096);
        let mut c = SetAssocCache::new(CacheConfig::l1_default());
        for &l in &lines {
            c.access(l);
            assert!(c.contains(l), "line {l} not resident right after access");
        }
    });
}

#[test]
fn capacity_is_never_exceeded() {
    run_cases("capacity_is_never_exceeded", 64, |rng| {
        let lines = rng.vec_u64(1..400, 0..100_000);
        let cfg = CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        };
        let capacity = (cfg.size_bytes / cfg.line_bytes) as usize;
        let mut c = SetAssocCache::new(cfg);
        let mut resident: HashSet<u64> = HashSet::new();
        for &l in &lines {
            let r = c.access(l);
            if let Some(e) = r.evicted {
                resident.remove(&e);
            }
            resident.insert(l);
            assert!(resident.len() <= capacity);
        }
        // The model agrees with our shadow set.
        for &l in &resident {
            assert!(c.contains(l));
        }
    });
}

#[test]
fn hits_plus_misses_equals_accesses() {
    run_cases("hits_plus_misses_equals_accesses", 64, |rng| {
        let lines = rng.vec_u64(1..300, 0..512);
        let mut c = SetAssocCache::new(CacheConfig::l2_default());
        for &l in &lines {
            c.access(l);
        }
        let s = c.stats();
        assert_eq!(s.accesses, lines.len() as u64);
        assert_eq!(s.hits + s.misses(), s.accesses);
    });
}

#[test]
fn invalidate_removes() {
    run_cases("invalidate_removes", 64, |rng| {
        let line = rng.u64_in(0..10_000);
        let mut c = SetAssocCache::new(CacheConfig::l1_default());
        c.access(line);
        assert!(c.invalidate(line));
        assert!(!c.contains(line));
    });
}

#[test]
fn directory_tracks_sharers_exactly() {
    run_cases("directory_tracks_sharers_exactly", 64, |rng| {
        let n_ops = rng.usize_in(1..200);
        let ops: Vec<(u64, usize, bool)> = (0..n_ops)
            .map(|_| (rng.u64_in(0..64), rng.usize_in(0..32), rng.flip()))
            .collect();
        let mut dir = Directory::new();
        let mut shadow: std::collections::HashMap<u64, HashSet<usize>> = Default::default();
        for &(line, node, add) in &ops {
            if add {
                dir.add_sharer(line, node);
                shadow.entry(line).or_default().insert(node);
            } else {
                dir.remove_sharer(line, node);
                if let Some(s) = shadow.get_mut(&line) {
                    s.remove(&node);
                }
            }
        }
        for (line, sharers) in &shadow {
            let mut expect: Vec<usize> = sharers.iter().copied().collect();
            expect.sort_unstable();
            assert_eq!(dir.sharers(*line), expect);
        }
    });
}
