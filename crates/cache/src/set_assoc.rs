//! A set-associative cache model with LRU replacement.
//!
//! The model tracks tags only (no data): the simulator needs hit/miss
//! decisions and evictions, not contents. Addresses are *line* addresses
//! (byte address divided by the line size) — the caller chooses the
//! granularity, which lets the same structure serve 64 B L1 lines and
//! 256 B L2 lines (Table 1).

use hoploc_obs::{CacheTag, Sink};
use std::fmt;

/// Geometry of a cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line (block) size in bytes.
    pub line_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// The paper's per-node L1: 16 KB, 64 B lines, 2-way (Table 1).
    pub fn l1_default() -> Self {
        Self {
            size_bytes: 16 * 1024,
            line_bytes: 64,
            ways: 2,
        }
    }

    /// The paper's per-node L2: 256 KB, 256 B lines, 16-way (Table 1).
    pub fn l2_default() -> Self {
        Self {
            size_bytes: 256 * 1024,
            line_bytes: 256,
            ways: 16,
        }
    }

    /// Capacity-scaled L1 (4 KB): same geometry as Table 1 but shrunk 4×,
    /// pairing with workload inputs shrunk ~16× from the paper's
    /// 124 MB–1.9 GB so the input-to-cache capacity ratios are preserved.
    pub fn l1_scaled() -> Self {
        Self {
            size_bytes: 4 * 1024,
            line_bytes: 64,
            ways: 2,
        }
    }

    /// Capacity-scaled L2 (32 KB per node): see [`CacheConfig::l1_scaled`].
    /// Modelled fully associative: at 128 lines, the paper's 16 ways would
    /// leave only 8 sets, whose occupancy variance under any layout is a
    /// shrinking artifact the 1024-line original never exhibits.
    pub fn l2_scaled() -> Self {
        Self {
            size_bytes: 32 * 1024,
            line_bytes: 256,
            ways: 128,
        }
    }

    /// Number of sets this geometry produces.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, capacity not a
    /// multiple of `line_bytes * ways`).
    pub fn num_sets(&self) -> usize {
        assert!(self.line_bytes > 0 && self.ways > 0 && self.size_bytes > 0);
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            (lines as usize).is_multiple_of(self.ways) && lines > 0,
            "capacity must be a whole number of sets"
        );
        lines as usize / self.ways
    }
}

/// Result of a cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Line address evicted to make room, if any.
    pub evicted: Option<u64>,
    /// Whether the evicted line was dirty (needs a writeback).
    pub evicted_dirty: bool,
    /// The hit landed on a line installed by a prefetch that had not been
    /// demanded yet (the prefetch proved *useful*; the mark is cleared).
    pub prefetched_hit: bool,
    /// The evicted line was a prefetch nobody ever demanded (the prefetch
    /// proved *harmful*: pure pollution).
    pub evicted_prefetched: bool,
}

/// Hit/miss counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
}

impl CacheStats {
    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit rate in `[0, 1]` (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_used: u64,
    /// Installed by a prefetch and not yet touched by a demand access.
    prefetched: bool,
}

/// A tag-only set-associative LRU cache.
///
/// # Examples
///
/// ```
/// use hoploc_cache::{CacheConfig, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheConfig::l1_default());
/// assert!(!c.access(42).hit); // cold miss
/// assert!(c.access(42).hit); // now resident
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`CacheConfig::num_sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        Self {
            config,
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        last_used: 0,
                        prefetched: false
                    };
                    config.ways
                ];
                num_sets
            ],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// XOR-folded set index. Hardware LLCs hash the set index so that
    /// power-of-two address strides (such as the `N′`-unit stride a
    /// controller-interleaved layout produces) do not concentrate on a
    /// few sets; plain modulo indexing would turn the localized layout's
    /// slot stride into pathological conflict misses that no real machine
    /// exhibits.
    fn set_index(&self, line: u64) -> usize {
        let n = self.sets.len() as u64;
        ((line ^ (line >> 7) ^ (line >> 14)) % n) as usize
    }

    /// Accesses a line (by line address), allocating it on miss.
    /// Returns whether it hit and any line evicted to make room.
    pub fn access(&mut self, line: u64) -> AccessResult {
        self.access_rw(line, false)
    }

    /// Like [`access_rw`](Self::access_rw), additionally mirroring the
    /// hit/miss/eviction outcome into `sink` as per-node counters for the
    /// cache identified by `tag`. `ts` is the access's sim-cycle time.
    pub fn access_rw_obs(
        &mut self,
        line: u64,
        write: bool,
        ts: u64,
        tag: CacheTag,
        sink: &Sink,
    ) -> AccessResult {
        let r = self.access_rw(line, write);
        sink.cache_access(tag, ts, r.hit, r.evicted.is_some(), r.evicted_dirty);
        r
    }

    /// Like [`access`](Self::access), additionally marking the line dirty
    /// when `write` is set, and reporting the evicted line's dirtiness so
    /// the caller can issue a writeback.
    pub fn access_rw(&mut self, line: u64, write: bool) -> AccessResult {
        self.clock += 1;
        self.stats.accesses += 1;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == line) {
            w.last_used = self.clock;
            w.dirty |= write;
            let prefetched_hit = w.prefetched;
            w.prefetched = false;
            self.stats.hits += 1;
            return AccessResult {
                hit: true,
                evicted: None,
                evicted_dirty: false,
                prefetched_hit,
                evicted_prefetched: false,
            };
        }
        // Miss: fill an invalid way, else evict LRU.
        let victim = if let Some(i) = set.iter().position(|w| !w.valid) {
            i
        } else {
            set.iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_used)
                .map(|(i, _)| i)
                .expect("non-empty set")
        };
        let (evicted, evicted_dirty, evicted_prefetched) = if set[victim].valid {
            (
                Some(set[victim].tag),
                set[victim].dirty,
                set[victim].prefetched,
            )
        } else {
            (None, false, false)
        };
        set[victim] = Way {
            tag: line,
            valid: true,
            dirty: write,
            last_used: self.clock,
            prefetched: false,
        };
        AccessResult {
            hit: false,
            evicted,
            evicted_dirty,
            prefetched_hit: false,
            evicted_prefetched,
        }
    }

    /// Installs a prefetched line without touching the demand statistics:
    /// [`CacheStats`] keep counting demand traffic only, so a run's hit
    /// rates stay comparable across prefetch settings. A line that is
    /// already resident is left exactly as it is (the demand that raced
    /// the prefetch owns it); otherwise the line fills an invalid way or
    /// evicts LRU, is marked [`prefetched`](AccessResult::prefetched_hit)
    /// until first demand touch, and any victim is reported as usual.
    pub fn install_prefetch(&mut self, line: u64) -> AccessResult {
        self.clock += 1;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if set.iter().any(|w| w.valid && w.tag == line) {
            return AccessResult {
                hit: true,
                evicted: None,
                evicted_dirty: false,
                prefetched_hit: false,
                evicted_prefetched: false,
            };
        }
        let victim = if let Some(i) = set.iter().position(|w| !w.valid) {
            i
        } else {
            set.iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_used)
                .map(|(i, _)| i)
                .expect("non-empty set")
        };
        let (evicted, evicted_dirty, evicted_prefetched) = if set[victim].valid {
            (
                Some(set[victim].tag),
                set[victim].dirty,
                set[victim].prefetched,
            )
        } else {
            (None, false, false)
        };
        set[victim] = Way {
            tag: line,
            valid: true,
            dirty: false,
            last_used: self.clock,
            prefetched: true,
        };
        AccessResult {
            hit: false,
            evicted,
            evicted_dirty,
            prefetched_hit: false,
            evicted_prefetched,
        }
    }

    /// Checks residency without updating LRU state or statistics.
    pub fn contains(&self, line: u64) -> bool {
        let set = &self.sets[self.set_index(line)];
        set.iter().any(|w| w.valid && w.tag == line)
    }

    /// Removes a line if present (coherence invalidation), returning
    /// whether it was resident.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == line) {
            w.valid = false;
            true
        } else {
            false
        }
    }
}

impl fmt::Display for SetAssocCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sets x {} ways, {:.1}% hit",
            self.sets.len(),
            self.config.ways,
            self.stats.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 64B lines.
        SetAssocCache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(10).hit);
        assert!(c.access(10).hit);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line addresses).
        c.access(0);
        c.access(2);
        c.access(0); // 0 is now MRU, 2 is LRU
        let r = c.access(4);
        assert_eq!(r.evicted, Some(2));
        assert!(c.contains(0));
        assert!(!c.contains(2));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(1); // set 1
        c.access(2); // set 0
        c.access(3); // set 1
        assert!(c.contains(0) && c.contains(1) && c.contains(2) && c.contains(3));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(5);
        assert!(c.invalidate(5));
        assert!(!c.contains(5));
        assert!(!c.invalidate(5));
    }

    #[test]
    fn default_geometries_are_consistent() {
        assert_eq!(CacheConfig::l1_default().num_sets(), 128);
        assert_eq!(CacheConfig::l2_default().num_sets(), 64);
    }

    #[test]
    fn dirty_lines_report_on_eviction() {
        let mut c = tiny();
        c.access_rw(0, true); // dirty
        c.access_rw(2, false); // clean, same set
        c.access_rw(0, false); // keep 0 MRU; 2 is LRU
        let r = c.access_rw(4, false); // evicts 2 (clean)
        assert_eq!(r.evicted, Some(2));
        assert!(!r.evicted_dirty);
        let r = c.access_rw(6, false); // evicts 0 (dirty)
        assert_eq!(r.evicted, Some(0));
        assert!(r.evicted_dirty);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access_rw(1, false);
        c.access_rw(1, true); // dirtied by the hit
        c.access_rw(3, false);
        c.access_rw(3, false);
        let r = c.access_rw(5, false); // evicts LRU = 1
        assert_eq!(r.evicted, Some(1));
        assert!(r.evicted_dirty);
    }

    #[test]
    fn access_rw_obs_mirrors_per_node_counters() {
        use hoploc_obs::{ObsConfig, Topology};
        let topo = Topology {
            mesh_width: 2,
            mesh_height: 2,
            mcs: 1,
            banks_per_mc: 1,
        };
        let sink = Sink::recording(topo, ObsConfig::default());
        let mut c = tiny();
        c.access_rw_obs(0, true, 0, CacheTag::l2(3), &sink);
        c.access_rw_obs(0, false, 1, CacheTag::l2(3), &sink);
        c.access_rw_obs(2, false, 2, CacheTag::l2(3), &sink);
        c.access_rw_obs(4, false, 3, CacheTag::l2(3), &sink); // evicts 0 or 2
        c.access_rw_obs(9, false, 4, CacheTag::l1(1), &sink);
        let rep = sink.into_report(10).unwrap();
        assert_eq!(rep.counter_family("cache.l2.accesses")[3], 4);
        assert_eq!(rep.counter_family("cache.l2.hits")[3], c.stats().hits);
        assert_eq!(rep.counter_family("cache.l2.evictions")[3], 1);
        assert_eq!(rep.counter_family("cache.l1.accesses")[1], 1);
        assert_eq!(rep.counter_family("cache.l1.hits")[1], 0);
    }

    #[test]
    fn install_prefetch_marks_until_first_demand_touch() {
        let mut c = tiny();
        let r = c.install_prefetch(4);
        assert!(!r.hit && r.evicted.is_none());
        assert!(c.contains(4));
        assert_eq!(c.stats().accesses, 0, "installs are not demand accesses");
        // First demand touch reports (and clears) the prefetched mark.
        let r = c.access(4);
        assert!(r.hit && r.prefetched_hit);
        let r = c.access(4);
        assert!(r.hit && !r.prefetched_hit, "mark must clear after one hit");
    }

    #[test]
    fn untouched_prefetch_reports_harmful_on_eviction() {
        let mut c = tiny();
        c.install_prefetch(0); // set 0
        c.access(2); // set 0
        c.access(2);
        let r = c.access(4); // set 0: evicts the untouched prefetch (LRU)
        assert_eq!(r.evicted, Some(0));
        assert!(r.evicted_prefetched);
        // A demanded-then-evicted prefetch is not pollution.
        c.install_prefetch(6);
        c.access(6);
        c.access(2);
        c.access(2);
        let r = c.access(8);
        assert!(!r.evicted_prefetched, "touched prefetch is not harmful");
    }

    #[test]
    fn install_prefetch_is_a_noop_on_resident_lines() {
        let mut c = tiny();
        c.access_rw(3, true);
        let r = c.install_prefetch(3);
        assert!(r.hit);
        // The demand-owned line keeps its dirtiness and is NOT marked
        // prefetched: a later hit must not count as useful.
        assert!(!c.access(3).prefetched_hit);
        c.access(1);
        c.access(1);
        let r = c.access(5); // evicts 3
        assert_eq!(r.evicted, Some(3));
        assert!(r.evicted_dirty, "dirtiness survives a racing install");
    }

    #[test]
    fn contains_does_not_touch_stats() {
        let mut c = tiny();
        c.access(1);
        let before = *c.stats();
        assert!(c.contains(1));
        assert_eq!(*c.stats(), before);
    }
}
