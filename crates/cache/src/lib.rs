//! # hoploc-cache
//!
//! Cache substrate for the hoploc simulator: a tag-only set-associative
//! LRU cache ([`SetAssocCache`]) used for both L1s and L2 slices, and the
//! MC-side [`Directory`] that arbitrates between on-chip (cache-to-cache)
//! and off-chip fulfilment of private-L2 misses, per Figure 2a of the
//! paper. The shared-SNUCA home-bank arithmetic lives in the simulator,
//! which composes these structures per node.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod directory;
mod set_assoc;

pub use directory::Directory;
pub use set_assoc::{AccessResult, CacheConfig, CacheStats, SetAssocCache};
