//! The centralized L2 tag directory used with private L2 caches.
//!
//! In the paper's private-L2 configuration (Figure 2a), each memory
//! controller caches a slice of a centralized directory recording which
//! private L2s hold each line. On an L2 miss, the request travels to the
//! directory slice at the MC owning the line's physical address; the
//! directory then either forwards to a sharer L2 (an *on-chip* access) or
//! issues an *off-chip* memory request.

use hoploc_obs::Sink;
use std::collections::HashMap;
use std::fmt;

/// Sharer tracking for private L2 lines, keyed by line address.
///
/// Sharers are node indices (`< 128`), stored as a bitmask.
///
/// # Examples
///
/// ```
/// use hoploc_cache::Directory;
///
/// let mut dir = Directory::new();
/// dir.add_sharer(0x40, 3);
/// assert_eq!(dir.sharers(0x40), vec![3]);
/// dir.remove_sharer(0x40, 3);
/// assert!(dir.sharers(0x40).is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Directory {
    entries: HashMap<u64, u128>,
    /// Lookups that found at least one sharer (on-chip fulfilment).
    pub on_chip_hits: u64,
    /// Lookups that found no sharer (off-chip fulfilment).
    pub off_chip_misses: u64,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` now holds `line`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= 128`.
    pub fn add_sharer(&mut self, line: u64, node: usize) {
        assert!(node < 128, "directory supports up to 128 nodes");
        *self.entries.entry(line).or_insert(0) |= 1u128 << node;
    }

    /// Records that `node` no longer holds `line` (eviction or
    /// invalidation). Empty entries are pruned.
    pub fn remove_sharer(&mut self, line: u64, node: usize) {
        assert!(node < 128, "directory supports up to 128 nodes");
        if let Some(mask) = self.entries.get_mut(&line) {
            *mask &= !(1u128 << node);
            if *mask == 0 {
                self.entries.remove(&line);
            }
        }
    }

    /// The nodes currently holding `line`, in ascending order.
    pub fn sharers(&self, line: u64) -> Vec<usize> {
        let Some(&mask) = self.entries.get(&line) else {
            return Vec::new();
        };
        (0..128).filter(|&n| mask & (1u128 << n) != 0).collect()
    }

    /// Whether any node holds `line`.
    pub fn has_sharer(&self, line: u64) -> bool {
        self.entries.get(&line).copied().unwrap_or(0) != 0
    }

    /// Performs a lookup on behalf of `requester`: returns a sharer other
    /// than the requester (the caller picks among them by distance), and
    /// updates the on-chip / off-chip lookup counters.
    pub fn lookup(&mut self, line: u64, requester: usize) -> Vec<usize> {
        let sharers: Vec<usize> = self
            .sharers(line)
            .into_iter()
            .filter(|&n| n != requester)
            .collect();
        if sharers.is_empty() {
            self.off_chip_misses += 1;
        } else {
            self.on_chip_hits += 1;
        }
        sharers
    }

    /// Like [`lookup`](Self::lookup), additionally mirroring the
    /// forward/off-chip outcome into `sink`. `ts` is the lookup's sim-cycle
    /// time.
    pub fn lookup_obs(&mut self, line: u64, requester: usize, ts: u64, sink: &Sink) -> Vec<usize> {
        let sharers = self.lookup(line, requester);
        sink.dir_lookup(ts, requester as u16, !sharers.is_empty());
        sharers
    }

    /// Number of tracked lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory tracks no lines.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for Directory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "directory: {} lines, {} on-chip, {} off-chip",
            self.entries.len(),
            self.on_chip_hits,
            self.off_chip_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharers_round_trip() {
        let mut d = Directory::new();
        d.add_sharer(1, 5);
        d.add_sharer(1, 63);
        assert_eq!(d.sharers(1), vec![5, 63]);
        d.remove_sharer(1, 5);
        assert_eq!(d.sharers(1), vec![63]);
    }

    #[test]
    fn empty_entries_pruned() {
        let mut d = Directory::new();
        d.add_sharer(7, 2);
        d.remove_sharer(7, 2);
        assert!(d.is_empty());
    }

    #[test]
    fn lookup_excludes_requester() {
        let mut d = Directory::new();
        d.add_sharer(9, 4);
        assert!(d.lookup(9, 4).is_empty());
        assert_eq!(d.off_chip_misses, 1);
        assert_eq!(d.lookup(9, 0), vec![4]);
        assert_eq!(d.on_chip_hits, 1);
    }

    #[test]
    fn remove_missing_is_noop() {
        let mut d = Directory::new();
        d.remove_sharer(1, 1);
        assert!(d.is_empty());
    }

    #[test]
    fn lookup_obs_mirrors_counters() {
        use hoploc_obs::{ObsConfig, Sink, Topology};
        let topo = Topology {
            mesh_width: 2,
            mesh_height: 2,
            mcs: 1,
            banks_per_mc: 1,
        };
        let sink = Sink::recording(topo, ObsConfig::default());
        let mut d = Directory::new();
        d.add_sharer(9, 2);
        d.lookup_obs(9, 0, 10, &sink); // forwarded to node 2
        d.lookup_obs(5, 0, 20, &sink); // nobody shares line 5
        let rep = sink.into_report(100).unwrap();
        assert_eq!(rep.counter("dir.forwards"), d.on_chip_hits);
        assert_eq!(rep.counter("dir.misses"), d.off_chip_misses);
    }

    #[test]
    fn high_node_indices_supported() {
        let mut d = Directory::new();
        d.add_sharer(1, 127);
        assert!(d.has_sharer(1));
        assert_eq!(d.sharers(1), vec![127]);
    }
}
