//! Property-based tests of trace generation: coverage, determinism, and
//! layout independence of the dynamic work.

use hoploc_affine::{AffineAccess, ArrayDecl, ArrayRef, Loop, LoopNest, Program, Statement};
use hoploc_layout::{baseline_layout, optimize_program, PassConfig};
use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh};
use hoploc_sim::AddressSpace;
use hoploc_workloads::{all_apps, generate_traces, Scale, TraceGen};
use proptest::prelude::*;

fn program(d0: i64, d1: i64) -> Program {
    let mut p = Program::new("prop");
    let x = p.add_array(ArrayDecl::new("X", vec![d0, d1], 8));
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, d0), Loop::constant(0, d1)],
        0,
        vec![Statement::new(
            vec![ArrayRef::write(x, AffineAccess::identity(2))],
            2,
        )],
        1,
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn work_is_layout_independent(d0 in 64i64..256, d1 in 8i64..48) {
        // The same program generates the same number of accesses whether
        // layouts are original or transformed — data transformations are
        // renamings (§1).
        let p = program(d0, d1);
        let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners);
        let gen = TraceGen::default();

        let base = baseline_layout(&p, 64);
        let bspace = AddressSpace::build(&p, &base, 0);
        let bw = generate_traces(&p, &base, &bspace, &gen);

        let opt = optimize_program(&p, &mapping, PassConfig::default());
        let ospace = AddressSpace::build(&p, &opt, 0);
        let ow = generate_traces(&p, &opt, &ospace, &gen);

        prop_assert_eq!(bw.total_accesses(), ow.total_accesses());
        prop_assert_eq!(bw.total_accesses(), (d0 * d1) as u64);
    }

    #[test]
    fn traces_are_deterministic(d0 in 64i64..128, d1 in 8i64..32) {
        let p = program(d0, d1);
        let layout = baseline_layout(&p, 64);
        let space = AddressSpace::build(&p, &layout, 0);
        let a = generate_traces(&p, &layout, &space, &TraceGen::tuned(2));
        let b = generate_traces(&p, &layout, &space, &TraceGen::tuned(2));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn addresses_stay_inside_the_address_space(d0 in 64i64..192, d1 in 8i64..32) {
        let p = program(d0, d1);
        let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners);
        let layout = optimize_program(&p, &mapping, PassConfig::default());
        let space = AddressSpace::build(&p, &layout, 4096);
        let w = generate_traces(&p, &layout, &space, &TraceGen::default());
        for t in &w.threads {
            for a in &t.accesses {
                prop_assert!(a.vaddr >= 4096);
                prop_assert!(a.vaddr < 4096 + space.total_bytes());
            }
        }
    }
}

#[test]
fn every_app_generates_consistent_traces_under_both_layouts() {
    let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners);
    for app in all_apps(Scale::Test) {
        let base = baseline_layout(&app.program, 64);
        let bspace = AddressSpace::build(&app.program, &base, 0);
        let bw = generate_traces(&app.program, &base, &bspace, &app.gen);

        let opt = optimize_program(&app.program, &mapping, PassConfig::default());
        let ospace = AddressSpace::build(&app.program, &opt, 0);
        let ow = generate_traces(&app.program, &opt, &ospace, &app.gen);

        assert_eq!(
            bw.total_accesses(),
            ow.total_accesses(),
            "{}: optimized layout changed the dynamic work",
            app.name()
        );
        assert!(bw.total_accesses() > 0, "{}: empty trace", app.name());
    }
}
