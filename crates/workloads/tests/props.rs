//! Property-based tests of trace generation: coverage, determinism, and
//! layout independence of the dynamic work.

use hoploc_affine::{AffineAccess, ArrayDecl, ArrayRef, Loop, LoopNest, Program, Statement};
use hoploc_layout::{baseline_layout, optimize_program, PassConfig};
use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh};
use hoploc_ptest::run_cases;
use hoploc_sim::AddressSpace;
use hoploc_workloads::{all_apps, generate_traces, Scale, TraceGen};

fn program(d0: i64, d1: i64) -> Program {
    let mut p = Program::new("prop");
    let x = p.add_array(ArrayDecl::new("X", vec![d0, d1], 8));
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, d0), Loop::constant(0, d1)],
        0,
        vec![Statement::new(
            vec![ArrayRef::write(x, AffineAccess::identity(2))],
            2,
        )],
        1,
    ));
    p
}

#[test]
fn work_is_layout_independent() {
    run_cases("work_is_layout_independent", 16, |rng| {
        // The same program generates the same number of accesses whether
        // layouts are original or transformed — data transformations are
        // renamings (§1).
        let d0 = rng.i64_in(64..256);
        let d1 = rng.i64_in(8..48);
        let p = program(d0, d1);
        let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners);
        let gen = TraceGen::default();

        let base = baseline_layout(&p, 64);
        let bspace = AddressSpace::build(&p, &base, 0);
        let bw = generate_traces(&p, &base, &bspace, &gen);

        let opt = optimize_program(&p, &mapping, PassConfig::default());
        let ospace = AddressSpace::build(&p, &opt, 0);
        let ow = generate_traces(&p, &opt, &ospace, &gen);

        assert_eq!(bw.total_accesses(), ow.total_accesses());
        assert_eq!(bw.total_accesses(), (d0 * d1) as u64);
    });
}

#[test]
fn traces_are_deterministic() {
    run_cases("traces_are_deterministic", 16, |rng| {
        let d0 = rng.i64_in(64..128);
        let d1 = rng.i64_in(8..32);
        let p = program(d0, d1);
        let layout = baseline_layout(&p, 64);
        let space = AddressSpace::build(&p, &layout, 0);
        let a = generate_traces(&p, &layout, &space, &TraceGen::tuned(2));
        let b = generate_traces(&p, &layout, &space, &TraceGen::tuned(2));
        assert_eq!(a, b);
    });
}

#[test]
fn addresses_stay_inside_the_address_space() {
    run_cases("addresses_stay_inside_the_address_space", 16, |rng| {
        let d0 = rng.i64_in(64..192);
        let d1 = rng.i64_in(8..32);
        let p = program(d0, d1);
        let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners);
        let layout = optimize_program(&p, &mapping, PassConfig::default());
        let space = AddressSpace::build(&p, &layout, 4096);
        let w = generate_traces(&p, &layout, &space, &TraceGen::default());
        for t in &w.threads {
            for a in &t.accesses {
                assert!(a.vaddr >= 4096);
                assert!(a.vaddr < 4096 + space.total_bytes());
            }
        }
    });
}

#[test]
fn every_app_generates_consistent_traces_under_both_layouts() {
    let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners);
    for app in all_apps(Scale::Test) {
        let base = baseline_layout(&app.program, 64);
        let bspace = AddressSpace::build(&app.program, &base, 0);
        let bw = generate_traces(&app.program, &base, &bspace, &app.gen);

        let opt = optimize_program(&app.program, &mapping, PassConfig::default());
        let ospace = AddressSpace::build(&app.program, &opt, 0);
        let ow = generate_traces(&app.program, &opt, &ospace, &app.gen);

        assert_eq!(
            bw.total_accesses(),
            ow.total_accesses(),
            "{}: optimized layout changed the dynamic work",
            app.name()
        );
        assert!(bw.total_accesses() > 0, "{}: empty trace", app.name());
    }
}
