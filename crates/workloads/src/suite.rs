//! End-to-end experiment runner: compile (or not), generate traces,
//! simulate, and report — the shared machinery behind every figure.

use crate::apps::App;
use crate::gen::{generate_traces, TraceGen};
use hoploc_layout::{baseline_layout, optimize_program, PassConfig, ProgramLayout, SharedPolicy};
use hoploc_noc::L2ToMcMapping;
use hoploc_sim::{AddressSpace, PagePolicy, RunStats, SimConfig, Simulator, TraceWorkload};

/// Which side of a comparison a run represents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunKind {
    /// Original layouts, default OS placement.
    Baseline,
    /// Compiler-optimized layouts (plus the OS assist under page
    /// interleaving).
    Optimized,
    /// Original layouts under the OS first-touch page policy (§6.3).
    FirstTouch,
    /// The §2 optimal scheme: baseline layouts, nearest-MC redirection,
    /// ideal memory service.
    Optimal,
}

/// Builds the program layout an experiment side uses.
pub fn layout_for(
    app: &App,
    mapping: &L2ToMcMapping,
    sim: &SimConfig,
    kind: RunKind,
) -> ProgramLayout {
    layout_with(
        app,
        mapping,
        sim,
        kind,
        PassConfig::default().approx_threshold,
    )
}

/// [`layout_for`] with an explicit approximation threshold (the layout
/// pass's `approx_threshold` knob). Design-space search varies this
/// per candidate; verification must replay the candidate's exact plan,
/// so the threshold travels with the layout request rather than being
/// pinned to the pass default.
pub fn layout_with(
    app: &App,
    mapping: &L2ToMcMapping,
    sim: &SimConfig,
    kind: RunKind,
    approx_threshold: f64,
) -> ProgramLayout {
    match kind {
        RunKind::Optimized => {
            let cfg = PassConfig {
                granularity: sim.granularity,
                l2_mode: sim.l2_mode,
                shared_policy: SharedPolicy::OnChipFirst,
                line_bytes: sim.l2.line_bytes as u32,
                page_bytes: sim.page_bytes as u32,
                approx_threshold,
            };
            optimize_program(&app.program, mapping, cfg)
        }
        RunKind::Baseline | RunKind::FirstTouch | RunKind::Optimal => {
            baseline_layout(&app.program, mapping.mesh().num_nodes())
        }
    }
}

/// The OS page policy an experiment side uses.
fn policy_for(
    app: &App,
    layout: &ProgramLayout,
    space: &AddressSpace,
    sim: &SimConfig,
    kind: RunKind,
) -> PagePolicy {
    match kind {
        RunKind::Optimized => {
            let desired = space.desired_page_mcs(&app.program, layout, sim.page_bytes);
            if desired.is_empty() {
                PagePolicy::Interleaved
            } else {
                PagePolicy::Desired(desired)
            }
        }
        RunKind::FirstTouch => PagePolicy::FirstTouch,
        RunKind::Baseline | RunKind::Optimal => PagePolicy::Interleaved,
    }
}

/// Generates the trace workload for one side of an experiment.
pub fn build_workload(
    app: &App,
    mapping: &L2ToMcMapping,
    sim: &SimConfig,
    kind: RunKind,
    threads_per_core: usize,
) -> (TraceWorkload, PagePolicy) {
    let layout = layout_for(app, mapping, sim, kind);
    let space = AddressSpace::build(&app.program, &layout, 0);
    let policy = policy_for(app, &layout, &space, sim, kind);
    let gen = TraceGen {
        threads_per_core,
        ..app.gen
    };
    (generate_traces(&app.program, &layout, &space, &gen), policy)
}

/// Runs one application end to end.
pub fn run_app(app: &App, mapping: &L2ToMcMapping, sim: &SimConfig, kind: RunKind) -> RunStats {
    run_app_threads(app, mapping, sim, kind, 1)
}

/// Runs one application with a given thread-per-core count (Figure 24).
pub fn run_app_threads(
    app: &App,
    mapping: &L2ToMcMapping,
    sim: &SimConfig,
    kind: RunKind,
    threads_per_core: usize,
) -> RunStats {
    let mut cfg = sim.clone();
    cfg.optimal = kind == RunKind::Optimal;
    cfg.mlp = app.mlp;
    let (workload, policy) = build_workload(app, mapping, &cfg, kind, threads_per_core);
    Simulator::new(cfg.clone(), mapping.clone(), policy).run(&workload)
}

/// Runs a multiprogrammed mix: every application runs with one thread per
/// core on all cores (co-scheduled), with disjoint virtual address spaces.
/// Returns the combined run statistics (per-app finishes inside).
pub fn run_mix(apps: &[App], mapping: &L2ToMcMapping, sim: &SimConfig, kind: RunKind) -> RunStats {
    let mut cfg = sim.clone();
    cfg.optimal = kind == RunKind::Optimal;
    cfg.mlp = apps.iter().map(|a| a.mlp).max().unwrap_or(1);
    let mut merged_desired = std::collections::HashMap::new();
    let mut workloads = Vec::new();
    for (i, app) in apps.iter().enumerate() {
        let layout = layout_for(app, mapping, &cfg, kind);
        // 4 GiB of virtual space per application keeps them disjoint.
        let origin = (i as u64) << 32;
        let space = AddressSpace::build(&app.program, &layout, origin);
        if kind == RunKind::Optimized {
            merged_desired.extend(space.desired_page_mcs(&app.program, &layout, cfg.page_bytes));
        }
        workloads.push(generate_traces(&app.program, &layout, &space, &app.gen));
    }
    let policy = match kind {
        RunKind::Optimized if !merged_desired.is_empty() => PagePolicy::Desired(merged_desired),
        RunKind::FirstTouch => PagePolicy::FirstTouch,
        _ => PagePolicy::Interleaved,
    };
    let name = apps.iter().map(|a| a.name()).collect::<Vec<_>>().join("+");
    let mix = TraceWorkload::multiprogram(name, workloads);
    Simulator::new(cfg, mapping.clone(), policy).run(&mix)
}

/// Weighted speedup of an optimized mix over its baseline (Figure 25's
/// metric): `Σᵢ T_baseline(i) / T_optimized(i)` normalized by app count, so
/// 1.0 means no change.
pub fn weighted_speedup(baseline: &RunStats, optimized: &RunStats) -> f64 {
    assert_eq!(baseline.app_finish.len(), optimized.app_finish.len());
    let n = baseline.app_finish.len().max(1);
    baseline
        .app_finish
        .iter()
        .zip(&optimized.app_finish)
        .map(|(&b, &o)| if o == 0 { 1.0 } else { b as f64 / o as f64 })
        .sum::<f64>()
        / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{swim, wupwise, Scale};
    use hoploc_noc::{McPlacement, Mesh};

    fn setup() -> (SimConfig, L2ToMcMapping) {
        let sim = SimConfig::default();
        let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
        (sim, mapping)
    }

    #[test]
    fn baseline_and_optimized_run() {
        let (sim, mapping) = setup();
        let app = swim(Scale::Test);
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        assert!(base.total_accesses > 0);
        assert_eq!(base.total_accesses, opt.total_accesses, "same dynamic work");
    }

    #[test]
    fn optimized_localizes_offchip_traffic_swim() {
        let (sim, mapping) = setup();
        let app = swim(Scale::Test);
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        // The optimization's core claim: fewer hops per off-chip message.
        assert!(
            opt.net.off_chip.avg_hops() < base.net.off_chip.avg_hops(),
            "optimized {} !< baseline {}",
            opt.net.off_chip.avg_hops(),
            base.net.off_chip.avg_hops()
        );
    }

    #[test]
    fn optimal_beats_baseline() {
        let (sim, mapping) = setup();
        let app = wupwise(Scale::Test);
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let optimal = run_app(&app, &mapping, &sim, RunKind::Optimal);
        assert!(optimal.exec_cycles < base.exec_cycles);
    }

    #[test]
    fn mix_runs_and_reports_speedup() {
        let (sim, _) = setup();
        let mesh = Mesh::new(8, 8);
        let mapping = L2ToMcMapping::nearest_cluster(mesh, &McPlacement::Corners);
        let apps = vec![wupwise(Scale::Test), swim(Scale::Test)];
        let base = run_mix(&apps, &mapping, &sim, RunKind::Baseline);
        let opt = run_mix(&apps, &mapping, &sim, RunKind::Optimized);
        assert_eq!(base.app_finish.len(), 2);
        let ws = weighted_speedup(&base, &opt);
        assert!(
            ws > 0.5 && ws < 3.0,
            "weighted speedup {ws} out of sane range"
        );
    }
}
