//! Trace generation: replaying an affine program's iterations into
//! per-thread memory-access streams under a chosen layout.
//!
//! Each nest's parallel dimension is block-distributed over the threads
//! (OpenMP static scheduling, §3); each thread walks its chunk in
//! lexicographic order, evaluating every reference through the program
//! layout's address function. Sampling strides keep the streams tractable
//! while preserving the access-pattern geometry the optimization targets.

use hoploc_affine::{AccessFn, Program, RefKind};
use hoploc_layout::ProgramLayout;
use hoploc_sim::{Access, AddressSpace, ThreadTrace, TraceWorkload};

/// Trace-generation parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceGen {
    /// Sampling stride applied to the fastest-varying loop of each nest
    /// (1 = exact replay).
    pub fastest_stride: i64,
    /// Extra compute cycles charged per access when the array's layout was
    /// transformed — the division/modulo addressing overhead of §5.3 (the
    /// paper measured ≈4% of execution time).
    pub overhead_cycles: u32,
    /// Threads per core (Figure 24 uses 1, 2, 4).
    pub threads_per_core: usize,
    /// How many times heavy nests are replayed. Real applications iterate
    /// their hot nests over many timesteps; replaying captures the warm
    /// reuse that makes initialization cost negligible.
    pub hot_reps: usize,
    /// Multiplier on statement compute cycles: calibrates overall memory
    /// intensity (real cores retire many instructions between misses).
    pub gap_scale: u32,
    /// Span of deterministic per-thread timing jitter added to iteration
    /// gaps. Without it every thread misses in lockstep — synchronized
    /// response bursts that no real multithreaded execution produces.
    pub desync_jitter: u32,
    /// Additional fastest-dimension subsampling applied to *light* nests
    /// (weight below 1/8 of the heaviest), so one-shot initialization does
    /// not dominate the trace the way it never dominates real executions.
    /// Strides up to half a page still touch every page, preserving
    /// first-touch allocation semantics.
    pub light_stride_factor: i64,
}

impl Default for TraceGen {
    fn default() -> Self {
        Self {
            fastest_stride: 1,
            overhead_cycles: 1,
            threads_per_core: 1,
            hot_reps: 1,
            gap_scale: 1,
            desync_jitter: 8,
            light_stride_factor: 1,
        }
    }
}

impl TraceGen {
    /// The tuning the 13 applications use: weight-aware replay (hot nests
    /// twice for warm reuse, light nests subsampled 8×) at the given
    /// fastest-dimension stride.
    pub fn tuned(fastest_stride: i64) -> Self {
        Self {
            fastest_stride,
            hot_reps: 2,
            gap_scale: 8,
            light_stride_factor: 32,
            ..Self::default()
        }
    }

    /// Like [`TraceGen::tuned`] but without compute-gap scaling: the
    /// memory-bound applications (fma3d, minighost) whose bank pressure
    /// Figure 18 highlights.
    pub fn tuned_intense(fastest_stride: i64) -> Self {
        // Little gap scaling and no desynchronization: these applications
        // keep many correlated misses in flight (the paper's "much higher
        // memory parallelism demand").
        Self {
            gap_scale: 2,
            desync_jitter: 0,
            ..Self::tuned(fastest_stride)
        }
    }
}

/// Generates the workload traces for `program` under `layout`.
///
/// The thread count is `layout.binding().len() × gen.threads_per_core`;
/// thread `t` runs on `binding.node_of(t / threads_per_core)`, so the
/// iteration chunks owned by one core stay contiguous and consistent with
/// the layout's ownership model.
pub fn generate_traces(
    program: &Program,
    layout: &ProgramLayout,
    space: &AddressSpace,
    gen: &TraceGen,
) -> TraceWorkload {
    assert!(gen.fastest_stride >= 1, "stride must be at least 1");
    assert!(
        gen.threads_per_core >= 1,
        "need at least one thread per core"
    );
    let n_cores = layout.binding().len();
    let n_threads = n_cores * gen.threads_per_core;

    let mut traces: Vec<ThreadTrace> = (0..n_threads)
        .map(|t| {
            ThreadTrace::new(
                layout.binding().node_of(t / gen.threads_per_core),
                Vec::new(),
            )
        })
        .collect();

    let max_weight = program
        .nests()
        .iter()
        .map(|n| n.weight())
        .max()
        .unwrap_or(1);
    for (nest_idx, nest) in program.nests().iter().enumerate() {
        let light = nest.weight().saturating_mul(8) < max_weight;
        let mut strides = vec![1i64; nest.depth()];
        if let Some(last) = strides.last_mut() {
            *last = gen.fastest_stride;
        }
        // Never subsample the parallel loop: chunk ownership must be exact.
        strides[nest.parallel_dim()] = 1;
        if light {
            // Distribute the light-nest subsampling across the sequential
            // loops, innermost first, so shallow inner loops cannot absorb
            // (and thereby cancel) the factor.
            let trips = nest.trip_count_estimates();
            let mut remaining = gen.light_stride_factor.max(1);
            for k in (0..nest.depth()).rev() {
                if k == nest.parallel_dim() || remaining <= 1 {
                    continue;
                }
                let room = (trips[k] / strides[k]).max(1);
                let take = remaining.min(room);
                strides[k] *= take;
                remaining = (remaining + take - 1) / take;
            }
        }
        let reps = if light { 1 } else { gen.hot_reps.max(1) };
        // Light (setup) nests also run at low issue intensity: on real
        // inputs they are a vanishing fraction of execution, so they must
        // not contribute burst congestion.
        let gap_mult = gen.gap_scale
            * if light {
                gen.light_stride_factor.max(1) as u32
            } else {
                1
            };

        #[allow(clippy::needless_range_loop)]
        for t in 0..n_threads {
            let accesses = &mut traces[t].accesses;
            let mut jit_state: u64 = (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for _rep in 0..reps {
                nest.walk_core_iterations(t, n_threads, &strides, |iter| {
                    for (stmt_idx, stmt) in nest.body().iter().enumerate() {
                        for (ri, r) in stmt.refs.iter().enumerate() {
                            let dvec: Vec<i64> = match &r.access {
                                AccessFn::Affine(a) => a.eval_slice(iter).into_inner(),
                                AccessFn::Indexed { table, pos } => {
                                    let tab = program.table(*table);
                                    if tab.is_empty() {
                                        continue;
                                    }
                                    let p = pos.eval(iter).rem_euclid(tab.len() as i64);
                                    vec![tab[p as usize]]
                                }
                            };
                            let vaddr = space.addr_of(layout, r.array, &dvec);
                            // Charge the (strength-reduced) division/modulo
                            // addressing overhead once per iteration, not per
                            // reference — matching the paper's ≈4% aggregate.
                            let transformed = !layout.layout(r.array).is_original();
                            let base_gap = if ri == 0 {
                                // xorshift-based deterministic jitter.
                                jit_state ^= jit_state << 13;
                                jit_state ^= jit_state >> 7;
                                jit_state ^= jit_state << 17;
                                let jitter = if gen.desync_jitter == 0 {
                                    0
                                } else {
                                    (jit_state % gen.desync_jitter as u64) as u32
                                };
                                stmt.compute_cycles * gap_mult + jitter
                            } else {
                                1
                            };
                            let gap = base_gap
                                + if transformed && ri == 0 {
                                    gen.overhead_cycles
                                } else {
                                    0
                                };
                            // A stable per-static-reference id: the
                            // stride-prefetcher's training key (its "PC").
                            let ref_id = ((nest_idx as u32) << 16)
                                | ((stmt_idx as u32) << 8)
                                | (ri as u32 & 0xff);
                            accesses.push(Access {
                                vaddr,
                                write: r.kind == RefKind::Write,
                                gap,
                                ref_id,
                            });
                        }
                    }
                });
            }
        }
    }

    TraceWorkload::single(program.name().to_string(), traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_affine::{AffineAccess, ArrayDecl, ArrayRef, Loop, LoopNest, Program, Statement};
    use hoploc_layout::{baseline_layout, optimize_program, PassConfig};
    use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh};

    fn program() -> Program {
        let mut p = Program::new("gen-test");
        let x = p.add_array(ArrayDecl::new("X", vec![128, 64], 8));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 128), Loop::constant(0, 64)],
            0,
            vec![Statement::new(
                vec![
                    ArrayRef::read(x, AffineAccess::identity(2)),
                    ArrayRef::write(x, AffineAccess::identity(2)),
                ],
                3,
            )],
            1,
        ));
        p
    }

    fn mapping() -> L2ToMcMapping {
        L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners)
    }

    #[test]
    fn exact_replay_covers_all_iterations() {
        let p = program();
        let layout = baseline_layout(&p, 64);
        let space = AddressSpace::build(&p, &layout, 0);
        let w = generate_traces(&p, &layout, &space, &TraceGen::default());
        assert_eq!(w.threads.len(), 64);
        // 128 × 64 iterations × 2 refs total across all threads.
        assert_eq!(w.total_accesses(), 128 * 64 * 2);
    }

    #[test]
    fn strided_sampling_reduces_volume() {
        let p = program();
        let layout = baseline_layout(&p, 64);
        let space = AddressSpace::build(&p, &layout, 0);
        let gen = TraceGen {
            fastest_stride: 4,
            ..TraceGen::default()
        };
        let w = generate_traces(&p, &layout, &space, &gen);
        assert_eq!(w.total_accesses(), 128 * 16 * 2);
    }

    #[test]
    fn writes_flagged() {
        let p = program();
        let layout = baseline_layout(&p, 64);
        let space = AddressSpace::build(&p, &layout, 0);
        let w = generate_traces(&p, &layout, &space, &TraceGen::default());
        let (reads, writes): (Vec<&Access>, Vec<&Access>) =
            w.threads[0].accesses.iter().partition(|a| !a.write);
        assert_eq!(reads.len(), writes.len());
    }

    #[test]
    fn optimized_layout_adds_overhead_gap() {
        let p = program();
        let space_base;
        let base = {
            let l = baseline_layout(&p, 64);
            space_base = AddressSpace::build(&p, &l, 0);
            generate_traces(&p, &l, &space_base, &TraceGen::default())
        };
        let opt_layout = optimize_program(&p, &mapping(), PassConfig::default());
        let space_opt = AddressSpace::build(&p, &opt_layout, 0);
        let opt = generate_traces(&p, &opt_layout, &space_opt, &TraceGen::default());
        let g = |w: &TraceWorkload| w.threads[0].accesses[0].gap;
        assert_eq!(
            g(&opt),
            g(&base) + 1,
            "transformed arrays pay addressing overhead"
        );
    }

    #[test]
    fn threads_per_core_multiplies_threads() {
        let p = program();
        let layout = baseline_layout(&p, 64);
        let space = AddressSpace::build(&p, &layout, 0);
        let gen = TraceGen {
            threads_per_core: 2,
            ..TraceGen::default()
        };
        let w = generate_traces(&p, &layout, &space, &gen);
        assert_eq!(w.threads.len(), 128);
        // Threads 0 and 1 share node 0.
        assert_eq!(w.threads[0].node, w.threads[1].node);
        // Total work unchanged.
        assert_eq!(w.total_accesses(), 128 * 64 * 2);
    }

    #[test]
    fn thread_chunks_partition_the_parallel_dim() {
        // Each element of X is written exactly once across all threads.
        let p = program();
        let layout = baseline_layout(&p, 64);
        let space = AddressSpace::build(&p, &layout, 0);
        let w = generate_traces(&p, &layout, &space, &TraceGen::default());
        let mut seen = std::collections::HashSet::new();
        for t in &w.threads {
            for a in t.accesses.iter().filter(|a| a.write) {
                assert!(seen.insert(a.vaddr), "duplicate write to {:#x}", a.vaddr);
            }
        }
        assert_eq!(seen.len(), 128 * 64);
    }
}
