//! The paper's 13 applications (SPEC OMP2001 minus *equake*, plus the
//! Mantevo mini-apps), modelled as parameterized affine programs.
//!
//! Each model reproduces the published *computational structure* of its
//! application — the array shapes, access matrices, parallelization,
//! inter-thread sharing, and memory intensity that the layout pass and the
//! simulator actually react to — at a scale that simulates in seconds.
//! §2 of DESIGN.md documents this substitution.
//!
//! Structural levers used:
//!
//! * **Transposed accesses** (`X[j][i]` under an `i`-parallel nest) force a
//!   non-trivial `U` (swim, apsi, galgel).
//! * **Mismatched initialization** (init parallelized along a different
//!   dimension than the hot compute) breaks the first-touch policy's
//!   assumption for most applications (§6.3) — except wupwise, gafort, and
//!   minimd, whose first touch matches the compute pattern.
//! * **Indexed references** through profiled tables model the CRS /
//!   neighbor-list accesses of hpccg, minimd, ammp, gafort, and fma3d
//!   (§5.4); table noise controls approximability.
//! * **Reader nests whose subscripts ignore the parallel iterator** create
//!   the all-threads-read-everything sharing that gives fma3d and
//!   minighost their high bank-queue pressure and M2 preference (§6.2).

use hoploc_affine::{
    AffineAccess, AffineExpr, ArrayDecl, ArrayId, ArrayRef, IMat, IVec, Loop, LoopNest, Program,
    Statement,
};
use hoploc_layout::AppProfile;

use crate::gen::TraceGen;

/// Problem-size scaling.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny inputs for unit tests (sub-second full-suite runs).
    Test,
    /// The figure-reproduction inputs.
    Bench,
}

impl Scale {
    fn d2(self) -> (i64, i64) {
        match self {
            Scale::Test => (96, 64),
            Scale::Bench => (512, 256),
        }
    }

    fn d3(self) -> (i64, i64, i64) {
        match self {
            Scale::Test => (24, 16, 16),
            Scale::Bench => (128, 64, 40),
        }
    }

    fn d1(self) -> i64 {
        match self {
            Scale::Test => 8 * 1024,
            Scale::Bench => 96 * 1024,
        }
    }
}

/// One modelled application.
#[derive(Clone, Debug)]
pub struct App {
    /// The affine program (arrays, tables, nests).
    pub program: Program,
    /// Compile-time profile for the mapping-selection analysis (§4).
    pub profile: AppProfile,
    /// Trace-generation parameters tuned to the app's memory intensity.
    pub gen: TraceGen,
    /// Whether the application's first touch matches its hot access
    /// pattern (§6.3: true only for wupwise, gafort, minimd).
    pub first_touch_friendly: bool,
    /// Outstanding misses each core sustains (memory-level parallelism
    /// demand; highest for fma3d and minighost, §6.2).
    pub mlp: u32,
}

impl App {
    /// The application's name.
    pub fn name(&self) -> &str {
        self.program.name()
    }
}

/// Element size used throughout (double precision).
const F64: u32 = 8;

/// Identity access with per-dimension offsets.
fn ident_off(offsets: Vec<i64>) -> AffineAccess {
    let n = offsets.len();
    AffineAccess::new(IMat::identity(n), IVec::new(offsets))
}

/// A nest over `[0, n0) × [0, n1)` with the first loop parallel.
fn nest2(n0: i64, n1: i64, body: Vec<Statement>, weight: u64) -> LoopNest {
    LoopNest::new(
        vec![Loop::constant(0, n0), Loop::constant(0, n1)],
        0,
        body,
        weight,
    )
}

/// A 3-D nest `[h, d−h)³`, first loop parallel.
fn nest3_halo(d: (i64, i64, i64), h: i64, body: Vec<Statement>, weight: u64) -> LoopNest {
    LoopNest::new(
        vec![
            Loop::constant(h, d.0 - h),
            Loop::constant(h, d.1 - h),
            Loop::constant(h, d.2 - h),
        ],
        0,
        body,
        weight,
    )
}

/// A 1-D parallel sweep nest.
fn nest1(n: i64, body: Vec<Statement>, weight: u64) -> LoopNest {
    LoopNest::new(vec![Loop::constant(0, n)], 0, body, weight)
}

/// An initialization nest writing `arrays` identically (`X[i][j] = …`),
/// parallel along dimension 0 — this matches a row-partitioned layout, so
/// whether it *helps* first-touch depends on whether the compute nests
/// also partition along rows.
fn init2(n0: i64, n1: i64, arrays: &[ArrayId]) -> LoopNest {
    nest2(
        n0,
        n1,
        vec![Statement::new(
            arrays
                .iter()
                .map(|&a| ArrayRef::write(a, ident_off(vec![0, 0])))
                .collect(),
            1,
        )],
        1,
    )
}

/// A near-affine index table: a diagonal band with bounded jitter, like a
/// reordered-mesh CRS column index. Approximates well (§5.4).
fn banded_table(len: i64, extent: i64, jitter: i64, seed: i64) -> Vec<i64> {
    (0..len)
        .map(|k| {
            let base = k * extent / len;
            let j = ((k * 1103515245 + seed * 12345) >> 4) % (2 * jitter + 1) - jitter;
            (base + j).clamp(0, extent - 1)
        })
        .collect()
}

/// A scrambled index table with no affine structure (fails approximation).
fn scrambled_table(len: i64, extent: i64, seed: i64) -> Vec<i64> {
    (0..len)
        .map(|k| ((k * 2654435761 + seed) % extent).abs())
        .collect()
}

/// **wupwise** — lattice-QCD BiCGStab: regular 3-D mat-vec sweeps whose
/// initialization matches the compute partitioning (first-touch friendly).
pub fn wupwise(scale: Scale) -> App {
    let d = scale.d3();
    let mut p = Program::new("wupwise");
    let psi = p.add_array(ArrayDecl::new("psi", vec![d.0, d.1, d.2], F64));
    let gauge = p.add_array(ArrayDecl::new("gauge", vec![d.0, d.1, d.2], F64));
    let res = p.add_array(ArrayDecl::new("res", vec![d.0, d.1, d.2], F64));
    // Init matches compute: both partition dimension 0.
    p.add_nest(nest3_halo(
        d,
        0,
        vec![Statement::new(
            vec![
                ArrayRef::write(psi, ident_off(vec![0, 0, 0])),
                ArrayRef::write(gauge, ident_off(vec![0, 0, 0])),
            ],
            1,
        )],
        1,
    ));
    // Hot mat-vec: res = gauge ⊗ psi with nearest-neighbour coupling.
    p.add_nest(nest3_halo(
        d,
        1,
        vec![Statement::new(
            vec![
                ArrayRef::read(psi, ident_off(vec![0, 0, 0])),
                ArrayRef::read(psi, ident_off(vec![1, 0, 0])),
                ArrayRef::read(gauge, ident_off(vec![0, 0, 0])),
                ArrayRef::write(res, ident_off(vec![0, 0, 0])),
            ],
            6,
        )],
        40,
    ));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 3.0,
            sharing_fraction: 0.08,
        },
        gen: TraceGen::tuned(2),
        first_touch_friendly: true,
        mlp: 2,
    }
}

/// **swim** — shallow-water stencils over multi-field grids whose hot
/// loops are parallelized along the grid's *second*-fastest dimension
/// (`U[j][i][k]` under an `i`-parallel `(i, j, k)` nest): spatial locality
/// is identical to the baseline, but partitioning needs the dimension swap
/// `U ≠ I`, and the row-parallel initialization leaves first-touch pages
/// on the wrong controllers.
pub fn swim(scale: Scale) -> App {
    let d = scale.d3();
    // Arrays are declared [d.1][d.0][d.2]: subscript 0 is indexed by the
    // middle loop, subscript 1 by the parallel loop.
    let dims = vec![d.1, d.0, d.2];
    let mid = IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0], &[0, 0, 1]]);
    let mut p = Program::new("swim");
    let u = p.add_array(ArrayDecl::new("U", dims.clone(), F64));
    let v = p.add_array(ArrayDecl::new("V", dims.clone(), F64));
    let pa = p.add_array(ArrayDecl::new("P", dims, F64));
    // Row-major init, parallel along the slowest array dimension: first
    // touch lands on j-slab owners, not the compute owners.
    p.add_nest(LoopNest::new(
        vec![
            Loop::constant(0, d.1),
            Loop::constant(0, d.0),
            Loop::constant(0, d.2),
        ],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::write(u, ident_off(vec![0, 0, 0])),
                ArrayRef::write(v, ident_off(vec![0, 0, 0])),
                ArrayRef::write(pa, ident_off(vec![0, 0, 0])),
            ],
            1,
        )],
        1,
    ));
    // Hot stencils: X[j][i][k] under i-parallel (i, j, k) loops; the
    // innermost k still walks the fastest dimension (locality-neutral).
    let hot = |a: ArrayId| {
        vec![
            ArrayRef::read(a, AffineAccess::new(mid.clone(), IVec::zeros(3))),
            ArrayRef::read(a, AffineAccess::new(mid.clone(), IVec::new(vec![-1, 0, 0]))),
            ArrayRef::read(a, AffineAccess::new(mid.clone(), IVec::new(vec![1, 0, 0]))),
            ArrayRef::write(a, AffineAccess::new(mid.clone(), IVec::zeros(3))),
        ]
    };
    let nest = |body| {
        LoopNest::new(
            vec![
                Loop::constant(0, d.0),
                Loop::constant(1, d.1 - 1),
                Loop::constant(0, d.2),
            ],
            0,
            body,
            30,
        )
    };
    p.add_nest(nest(vec![Statement::new(hot(u), 4)]));
    p.add_nest(nest(vec![Statement::new(hot(v), 4)]));
    p.add_nest(nest(vec![Statement::new(hot(pa), 4)]));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 5.0,
            sharing_fraction: 0.10,
        },
        gen: TraceGen::tuned(8),
        first_touch_friendly: false,
        mlp: 2,
    }
}

/// **mgrid** — multigrid V-cycle: a 7-point relaxation plus a coarsening
/// nest with a strided (`2i`) access matrix.
pub fn mgrid(scale: Scale) -> App {
    let d = scale.d3();
    let mut p = Program::new("mgrid");
    let a = p.add_array(ArrayDecl::new("A", vec![d.0, d.1, d.2], F64));
    let c = p.add_array(ArrayDecl::new("C", vec![d.0 / 2, d.1 / 2, d.2 / 2], F64));
    // Init along dim 1 (mismatched with the dim-0-parallel compute).
    p.add_nest(LoopNest::new(
        vec![
            Loop::constant(0, d.1),
            Loop::constant(0, d.0),
            Loop::constant(0, d.2),
        ],
        0,
        vec![Statement::new(
            vec![ArrayRef::write(
                a,
                AffineAccess::new(
                    IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0], &[0, 0, 1]]),
                    IVec::zeros(3),
                ),
            )],
            1,
        )],
        1,
    ));
    // Relaxation: 7-point stencil.
    p.add_nest(nest3_halo(
        d,
        1,
        vec![Statement::new(
            vec![
                ArrayRef::read(a, ident_off(vec![0, 0, 0])),
                ArrayRef::read(a, ident_off(vec![-1, 0, 0])),
                ArrayRef::read(a, ident_off(vec![1, 0, 0])),
                ArrayRef::read(a, ident_off(vec![0, -1, 0])),
                ArrayRef::write(a, ident_off(vec![0, 0, 0])),
            ],
            5,
        )],
        20,
    ));
    // Restriction: C[i][j][k] = A[2i][2j][2k].
    let twos = IMat::from_rows(&[&[2, 0, 0], &[0, 2, 0], &[0, 0, 2]]);
    p.add_nest(LoopNest::new(
        vec![
            Loop::constant(0, d.0 / 2),
            Loop::constant(0, d.1 / 2),
            Loop::constant(0, d.2 / 2),
        ],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::read(a, AffineAccess::new(twos, IVec::zeros(3))),
                ArrayRef::write(c, ident_off(vec![0, 0, 0])),
            ],
            3,
        )],
        5,
    ));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 4.0,
            sharing_fraction: 0.12,
        },
        gen: TraceGen::tuned(8),
        first_touch_friendly: false,
        mlp: 2,
    }
}

/// **applu** — SSOR sweeps whose two hot nests parallelize *different*
/// dimensions, so no single layout satisfies every reference (the
/// weighted choice keeps the heavier sweep).
pub fn applu(scale: Scale) -> App {
    let d = scale.d3();
    let mut p = Program::new("applu");
    let rsd = p.add_array(ArrayDecl::new("rsd", vec![d.0, d.1, d.2], F64));
    let u = p.add_array(ArrayDecl::new("u", vec![d.0, d.1, d.2], F64));
    p.add_nest(LoopNest::new(
        vec![
            Loop::constant(0, d.1),
            Loop::constant(0, d.0),
            Loop::constant(0, d.2),
        ],
        0,
        vec![Statement::new(
            vec![ArrayRef::write(
                rsd,
                AffineAccess::new(
                    IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0], &[0, 0, 1]]),
                    IVec::zeros(3),
                ),
            )],
            1,
        )],
        1,
    ));
    // Heavy lower-triangular sweep, dim-0 parallel.
    p.add_nest(nest3_halo(
        d,
        1,
        vec![Statement::new(
            vec![
                ArrayRef::read(rsd, ident_off(vec![0, 0, 0])),
                ArrayRef::read(rsd, ident_off(vec![-1, 0, 0])),
                ArrayRef::read(u, ident_off(vec![0, 0, 0])),
                ArrayRef::write(rsd, ident_off(vec![0, 0, 0])),
            ],
            5,
        )],
        25,
    ));
    // Lighter upper sweep parallelized along dim 1: its references prefer
    // partitioning data dimension 1 — unsatisfiable together with the
    // dim-0 sweep.
    p.add_nest(LoopNest::new(
        vec![
            Loop::constant(1, d.1 - 1),
            Loop::constant(1, d.0 - 1),
            Loop::constant(1, d.2 - 1),
        ],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::read(
                    rsd,
                    AffineAccess::new(
                        IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0], &[0, 0, 1]]),
                        IVec::zeros(3),
                    ),
                ),
                ArrayRef::write(
                    u,
                    AffineAccess::new(
                        IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0], &[0, 0, 1]]),
                        IVec::zeros(3),
                    ),
                ),
            ],
            5,
        )],
        3,
    ));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 4.0,
            sharing_fraction: 0.15,
        },
        gen: TraceGen::tuned(8),
        first_touch_friendly: false,
        mlp: 2,
    }
}

/// **galgel** — Galerkin FEM linear algebra: a matmul-shaped kernel where
/// the `B` operand is read by every thread (its references cannot be
/// partitioned) while `A` and `C` localize cleanly.
pub fn galgel(scale: Scale) -> App {
    let (n0, n1) = scale.d2();
    let n0 = n0 / 2;
    let k_dim = n1 / 4;
    let mut p = Program::new("galgel");
    let a = p.add_array(ArrayDecl::new("A", vec![n0, k_dim], F64));
    let b = p.add_array(ArrayDecl::new("B", vec![k_dim, n1], F64));
    let c = p.add_array(ArrayDecl::new("C", vec![n0, n1], F64));
    p.add_nest(init2(n0, k_dim, &[a]));
    p.add_nest(init2(k_dim, n1, &[b]));
    // C[i][j] += A[i][k] * B[k][j], loops (i, k, j), i parallel.
    p.add_nest(LoopNest::new(
        vec![
            Loop::constant(0, n0),
            Loop::constant(0, k_dim),
            Loop::constant(0, n1),
        ],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::read(
                    a,
                    AffineAccess::new(IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0]]), IVec::zeros(2)),
                ),
                ArrayRef::read(
                    b,
                    AffineAccess::new(IMat::from_rows(&[&[0, 1, 0], &[0, 0, 1]]), IVec::zeros(2)),
                ),
                ArrayRef::write(
                    c,
                    AffineAccess::new(IMat::from_rows(&[&[1, 0, 0], &[0, 0, 1]]), IVec::zeros(2)),
                ),
            ],
            4,
        )],
        3,
    ));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 3.0,
            sharing_fraction: 0.25,
        },
        gen: TraceGen::tuned(16),
        first_touch_friendly: false,
        mlp: 2,
    }
}

/// **apsi** — mesoscale meteorology: the dominant vertical-diffusion
/// sweep is parallelized along the grid's middle dimension (`T[j][i][k]`)
/// while a lighter horizontal sweep prefers the untransformed partitioning
/// — a weighted conflict the pass resolves toward the heavy sweep.
pub fn apsi(scale: Scale) -> App {
    let d = scale.d3();
    let dims = vec![d.1, d.0, d.2];
    let mid = IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0], &[0, 0, 1]]);
    let mut p = Program::new("apsi");
    let t = p.add_array(ArrayDecl::new("T", dims.clone(), F64));
    let q = p.add_array(ArrayDecl::new("Q", dims, F64));
    p.add_nest(LoopNest::new(
        vec![
            Loop::constant(0, d.1),
            Loop::constant(0, d.0),
            Loop::constant(0, d.2),
        ],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::write(t, ident_off(vec![0, 0, 0])),
                ArrayRef::write(q, ident_off(vec![0, 0, 0])),
            ],
            1,
        )],
        1,
    ));
    // Heavy vertical diffusion: mid-dimension parallel.
    p.add_nest(LoopNest::new(
        vec![
            Loop::constant(0, d.0),
            Loop::constant(1, d.1 - 1),
            Loop::constant(0, d.2),
        ],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::read(t, AffineAccess::new(mid.clone(), IVec::zeros(3))),
                ArrayRef::read(t, AffineAccess::new(mid.clone(), IVec::new(vec![-1, 0, 0]))),
                ArrayRef::read(q, AffineAccess::new(mid.clone(), IVec::zeros(3))),
                ArrayRef::write(t, AffineAccess::new(mid.clone(), IVec::zeros(3))),
            ],
            4,
        )],
        24,
    ));
    // Lighter horizontal sweep: identity access, prefers the original
    // partitioning (loses the weighted vote).
    p.add_nest(LoopNest::new(
        vec![
            Loop::constant(0, d.1),
            Loop::constant(0, d.0),
            Loop::constant(0, d.2),
        ],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::read(t, ident_off(vec![0, 0, 0])),
                ArrayRef::write(q, ident_off(vec![0, 0, 0])),
            ],
            3,
        )],
        2,
    ));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 5.0,
            sharing_fraction: 0.10,
        },
        gen: TraceGen::tuned(8),
        first_touch_friendly: false,
        mlp: 2,
    }
}

/// **gafort** — genetic algorithm: population arrays accessed through a
/// *sorted* (near-affine) selection table; first touch matches the compute
/// pattern.
pub fn gafort(scale: Scale) -> App {
    // Population arrays sized past per-thread L2 so selection sweeps
    // stream off-chip, as with the paper's large input sets.
    let n = scale.d1() * 2;
    let inner = 64i64;
    let blk = |off: i64| AffineAccess::new(IMat::from_rows(&[&[inner, 1]]), IVec::new(vec![off]));
    let mut p = Program::new("gafort");
    let pop = p.add_array(ArrayDecl::new("pop", vec![n], F64));
    let fit = p.add_array(ArrayDecl::new("fit", vec![n], F64));
    let sel = p.add_table(banded_table(n, n, 16, 7));
    // Init = compute partitioning (first-touch friendly).
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, n / inner), Loop::constant(0, inner)],
        0,
        vec![Statement::new(
            vec![ArrayRef::write(pop, blk(0)), ArrayRef::write(fit, blk(0))],
            1,
        )],
        1,
    ));
    // Selection + crossover sweep: indexed but nearly sorted.
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, n / inner), Loop::constant(0, inner)],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::indexed_read(pop, sel, AffineExpr::new(vec![inner, 1], 0)),
                ArrayRef::read(fit, blk(0)),
                ArrayRef::write(pop, blk(0)),
            ],
            6,
        )],
        20,
    ));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 2.0,
            sharing_fraction: 0.05,
        },
        gen: TraceGen {
            gap_scale: 4,
            ..TraceGen::tuned(4)
        },
        first_touch_friendly: true,
        mlp: 2,
    }
}

/// **fma3d** — FEM crash simulation: element-to-node gather/scatter over
/// a cache-exceeding mesh plus a shared *contact region* (the first eighth
/// of the nodes) that every element consults — the data-popularity
/// imbalance and memory-parallelism demand behind fma3d's standout bank
/// pressure (Figure 18) and M2 affinity (§6.2).
pub fn fma3d(scale: Scale) -> App {
    let n = scale.d1() * 8;
    let inner = 64i64;
    let mut p = Program::new("fma3d");
    let nodes = p.add_array(ArrayDecl::new("nodes", vec![n], F64));
    let accel = p.add_array(ArrayDecl::new("accel", vec![n], F64));
    let conn = p.add_table(banded_table(n, n, 4096, 3));
    // The contact region: the first eighth of the nodes, shared by every
    // element — the data-popularity imbalance that concentrates load on
    // one controller under M1 and makes fma3d prefer M2 (§6.2).
    let hub = p.add_table(banded_table(n, n / 8, 2048, 17));
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, n / inner), Loop::constant(0, inner)],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::write(
                    nodes,
                    AffineAccess::new(IMat::from_rows(&[&[inner, 1]]), IVec::zeros(1)),
                ),
                ArrayRef::write(
                    accel,
                    AffineAccess::new(IMat::from_rows(&[&[inner, 1]]), IVec::zeros(1)),
                ),
            ],
            1,
        )],
        1,
    ));
    // Element-to-node gather/scatter over the whole mesh plus the contact
    // lookup into the hub region, streaming the cache-exceeding node set
    // every timestep at minimal compute.
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, n / inner), Loop::constant(0, inner)],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::indexed_read(nodes, conn, AffineExpr::new(vec![inner, 1], 0)),
                ArrayRef::indexed_read(nodes, hub, AffineExpr::new(vec![inner, 1], 0)),
                ArrayRef::write(
                    nodes,
                    AffineAccess::new(IMat::from_rows(&[&[inner, 1]]), IVec::zeros(1)),
                ),
                ArrayRef::read(
                    accel,
                    AffineAccess::new(IMat::from_rows(&[&[inner, 1]]), IVec::zeros(1)),
                ),
            ],
            1,
        )],
        15,
    ));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 14.0,
            sharing_fraction: 0.50,
        },
        gen: TraceGen::tuned_intense(8),
        first_touch_friendly: false,
        mlp: 6,
    }
}

/// **art** — adaptive-resonance neural net: small weight matrices with
/// high reuse (lowest off-chip fraction in the suite).
pub fn art(scale: Scale) -> App {
    let (n0, n1) = scale.d2();
    let (m0, m1) = (n0 / 4, n1 / 4);
    let mut p = Program::new("art");
    let w = p.add_array(ArrayDecl::new("W", vec![m0, m1], F64));
    let f1 = p.add_array(ArrayDecl::new("F1", vec![m0, m1], F64));
    p.add_nest(init2(m0, m1, &[w, f1]));
    // Repeated passes over a small working set.
    p.add_nest(nest2(
        m0,
        m1,
        vec![Statement::new(
            vec![
                ArrayRef::read(w, ident_off(vec![0, 0])),
                ArrayRef::read(f1, ident_off(vec![0, 0])),
                ArrayRef::write(f1, ident_off(vec![0, 0])),
            ],
            10,
        )],
        2,
    ));
    p.add_nest(nest2(
        m0,
        m1,
        vec![Statement::new(
            vec![
                ArrayRef::read(w, ident_off(vec![0, 0])),
                ArrayRef::write(w, ident_off(vec![0, 0])),
            ],
            10,
        )],
        2,
    ));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 1.0,
            sharing_fraction: 0.05,
        },
        gen: TraceGen::tuned(1),
        first_touch_friendly: false,
        mlp: 2,
    }
}

/// **ammp** — molecular dynamics with two neighbour tables: a cell-sorted
/// one that approximates well and a scrambled long-range one that does not
/// (its array stays unoptimized, lowering Table 2 coverage).
pub fn ammp(scale: Scale) -> App {
    // Working set sized to stay L2-resident per thread: ammp's force
    // arrays are small relative to its (table-driven) access irregularity.
    let n = scale.d1() / 2;
    let mut p = Program::new("ammp");
    let atoms = p.add_array(ArrayDecl::new("atoms", vec![n], F64));
    let forces = p.add_array(ArrayDecl::new("forces", vec![n], F64));
    let far = p.add_array(ArrayDecl::new("far", vec![n], F64));
    let near_t = p.add_table(banded_table(n, n, 32, 11));
    let far_t = p.add_table(scrambled_table(n, n, 5));
    p.add_nest(nest1(
        n,
        vec![Statement::new(
            vec![
                ArrayRef::write(atoms, ident_off(vec![0])),
                ArrayRef::write(far, ident_off(vec![0])),
            ],
            1,
        )],
        1,
    ));
    // Short-range forces: cell-sorted neighbours, localizable.
    p.add_nest(nest1(
        n,
        vec![Statement::new(
            vec![
                ArrayRef::indexed_read(atoms, near_t, AffineExpr::var(1, 0)),
                ArrayRef::write(forces, ident_off(vec![0])),
            ],
            5,
        )],
        16,
    ));
    // Long-range correction: scattered lookups, refreshed rarely — the
    // §5.4 "inaccuracy can be very bad" case the pass declines to touch.
    p.add_nest(nest1(
        n,
        vec![Statement::new(
            vec![ArrayRef::indexed_read(far, far_t, AffineExpr::var(1, 0))],
            5,
        )],
        1,
    ));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 3.0,
            sharing_fraction: 0.20,
        },
        gen: TraceGen::tuned(1),
        first_touch_friendly: false,
        mlp: 2,
    }
}

/// **hpccg** — conjugate gradient with a CRS SpMV: the matrix values
/// stream affinely, the `x` gather goes through a banded column-index
/// table (the paper's own §5.4 example), plus affine vector updates.
pub fn hpccg(scale: Scale) -> App {
    let rows = scale.d1() / 2;
    let nnz_per_row = 8i64;
    let nnz = rows * nnz_per_row;
    let mut p = Program::new("hpccg");
    let val = p.add_array(ArrayDecl::new("val", vec![nnz], F64));
    let x = p.add_array(ArrayDecl::new("x", vec![rows], F64));
    let y = p.add_array(ArrayDecl::new("y", vec![rows], F64));
    // 27-point-style band: col ≈ row + jitter.
    let col_idx = p.add_table(banded_table(nnz, rows, 24, 13));
    p.add_nest(nest1(
        rows,
        vec![Statement::new(
            vec![
                ArrayRef::write(x, ident_off(vec![0])),
                ArrayRef::write(y, ident_off(vec![0])),
            ],
            1,
        )],
        1,
    ));
    // SpMV: for each row i, for each nonzero j: y[i] += val[i*nnz+j] * x[col[i*nnz+j]].
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, rows), Loop::constant(0, nnz_per_row)],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::read(
                    val,
                    AffineAccess::new(IMat::from_rows(&[&[nnz_per_row, 1]]), IVec::zeros(1)),
                ),
                ArrayRef::indexed_read(x, col_idx, AffineExpr::new(vec![nnz_per_row, 1], 0)),
                ArrayRef::write(
                    y,
                    AffineAccess::new(IMat::from_rows(&[&[1, 0]]), IVec::zeros(1)),
                ),
            ],
            3,
        )],
        15,
    ));
    // Vector updates (axpy / dot shapes).
    p.add_nest(nest1(
        rows,
        vec![Statement::new(
            vec![
                ArrayRef::read(y, ident_off(vec![0])),
                ArrayRef::write(x, ident_off(vec![0])),
            ],
            2,
        )],
        15,
    ));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 6.0,
            sharing_fraction: 0.15,
        },
        gen: TraceGen {
            gap_scale: 4,
            ..TraceGen::tuned(4)
        },
        first_touch_friendly: false,
        mlp: 2,
    }
}

/// **minighost** — 3-D halo-exchange stencil: deep halos plus a
/// whole-boundary-plane reduction that every thread reads (second-highest
/// sharing; prefers M2).
pub fn minighost(scale: Scale) -> App {
    let d = scale.d3();
    let mut p = Program::new("minighost");
    let grid = p.add_array(ArrayDecl::new("grid", vec![d.0, d.1, d.2], F64));
    let flux = p.add_array(ArrayDecl::new("flux", vec![d.0, d.1, d.2], F64));
    p.add_nest(LoopNest::new(
        vec![
            Loop::constant(0, d.1),
            Loop::constant(0, d.0),
            Loop::constant(0, d.2),
        ],
        0,
        vec![Statement::new(
            vec![ArrayRef::write(
                grid,
                AffineAccess::new(
                    IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0], &[0, 0, 1]]),
                    IVec::zeros(3),
                ),
            )],
            1,
        )],
        1,
    ));
    // Deep-halo stencil (±2 along the partition dimension: lots of
    // cross-thread boundary sharing).
    p.add_nest(nest3_halo(
        d,
        2,
        vec![Statement::new(
            vec![
                ArrayRef::read(grid, ident_off(vec![0, 0, 0])),
                ArrayRef::read(grid, ident_off(vec![-2, 0, 0])),
                ArrayRef::read(grid, ident_off(vec![2, 0, 0])),
                ArrayRef::read(grid, ident_off(vec![0, -1, 0])),
                ArrayRef::write(flux, ident_off(vec![0, 0, 0])),
            ],
            1,
        )],
        25,
    ));
    // Boundary-exchange accumulation: every thread scans the first
    // eighth of the grid's slabs (the shared halo staging region, owned by
    // the first cluster) — the popularity hotspot behind minighost's M2
    // preference.
    p.add_nest(LoopNest::new(
        vec![
            Loop::constant(0, d.0),
            Loop::constant(0, d.0 / 16),
            Loop::constant(0, d.1),
            Loop::constant(0, d.2),
        ],
        0,
        vec![Statement::new(
            vec![ArrayRef::read(
                flux,
                AffineAccess::new(
                    IMat::from_rows(&[&[0, 1, 0, 0], &[0, 0, 1, 0], &[0, 0, 0, 1]]),
                    IVec::zeros(3),
                ),
            )],
            1,
        )],
        6,
    ));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 13.0,
            sharing_fraction: 0.45,
        },
        gen: TraceGen::tuned_intense(8),
        first_touch_friendly: false,
        mlp: 6,
    }
}

/// **minimd** — Lennard-Jones MD: cell-sorted neighbour lists (approximate
/// well) with initialization matching the force loop (first-touch
/// friendly).
pub fn minimd(scale: Scale) -> App {
    // Position/force arrays sized past per-thread L2 (large input sets).
    let n = scale.d1() * 2;
    let inner = 64i64;
    let blk = |off: i64| AffineAccess::new(IMat::from_rows(&[&[inner, 1]]), IVec::new(vec![off]));
    let mut p = Program::new("minimd");
    let pos = p.add_array(ArrayDecl::new("pos", vec![n], F64));
    let force = p.add_array(ArrayDecl::new("force", vec![n], F64));
    let neigh = p.add_table(banded_table(n, n, 48, 29));
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, n / inner), Loop::constant(0, inner)],
        0,
        vec![Statement::new(
            vec![ArrayRef::write(pos, blk(0)), ArrayRef::write(force, blk(0))],
            1,
        )],
        1,
    ));
    p.add_nest(LoopNest::new(
        vec![Loop::constant(0, n / inner), Loop::constant(0, inner)],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::read(pos, blk(0)),
                ArrayRef::indexed_read(pos, neigh, AffineExpr::new(vec![inner, 1], 0)),
                ArrayRef::write(force, blk(0)),
            ],
            7,
        )],
        18,
    ));
    App {
        program: p,
        profile: AppProfile {
            offchip_per_kcycle: 2.0,
            sharing_fraction: 0.07,
        },
        gen: TraceGen {
            gap_scale: 4,
            ..TraceGen::tuned(4)
        },
        first_touch_friendly: true,
        mlp: 2,
    }
}

/// All 13 applications in the paper's presentation order.
pub fn all_apps(scale: Scale) -> Vec<App> {
    vec![
        wupwise(scale),
        swim(scale),
        mgrid(scale),
        applu(scale),
        galgel(scale),
        apsi(scale),
        gafort(scale),
        fma3d(scale),
        art(scale),
        ammp(scale),
        hpccg(scale),
        minighost(scale),
        minimd(scale),
    ]
}

/// The multiprogrammed workload mixes of Figure 25 (pairs of applications
/// co-scheduled on the same mesh).
pub fn mixes(scale: Scale) -> Vec<(String, Vec<App>)> {
    vec![
        (
            "WL1: swim+mgrid".to_string(),
            vec![swim(scale), mgrid(scale)],
        ),
        (
            "WL2: apsi+hpccg".to_string(),
            vec![apsi(scale), hpccg(scale)],
        ),
        ("WL3: fma3d+art".to_string(), vec![fma3d(scale), art(scale)]),
        (
            "WL4: minighost+minimd".to_string(),
            vec![minighost(scale), minimd(scale)],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_thirteen_apps_build() {
        let apps = all_apps(Scale::Test);
        assert_eq!(apps.len(), 13);
        let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "wupwise",
                "swim",
                "mgrid",
                "applu",
                "galgel",
                "apsi",
                "gafort",
                "fma3d",
                "art",
                "ammp",
                "hpccg",
                "minighost",
                "minimd"
            ]
        );
    }

    #[test]
    fn every_app_has_arrays_and_nests() {
        for app in all_apps(Scale::Test) {
            assert!(
                !app.program.arrays().is_empty(),
                "{} has no arrays",
                app.name()
            );
            assert!(
                !app.program.nests().is_empty(),
                "{} has no nests",
                app.name()
            );
            assert!(app.program.iteration_estimate() > 0);
        }
    }

    #[test]
    fn banded_tables_stay_in_range() {
        let t = banded_table(1000, 500, 30, 1);
        assert!(t.iter().all(|&v| (0..500).contains(&v)));
    }

    #[test]
    fn high_pressure_apps_are_marked() {
        let apps = all_apps(Scale::Test);
        for app in &apps {
            let heavy = app.profile.offchip_per_kcycle > 10.0;
            let is_m2_app = app.name() == "fma3d" || app.name() == "minighost";
            assert_eq!(heavy, is_m2_app, "{}", app.name());
        }
    }

    #[test]
    fn first_touch_friendly_matches_paper() {
        let friendly: Vec<String> = all_apps(Scale::Test)
            .into_iter()
            .filter(|a| a.first_touch_friendly)
            .map(|a| a.name().to_string())
            .collect();
        assert_eq!(friendly, vec!["wupwise", "gafort", "minimd"]);
    }

    #[test]
    fn mixes_pair_apps() {
        let m = mixes(Scale::Test);
        assert_eq!(m.len(), 4);
        for (_, apps) in &m {
            assert_eq!(apps.len(), 2);
        }
    }

    #[test]
    fn bench_scale_is_larger() {
        let t = wupwise(Scale::Test);
        let b = wupwise(Scale::Bench);
        assert!(b.program.iteration_estimate() > t.program.iteration_estimate());
    }
}
