//! # hoploc-workloads
//!
//! The evaluation workloads of the PLDI'15 reproduction: all 13 SPEC
//! OMP2001 / Mantevo applications modelled as parameterized affine
//! programs ([`all_apps`]), trace generation that replays them under any
//! program layout ([`generate_traces`]), and the end-to-end experiment
//! runner shared by every figure harness ([`run_app`], [`run_mix`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod apps;
mod gen;
mod suite;

pub use apps::{
    all_apps, ammp, applu, apsi, art, fma3d, gafort, galgel, hpccg, mgrid, minighost, minimd,
    mixes, swim, wupwise, App, Scale,
};
pub use gen::{generate_traces, TraceGen};
pub use suite::{
    build_workload, layout_for, layout_with, run_app, run_app_threads, run_mix, weighted_speedup,
    RunKind,
};
