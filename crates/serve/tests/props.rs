//! Property tests for the canonical job key and the wire protocol:
//! hash stability under JSON field reordering, hash inequality across
//! distinct configurations, and request/response round-trips (including
//! error replies) on seeded random samples.

use hoploc_fault::{FaultPlan, FaultRates, FaultTopo};
use hoploc_ptest::{run_cases, SmallRng};
use hoploc_serve::job::{granularity_name, l2_name, scale_name};
use hoploc_serve::wire::{
    encode_job, encode_request, encode_response, parse_request, parse_response, Request, Response,
    SubmitStatus,
};
use hoploc_serve::{FaultSpec, Fidelity, JobSpec, PrefetchMode, SearchSpec};
use hoploc_workloads::{RunKind, Scale};

const APPS: [&str; 6] = ["swim", "mgrid", "apsi", "cg", "mg", "equake"];
const KINDS: [RunKind; 4] = [
    RunKind::Baseline,
    RunKind::Optimized,
    RunKind::FirstTouch,
    RunKind::Optimal,
];

fn random_spec(rng: &mut SmallRng) -> JobSpec {
    use hoploc_layout::{Granularity, L2Mode};
    let faults = match rng.u64_below(3) {
        0 => FaultSpec::None,
        1 => FaultSpec::Seed(rng.next_u64() % 1000),
        _ => {
            let topo = FaultTopo {
                links: 256,
                mcs: 4,
                banks_per_mc: 8,
            };
            FaultSpec::Plan(FaultPlan::from_seed(
                rng.next_u64() % 64,
                &topo,
                &FaultRates::moderate(),
            ))
        }
    };
    JobSpec {
        app: APPS[rng.usize_in(0..APPS.len())].to_string(),
        kind: KINDS[rng.usize_in(0..KINDS.len())],
        scale: if rng.flip() {
            Scale::Test
        } else {
            Scale::Bench
        },
        granularity: if rng.flip() {
            Granularity::CacheLine
        } else {
            Granularity::Page
        },
        l2_mode: if rng.flip() {
            L2Mode::Private
        } else {
            L2Mode::Shared
        },
        m2: rng.flip(),
        threads: rng.usize_in(1..5),
        faults,
        fidelity: if rng.flip() {
            Fidelity::Cycle
        } else {
            Fidelity::Est
        },
        // Objectives are sampled in canon form: the parser canonicalizes
        // on the way in, so only canon strings survive a round trip.
        search: if rng.u64_below(4) == 0 {
            Some(SearchSpec {
                seed: rng.next_u64() % 1000,
                budget: (rng.u64_below(500) + 1) as u32,
                objective: ["offchip+hops", "offchip", "offchip+hops+queue"][rng.usize_in(0..3)]
                    .to_string(),
            })
        } else {
            None
        },
        prefetch: PrefetchMode::all()[rng.usize_in(0..4)],
    }
}

/// The `"job"` object with its fields in a random order. Built from the
/// same canonical encoder pieces `encode_job` uses, so any disagreement
/// is a reordering effect, not a formatting one.
fn shuffled_job_json(spec: &JobSpec, rng: &mut SmallRng) -> String {
    let mut fields = vec![
        format!("\"app\":\"{}\"", spec.app),
        format!("\"kind\":\"{}\"", hoploc_harness::kind_name(spec.kind)),
        format!("\"scale\":\"{}\"", scale_name(spec.scale)),
        format!("\"granularity\":\"{}\"", granularity_name(spec.granularity)),
        format!("\"l2\":\"{}\"", l2_name(spec.l2_mode)),
        format!("\"mapping\":\"{}\"", if spec.m2 { "m2" } else { "m1" }),
        format!("\"threads\":{}", spec.threads),
    ];
    match &spec.faults {
        FaultSpec::None => {}
        FaultSpec::Seed(s) => fields.push(format!("\"fault_seed\":{s}")),
        FaultSpec::Plan(p) => fields.push(format!(
            "\"fault_plan\":\"{}\"",
            p.render().replace('\\', "\\\\").replace('\n', "\\n")
        )),
    }
    // Mirror the encoder: the default tier is never written.
    if spec.fidelity != Fidelity::Cycle {
        fields.push("\"fidelity\":\"est\"".to_string());
    }
    if let Some(search) = &spec.search {
        fields.push(format!("\"search_seed\":{}", search.seed));
        fields.push(format!("\"search_budget\":{}", search.budget));
        fields.push(format!("\"search_objective\":\"{}\"", search.objective));
    }
    // Mirror the encoder: the Off prefetch default is never written.
    if spec.prefetch != PrefetchMode::Off {
        fields.push(format!("\"prefetch\":\"{}\"", spec.prefetch.name()));
    }
    // Fisher-Yates with the property rng.
    for i in (1..fields.len()).rev() {
        let j = rng.usize_in(0..i + 1);
        fields.swap(i, j);
    }
    format!("{{\"op\":\"submit\",\"job\":{{{}}}}}", fields.join(","))
}

#[test]
fn job_key_is_stable_under_field_reordering() {
    run_cases("serve.key.reorder", 200, |rng| {
        let spec = random_spec(rng);
        let canonical = parse_request(&format!(
            "{{\"op\":\"submit\",\"job\":{}}}",
            encode_job(&spec)
        ))
        .expect("canonical encoding parses");
        let shuffled = parse_request(&shuffled_job_json(&spec, rng)).expect("shuffled parses");
        let (Request::Submit(a), Request::Submit(b)) = (canonical, shuffled) else {
            panic!("both must parse as submissions");
        };
        assert_eq!(a, b, "field order must not change the parsed spec");
        assert_eq!(a.key(), spec.key(), "parse must round-trip the key");
        assert_eq!(a.key().hash, b.key().hash);
    });
}

#[test]
fn pre_fidelity_requests_parse_and_key_identically() {
    // A request written by a client that predates the `fidelity` field
    // (so: no such field at all) must parse to the default cycle tier and
    // produce the exact key it always did — cached results and coalescing
    // entries minted before the field existed stay hits.
    run_cases("serve.key.prefidelity", 200, |rng| {
        let mut spec = random_spec(rng);
        spec.fidelity = Fidelity::Cycle;
        spec.search = None;
        let old_line = shuffled_job_json(&spec, rng);
        assert!(
            !old_line.contains("fidelity"),
            "old-format request must not mention fidelity: {old_line}"
        );
        let Request::Submit(parsed) = parse_request(&old_line).expect("old format parses") else {
            panic!("must parse as a submission");
        };
        assert_eq!(parsed, spec, "old format must land on the default tier");
        assert_eq!(parsed.key(), spec.key());
        assert!(
            !parsed.canon().contains("fidelity"),
            "default-tier canon must be byte-stable: {}",
            parsed.canon()
        );
    });
}

#[test]
fn pre_prefetch_requests_parse_and_key_identically() {
    // A request written by a client that predates the `prefetch` field
    // must parse to the Off default and produce the exact key (and suite
    // config key) it always did — cached results, coalescing entries, and
    // warm suites minted before the knob existed stay hits.
    run_cases("serve.key.preprefetch", 200, |rng| {
        let mut spec = random_spec(rng);
        spec.prefetch = PrefetchMode::Off;
        let old_line = shuffled_job_json(&spec, rng);
        assert!(
            !old_line.contains("prefetch"),
            "old-format request must not mention prefetch: {old_line}"
        );
        let Request::Submit(parsed) = parse_request(&old_line).expect("old format parses") else {
            panic!("must parse as a submission");
        };
        assert_eq!(parsed, spec, "old format must land on the Off default");
        assert_eq!(parsed.key(), spec.key());
        assert!(
            !parsed.canon().contains("prefetch"),
            "off-prefetch canon must be byte-stable: {}",
            parsed.canon()
        );
        assert!(
            !parsed.config_canon().contains("prefetch"),
            "off-prefetch config canon must be byte-stable: {}",
            parsed.config_canon()
        );
    });
}

#[test]
fn distinct_configs_hash_differently() {
    run_cases("serve.key.distinct", 120, |rng| {
        let a = random_spec(rng);
        let b = random_spec(rng);
        if a.canon() != b.canon() {
            assert_ne!(
                a.key().hash,
                b.key().hash,
                "distinct canon strings must not collide on the sample\n a: {}\n b: {}",
                a.canon(),
                b.canon()
            );
        } else {
            assert_eq!(a.key().hash, b.key().hash);
        }
    });
}

#[test]
fn requests_round_trip() {
    run_cases("serve.wire.request", 200, |rng| {
        let req = match rng.u64_below(6) {
            0 => Request::Submit(random_spec(rng)),
            1 => Request::Status(rng.next_u64() % 10_000),
            2 => Request::Result(rng.next_u64() % 10_000),
            3 => Request::Stats,
            4 => Request::Drain,
            _ => Request::Ping,
        };
        let line = encode_request(&req);
        assert!(!line.contains('\n'), "requests are one line: {line}");
        assert_eq!(parse_request(&line).expect("parses"), req, "{line}");
    });
}

#[test]
fn responses_round_trip_including_error_replies() {
    run_cases("serve.wire.response", 200, |rng| {
        let raw_result = format!(
            "{{\"app\": \"{}\", \"exec_cycles\": {}}}",
            APPS[rng.usize_in(0..APPS.len())],
            rng.next_u64() % 1_000_000
        );
        let metrics = format!(
            "{{\"counters\": {{\"serve.jobs\": [{}]}},\"gauges\": {{}}}}",
            rng.next_u64() % 100
        );
        let resp = match rng.u64_below(9) {
            0 => Response::Submitted {
                id: rng.next_u64() % 10_000,
                key: format!("{:016x}", rng.next_u64()),
                status: match rng.u64_below(3) {
                    0 => SubmitStatus::Queued,
                    1 => SubmitStatus::Coalesced,
                    _ => SubmitStatus::Cached,
                },
            },
            1 => Response::Rejected {
                reason: if rng.flip() {
                    "queue_full".into()
                } else {
                    "draining".into()
                },
                detail: format!("queue at capacity ({} jobs waiting)", rng.u64_below(100)),
                retry_after_ms: rng.u64_below(1000),
            },
            2 => Response::Status {
                id: rng.next_u64() % 10_000,
                state: ["queued", "running", "done", "error"][rng.usize_in(0..4)].to_string(),
                queue_depth: rng.u64_below(100),
            },
            3 => Response::ResultOk {
                id: rng.next_u64() % 10_000,
                result: raw_result.clone(),
            },
            4 => Response::ResultErr {
                id: rng.next_u64() % 10_000,
                error: format!(
                    "timeout: exceeded {} ms wall-clock budget \"quoted\"",
                    rng.u64_below(5000)
                ),
            },
            5 => Response::Stats {
                metrics: metrics.clone(),
            },
            6 => Response::Drained {
                answered: rng.next_u64() % 10_000,
                executed: rng.next_u64() % 10_000,
                metrics: metrics.clone(),
            },
            7 => Response::Pong,
            _ => Response::ProtocolError {
                error: format!("unknown op \"op{}\"\twith\ttabs", rng.u64_below(100)),
            },
        };
        let line = encode_response(&resp);
        assert!(!line.contains('\n'), "responses are one line: {line}");
        assert_eq!(parse_response(&line).expect("parses"), resp, "{line}");
        // Raw payloads must cross the wire byte-exactly.
        match parse_response(&line).expect("parses") {
            Response::ResultOk { result, .. } => assert_eq!(result, raw_result),
            Response::Stats { metrics: m, .. } | Response::Drained { metrics: m, .. } => {
                assert_eq!(m, metrics)
            }
            _ => {}
        }
    });
}

#[test]
fn malformed_lines_never_panic_the_parser() {
    run_cases("serve.wire.fuzz", 300, |rng| {
        // Mutate a valid request line: truncate, splice bytes, or flip
        // a character. Parsing must return Ok or Err, never panic.
        let mut line = encode_request(&Request::Submit(random_spec(rng)));
        match rng.u64_below(3) {
            0 => {
                // Wire lines are pure ASCII, so any cut is a char boundary.
                let cut = rng.usize_in(0..line.len());
                line.truncate(cut);
            }
            1 => {
                let pos = rng.usize_in(0..line.len());
                line.insert(pos, ['{', '}', '"', ',', 'x'][rng.usize_in(0..5)]);
            }
            _ => {
                line = line.replace(
                    ["\"", ":", "{"][rng.usize_in(0..3)],
                    ["", "::", "[{"][rng.usize_in(0..3)],
                );
            }
        }
        let _ = parse_request(&line);
        let _ = parse_response(&line);
    });
}
