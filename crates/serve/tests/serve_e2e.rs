//! End-to-end server tests over real loopback TCP.
//!
//! The headline assertion is byte-identity: N concurrent clients submit
//! an app × run-kind matrix and every result must equal, byte for byte,
//! the `record_json` of the same cell run directly through the harness.
//! The rest covers the ISSUE's acceptance list: duplicate submissions
//! coalesce (simulations executed < jobs submitted), a saturated queue
//! rejects with a retry hint, per-job timeouts answer with structured
//! errors, and drain shuts down with every accepted job answered.

use hoploc_harness::{record_json, RunRecord, RunSpec, Suite};
use hoploc_noc::L2ToMcMapping;
use hoploc_serve::client::Client;
use hoploc_serve::engine::{Engine, EngineCaps, SuiteEngine};
use hoploc_serve::load::{run_load, LoadConfig};
use hoploc_serve::server::{ServeConfig, Server};
use hoploc_serve::wire::SubmitStatus;
use hoploc_serve::JobSpec;
use hoploc_sim::SimConfig;
use hoploc_workloads::{all_apps, RunKind, Scale};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const KINDS: [RunKind; 2] = [RunKind::Baseline, RunKind::Optimized];

fn spec_for(app: &str, kind: RunKind) -> JobSpec {
    JobSpec {
        app: app.to_string(),
        kind,
        scale: Scale::Test,
        ..JobSpec::default()
    }
}

/// The app × run-kind matrix at test scale, run directly through one
/// suite — the ground truth served results must match byte-for-byte.
fn direct_matrix() -> HashMap<String, String> {
    // Mirror the job defaults (and the CLI defaults): cacheline
    // interleaving, private L2s. SimConfig::default() is Page.
    let sim = SimConfig {
        granularity: hoploc_layout::Granularity::CacheLine,
        l2_mode: hoploc_layout::L2Mode::Private,
        ..SimConfig::scaled()
    };
    let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement);
    let suite = Suite::new(all_apps(Scale::Test), mapping, sim);
    let mut specs = Vec::new();
    for (i, _) in suite.apps().iter().enumerate() {
        for kind in KINDS {
            specs.push(RunSpec { app: i, kind });
        }
    }
    let records = suite.run_matrix(&specs, 4);
    records
        .iter()
        .map(|r| {
            (
                spec_for(&r.app, r.kind).canon(),
                record_json(&RunRecord {
                    app: r.app.clone(),
                    kind: r.kind,
                    stats: r.stats.clone(),
                }),
            )
        })
        .collect()
}

fn start_server(cfg: ServeConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let engine = Arc::new(SuiteEngine::new(EngineCaps::default()));
    start_server_with(engine, cfg)
}

fn start_server_with(
    engine: Arc<dyn Engine>,
    cfg: ServeConfig,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", engine, cfg).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        server.run();
    });
    (addr, handle)
}

#[test]
fn served_results_are_byte_identical_to_direct_runs() {
    let expected = direct_matrix();
    let (addr, server) = start_server(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });

    // N concurrent clients split the matrix; each fetches its results
    // and checks them against the direct ground truth.
    let apps: Vec<String> = all_apps(Scale::Test)
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let expected = Arc::new(expected);
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let apps = apps.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for app in apps.iter().skip(c).step_by(3) {
                    for kind in KINDS {
                        let spec = spec_for(app, kind);
                        let (id, _, _) = client
                            .submit_until_accepted(&spec, 10_000)
                            .expect("accepted");
                        let served = client.result(id).expect("result");
                        let want = expected.get(&spec.canon()).expect("ground truth");
                        assert_eq!(
                            &served, want,
                            "served bytes must equal direct run_matrix bytes for {app}/{kind:?}"
                        );
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    let mut client = Client::connect(addr).expect("connect");
    let (answered, executed, _) = client.drain().expect("drain");
    assert!(answered >= (apps.len() * KINDS.len()) as u64);
    assert!(executed >= 1);
    server.join().expect("server thread exits after drain");
}

#[test]
fn duplicate_submissions_coalesce_into_fewer_simulations() {
    let (addr, server) = start_server(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let report = run_load(
        addr,
        &LoadConfig {
            clients: 4,
            repeat: 3,
            scale: Scale::Test,
            kinds: KINDS.to_vec(),
            max_retries: 10_000,
        },
    )
    .expect("load run");
    assert_eq!(report.failed, 0, "errors: {:?}", report.errors);
    let napps = all_apps(Scale::Test).len() as u64;
    assert_eq!(report.completed, napps * 2 * 3);
    assert!(
        report.coalesced + report.cached > 0,
        "repeated submissions must coalesce or hit cache"
    );

    let mut client = Client::connect(addr).expect("connect");
    let (answered, executed, metrics) = client.drain().expect("drain");
    assert!(
        executed < report.completed,
        "coalescing must execute fewer simulations ({executed}) than jobs answered \
         ({} completed client-side)",
        report.completed
    );
    assert_eq!(executed, napps * 2, "each distinct cell simulates once");
    assert!(answered >= executed);
    // The drain metrics snapshot records the same story.
    let v = hoploc_obs::parse_json(&metrics).expect("metrics parse");
    let jobs = v
        .get("counters")
        .and_then(|c| c.get("serve.jobs"))
        .and_then(|f| f.as_array())
        .expect("serve.jobs family");
    let coalesced = jobs[hoploc_serve::Ctr::Coalesced as usize]
        .as_u64()
        .expect("coalesced");
    let cache_hits = jobs[hoploc_serve::Ctr::CacheHits as usize]
        .as_u64()
        .expect("cache_hits");
    assert!(coalesced + cache_hits > 0);
    server.join().expect("server exits");
}

/// An engine slow enough to hold the queue full while submissions pile up.
struct SlowEngine {
    delay: Duration,
}

impl Engine for SlowEngine {
    fn validate(&self, _spec: &JobSpec) -> Result<(), String> {
        Ok(())
    }

    fn run(&self, spec: &JobSpec) -> Result<String, String> {
        std::thread::sleep(self.delay);
        Ok(format!("{{\"canon\": \"{}\"}}", spec.canon()))
    }
}

#[test]
fn queue_saturation_rejects_with_retry_then_recovers() {
    let (addr, server) = start_server_with(
        Arc::new(SlowEngine {
            delay: Duration::from_millis(50),
        }),
        ServeConfig {
            workers: 1,
            queue_cap: 2,
            retry_after_ms: 5,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(addr).expect("connect");
    // Distinct jobs (different threads counts) so nothing coalesces.
    let mut rejected = 0u64;
    let mut ids = Vec::new();
    for i in 0..12 {
        let mut spec = spec_for("swim", RunKind::Baseline);
        spec.threads = i + 1;
        match client.submit(&spec).expect("reply") {
            hoploc_serve::Response::Submitted { id, .. } => ids.push(id),
            hoploc_serve::Response::Rejected {
                reason,
                retry_after_ms,
                ..
            } => {
                assert_eq!(reason, "queue_full");
                assert_eq!(retry_after_ms, 5);
                rejected += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(rejected > 0, "hammering a queue of 2 must reject");
    // Backpressure is advisory, not fatal: retrying with the hint lands.
    let mut spec = spec_for("swim", RunKind::Baseline);
    spec.threads = 99;
    let (id, status, retries) = client
        .submit_until_accepted(&spec, 10_000)
        .expect("eventually accepted");
    assert_eq!(status, SubmitStatus::Queued);
    assert!(retries > 0, "acceptance had to wait out backpressure");
    ids.push(id);
    for id in ids {
        client.result(id).expect("every accepted job completes");
    }
    client.drain().expect("drain");
    server.join().expect("server exits");
}

#[test]
fn timeouts_reply_with_structured_errors() {
    let (addr, server) = start_server_with(
        Arc::new(SlowEngine {
            delay: Duration::from_millis(400),
        }),
        ServeConfig {
            workers: 1,
            job_timeout_ms: 30,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(addr).expect("connect");
    let (id, _, _) = client
        .submit_until_accepted(&spec_for("swim", RunKind::Baseline), 100)
        .expect("accepted");
    let err = client.result(id).expect_err("must time out");
    assert!(err.contains("timeout"), "{err}");
    let (answered, _, _) = client.drain().expect("drain");
    assert_eq!(answered, 1, "the timed-out job still counts as answered");
    server.join().expect("server exits");
}

#[test]
fn drain_answers_all_accepted_jobs_before_exit() {
    let (addr, server) = start_server_with(
        Arc::new(SlowEngine {
            delay: Duration::from_millis(20),
        }),
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            ..ServeConfig::default()
        },
    );
    let mut submitter = Client::connect(addr).expect("connect");
    let mut ids = Vec::new();
    for i in 0..10 {
        let mut spec = spec_for("swim", RunKind::Baseline);
        spec.threads = i + 1;
        let (id, _, _) = submitter
            .submit_until_accepted(&spec, 1000)
            .expect("accept");
        ids.push(id);
    }
    // Drain from a second connection while jobs are still queued.
    let mut drainer = Client::connect(addr).expect("connect drainer");
    let (answered, executed, _) = drainer.drain().expect("drain");
    assert_eq!(answered, 10, "drain must answer every accepted job");
    assert_eq!(executed, 10);
    // Results submitted before the drain are still fetchable afterwards.
    for id in ids {
        submitter.result(id).expect("post-drain result fetch");
    }
    // New submissions are refused.
    match submitter.submit(&spec_for("swim", RunKind::Optimized)) {
        Ok(hoploc_serve::Response::Rejected { reason, .. }) => assert_eq!(reason, "draining"),
        other => panic!("post-drain submit must be rejected, got {other:?}"),
    }
    server.join().expect("server exits");
}
