//! `hoploc-serve` — simulation-as-a-service for the hoploc stack.
//!
//! A std-only multithreaded job server: a [`TcpListener`] frontend speaks
//! a newline-delimited JSON protocol (`submit` / `status` / `result` /
//! `stats` / `drain` / `ping`), a bounded queue applies explicit
//! backpressure (a full queue *replies* `queue_full` with a
//! `retry_after_ms` hint rather than blocking or dropping), and a worker
//! pool executes jobs through the existing [`hoploc_harness`] entry
//! points — so a served result is byte-identical to a direct run.
//!
//! Duplicate work is eliminated twice: identical submissions to an
//! in-flight job **coalesce** onto the same job id (one simulation, many
//! answers), and finished results land in a bounded LRU **cache** keyed by
//! the [canonical job key](job::JobSpec::canon) (application, run kind,
//! simulator configuration, fault plan, seed, fidelity tier). `drain`
//! stops admission, answers every accepted job, snapshots metrics, and
//! shuts down cleanly.
//!
//! Jobs carry a [`Fidelity`] tier: `cycle` (the default — full
//! simulation) or `est` (the [`hoploc_est`] static estimator, answering
//! in microseconds for design-space triage). The default tier's wire
//! encoding and canonical key are byte-identical to pre-fidelity clients',
//! so old caches and logs stay valid.
//!
//! Long-running jobs exist too: a submission with `search_*` fields runs
//! the [`hoploc_search`] design-space optimizer server-side, and the
//! `watch` op streams its progress events (best-so-far improvements)
//! followed by the final report — byte-identical to `hoploc search
//! --json -` for the same seed. Like `fidelity`, the search fields are
//! default-absent from both the wire form and the canonical key, so
//! pre-existing job keys and cached results stay byte-stable.
//!
//! The crate splits along the obvious seams:
//!
//! * [`job`] — job specs, canonical encoding, and the FNV-1a job key.
//! * [`wire`] — the NDJSON protocol: requests, responses, raw-byte
//!   payload embedding.
//! * [`cache`] — the bounded LRU result cache.
//! * [`metrics`] — server counters/gauges/histograms in a
//!   [`hoploc_obs::Registry`].
//! * [`engine`] — the [`engine::Engine`] trait and the production
//!   [`engine::SuiteEngine`] (bounded pool of harness suites).
//! * [`server`] — queue, workers, coalescing, backpressure, timeouts,
//!   drain, and the TCP frontend.
//! * [`client`] — a blocking client honoring backpressure hints.
//! * [`load`] — the loopback load generator behind `hoploc load`.
//!
//! [`TcpListener`]: std::net::TcpListener

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod job;
pub mod load;
pub mod metrics;
pub mod server;
pub mod wire;

pub use cache::LruCache;
pub use client::Client;
pub use engine::{Engine, EngineCaps, SuiteEngine};
pub use hoploc_sim::PrefetchMode;
pub use job::{FaultSpec, Fidelity, JobKey, JobSpec, SearchSpec};
pub use load::{run_load, LoadConfig, LoadReport};
pub use metrics::{Ctr, ServeMetrics};
pub use server::{Core, DrainSummary, ServeConfig, Server};
pub use wire::{Request, Response, SubmitStatus};
