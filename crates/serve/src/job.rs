//! Job specifications and the canonical job key.
//!
//! A job names one cell of the evaluation matrix: an application, a run
//! kind, the simulator configuration knobs the CLI exposes, and an
//! optional fault plan. Two submissions describe *the same* simulation
//! exactly when their [canonical forms](JobSpec::canon) are equal — the
//! server coalesces and caches on that string, so the definition here is
//! the contract that makes duplicate submissions cost one simulation.

use hoploc_fault::FaultPlan;
use hoploc_harness::kind_name;
use hoploc_layout::{Granularity, L2Mode};
use hoploc_sim::PrefetchMode;
use hoploc_workloads::{RunKind, Scale};

/// How a job asks for fault injection.
#[derive(Clone, PartialEq, Debug)]
pub enum FaultSpec {
    /// No injection: bit-identical to a fault-free run.
    None,
    /// Generate a moderate-intensity plan from this seed against the
    /// server's machine topology (deterministic: same seed, same plan).
    Seed(u64),
    /// An explicit plan, e.g. parsed from the `hoploc faults` text format.
    Plan(FaultPlan),
}

impl FaultSpec {
    fn canon(&self) -> String {
        match self {
            FaultSpec::None => "none".to_string(),
            FaultSpec::Seed(s) => format!("seed:{s}"),
            // The render/parse pair round-trips plans bit-for-bit, so the
            // rendered text is a faithful canonical encoding.
            FaultSpec::Plan(p) => format!("plan:{}", p.render().replace('\n', "|")),
        }
    }
}

/// How much machinery a job pays for its answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fidelity {
    /// Full cycle simulation (the default; what every pre-fidelity client
    /// implicitly asked for).
    Cycle,
    /// The static estimator (`hoploc-est`): microseconds instead of
    /// seconds, rank-faithful rather than cycle-accurate. Sweeps triage
    /// here and pay for cycle simulation only on the short list.
    Est,
}

/// Stable wire name of a fidelity tier.
pub fn fidelity_name(f: Fidelity) -> &'static str {
    match f {
        Fidelity::Cycle => "cycle",
        Fidelity::Est => "est",
    }
}

/// Parses a fidelity wire name.
pub fn parse_fidelity(s: &str) -> Result<Fidelity, String> {
    match s {
        "cycle" => Ok(Fidelity::Cycle),
        "est" => Ok(Fidelity::Est),
        other => Err(format!("unknown fidelity {other:?} (use cycle or est)")),
    }
}

/// Parameters of a long-running `search` job: the design-space
/// optimizer runs server-side with progress streamed over `watch`.
#[derive(Clone, PartialEq, Debug)]
pub struct SearchSpec {
    /// Master seed the per-app chain forks from.
    pub seed: u64,
    /// Estimator-evaluation budget.
    pub budget: u32,
    /// Objective canon (`Objective::canon` form, e.g. `offchip+hops`).
    pub objective: String,
}

impl SearchSpec {
    fn canon(&self) -> String {
        format!(
            "seed:{},budget:{},objective:{}",
            self.seed, self.budget, self.objective
        )
    }
}

/// One job: a fully specified simulation request.
#[derive(Clone, PartialEq, Debug)]
pub struct JobSpec {
    /// Application name (as listed by `hoploc apps`).
    pub app: String,
    /// Which side of the comparison to run.
    pub kind: RunKind,
    /// Problem size.
    pub scale: Scale,
    /// MC interleaving granularity.
    pub granularity: Granularity,
    /// Last-level cache organization.
    pub l2_mode: L2Mode,
    /// `true` for the M2 (halves, k=2) L2-to-MC mapping.
    pub m2: bool,
    /// Threads per core.
    pub threads: usize,
    /// Fault injection request.
    pub faults: FaultSpec,
    /// Answer tier: cycle simulation or the static estimator.
    pub fidelity: Fidelity,
    /// Present for the long-running `search` job kind: run the
    /// design-space optimizer for `app` instead of one simulation.
    pub search: Option<SearchSpec>,
    /// L2 prefetch engine. [`PrefetchMode::Off`] (the default) is
    /// canon-absent so every pre-prefetch key stays byte-stable.
    pub prefetch: PrefetchMode,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            app: String::new(),
            kind: RunKind::Baseline,
            scale: Scale::Bench,
            granularity: Granularity::CacheLine,
            l2_mode: L2Mode::Private,
            m2: false,
            threads: 1,
            faults: FaultSpec::None,
            fidelity: Fidelity::Cycle,
            search: None,
            prefetch: PrefetchMode::Off,
        }
    }
}

/// The canonical identity of a job: the canonical string (the map key the
/// server coalesces and caches on — collision-proof by construction) plus
/// its 64-bit FNV-1a hash (the short id shown on the wire).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobKey {
    /// Canonical field-order-independent encoding of the spec.
    pub canon: String,
    /// FNV-1a of `canon`, displayed as 16 hex digits.
    pub hash: u64,
}

impl JobKey {
    /// The 16-hex-digit display form of the hash.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

impl JobSpec {
    /// Canonical encoding: every field in a fixed order with fixed value
    /// names. Parsing a submission from JSON with its fields in *any*
    /// order lands here identically, which is what makes the job hash
    /// stable under field reordering (asserted by the property suite).
    ///
    /// The `fidelity` suffix appears only for non-default tiers, so every
    /// key minted before the field existed — cached results, coalescing
    /// entries, client logs — stays byte-for-byte stable (asserted by the
    /// property suite).
    pub fn canon(&self) -> String {
        let mut s = format!(
            "app={};kind={};scale={};gran={};l2={};map={};threads={};faults={}",
            self.app,
            kind_name(self.kind),
            scale_name(self.scale),
            granularity_name(self.granularity),
            l2_name(self.l2_mode),
            if self.m2 { "m2" } else { "m1" },
            self.threads,
            self.faults.canon(),
        );
        if self.fidelity != Fidelity::Cycle {
            s.push_str(";fidelity=");
            s.push_str(fidelity_name(self.fidelity));
        }
        // Like `fidelity`, the `search` suffix is default-absent: every
        // key minted before the job kind existed stays byte-stable.
        if let Some(search) = &self.search {
            s.push_str(";search=");
            s.push_str(&search.canon());
        }
        // Default-absent for the same reason: an Off-prefetch job keys
        // identically to every key minted before the knob existed.
        if self.prefetch != PrefetchMode::Off {
            s.push_str(";prefetch=");
            s.push_str(self.prefetch.name());
        }
        s
    }

    /// The canonical key of this spec.
    pub fn key(&self) -> JobKey {
        let canon = self.canon();
        let hash = fnv1a(canon.as_bytes());
        JobKey { canon, hash }
    }

    /// The configuration part of the canonical form — everything that
    /// selects a harness `Suite` (the engine shares one suite, and so one
    /// set of layout/trace caches, across all apps/kinds/faults under the
    /// same configuration).
    pub fn config_canon(&self) -> String {
        let mut s = format!(
            "scale={};gran={};l2={};map={};threads={}",
            scale_name(self.scale),
            granularity_name(self.granularity),
            l2_name(self.l2_mode),
            if self.m2 { "m2" } else { "m1" },
            self.threads,
        );
        // Prefetch selects a different SimConfig, hence a different suite;
        // default-absent so pre-prefetch suites keep their keys.
        if self.prefetch != PrefetchMode::Off {
            s.push_str(";prefetch=");
            s.push_str(self.prefetch.name());
        }
        s
    }
}

/// FNV-1a over a byte string: stable, platform-independent, dependency-free.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Stable wire name of a scale.
pub fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Test => "test",
        Scale::Bench => "bench",
    }
}

/// Parses a scale wire name.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "test" => Ok(Scale::Test),
        "bench" => Ok(Scale::Bench),
        other => Err(format!("unknown scale {other:?} (use test or bench)")),
    }
}

/// Stable wire name of a granularity.
pub fn granularity_name(g: Granularity) -> &'static str {
    match g {
        Granularity::CacheLine => "cacheline",
        Granularity::Page => "page",
    }
}

/// Parses a granularity wire name.
pub fn parse_granularity(s: &str) -> Result<Granularity, String> {
    match s {
        "cacheline" => Ok(Granularity::CacheLine),
        "page" => Ok(Granularity::Page),
        other => Err(format!(
            "unknown granularity {other:?} (use cacheline or page)"
        )),
    }
}

/// Stable wire name of an L2 mode.
pub fn l2_name(m: L2Mode) -> &'static str {
    match m {
        L2Mode::Private => "private",
        L2Mode::Shared => "shared",
    }
}

/// Parses an L2-mode wire name.
pub fn parse_l2(s: &str) -> Result<L2Mode, String> {
    match s {
        "private" => Ok(L2Mode::Private),
        "shared" => Ok(L2Mode::Shared),
        other => Err(format!("unknown l2 mode {other:?} (use private or shared)")),
    }
}

/// Parses a run-kind wire name (the [`kind_name`] vocabulary).
pub fn parse_kind(s: &str) -> Result<RunKind, String> {
    [
        RunKind::Baseline,
        RunKind::Optimized,
        RunKind::FirstTouch,
        RunKind::Optimal,
    ]
    .into_iter()
    .find(|&k| kind_name(k) == s)
    .ok_or_else(|| {
        format!("unknown run kind {s:?} (use baseline, optimized, first-touch, or optimal)")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            app: "swim".into(),
            kind: RunKind::Optimized,
            scale: Scale::Test,
            ..JobSpec::default()
        }
    }

    #[test]
    fn canon_is_deterministic_and_field_sensitive() {
        let a = spec();
        assert_eq!(a.key(), a.clone().key());
        let mut b = a.clone();
        b.kind = RunKind::Baseline;
        assert_ne!(a.canon(), b.canon());
        assert_ne!(a.key().hash, b.key().hash);
        let mut c = a.clone();
        c.faults = FaultSpec::Seed(1);
        assert_ne!(a.canon(), c.canon());
    }

    #[test]
    fn config_canon_ignores_app_kind_and_faults() {
        let a = spec();
        let mut b = a.clone();
        b.app = "mgrid".into();
        b.kind = RunKind::Optimal;
        b.faults = FaultSpec::Seed(9);
        assert_eq!(a.config_canon(), b.config_canon());
        let mut c = a.clone();
        c.threads = 2;
        assert_ne!(a.config_canon(), c.config_canon());
    }

    #[test]
    fn default_fidelity_keeps_pre_fidelity_keys_byte_stable() {
        let a = spec();
        assert_eq!(
            a.canon(),
            "app=swim;kind=optimized;scale=test;gran=cacheline;l2=private;\
             map=m1;threads=1;faults=none",
            "cycle-fidelity canon must not mention fidelity at all"
        );
        let mut b = a.clone();
        b.fidelity = Fidelity::Est;
        assert!(b.canon().ends_with(";fidelity=est"));
        assert_ne!(a.key(), b.key(), "tiers must cache separately");
    }

    #[test]
    fn absent_search_keeps_pre_search_keys_byte_stable() {
        let a = spec();
        assert!(
            !a.canon().contains("search"),
            "non-search canon must not mention search: {}",
            a.canon()
        );
        let mut b = a.clone();
        b.search = Some(SearchSpec {
            seed: 0,
            budget: 400,
            objective: "offchip+hops".into(),
        });
        assert!(
            b.canon()
                .ends_with(";search=seed:0,budget:400,objective:offchip+hops"),
            "{}",
            b.canon()
        );
        assert_ne!(a.key(), b.key(), "search jobs must cache separately");
        let mut c = b.clone();
        c.search.as_mut().unwrap().seed = 1;
        assert_ne!(b.key(), c.key(), "the seed is part of the job identity");
    }

    #[test]
    fn off_prefetch_keeps_pre_prefetch_keys_byte_stable() {
        let a = spec();
        assert_eq!(
            a.canon(),
            "app=swim;kind=optimized;scale=test;gran=cacheline;l2=private;\
             map=m1;threads=1;faults=none",
            "off-prefetch canon must not mention prefetch at all"
        );
        assert!(
            !a.config_canon().contains("prefetch"),
            "off-prefetch config canon must not mention prefetch: {}",
            a.config_canon()
        );
        let mut b = a.clone();
        b.prefetch = PrefetchMode::Gated;
        assert!(b.canon().ends_with(";prefetch=gated"), "{}", b.canon());
        assert!(
            b.config_canon().ends_with(";prefetch=gated"),
            "{}",
            b.config_canon()
        );
        assert_ne!(a.key(), b.key(), "prefetch jobs must cache separately");
        let mut c = b.clone();
        c.prefetch = PrefetchMode::Stride;
        assert_ne!(b.key(), c.key(), "the mode is part of the job identity");
    }

    #[test]
    fn plan_canon_round_trips_through_render() {
        use hoploc_fault::{FaultRates, FaultTopo};
        let topo = FaultTopo {
            links: 256,
            mcs: 4,
            banks_per_mc: 8,
        };
        let plan = FaultPlan::from_seed(3, &topo, &FaultRates::moderate());
        let mut a = spec();
        a.faults = FaultSpec::Plan(plan.clone());
        let mut b = spec();
        b.faults = FaultSpec::Plan(FaultPlan::parse(&plan.render()).unwrap());
        assert_eq!(a.key(), b.key(), "round-tripped plan must key identically");
    }

    #[test]
    fn names_round_trip() {
        for s in [Scale::Test, Scale::Bench] {
            assert_eq!(parse_scale(scale_name(s)).unwrap(), s);
        }
        for g in [Granularity::CacheLine, Granularity::Page] {
            assert_eq!(parse_granularity(granularity_name(g)).unwrap(), g);
        }
        for m in [L2Mode::Private, L2Mode::Shared] {
            assert_eq!(parse_l2(l2_name(m)).unwrap(), m);
        }
        for k in [
            RunKind::Baseline,
            RunKind::Optimized,
            RunKind::FirstTouch,
            RunKind::Optimal,
        ] {
            assert_eq!(parse_kind(kind_name(k)).unwrap(), k);
        }
        assert!(parse_scale("huge").is_err());
        assert!(parse_kind("fastest").is_err());
    }
}
