//! The job server: bounded queue, worker pool, coalescing, caching,
//! backpressure, and graceful drain.
//!
//! One mutex guards all admission state (queue, job table, in-flight
//! index, result cache); three condvars move work along: `work_cv` wakes
//! workers when jobs are queued (or at shutdown), `done_cv` wakes clients
//! blocked in `result`, and `idle_cv` wakes the drainer when the last
//! in-flight job lands. Job execution itself happens outside the lock.
//!
//! Admission order for a submission: drain check → validation → result
//! cache → in-flight coalescing → queue-capacity check → enqueue. A full
//! queue is a *reply*, not a dropped connection: the client gets
//! `queue_full` with a `retry_after_ms` hint and decides what to do.
//!
//! Per-job wall-clock timeouts run the engine on a detached thread and
//! give up waiting after the deadline; the job is answered with a
//! structured error and the worker moves on (the stray computation
//! finishes into the void — threads cannot be killed, only abandoned).

use crate::cache::LruCache;
use crate::engine::Engine;
use crate::job::JobSpec;
use crate::metrics::{Ctr, ServeMetrics};
use crate::wire::{encode_response, parse_request, Request, Response, SubmitStatus};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Queue capacity; submissions past this are rejected with
    /// `queue_full` + a retry hint.
    pub queue_cap: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_cap: usize,
    /// Per-job wall-clock budget in milliseconds (0 = no timeout).
    pub job_timeout_ms: u64,
    /// The backoff hint sent with `queue_full` rejections.
    pub retry_after_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            cache_cap: 256,
            job_timeout_ms: 0,
            retry_after_ms: 25,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Debug)]
enum JobState {
    Queued,
    Running,
    Done(Arc<String>),
    Failed(String),
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "error",
        }
    }
}

struct Job {
    spec: JobSpec,
    canon: String,
    state: JobState,
    enqueued_at: Instant,
    /// Progress events the engine has streamed so far (search jobs;
    /// empty for everything else and for cache hits). Shared `Arc`s so
    /// many watchers replay the same bytes without copying.
    progress: Vec<Arc<String>>,
}

struct CoreState {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, Job>,
    /// Canonical job string → the job id duplicates coalesce onto.
    inflight: HashMap<String, u64>,
    cache: LruCache,
    /// Terminal job ids in completion order, for bounded retention.
    done_order: VecDeque<u64>,
    next_id: u64,
    active: usize,
    answered: u64,
    draining: bool,
    shutdown: bool,
}

/// The shared server core: everything but the listener.
pub struct Core {
    cfg: ServeConfig,
    engine: Arc<dyn Engine>,
    metrics: ServeMetrics,
    state: Mutex<CoreState>,
    work_cv: Condvar,
    done_cv: Condvar,
    idle_cv: Condvar,
    addr: Mutex<Option<SocketAddr>>,
}

/// What `drain` reported when the server shut down.
#[derive(Clone, PartialEq, Debug)]
pub struct DrainSummary {
    /// Jobs that received a terminal answer over the server lifetime.
    pub answered: u64,
    /// Simulations actually executed.
    pub executed: u64,
    /// Final metrics snapshot (pretty multi-line JSON, file form).
    pub metrics: String,
}

impl Core {
    fn new(engine: Arc<dyn Engine>, cfg: ServeConfig) -> Self {
        Core {
            engine,
            metrics: ServeMetrics::new(),
            state: Mutex::new(CoreState {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                inflight: HashMap::new(),
                cache: LruCache::new(cfg.cache_cap),
                done_order: VecDeque::new(),
                next_id: 1,
                active: 0,
                answered: 0,
                draining: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            addr: Mutex::new(None),
            cfg,
        }
    }

    /// The server metrics (shared with connection handlers and workers).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CoreState> {
        self.state.lock().expect("server core poisoned")
    }

    fn publish_load(&self, st: &CoreState) {
        self.metrics.set_load(st.queue.len(), st.active);
    }

    /// Completed jobs to retain for late `result` fetches.
    fn retained_cap(&self) -> usize {
        (self.cfg.queue_cap * 8).max(1024)
    }

    fn finish_job(&self, st: &mut CoreState, id: u64, state: JobState) {
        if let Some(job) = st.jobs.get_mut(&id) {
            st.inflight.remove(&job.canon);
            job.state = state;
            st.answered += 1;
            self.metrics.inc(Ctr::Answered, 1);
            st.done_order.push_back(id);
            while st.done_order.len() > self.retained_cap() {
                if let Some(old) = st.done_order.pop_front() {
                    st.jobs.remove(&old);
                }
            }
        }
        self.done_cv.notify_all();
    }

    /// Handles one submission, already past parse.
    fn submit(&self, spec: JobSpec) -> Response {
        self.metrics.inc(Ctr::Submitted, 1);
        let key = spec.key();
        if let Err(e) = self.engine.validate(&spec) {
            self.metrics.inc(Ctr::RejectedInvalid, 1);
            return Response::Rejected {
                reason: "invalid_job".into(),
                detail: e,
                retry_after_ms: 0,
            };
        }
        let mut st = self.lock();
        if st.draining {
            drop(st);
            self.metrics.inc(Ctr::RejectedDraining, 1);
            return Response::Rejected {
                reason: "draining".into(),
                detail: "server is draining; not admitting new jobs".into(),
                retry_after_ms: 0,
            };
        }
        if let Some(result) = st.cache.get(&key.canon) {
            let id = st.next_id;
            st.next_id += 1;
            st.jobs.insert(
                id,
                Job {
                    spec,
                    canon: key.canon.clone(),
                    state: JobState::Done(result),
                    enqueued_at: Instant::now(),
                    progress: Vec::new(),
                },
            );
            st.answered += 1;
            st.done_order.push_back(id);
            while st.done_order.len() > self.retained_cap() {
                if let Some(old) = st.done_order.pop_front() {
                    st.jobs.remove(&old);
                }
            }
            drop(st);
            self.metrics.inc(Ctr::CacheHits, 1);
            self.metrics.inc(Ctr::Answered, 1);
            return Response::Submitted {
                id,
                key: key.hex(),
                status: SubmitStatus::Cached,
            };
        }
        if let Some(&id) = st.inflight.get(&key.canon) {
            drop(st);
            self.metrics.inc(Ctr::Coalesced, 1);
            return Response::Submitted {
                id,
                key: key.hex(),
                status: SubmitStatus::Coalesced,
            };
        }
        if st.queue.len() >= self.cfg.queue_cap {
            let depth = st.queue.len();
            drop(st);
            self.metrics.inc(Ctr::RejectedFull, 1);
            return Response::Rejected {
                reason: "queue_full".into(),
                detail: format!("queue at capacity ({depth} jobs waiting)"),
                retry_after_ms: self.cfg.retry_after_ms,
            };
        }
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.insert(
            id,
            Job {
                spec,
                canon: key.canon.clone(),
                state: JobState::Queued,
                enqueued_at: Instant::now(),
                progress: Vec::new(),
            },
        );
        st.inflight.insert(key.canon.clone(), id);
        st.queue.push_back(id);
        self.publish_load(&st);
        drop(st);
        self.metrics.inc(Ctr::Accepted, 1);
        self.work_cv.notify_one();
        Response::Submitted {
            id,
            key: key.hex(),
            status: SubmitStatus::Queued,
        }
    }

    /// Blocks until job `id` is terminal and returns its result reply.
    fn result(&self, id: u64) -> Response {
        let mut st = self.lock();
        loop {
            match st.jobs.get(&id) {
                None => {
                    return Response::ProtocolError {
                        error: format!("unknown job id {id}"),
                    }
                }
                Some(job) => match &job.state {
                    JobState::Done(r) => {
                        return Response::ResultOk {
                            id,
                            result: r.as_ref().clone(),
                        }
                    }
                    JobState::Failed(e) => {
                        return Response::ResultErr {
                            id,
                            error: e.clone(),
                        }
                    }
                    _ => {}
                },
            }
            st = self.done_cv.wait(st).expect("server core poisoned");
        }
    }

    /// Streams job `id` to `emit`: every progress event in order (as
    /// [`Response::Progress`] with consecutive `seq`), then the terminal
    /// [`Response::ResultOk`]/[`Response::ResultErr`] line, then returns.
    /// `emit` returning `false` (a dead connection) aborts the stream.
    /// The core lock is never held across an `emit` call.
    pub fn watch(&self, id: u64, emit: &mut dyn FnMut(Response) -> bool) {
        let mut sent = 0usize;
        loop {
            let (fresh, terminal) = {
                let mut st = self.lock();
                loop {
                    let Some(job) = st.jobs.get(&id) else {
                        drop(st);
                        emit(Response::ProtocolError {
                            error: format!("unknown job id {id}"),
                        });
                        return;
                    };
                    let fresh: Vec<Arc<String>> = job.progress[sent..].to_vec();
                    let terminal = match &job.state {
                        JobState::Done(r) => Some(Ok(r.clone())),
                        JobState::Failed(e) => Some(Err(e.clone())),
                        _ => None,
                    };
                    if !fresh.is_empty() || terminal.is_some() {
                        break (fresh, terminal);
                    }
                    st = self.done_cv.wait(st).expect("server core poisoned");
                }
            };
            for event in fresh {
                let resp = Response::Progress {
                    id,
                    seq: sent as u64,
                    event: event.as_ref().clone(),
                };
                sent += 1;
                if !emit(resp) {
                    return;
                }
            }
            if let Some(terminal) = terminal {
                let resp = match terminal {
                    Ok(r) => Response::ResultOk {
                        id,
                        result: r.as_ref().clone(),
                    },
                    Err(e) => Response::ResultErr { id, error: e },
                };
                emit(resp);
                return;
            }
        }
    }

    fn status(&self, id: u64) -> Response {
        let st = self.lock();
        match st.jobs.get(&id) {
            None => Response::ProtocolError {
                error: format!("unknown job id {id}"),
            },
            Some(job) => Response::Status {
                id,
                state: job.state.name().to_string(),
                queue_depth: st.queue.len() as u64,
            },
        }
    }

    /// Stops admission, waits for every accepted job to be answered, then
    /// shuts the worker pool down. Idempotent: concurrent drains all block
    /// until the server is idle and return the same summary.
    pub fn drain(&self) -> DrainSummary {
        let mut st = self.lock();
        st.draining = true;
        while !(st.queue.is_empty() && st.active == 0) {
            st = self.idle_cv.wait(st).expect("server core poisoned");
        }
        st.shutdown = true;
        let answered = st.answered;
        drop(st);
        self.work_cv.notify_all();
        self.done_cv.notify_all();
        self.idle_cv.notify_all();
        self.wake_accept_loop();
        DrainSummary {
            answered,
            executed: self.metrics.get(Ctr::Executed),
            metrics: self.metrics.snapshot_json(),
        }
    }

    /// Unblocks the accept loop after shutdown by making one throwaway
    /// connection to ourselves.
    fn wake_accept_loop(&self) {
        let addr = *self.addr.lock().expect("server addr poisoned");
        if let Some(addr) = addr {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }
    }

    /// True once `drain` has completed.
    pub fn is_shut_down(&self) -> bool {
        self.lock().shutdown
    }

    /// Handles one request, returning the reply to send.
    pub fn handle(&self, req: Request) -> Response {
        self.metrics.inc(Ctr::Requests, 1);
        match req {
            Request::Submit(spec) => self.submit(spec),
            Request::Status(id) => self.status(id),
            Request::Result(id) => self.result(id),
            // The TCP frontend streams `watch` itself (many lines per
            // request); through the one-reply `handle` path it degrades
            // to a blocking `result`.
            Request::Watch(id) => self.result(id),
            Request::Stats => Response::Stats {
                metrics: self.metrics.snapshot_line(),
            },
            Request::Ping => Response::Pong,
            Request::Drain => {
                let s = self.drain();
                Response::Drained {
                    answered: s.answered,
                    executed: s.executed,
                    metrics: self.metrics.snapshot_line(),
                }
            }
        }
    }

    /// Parses and handles one request line.
    pub fn handle_line(&self, line: &str) -> Response {
        match parse_request(line) {
            Ok(req) => self.handle(req),
            Err(e) => {
                self.metrics.inc(Ctr::Requests, 1);
                self.metrics.inc(Ctr::ProtocolErrors, 1);
                Response::ProtocolError { error: e }
            }
        }
    }

    /// The progress sink for job `id`: appends the event under the core
    /// lock and wakes watchers. `Send + Sync` so the detached timeout
    /// thread can drive it; events from an abandoned (timed-out) job
    /// land harmlessly on the already-failed entry, which watchers have
    /// already left.
    fn progress_sink(self: &Arc<Self>, id: u64) -> impl Fn(String) + Send + Sync {
        let core = self.clone();
        move |event: String| {
            let mut st = core.lock();
            if let Some(job) = st.jobs.get_mut(&id) {
                job.progress.push(Arc::new(event));
            }
            drop(st);
            core.done_cv.notify_all();
        }
    }

    /// Runs the engine with the configured wall-clock budget. With a
    /// timeout the engine runs on a detached thread; on expiry the worker
    /// abandons it and reports a structured error.
    fn execute(self: &Arc<Self>, id: u64, spec: JobSpec) -> Result<String, String> {
        let timeout = self.cfg.job_timeout_ms;
        if timeout == 0 {
            return self.engine.run_streaming(&spec, &self.progress_sink(id));
        }
        type Slot = (Mutex<Option<Result<String, String>>>, Condvar);
        let slot: Arc<Slot> = Arc::new((Mutex::new(None), Condvar::new()));
        let thread_slot = slot.clone();
        let engine = self.engine.clone();
        let sink = self.progress_sink(id);
        std::thread::spawn(move || {
            let out = engine.run_streaming(&spec, &sink);
            let (m, cv) = &*thread_slot;
            *m.lock().expect("timeout slot poisoned") = Some(out);
            cv.notify_all();
        });
        let (m, cv) = &*slot;
        let guard = m.lock().expect("timeout slot poisoned");
        let (mut guard, waited) = cv
            .wait_timeout_while(guard, Duration::from_millis(timeout), |r| r.is_none())
            .expect("timeout slot poisoned");
        if waited.timed_out() && guard.is_none() {
            self.metrics.inc(Ctr::Timeouts, 1);
            return Err(format!("timeout: exceeded {timeout} ms wall-clock budget"));
        }
        guard.take().expect("timeout slot must be filled")
    }

    /// One worker thread: pop, execute, answer, repeat until shutdown.
    fn worker_loop(self: Arc<Self>) {
        loop {
            let mut st = self.lock();
            while st.queue.is_empty() && !st.shutdown {
                st = self.work_cv.wait(st).expect("server core poisoned");
            }
            if st.shutdown && st.queue.is_empty() {
                return;
            }
            let id = st.queue.pop_front().expect("queue checked non-empty");
            let spec = {
                let job = st.jobs.get_mut(&id).expect("queued job must exist");
                job.state = JobState::Running;
                let waited = job.enqueued_at.elapsed().as_millis() as u64;
                self.metrics.observe_queue_wait_ms(waited);
                job.spec.clone()
            };
            st.active += 1;
            self.publish_load(&st);
            drop(st);

            let started = Instant::now();
            let outcome = self.execute(id, spec);
            self.metrics
                .observe_job_wall_ms(started.elapsed().as_millis() as u64);

            let mut st = self.lock();
            st.active -= 1;
            let state = match outcome {
                Ok(result) => {
                    self.metrics.inc(Ctr::Executed, 1);
                    let result = Arc::new(result);
                    let canon = st.jobs.get(&id).map(|j| j.canon.clone());
                    if let Some(canon) = canon {
                        st.cache.put(canon, result.clone());
                        let (_, _, evictions) = st.cache.counters();
                        let seen = self.metrics.get(Ctr::CacheEvictions);
                        if evictions > seen {
                            self.metrics.inc(Ctr::CacheEvictions, evictions - seen);
                        }
                    }
                    JobState::Done(result)
                }
                Err(e) => {
                    self.metrics.inc(Ctr::Failed, 1);
                    JobState::Failed(e)
                }
            };
            self.finish_job(&mut st, id, state);
            self.publish_load(&st);
            if st.queue.is_empty() && st.active == 0 {
                self.idle_cv.notify_all();
            }
        }
    }
}

/// A bound TCP job server.
pub struct Server {
    listener: TcpListener,
    core: Arc<Core>,
}

impl Server {
    /// Binds `addr` and prepares (but does not start) the server.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<dyn Engine>,
        cfg: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let core = Arc::new(Core::new(engine, cfg));
        *core.addr.lock().expect("server addr poisoned") = Some(listener.local_addr()?);
        Ok(Server { listener, core })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared core, for out-of-band drain (e.g. a stdin watcher).
    pub fn core(&self) -> Arc<Core> {
        self.core.clone()
    }

    /// Serves until a drain completes. Workers are joined; connection
    /// handler threads are detached and die with the process.
    pub fn run(self) -> DrainSummary {
        let workers: Vec<_> = (0..self.core.cfg.workers.max(1))
            .map(|_| {
                let core = self.core.clone();
                std::thread::spawn(move || core.worker_loop())
            })
            .collect();
        for stream in self.listener.incoming() {
            if self.core.is_shut_down() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let core = self.core.clone();
            std::thread::spawn(move || handle_connection(core, stream));
        }
        for w in workers {
            let _ = w.join();
        }
        DrainSummary {
            answered: self.core.lock().answered,
            executed: self.core.metrics.get(Ctr::Executed),
            metrics: self.core.metrics.snapshot_json(),
        }
    }
}

/// Reads request lines until EOF, answering each on the same stream.
fn handle_connection(core: Arc<Core>, stream: TcpStream) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        // `watch` is the one multi-line reply: stream progress events as
        // they land, finish with the terminal result line, then resume
        // the normal one-reply-per-line loop on the same connection.
        if let Ok(Request::Watch(id)) = parse_request(&line) {
            core.metrics.inc(Ctr::Requests, 1);
            let mut alive = true;
            core.watch(id, &mut |resp| {
                let mut out = encode_response(&resp);
                out.push('\n');
                alive = writer.write_all(out.as_bytes()).is_ok() && writer.flush().is_ok();
                alive
            });
            if !alive {
                return;
            }
            continue;
        }
        let resp = core.handle_line(&line);
        let is_drain = matches!(resp, Response::Drained { .. });
        let mut out = encode_response(&resp);
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() {
            return;
        }
        let _ = writer.flush();
        if is_drain {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::FaultSpec;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Deterministic fake engine: echoes the canon, optionally slow or
    /// failing, and counts executions.
    struct FakeEngine {
        delay_ms: u64,
        fail_apps: Vec<String>,
        runs: AtomicU64,
    }

    impl FakeEngine {
        fn new(delay_ms: u64) -> Self {
            FakeEngine {
                delay_ms,
                fail_apps: Vec::new(),
                runs: AtomicU64::new(0),
            }
        }
    }

    impl Engine for FakeEngine {
        fn validate(&self, spec: &JobSpec) -> Result<(), String> {
            if spec.app == "invalid" {
                return Err("unknown application \"invalid\"".into());
            }
            Ok(())
        }

        fn run(&self, spec: &JobSpec) -> Result<String, String> {
            self.runs.fetch_add(1, Ordering::SeqCst);
            if self.delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(self.delay_ms));
            }
            if self.fail_apps.iter().any(|a| a == &spec.app) {
                return Err(format!("engine cannot run {:?}", spec.app));
            }
            Ok(format!("{{\"canon\": \"{}\"}}", spec.canon()))
        }
    }

    fn spec(app: &str) -> JobSpec {
        JobSpec {
            app: app.into(),
            ..JobSpec::default()
        }
    }

    fn core_with(engine: FakeEngine, cfg: ServeConfig) -> Arc<Core> {
        Arc::new(Core::new(Arc::new(engine), cfg))
    }

    fn start_workers(core: &Arc<Core>) -> Vec<std::thread::JoinHandle<()>> {
        (0..core.cfg.workers)
            .map(|_| {
                let c = core.clone();
                std::thread::spawn(move || c.worker_loop())
            })
            .collect()
    }

    #[test]
    fn submit_execute_result_round_trip() {
        let core = core_with(FakeEngine::new(0), ServeConfig::default());
        let workers = start_workers(&core);
        let Response::Submitted { id, status, .. } = core.submit(spec("swim")) else {
            panic!("expected acceptance");
        };
        assert_eq!(status, SubmitStatus::Queued);
        let Response::ResultOk { result, .. } = core.result(id) else {
            panic!("expected a result");
        };
        assert!(result.contains("app=swim"), "{result}");
        core.drain();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn duplicate_submissions_coalesce_and_cache() {
        let core = core_with(FakeEngine::new(40), ServeConfig::default());
        let workers = start_workers(&core);
        let Response::Submitted { id: id1, .. } = core.submit(spec("swim")) else {
            panic!("expected acceptance");
        };
        // Same job again while in flight: coalesced onto the same id.
        let Response::Submitted {
            id: id2, status, ..
        } = core.submit(spec("swim"))
        else {
            panic!("expected acceptance");
        };
        assert_eq!(status, SubmitStatus::Coalesced);
        assert_eq!(id1, id2);
        let Response::ResultOk { result: r1, .. } = core.result(id1) else {
            panic!("expected a result");
        };
        // And again after completion: served from cache, new id, same bytes.
        let Response::Submitted {
            id: id3, status, ..
        } = core.submit(spec("swim"))
        else {
            panic!("expected acceptance");
        };
        assert_eq!(status, SubmitStatus::Cached);
        assert_ne!(id1, id3);
        let Response::ResultOk { result: r3, .. } = core.result(id3) else {
            panic!("expected a result");
        };
        assert_eq!(r1, r3);
        assert_eq!(core.metrics.get(Ctr::Executed), 1, "one simulation total");
        core.drain();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn full_queue_rejects_with_retry_hint() {
        let cfg = ServeConfig {
            workers: 1,
            queue_cap: 1,
            ..ServeConfig::default()
        };
        let core = core_with(FakeEngine::new(60), cfg);
        let workers = start_workers(&core);
        // First job occupies the worker (popped from queue quickly);
        // submit distinct jobs until the queue slot is taken too.
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        for i in 0..20 {
            match core.submit(spec(&format!("app{i}"))) {
                Response::Submitted { id, .. } => accepted.push(id),
                Response::Rejected {
                    reason,
                    retry_after_ms,
                    ..
                } => {
                    assert_eq!(reason, "queue_full");
                    assert_eq!(retry_after_ms, core.cfg.retry_after_ms);
                    rejected += 1;
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert!(rejected > 0, "saturation must produce rejections");
        assert_eq!(core.metrics.get(Ctr::RejectedFull), rejected);
        for id in accepted {
            assert!(matches!(core.result(id), Response::ResultOk { .. }));
        }
        core.drain();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn invalid_jobs_are_rejected_before_the_queue() {
        let core = core_with(FakeEngine::new(0), ServeConfig::default());
        let Response::Rejected { reason, .. } = core.submit(spec("invalid")) else {
            panic!("expected rejection");
        };
        assert_eq!(reason, "invalid_job");
        assert_eq!(core.metrics.get(Ctr::Accepted), 0);
    }

    #[test]
    fn engine_failures_become_structured_errors() {
        let mut eng = FakeEngine::new(0);
        eng.fail_apps.push("bad".into());
        let core = core_with(eng, ServeConfig::default());
        let workers = start_workers(&core);
        let Response::Submitted { id, .. } = core.submit(spec("bad")) else {
            panic!("expected acceptance");
        };
        let Response::ResultErr { error, .. } = core.result(id) else {
            panic!("expected an error result");
        };
        assert!(error.contains("bad"), "{error}");
        assert_eq!(core.metrics.get(Ctr::Failed), 1);
        core.drain();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn timeouts_answer_without_wedging_the_worker() {
        let cfg = ServeConfig {
            workers: 1,
            job_timeout_ms: 20,
            ..ServeConfig::default()
        };
        let core = core_with(FakeEngine::new(500), cfg);
        let workers = start_workers(&core);
        let Response::Submitted { id, .. } = core.submit(spec("slowpoke")) else {
            panic!("expected acceptance");
        };
        let Response::ResultErr { error, .. } = core.result(id) else {
            panic!("expected a timeout error");
        };
        assert!(error.contains("timeout"), "{error}");
        assert_eq!(core.metrics.get(Ctr::Timeouts), 1);
        // The worker must still be serviceable: a fast job via the
        // direct engine path would sleep 500ms here, so just drain.
        core.drain();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn drain_answers_everything_then_rejects() {
        let core = core_with(FakeEngine::new(5), ServeConfig::default());
        let workers = start_workers(&core);
        let ids: Vec<u64> = (0..6)
            .map(|i| match core.submit(spec(&format!("app{i}"))) {
                Response::Submitted { id, .. } => id,
                other => panic!("unexpected reply {other:?}"),
            })
            .collect();
        let summary = core.drain();
        assert_eq!(summary.answered, 6);
        assert_eq!(summary.executed, 6);
        for id in ids {
            assert!(matches!(core.result(id), Response::ResultOk { .. }));
        }
        let Response::Rejected { reason, .. } = core.submit(spec("late")) else {
            panic!("post-drain submissions must be rejected");
        };
        assert_eq!(reason, "draining");
        for w in workers {
            w.join().unwrap();
        }
    }

    /// Engine that streams three progress events before finishing, to
    /// exercise the watch path without a real search.
    struct StreamingEngine;

    impl Engine for StreamingEngine {
        fn validate(&self, _spec: &JobSpec) -> Result<(), String> {
            Ok(())
        }

        fn run(&self, spec: &JobSpec) -> Result<String, String> {
            self.run_streaming(spec, &|_| {})
        }

        fn run_streaming(
            &self,
            spec: &JobSpec,
            emit: &(dyn Fn(String) + Send + Sync),
        ) -> Result<String, String> {
            for i in 0..3 {
                emit(format!("{{\"app\":\"{}\",\"step\":{i}}}", spec.app));
            }
            Ok(format!("{{\"app\":\"{}\",\"done\":true}}", spec.app))
        }
    }

    #[test]
    fn watch_streams_progress_in_order_then_the_result() {
        let core = Arc::new(Core::new(Arc::new(StreamingEngine), ServeConfig::default()));
        let workers = start_workers(&core);
        let Response::Submitted { id, .. } = core.submit(spec("swim")) else {
            panic!("expected acceptance");
        };
        let mut got = Vec::new();
        core.watch(id, &mut |resp| {
            got.push(resp);
            true
        });
        assert_eq!(got.len(), 4, "3 progress lines + 1 result: {got:?}");
        for (i, resp) in got.iter().take(3).enumerate() {
            let Response::Progress { seq, event, .. } = resp else {
                panic!("expected progress, got {resp:?}");
            };
            assert_eq!(*seq, i as u64, "events must arrive in order");
            assert_eq!(event, &format!("{{\"app\":\"swim\",\"step\":{i}}}"));
        }
        assert!(matches!(got[3], Response::ResultOk { .. }));
        // A late watcher replays the full history identically.
        let mut replay = Vec::new();
        core.watch(id, &mut |resp| {
            replay.push(resp);
            true
        });
        assert_eq!(got, replay, "late watch must replay the same stream");
        // Watching an unknown id errors immediately.
        let mut bad = Vec::new();
        core.watch(9999, &mut |resp| {
            bad.push(resp);
            true
        });
        assert!(matches!(bad.as_slice(), [Response::ProtocolError { .. }]));
        core.drain();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn watch_streams_under_job_timeouts_too() {
        // With a timeout configured the engine runs on a detached thread;
        // the progress sink must still deliver.
        let cfg = ServeConfig {
            workers: 1,
            job_timeout_ms: 10_000,
            ..ServeConfig::default()
        };
        let core = Arc::new(Core::new(Arc::new(StreamingEngine), cfg));
        let workers = start_workers(&core);
        let Response::Submitted { id, .. } = core.submit(spec("mgrid")) else {
            panic!("expected acceptance");
        };
        let mut got = Vec::new();
        core.watch(id, &mut |resp| {
            got.push(resp);
            true
        });
        assert_eq!(got.len(), 4, "{got:?}");
        assert!(matches!(got[3], Response::ResultOk { .. }));
        core.drain();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn fault_specs_key_separately() {
        let core = core_with(FakeEngine::new(0), ServeConfig::default());
        let workers = start_workers(&core);
        let clean = spec("swim");
        let mut faulted = spec("swim");
        faulted.faults = FaultSpec::Seed(3);
        let Response::Submitted { id: a, .. } = core.submit(clean) else {
            panic!("expected acceptance");
        };
        let Response::Submitted { id: b, .. } = core.submit(faulted) else {
            panic!("expected acceptance");
        };
        assert_ne!(a, b, "fault spec is part of the job identity");
        core.result(a);
        core.result(b);
        core.drain();
        for w in workers {
            w.join().unwrap();
        }
    }
}
