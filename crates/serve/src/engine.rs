//! The execution engine: how the server turns an accepted [`JobSpec`]
//! into result bytes.
//!
//! [`SuiteEngine`] is the real one. It owns a bounded pool of
//! [`hoploc_harness::Suite`]s keyed by [`JobSpec::config_canon`], so every
//! job under the same simulator configuration shares one suite — and with
//! it the memoized (and capacity-bounded) layout and trace caches. Results
//! are the raw [`hoploc_harness::record_json`] bytes of the run, which is
//! exactly what `hoploc sweep --json` embeds per record: a served result
//! is byte-identical to a direct run by construction.
//!
//! The trait exists so tests can substitute slow or failing engines to
//! exercise backpressure and timeout paths without real simulations.

use crate::job::{FaultSpec, Fidelity, JobSpec};
use hoploc_est::{est_record_json, estimate_app, EstConfig};
use hoploc_fault::{FaultPlan, FaultRates};
use hoploc_harness::{fault_topo, record_json, RunRecord, RunSpec, Suite};
use hoploc_noc::{L2ToMcMapping, McPlacement};
use hoploc_search::{search_app, Objective, SearchConfig};
use hoploc_sim::{PrefetchConfig, PrefetchMode, SimConfig};
use hoploc_workloads::{all_apps, RunKind};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Executes jobs. Implementations must be safe to call from many worker
/// threads at once.
pub trait Engine: Send + Sync {
    /// Cheap admission-time validation: reject jobs that could never run
    /// (unknown app, ill-fitting fault plan) before they cost a queue slot.
    fn validate(&self, spec: &JobSpec) -> Result<(), String>;

    /// Runs the job to completion, returning the raw single-line JSON run
    /// record, or a structured error message.
    fn run(&self, spec: &JobSpec) -> Result<String, String>;

    /// Like [`run`](Engine::run), but long-running job kinds push
    /// intermediate progress lines (single-line JSON objects) through
    /// `emit` as they happen. The default ignores the sink and just runs
    /// — only engines with genuinely long jobs (search) override it. The
    /// sink must be callable from whatever thread executes the job,
    /// including the detached thread the server uses under timeouts.
    fn run_streaming(
        &self,
        spec: &JobSpec,
        emit: &(dyn Fn(String) + Send + Sync),
    ) -> Result<String, String> {
        let _ = emit;
        self.run(spec)
    }
}

/// How many completed artifacts each per-configuration suite may keep
/// resident, and how many distinct configurations the engine itself keeps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EngineCaps {
    /// Layout-cache capacity per suite (0 = unbounded).
    pub layout_cap: usize,
    /// Trace-cache capacity per suite (0 = unbounded). Traces dominate
    /// memory, so this is the knob that bounds a long-lived server.
    pub trace_cap: usize,
    /// Distinct simulator configurations (suites) kept alive at once.
    pub suite_cap: usize,
}

impl Default for EngineCaps {
    fn default() -> Self {
        // Two layout classes per app and a handful of hot traces cover
        // steady-state serving; everything else rebuilds bit-identically.
        EngineCaps {
            layout_cap: 32,
            trace_cap: 8,
            suite_cap: 4,
        }
    }
}

/// The production engine: bounded suite pool over the real harness.
pub struct SuiteEngine {
    caps: EngineCaps,
    suites: Mutex<HashMap<String, (Arc<Suite>, u64)>>,
    tick: Mutex<u64>,
}

impl SuiteEngine {
    /// An engine with the given residency bounds.
    pub fn new(caps: EngineCaps) -> Self {
        SuiteEngine {
            caps,
            suites: Mutex::new(HashMap::new()),
            tick: Mutex::new(0),
        }
    }

    fn sim_for(spec: &JobSpec) -> SimConfig {
        SimConfig {
            granularity: spec.granularity,
            l2_mode: spec.l2_mode,
            prefetch: PrefetchConfig::with_mode(spec.prefetch),
            ..SimConfig::scaled()
        }
    }

    fn mapping_for(spec: &JobSpec, sim: &SimConfig) -> L2ToMcMapping {
        if spec.m2 {
            L2ToMcMapping::halves(sim.mesh, &McPlacement::Corners)
        } else {
            L2ToMcMapping::nearest_cluster(sim.mesh, &sim.placement)
        }
    }

    /// The shared suite for this job's configuration, building (and
    /// LRU-evicting) as needed.
    fn suite_for(&self, spec: &JobSpec) -> Arc<Suite> {
        let key = spec.config_canon();
        let stamp = {
            let mut t = self.tick.lock().expect("engine tick poisoned");
            *t += 1;
            *t
        };
        let mut suites = self.suites.lock().expect("engine suites poisoned");
        if let Some((suite, used)) = suites.get_mut(&key) {
            *used = stamp;
            return suite.clone();
        }
        let sim = Self::sim_for(spec);
        let mapping = Self::mapping_for(spec, &sim);
        let suite = Arc::new(
            Suite::new(all_apps(spec.scale), mapping, sim)
                .with_threads_per_core(spec.threads)
                .with_cache_caps(self.caps.layout_cap, self.caps.trace_cap),
        );
        suites.insert(key, (suite.clone(), stamp));
        while suites.len() > self.caps.suite_cap.max(1) {
            let victim = suites
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    suites.remove(&k);
                }
                None => break,
            }
        }
        suite
    }

    /// Runs a search job: the same `search_app` call the CLI makes, fed
    /// the same `SimConfig` construction as [`sim_for`](Self::sim_for),
    /// so the streamed events and the final report are byte-identical to
    /// `hoploc search <app> --json -` with the same seed.
    fn run_search(
        &self,
        spec: &JobSpec,
        emit: &(dyn Fn(String) + Send + Sync),
    ) -> Result<String, String> {
        let search = spec.search.as_ref().expect("caller checked spec.search");
        let objective =
            Objective::parse(&search.objective).map_err(|e| format!("search objective: {e}"))?;
        let app = all_apps(spec.scale)
            .into_iter()
            .find(|a| a.name() == spec.app)
            .ok_or_else(|| format!("unknown application {:?}", spec.app))?;
        let cfg = SearchConfig {
            seed: search.seed,
            budget: search.budget,
            objective,
            ..SearchConfig::new(Self::sim_for(spec), spec.scale)
        };
        let mut sink = |line: String| emit(line);
        let report = search_app(&app, &cfg, &mut sink);
        Ok(report.to_json())
    }

    fn resolve_plan(spec: &JobSpec, suite: &Suite) -> Result<Option<FaultPlan>, String> {
        let topo = fault_topo(suite.sim());
        match &spec.faults {
            FaultSpec::None => Ok(None),
            FaultSpec::Seed(seed) => Ok(Some(FaultPlan::from_seed(
                *seed,
                &topo,
                &FaultRates::moderate(),
            ))),
            FaultSpec::Plan(plan) => {
                plan.validate(&topo)
                    .map_err(|e| format!("fault plan does not fit this machine: {e}"))?;
                Ok(Some(plan.clone()))
            }
        }
    }
}

impl Engine for SuiteEngine {
    fn validate(&self, spec: &JobSpec) -> Result<(), String> {
        if !all_apps(spec.scale).iter().any(|a| a.name() == spec.app) {
            return Err(format!(
                "unknown application {:?}; try `hoploc apps`",
                spec.app
            ));
        }
        if spec.threads == 0 {
            return Err("threads must be at least 1".into());
        }
        if spec.fidelity == Fidelity::Est && spec.faults != FaultSpec::None {
            return Err("fault injection needs cycle fidelity (the estimator is static)".into());
        }
        if spec.fidelity == Fidelity::Est && spec.prefetch != PrefetchMode::Off {
            return Err("prefetching needs cycle fidelity (the estimator is static)".into());
        }
        if let FaultSpec::Plan(plan) = &spec.faults {
            let sim = Self::sim_for(spec);
            plan.validate(&fault_topo(&sim))
                .map_err(|e| format!("fault plan does not fit this machine: {e}"))?;
        }
        if let Some(search) = &spec.search {
            // The optimizer searches mappings and tunes the optimized
            // layout itself, so every knob those subsume is pinned to the
            // value the search actually uses — accepting anything else
            // would key a result the server did not compute.
            if spec.kind != RunKind::Optimized {
                return Err("search jobs tune the optimized pass; use kind=optimized".into());
            }
            if spec.m2 {
                return Err(
                    "search jobs explore L2-to-MC mappings; the m2 preset does not apply".into(),
                );
            }
            if spec.threads != 1 {
                return Err("search jobs verify with one thread per core".into());
            }
            if spec.faults != FaultSpec::None {
                return Err("search jobs do not support fault injection".into());
            }
            if spec.fidelity != Fidelity::Cycle {
                return Err(
                    "search jobs verify with the cycle simulator; use cycle fidelity".into(),
                );
            }
            if search.budget == 0 {
                return Err("search budget must be at least 1".into());
            }
            Objective::parse(&search.objective).map_err(|e| format!("search objective: {e}"))?;
        }
        Ok(())
    }

    fn run(&self, spec: &JobSpec) -> Result<String, String> {
        if spec.search.is_some() {
            return self.run_search(spec, &|_| {});
        }
        let suite = self.suite_for(spec);
        let app_idx = suite
            .apps()
            .iter()
            .position(|a| a.name() == spec.app)
            .ok_or_else(|| format!("unknown application {:?}", spec.app))?;
        let run = RunSpec {
            app: app_idx,
            kind: spec.kind,
        };
        if spec.fidelity == Fidelity::Est {
            // Same compiled plan the cycle tier would replay, so the two
            // tiers disagree only by model, never by input.
            let plan = suite.layout_plan(run.app, run.kind);
            let cfg = EstConfig::from_sim(suite.sim()).with_threads_per_core(spec.threads.max(1));
            let est = estimate_app(
                &suite.apps()[run.app],
                &plan,
                suite.mapping(),
                run.kind,
                &cfg,
            );
            return Ok(est_record_json(&est));
        }
        let stats = match Self::resolve_plan(spec, &suite)? {
            None => suite.run_one(run),
            Some(plan) => suite.run_one_faulted(run, &plan),
        };
        Ok(record_json(&RunRecord {
            app: spec.app.clone(),
            kind: spec.kind,
            stats,
        }))
    }

    fn run_streaming(
        &self,
        spec: &JobSpec,
        emit: &(dyn Fn(String) + Send + Sync),
    ) -> Result<String, String> {
        if spec.search.is_some() {
            return self.run_search(spec, emit);
        }
        self.run(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_layout::{Granularity, L2Mode};
    use hoploc_workloads::{RunKind, Scale};

    fn spec(app: &str) -> JobSpec {
        JobSpec {
            app: app.into(),
            kind: RunKind::Baseline,
            scale: Scale::Test,
            ..JobSpec::default()
        }
    }

    #[test]
    fn validate_rejects_unknown_apps() {
        let eng = SuiteEngine::new(EngineCaps::default());
        assert!(eng.validate(&spec("swim")).is_ok());
        assert!(eng.validate(&spec("nosuchapp")).is_err());
    }

    #[test]
    fn run_matches_direct_harness_output() {
        let eng = SuiteEngine::new(EngineCaps::default());
        let s = spec("swim");
        let served = eng.run(&s).unwrap();

        let sim = SuiteEngine::sim_for(&s);
        let mapping = SuiteEngine::mapping_for(&s, &sim);
        let suite = Suite::new(all_apps(Scale::Test), mapping, sim);
        let idx = suite
            .apps()
            .iter()
            .position(|a| a.name() == "swim")
            .unwrap();
        let direct = record_json(&RunRecord {
            app: "swim".into(),
            kind: RunKind::Baseline,
            stats: suite.run_one(RunSpec {
                app: idx,
                kind: RunKind::Baseline,
            }),
        });
        assert_eq!(served, direct, "served bytes must equal direct run bytes");
    }

    #[test]
    fn est_fidelity_serves_the_estimator_record() {
        let eng = SuiteEngine::new(EngineCaps::default());
        let mut s = spec("swim");
        s.fidelity = Fidelity::Est;
        let served = eng.run(&s).unwrap();
        assert!(served.contains("\"fidelity\": \"est\""), "{served}");
        assert!(served.contains("\"offchip_fraction\""), "{served}");
        // Deterministic, and a different answer (and key) than the cycle
        // tier for the same cell.
        assert_eq!(served, eng.run(&s).unwrap());
        assert_ne!(s.key(), spec("swim").key());
        assert_ne!(served, eng.run(&spec("swim")).unwrap());
    }

    #[test]
    fn est_fidelity_rejects_fault_injection() {
        let eng = SuiteEngine::new(EngineCaps::default());
        let mut s = spec("swim");
        s.fidelity = Fidelity::Est;
        s.faults = FaultSpec::Seed(3);
        let err = eng.validate(&s).unwrap_err();
        assert!(err.contains("cycle fidelity"), "{err}");
    }

    #[test]
    fn est_fidelity_rejects_prefetch() {
        let eng = SuiteEngine::new(EngineCaps::default());
        let mut s = spec("swim");
        s.fidelity = Fidelity::Est;
        s.prefetch = PrefetchMode::Stride;
        let err = eng.validate(&s).unwrap_err();
        assert!(err.contains("cycle fidelity"), "{err}");
    }

    #[test]
    fn prefetch_jobs_serve_the_prefetch_block_and_key_separately() {
        let eng = SuiteEngine::new(EngineCaps::default());
        let plain = spec("swim");
        let mut pf = spec("swim");
        pf.prefetch = PrefetchMode::Gated;
        assert!(eng.validate(&pf).is_ok());
        let off_bytes = eng.run(&plain).unwrap();
        let pf_bytes = eng.run(&pf).unwrap();
        assert!(
            !off_bytes.contains("prefetch"),
            "off-prefetch result must stay byte-identical to pre-prefetch \
             builds: {off_bytes}"
        );
        assert!(pf_bytes.contains("\"prefetch\": {"), "{pf_bytes}");
        assert_ne!(plain.key(), pf.key(), "modes must cache separately");
        assert_eq!(pf_bytes, eng.run(&pf).unwrap(), "deterministic");
    }

    #[test]
    fn search_jobs_stream_and_match_direct_search() {
        use crate::job::SearchSpec;
        let eng = SuiteEngine::new(EngineCaps::default());
        let mut s = spec("gafort");
        s.kind = RunKind::Optimized;
        s.search = Some(SearchSpec {
            seed: 5,
            budget: 10,
            objective: "offchip+hops".into(),
        });
        assert!(eng.validate(&s).is_ok());
        let streamed = std::sync::Mutex::new(Vec::new());
        let served = eng
            .run_streaming(&s, &|line| streamed.lock().unwrap().push(line))
            .unwrap();

        let app = all_apps(s.scale)
            .into_iter()
            .find(|a| a.name() == "gafort")
            .unwrap();
        let cfg = SearchConfig {
            seed: 5,
            budget: 10,
            objective: Objective::parse("offchip,hops").unwrap(),
            ..SearchConfig::new(SuiteEngine::sim_for(&s), s.scale)
        };
        let mut direct_events = Vec::new();
        let report = search_app(&app, &cfg, &mut |e| direct_events.push(e));
        assert_eq!(served, report.to_json(), "served report must match direct");
        assert_eq!(
            *streamed.lock().unwrap(),
            direct_events,
            "streamed events must match direct events byte-for-byte"
        );
        // The plain (non-streaming) path returns the same final bytes.
        assert_eq!(eng.run(&s).unwrap(), served);
    }

    #[test]
    fn search_validation_pins_subsumed_knobs() {
        use crate::job::SearchSpec;
        let eng = SuiteEngine::new(EngineCaps::default());
        let base = || {
            let mut s = spec("swim");
            s.kind = RunKind::Optimized;
            s.search = Some(SearchSpec {
                seed: 0,
                budget: 10,
                objective: "offchip+hops".into(),
            });
            s
        };
        assert!(eng.validate(&base()).is_ok());
        let mut bad = base();
        bad.kind = RunKind::Baseline;
        assert!(eng.validate(&bad).unwrap_err().contains("optimized"));
        let mut bad = base();
        bad.m2 = true;
        assert!(eng.validate(&bad).unwrap_err().contains("m2"));
        let mut bad = base();
        bad.threads = 2;
        assert!(eng.validate(&bad).unwrap_err().contains("thread"));
        let mut bad = base();
        bad.faults = FaultSpec::Seed(1);
        assert!(eng.validate(&bad).unwrap_err().contains("fault"));
        let mut bad = base();
        bad.fidelity = Fidelity::Est;
        assert!(eng.validate(&bad).unwrap_err().contains("cycle"));
        let mut bad = base();
        bad.search.as_mut().unwrap().budget = 0;
        assert!(eng.validate(&bad).unwrap_err().contains("budget"));
        let mut bad = base();
        bad.search.as_mut().unwrap().objective = "latency".into();
        assert!(eng.validate(&bad).unwrap_err().contains("objective"));
    }

    #[test]
    fn seeded_faults_are_deterministic() {
        let eng = SuiteEngine::new(EngineCaps::default());
        let mut s = spec("swim");
        s.faults = FaultSpec::Seed(7);
        assert_eq!(eng.run(&s).unwrap(), eng.run(&s).unwrap());
    }

    #[test]
    fn suite_pool_is_bounded() {
        let eng = SuiteEngine::new(EngineCaps {
            suite_cap: 1,
            ..EngineCaps::default()
        });
        let a = spec("swim");
        let mut b = spec("swim");
        b.granularity = Granularity::Page;
        let _ = eng.suite_for(&a);
        let _ = eng.suite_for(&b);
        assert_eq!(eng.suites.lock().unwrap().len(), 1);
        let mut c = spec("swim");
        c.l2_mode = L2Mode::Shared;
        assert_ne!(a.config_canon(), c.config_canon());
    }
}
