//! A blocking client for the wire protocol.
//!
//! One connection, requests answered in order. [`Client::submit_until_accepted`]
//! implements the cooperative half of backpressure: on `queue_full` it
//! sleeps the server-suggested `retry_after_ms` and resubmits.

use crate::job::JobSpec;
use crate::wire::{encode_request, parse_response, Request, Response, SubmitStatus};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and reads one reply.
    pub fn call(&mut self, req: &Request) -> Result<Response, String> {
        let mut line = encode_request(req);
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        parse_response(reply.trim_end())
    }

    /// Submits a job once.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<Response, String> {
        self.call(&Request::Submit(spec.clone()))
    }

    /// Submits a job, honoring `queue_full` backpressure: sleeps the
    /// server's `retry_after_ms` hint and retries, up to `max_retries`
    /// attempts. Returns the accepting reply `(id, status)` plus how many
    /// retries backpressure cost.
    pub fn submit_until_accepted(
        &mut self,
        spec: &JobSpec,
        max_retries: u64,
    ) -> Result<(u64, SubmitStatus, u64), String> {
        let mut retries = 0u64;
        loop {
            match self.submit(spec)? {
                Response::Submitted { id, status, .. } => return Ok((id, status, retries)),
                Response::Rejected {
                    reason,
                    detail,
                    retry_after_ms,
                } if reason == "queue_full" => {
                    if retries >= max_retries {
                        return Err(format!("gave up after {retries} retries: {detail}"));
                    }
                    retries += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                Response::Rejected { reason, detail, .. } => {
                    return Err(format!("rejected ({reason}): {detail}"));
                }
                other => return Err(format!("unexpected submit reply {other:?}")),
            }
        }
    }

    /// Blocks until job `id` finishes and returns its raw result bytes.
    pub fn result(&mut self, id: u64) -> Result<String, String> {
        match self.call(&Request::Result(id))? {
            Response::ResultOk { result, .. } => Ok(result),
            Response::ResultErr { error, .. } => Err(format!("job {id} failed: {error}")),
            other => Err(format!("unexpected result reply {other:?}")),
        }
    }

    /// Watches job `id` to completion: streams its progress events (raw
    /// single-line JSON objects, in order) into `on_event` as they
    /// arrive, then returns the final raw result bytes. For job kinds
    /// without progress this is `result` plus zero events.
    pub fn watch(&mut self, id: u64, on_event: &mut dyn FnMut(String)) -> Result<String, String> {
        let mut line = encode_request(&Request::Watch(id));
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))?;
        let mut next_seq = 0u64;
        loop {
            let mut reply = String::new();
            let n = self
                .reader
                .read_line(&mut reply)
                .map_err(|e| format!("recv: {e}"))?;
            if n == 0 {
                return Err("server closed the connection mid-watch".into());
            }
            match parse_response(reply.trim_end())? {
                Response::Progress { seq, event, .. } => {
                    if seq != next_seq {
                        return Err(format!(
                            "watch stream skipped: expected seq {next_seq}, got {seq}"
                        ));
                    }
                    next_seq += 1;
                    on_event(event);
                }
                Response::ResultOk { result, .. } => return Ok(result),
                Response::ResultErr { error, .. } => {
                    return Err(format!("job {id} failed: {error}"))
                }
                Response::ProtocolError { error } => return Err(error),
                other => return Err(format!("unexpected watch reply {other:?}")),
            }
        }
    }

    /// Fetches the server metrics snapshot (single-line JSON object).
    pub fn stats(&mut self) -> Result<String, String> {
        match self.call(&Request::Stats)? {
            Response::Stats { metrics } => Ok(metrics),
            other => Err(format!("unexpected stats reply {other:?}")),
        }
    }

    /// Asks the server to drain and waits for the final summary:
    /// `(answered, executed, metrics)`.
    pub fn drain(&mut self) -> Result<(u64, u64, String), String> {
        match self.call(&Request::Drain)? {
            Response::Drained {
                answered,
                executed,
                metrics,
            } => Ok((answered, executed, metrics)),
            other => Err(format!("unexpected drain reply {other:?}")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(format!("unexpected ping reply {other:?}")),
        }
    }
}
