//! The newline-delimited JSON wire protocol.
//!
//! Every request and every response is exactly one line of JSON. Requests
//! carry an `"op"` discriminant (`submit`, `status`, `result`, `stats`,
//! `drain`, `ping`); responses echo the op and carry `"ok"` — `false`
//! marks both admission rejects (queue full, draining, invalid job) and
//! protocol errors, each with a machine-readable `"error"` reason.
//!
//! Result and metrics payloads are embedded as *raw* pre-serialized JSON
//! objects: the encoder splices the bytes in unchanged and the parser
//! extracts them unchanged, so a result served from the cache or over the
//! wire is byte-identical to the `record_json` of a direct run — the
//! property the end-to-end suite asserts literally.

use crate::job::{
    fidelity_name, granularity_name, l2_name, parse_fidelity, parse_granularity, parse_kind,
    parse_l2, parse_scale, scale_name, FaultSpec, Fidelity, JobSpec, SearchSpec,
};
use hoploc_fault::FaultPlan;
use hoploc_harness::kind_name;
use hoploc_obs::{parse_json, JsonValue};
use hoploc_sim::PrefetchMode;
use std::fmt::Write as _;

/// A parsed client request.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Submit a job for execution.
    Submit(JobSpec),
    /// Ask for a job's current state.
    Status(u64),
    /// Wait for and fetch a job's result.
    Result(u64),
    /// Stream a job's progress events as they land, then its final
    /// result. For job kinds that never emit progress this degrades to
    /// `result` with extra steps.
    Watch(u64),
    /// Fetch the server metrics snapshot.
    Stats,
    /// Stop admitting, finish all accepted jobs, snapshot metrics, shut
    /// down.
    Drain,
    /// Liveness probe.
    Ping,
}

/// How an accepted submission was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubmitStatus {
    /// Admitted to the queue; a worker will execute it.
    Queued,
    /// Merged with an identical in-flight job: same id, one simulation.
    Coalesced,
    /// Served from the result cache: already done on arrival.
    Cached,
}

impl SubmitStatus {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            SubmitStatus::Queued => "queued",
            SubmitStatus::Coalesced => "coalesced",
            SubmitStatus::Cached => "cached",
        }
    }
}

/// A server response (one line).
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    /// Submission accepted.
    Submitted {
        /// Job id (shared by coalesced submissions).
        id: u64,
        /// The 16-hex-digit canonical job hash.
        key: String,
        /// How the submission was satisfied.
        status: SubmitStatus,
    },
    /// Submission rejected (backpressure, drain, or invalid job). The
    /// client should wait `retry_after_ms` before retrying; `0` means
    /// "don't retry" (the condition is permanent for this server).
    Rejected {
        /// Machine-readable reason: `queue_full`, `draining`, or
        /// `invalid_job`.
        reason: String,
        /// Human-readable detail (empty when the reason says it all).
        detail: String,
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// A job's current state.
    Status {
        /// Job id.
        id: u64,
        /// `queued`, `running`, `done`, or `error`.
        state: String,
        /// Jobs currently waiting in the queue.
        queue_depth: u64,
    },
    /// A finished job's result: the raw `record_json` bytes.
    ResultOk {
        /// Job id.
        id: u64,
        /// Raw single-line JSON run record.
        result: String,
    },
    /// One progress event of a watched job: the raw event JSON bytes,
    /// numbered so a client can detect (and a test can assert) in-order
    /// delivery. A `watch` reply is any number of these followed by one
    /// terminal `ResultOk`/`ResultErr` line.
    Progress {
        /// Job id.
        id: u64,
        /// 0-based event number within this job.
        seq: u64,
        /// Raw single-line JSON event object.
        event: String,
    },
    /// A finished job's structured error (timeout, engine failure).
    ResultErr {
        /// Job id.
        id: u64,
        /// What went wrong.
        error: String,
    },
    /// The server metrics snapshot as a raw JSON object.
    Stats {
        /// Raw single-line JSON metrics object.
        metrics: String,
    },
    /// Drain acknowledged: all accepted jobs answered, server exiting.
    Drained {
        /// Jobs that received a terminal answer over the server lifetime.
        answered: u64,
        /// Simulations actually executed (less than submissions when
        /// coalescing/caching did their job).
        executed: u64,
        /// Final metrics snapshot as a raw JSON object.
        metrics: String,
    },
    /// Reply to `ping`.
    Pong,
    /// The request line could not be understood.
    ProtocolError {
        /// Parse/validation failure description.
        error: String,
    },
}

/// JSON string literal with escaping.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Encodes a job spec as the `"job"` object of a submit request. Faults
/// encode as `fault_seed` (seeded generation) or `fault_plan` (the
/// `hoploc faults` text format, JSON-escaped).
pub fn encode_job(spec: &JobSpec) -> String {
    let mut s = format!(
        "{{\"app\":{},\"kind\":\"{}\",\"scale\":\"{}\",\"granularity\":\"{}\",\
         \"l2\":\"{}\",\"mapping\":\"{}\",\"threads\":{}",
        json_string(&spec.app),
        kind_name(spec.kind),
        scale_name(spec.scale),
        granularity_name(spec.granularity),
        l2_name(spec.l2_mode),
        if spec.m2 { "m2" } else { "m1" },
        spec.threads,
    );
    match &spec.faults {
        FaultSpec::None => {}
        FaultSpec::Seed(seed) => {
            let _ = write!(s, ",\"fault_seed\":{seed}");
        }
        FaultSpec::Plan(plan) => {
            let _ = write!(s, ",\"fault_plan\":{}", json_string(&plan.render()));
        }
    }
    // Default-tier requests stay byte-identical to pre-fidelity clients'.
    if spec.fidelity != Fidelity::Cycle {
        let _ = write!(s, ",\"fidelity\":\"{}\"", fidelity_name(spec.fidelity));
    }
    // Search fields are likewise absent unless the job is a search.
    if let Some(search) = &spec.search {
        let _ = write!(
            s,
            ",\"search_seed\":{},\"search_budget\":{},\"search_objective\":{}",
            search.seed,
            search.budget,
            json_string(&search.objective),
        );
    }
    // Off-prefetch requests stay byte-identical to pre-prefetch clients'.
    if spec.prefetch != PrefetchMode::Off {
        let _ = write!(s, ",\"prefetch\":\"{}\"", spec.prefetch.name());
    }
    s.push('}');
    s
}

/// Parses the `"job"` object of a submit request. Unknown fields are
/// rejected — a typoed knob must not silently fall back to a default and
/// key (or simulate) something the client did not ask for.
pub fn parse_job(v: &JsonValue) -> Result<JobSpec, String> {
    let JsonValue::Obj(members) = v else {
        return Err("job must be an object".into());
    };
    let mut spec = JobSpec::default();
    let mut fault_seed: Option<u64> = None;
    let mut fault_plan: Option<FaultPlan> = None;
    let mut search_seed: Option<u64> = None;
    let mut search_budget: Option<u32> = None;
    let mut search_objective: Option<String> = None;
    let mut saw_app = false;
    let mut saw_kind = false;
    for (k, val) in members {
        match k.as_str() {
            "app" => {
                spec.app = val.as_str().ok_or("app must be a string")?.to_string();
                saw_app = true;
            }
            "kind" => {
                spec.kind = parse_kind(val.as_str().ok_or("kind must be a string")?)?;
                saw_kind = true;
            }
            "scale" => {
                spec.scale = parse_scale(val.as_str().ok_or("scale must be a string")?)?;
            }
            "granularity" => {
                spec.granularity =
                    parse_granularity(val.as_str().ok_or("granularity must be a string")?)?;
            }
            "l2" => {
                spec.l2_mode = parse_l2(val.as_str().ok_or("l2 must be a string")?)?;
            }
            "mapping" => match val.as_str().ok_or("mapping must be a string")? {
                "m1" => spec.m2 = false,
                "m2" => spec.m2 = true,
                other => return Err(format!("unknown mapping {other:?} (use m1 or m2)")),
            },
            "threads" => {
                let n = val
                    .as_u64()
                    .ok_or("threads must be a non-negative integer")?;
                if n == 0 {
                    return Err("threads must be at least 1".into());
                }
                spec.threads = n as usize;
            }
            "fault_seed" => {
                fault_seed = Some(
                    val.as_u64()
                        .ok_or("fault_seed must be a non-negative integer")?,
                );
            }
            "fault_plan" => {
                let text = val.as_str().ok_or("fault_plan must be a string")?;
                fault_plan = Some(FaultPlan::parse(text).map_err(|e| format!("fault_plan: {e}"))?);
            }
            "fidelity" => {
                spec.fidelity = parse_fidelity(val.as_str().ok_or("fidelity must be a string")?)?;
            }
            "prefetch" => {
                spec.prefetch =
                    PrefetchMode::parse(val.as_str().ok_or("prefetch must be a string")?)?;
            }
            "search_seed" => {
                search_seed = Some(
                    val.as_u64()
                        .ok_or("search_seed must be a non-negative integer")?,
                );
            }
            "search_budget" => {
                let n = val
                    .as_u64()
                    .ok_or("search_budget must be a non-negative integer")?;
                if n == 0 || n > u64::from(u32::MAX) {
                    return Err("search_budget must be between 1 and 4294967295".into());
                }
                search_budget = Some(n as u32);
            }
            "search_objective" => {
                let text = val.as_str().ok_or("search_objective must be a string")?;
                // Canonicalize up front so semantically identical objective
                // spellings ("offchip,hops" vs "offchip+hops") key — and
                // therefore cache and coalesce — identically.
                let obj = hoploc_search::Objective::parse(text)
                    .map_err(|e| format!("search_objective: {e}"))?;
                search_objective = Some(obj.canon());
            }
            other => return Err(format!("unknown job field {other:?}")),
        }
    }
    if !saw_app {
        return Err("job is missing required field \"app\"".into());
    }
    if !saw_kind {
        return Err("job is missing required field \"kind\"".into());
    }
    spec.faults = match (fault_seed, fault_plan) {
        (Some(_), Some(_)) => {
            return Err("fault_seed and fault_plan are mutually exclusive".into());
        }
        (Some(seed), None) => FaultSpec::Seed(seed),
        (None, Some(plan)) => FaultSpec::Plan(plan),
        (None, None) => FaultSpec::None,
    };
    // Any search_* field makes the job a search; unspecified knobs take
    // the same defaults the CLI uses.
    spec.search = match (search_seed, search_budget, search_objective) {
        (None, None, None) => None,
        (seed, budget, objective) => Some(SearchSpec {
            seed: seed.unwrap_or(0),
            budget: budget.unwrap_or(400),
            objective: objective.unwrap_or_else(|| hoploc_search::Objective::default().canon()),
        }),
    };
    Ok(spec)
}

/// Encodes a request as one line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Submit(spec) => format!("{{\"op\":\"submit\",\"job\":{}}}", encode_job(spec)),
        Request::Status(id) => format!("{{\"op\":\"status\",\"id\":{id}}}"),
        Request::Result(id) => format!("{{\"op\":\"result\",\"id\":{id}}}"),
        Request::Watch(id) => format!("{{\"op\":\"watch\",\"id\":{id}}}"),
        Request::Stats => "{\"op\":\"stats\"}".to_string(),
        Request::Drain => "{\"op\":\"drain\"}".to_string(),
        Request::Ping => "{\"op\":\"ping\"}".to_string(),
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let op = v
        .get("op")
        .and_then(|o| o.as_str())
        .ok_or("missing \"op\" string")?;
    let id = || {
        v.get("id")
            .and_then(|i| i.as_u64())
            .ok_or_else(|| format!("op {op:?} needs a numeric \"id\""))
    };
    match op {
        "submit" => {
            let job = v.get("job").ok_or("submit needs a \"job\" object")?;
            Ok(Request::Submit(parse_job(job)?))
        }
        "status" => Ok(Request::Status(id()?)),
        "result" => Ok(Request::Result(id()?)),
        "watch" => Ok(Request::Watch(id()?)),
        "stats" => Ok(Request::Stats),
        "drain" => Ok(Request::Drain),
        "ping" => Ok(Request::Ping),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Encodes a response as one line (no trailing newline). `result` and
/// `metrics` payloads are spliced in as raw bytes.
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Submitted { id, key, status } => format!(
            "{{\"ok\":true,\"op\":\"submit\",\"id\":{id},\"key\":\"{key}\",\"status\":\"{}\"}}",
            status.name()
        ),
        Response::Rejected {
            reason,
            detail,
            retry_after_ms,
        } => format!(
            "{{\"ok\":false,\"op\":\"submit\",\"error\":{},\"detail\":{},\"retry_after_ms\":{retry_after_ms}}}",
            json_string(reason),
            json_string(detail),
        ),
        Response::Status {
            id,
            state,
            queue_depth,
        } => format!(
            "{{\"ok\":true,\"op\":\"status\",\"id\":{id},\"state\":{},\"queue_depth\":{queue_depth}}}",
            json_string(state),
        ),
        Response::ResultOk { id, result } => format!(
            "{{\"ok\":true,\"op\":\"result\",\"id\":{id},\"state\":\"done\",\"result\":{result}}}"
        ),
        Response::Progress { id, seq, event } => format!(
            "{{\"ok\":true,\"op\":\"watch\",\"id\":{id},\"seq\":{seq},\"event\":{event}}}"
        ),
        Response::ResultErr { id, error } => format!(
            "{{\"ok\":true,\"op\":\"result\",\"id\":{id},\"state\":\"error\",\"error\":{}}}",
            json_string(error),
        ),
        Response::Stats { metrics } => {
            format!("{{\"ok\":true,\"op\":\"stats\",\"metrics\":{metrics}}}")
        }
        Response::Drained {
            answered,
            executed,
            metrics,
        } => format!(
            "{{\"ok\":true,\"op\":\"drain\",\"answered\":{answered},\"executed\":{executed},\"metrics\":{metrics}}}"
        ),
        Response::Pong => "{\"ok\":true,\"op\":\"ping\"}".to_string(),
        Response::ProtocolError { error } => format!(
            "{{\"ok\":false,\"op\":\"error\",\"error\":{}}}",
            json_string(error),
        ),
    }
}

/// Extracts the raw bytes of the JSON object value of `"key":` in `line`,
/// balancing braces and skipping string contents. This is how result and
/// metrics payloads cross the protocol without a reserialization that
/// could perturb their bytes.
pub fn extract_raw_object(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let bytes = line.as_bytes();
    if *bytes.get(start)? != b'{' {
        return None;
    }
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(line[start..=i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses one response line back into a [`Response`] (the client half of
/// the protocol). Raw `result`/`metrics` payloads are preserved
/// byte-for-byte.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = parse_json(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let ok = matches!(v.get("ok"), Some(JsonValue::Bool(true)));
    let op = v
        .get("op")
        .and_then(|o| o.as_str())
        .ok_or("missing \"op\" string")?;
    let str_field = |name: &str| -> Result<String, String> {
        v.get(name)
            .and_then(|s| s.as_str())
            .map(str::to_string)
            .ok_or_else(|| format!("missing string \"{name}\""))
    };
    let num_field = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(|n| n.as_u64())
            .ok_or_else(|| format!("missing number \"{name}\""))
    };
    match (op, ok) {
        ("submit", true) => {
            let status = match str_field("status")?.as_str() {
                "queued" => SubmitStatus::Queued,
                "coalesced" => SubmitStatus::Coalesced,
                "cached" => SubmitStatus::Cached,
                other => return Err(format!("unknown submit status {other:?}")),
            };
            Ok(Response::Submitted {
                id: num_field("id")?,
                key: str_field("key")?,
                status,
            })
        }
        ("submit", false) => Ok(Response::Rejected {
            reason: str_field("error")?,
            detail: str_field("detail")?,
            retry_after_ms: num_field("retry_after_ms")?,
        }),
        ("status", true) => Ok(Response::Status {
            id: num_field("id")?,
            state: str_field("state")?,
            queue_depth: num_field("queue_depth")?,
        }),
        ("result", true) => {
            let id = num_field("id")?;
            match str_field("state")?.as_str() {
                "done" => Ok(Response::ResultOk {
                    id,
                    result: extract_raw_object(line, "result")
                        .ok_or("result reply is missing its \"result\" object")?,
                }),
                "error" => Ok(Response::ResultErr {
                    id,
                    error: str_field("error")?,
                }),
                other => Err(format!("unknown result state {other:?}")),
            }
        }
        ("watch", true) => Ok(Response::Progress {
            id: num_field("id")?,
            seq: num_field("seq")?,
            event: extract_raw_object(line, "event")
                .ok_or("watch reply is missing its \"event\" object")?,
        }),
        ("stats", true) => Ok(Response::Stats {
            metrics: extract_raw_object(line, "metrics")
                .ok_or("stats reply is missing its \"metrics\" object")?,
        }),
        ("drain", true) => Ok(Response::Drained {
            answered: num_field("answered")?,
            executed: num_field("executed")?,
            metrics: extract_raw_object(line, "metrics")
                .ok_or("drain reply is missing its \"metrics\" object")?,
        }),
        ("ping", true) => Ok(Response::Pong),
        ("error", false) => Ok(Response::ProtocolError {
            error: str_field("error")?,
        }),
        (op, ok) => Err(format!("unexpected reply op {op:?} with ok={ok}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_workloads::{RunKind, Scale};

    fn spec() -> JobSpec {
        JobSpec {
            app: "swim".into(),
            kind: RunKind::Optimized,
            scale: Scale::Test,
            ..JobSpec::default()
        }
    }

    #[test]
    fn submit_round_trips() {
        for faults in [
            FaultSpec::None,
            FaultSpec::Seed(42),
            FaultSpec::Plan(FaultPlan::parse("mc 1 from=5 until=9\n").unwrap()),
        ] {
            let mut s = spec();
            s.faults = faults;
            let req = Request::Submit(s);
            let line = encode_request(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn plain_ops_round_trip() {
        for req in [
            Request::Status(7),
            Request::Result(9),
            Request::Watch(11),
            Request::Stats,
            Request::Drain,
            Request::Ping,
        ] {
            let line = encode_request(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn fidelity_round_trips_and_default_is_absent_from_the_wire() {
        let mut s = spec();
        s.fidelity = Fidelity::Est;
        let line = encode_request(&Request::Submit(s.clone()));
        assert!(line.contains("\"fidelity\":\"est\""), "{line}");
        assert_eq!(parse_request(&line).unwrap(), Request::Submit(s));
        let line = encode_request(&Request::Submit(spec()));
        assert!(!line.contains("fidelity"), "{line}");
        let err = parse_request(
            r#"{"op":"submit","job":{"app":"a","kind":"baseline","fidelity":"rtl"}}"#,
        )
        .unwrap_err();
        assert!(err.contains("fidelity"), "{err}");
    }

    #[test]
    fn prefetch_round_trips_and_default_is_absent_from_the_wire() {
        let mut s = spec();
        s.prefetch = PrefetchMode::Gated;
        let line = encode_request(&Request::Submit(s.clone()));
        assert!(line.contains("\"prefetch\":\"gated\""), "{line}");
        assert_eq!(parse_request(&line).unwrap(), Request::Submit(s));
        // Off-prefetch jobs never mention prefetch on the wire.
        let line = encode_request(&Request::Submit(spec()));
        assert!(!line.contains("prefetch"), "{line}");
        let err = parse_request(
            r#"{"op":"submit","job":{"app":"a","kind":"baseline","prefetch":"psychic"}}"#,
        )
        .unwrap_err();
        assert!(err.contains("prefetch"), "{err}");
    }

    #[test]
    fn search_fields_round_trip_and_defaults_are_absent_from_the_wire() {
        let mut s = spec();
        s.search = Some(SearchSpec {
            seed: 7,
            budget: 120,
            objective: "offchip+hops".into(),
        });
        let line = encode_request(&Request::Submit(s.clone()));
        assert!(line.contains("\"search_seed\":7"), "{line}");
        assert!(line.contains("\"search_budget\":120"), "{line}");
        assert!(
            line.contains("\"search_objective\":\"offchip+hops\""),
            "{line}"
        );
        assert_eq!(parse_request(&line).unwrap(), Request::Submit(s));
        // Non-search jobs never mention search on the wire.
        let line = encode_request(&Request::Submit(spec()));
        assert!(!line.contains("search"), "{line}");
        // A single search field is enough to opt in; the rest default to
        // the CLI defaults, and the objective is canonicalized on parse.
        let line = r#"{"op":"submit","job":{"app":"swim","kind":"optimized","search_seed":3}}"#;
        let Request::Submit(parsed) = parse_request(line).unwrap() else {
            panic!("must parse as a submission");
        };
        let search = parsed.search.expect("search_seed opts into search");
        assert_eq!((search.seed, search.budget), (3, 400));
        assert_eq!(search.objective, "offchip+hops");
        let line = r#"{"op":"submit","job":{"app":"swim","kind":"optimized","search_objective":"hops,offchip"}}"#;
        let Request::Submit(parsed) = parse_request(line).unwrap() else {
            panic!("must parse as a submission");
        };
        assert_eq!(parsed.search.unwrap().objective, "offchip+hops");
        // Bad knobs are parse errors, not silent defaults.
        for (line, needle) in [
            (
                r#"{"op":"submit","job":{"app":"a","kind":"optimized","search_budget":0}}"#,
                "search_budget",
            ),
            (
                r#"{"op":"submit","job":{"app":"a","kind":"optimized","search_objective":"latency"}}"#,
                "search_objective",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "`{line}` -> `{err}`");
        }
    }

    #[test]
    fn progress_replies_round_trip_with_raw_event_bytes() {
        let event = r#"{"app":"apsi","phase":"anneal","evaluated":41,"best_score":0.356519,"best":{"mcs":[18,21,42,45]}}"#;
        let resp = Response::Progress {
            id: 5,
            seq: 3,
            event: event.to_string(),
        };
        let line = encode_response(&resp);
        assert!(!line.contains('\n'), "one line: {line}");
        assert_eq!(parse_response(&line).unwrap(), resp, "{line}");
        let Response::Progress { event: back, .. } = parse_response(&line).unwrap() else {
            panic!("must parse as progress");
        };
        assert_eq!(back, event, "event bytes must cross the wire unchanged");
    }

    #[test]
    fn unknown_job_fields_are_rejected() {
        let line = r#"{"op":"submit","job":{"app":"swim","kind":"baseline","granlarity":"page"}}"#;
        let err = parse_request(line).unwrap_err();
        assert!(err.contains("granlarity"), "{err}");
    }

    #[test]
    fn missing_required_fields_are_rejected() {
        for (line, needle) in [
            (r#"{"op":"submit","job":{"kind":"baseline"}}"#, "app"),
            (r#"{"op":"submit","job":{"app":"swim"}}"#, "kind"),
            (r#"{"op":"status"}"#, "id"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"job":{}}"#, "op"),
            ("not json", "malformed"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "`{line}` -> `{err}`");
        }
    }

    #[test]
    fn exclusive_fault_fields() {
        let line = r##"{"op":"submit","job":{"app":"a","kind":"baseline","fault_seed":1,"fault_plan":"# x\n"}}"##;
        assert!(parse_request(line)
            .unwrap_err()
            .contains("mutually exclusive"));
    }

    #[test]
    fn raw_extraction_balances_braces_and_strings() {
        let line = r#"{"ok":true,"op":"stats","metrics":{"a":{"b":[1,2]},"s":"}{"}}"#;
        assert_eq!(
            extract_raw_object(line, "metrics").unwrap(),
            r#"{"a":{"b":[1,2]},"s":"}{"}"#
        );
        assert!(extract_raw_object(line, "result").is_none());
    }

    #[test]
    fn responses_round_trip_including_errors() {
        let raw = r#"{"app": "swim", "kind": "baseline", "exec_cycles": 12}"#;
        let metrics =
            r#"{"counters": {"serve.submitted": [3]},"gauges": {},"histograms": {},"series": {}}"#;
        for resp in [
            Response::Submitted {
                id: 3,
                key: "00ff".into(),
                status: SubmitStatus::Coalesced,
            },
            Response::Rejected {
                reason: "queue_full".into(),
                detail: "queue at capacity 2".into(),
                retry_after_ms: 50,
            },
            Response::Status {
                id: 3,
                state: "running".into(),
                queue_depth: 2,
            },
            Response::ResultOk {
                id: 3,
                result: raw.to_string(),
            },
            Response::ResultErr {
                id: 3,
                error: "timeout after 10 ms".into(),
            },
            Response::Stats {
                metrics: metrics.to_string(),
            },
            Response::Drained {
                answered: 12,
                executed: 4,
                metrics: metrics.to_string(),
            },
            Response::Pong,
            Response::ProtocolError {
                error: "unknown op \"warp\"".into(),
            },
        ] {
            let line = encode_response(&resp);
            assert!(!line.contains('\n'), "one line: {line}");
            assert_eq!(parse_response(&line).unwrap(), resp, "{line}");
        }
    }
}
