//! A loopback load generator: N concurrent clients submitting the
//! app × run-kind matrix and waiting for every result, reporting
//! throughput and tail latency.
//!
//! This is both the `hoploc load` subcommand's engine and the CI smoke
//! test's driver: it exercises submission, backpressure retries,
//! coalescing (every repeat after the first hits an in-flight or cached
//! job), and result fetching, and it fails loudly (nonzero job count in
//! [`LoadReport::failed`]) if any job errors.

use crate::client::Client;
use crate::job::JobSpec;
use crate::wire::SubmitStatus;
use hoploc_workloads::{all_apps, RunKind, Scale};
use std::net::ToSocketAddrs;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Load-run shape.
#[derive(Clone, PartialEq, Debug)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// How many times each matrix cell is submitted (duplicates exercise
    /// coalescing and caching).
    pub repeat: usize,
    /// Problem size for every job.
    pub scale: Scale,
    /// Run kinds per app (default: baseline + optimized).
    pub kinds: Vec<RunKind>,
    /// Backpressure retry budget per submission.
    pub max_retries: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 4,
            repeat: 2,
            scale: Scale::Test,
            kinds: vec![RunKind::Baseline, RunKind::Optimized],
            max_retries: 10_000,
        }
    }
}

/// What a load run observed.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct LoadReport {
    /// Jobs submitted (accepted) across all clients.
    pub submitted: u64,
    /// Jobs that returned a result.
    pub completed: u64,
    /// Jobs that returned an error (including client-side failures).
    pub failed: u64,
    /// Accepted submissions answered by in-flight coalescing.
    pub coalesced: u64,
    /// Accepted submissions answered from the result cache.
    pub cached: u64,
    /// Backpressure retries spent across all submissions.
    pub retries: u64,
    /// Wall-clock of the whole run in milliseconds.
    pub wall_ms: u64,
    /// Completed jobs per second.
    pub throughput: f64,
    /// Submit→result latency quantiles in milliseconds: p50, p95, p99,
    /// and max (exact order statistics, not estimates).
    pub latency_ms: LatencyQuantiles,
    /// Client-side error messages (first few, for diagnostics).
    pub errors: Vec<String>,
}

/// Exact latency order statistics in milliseconds.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LatencyQuantiles {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Slowest observed job.
    pub max: u64,
}

/// The submission list: apps × kinds × repeat, interleaved so duplicates
/// land close together (maximizing coalescing pressure) while distinct
/// jobs alternate (keeping the queue mixed).
pub fn job_matrix(cfg: &LoadConfig) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for app in all_apps(cfg.scale) {
        for &kind in &cfg.kinds {
            for _ in 0..cfg.repeat.max(1) {
                jobs.push(JobSpec {
                    app: app.name().to_string(),
                    kind,
                    scale: cfg.scale,
                    ..JobSpec::default()
                });
            }
        }
    }
    jobs
}

fn quantiles(latencies: &mut [u64]) -> LatencyQuantiles {
    if latencies.is_empty() {
        return LatencyQuantiles::default();
    }
    latencies.sort_unstable();
    let at = |q: f64| {
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    LatencyQuantiles {
        p50: at(0.50),
        p95: at(0.95),
        p99: at(0.99),
        max: *latencies.last().expect("non-empty"),
    }
}

/// Runs the load: shards [`job_matrix`] round-robin across `cfg.clients`
/// connections, each submitting with backpressure retries and fetching
/// every result.
pub fn run_load<A: ToSocketAddrs>(addr: A, cfg: &LoadConfig) -> Result<LoadReport, String> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address: {e}"))?
        .next()
        .ok_or("address resolved to nothing")?;
    let jobs = job_matrix(cfg);
    let clients = cfg.clients.max(1);
    let shared = Arc::new(Mutex::new((LoadReport::default(), Vec::<u64>::new())));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let shard: Vec<JobSpec> = jobs.iter().skip(c).step_by(clients).cloned().collect();
            let shared = shared.clone();
            let max_retries = cfg.max_retries;
            std::thread::spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        let mut g = shared.lock().expect("load report poisoned");
                        g.0.failed += shard.len() as u64;
                        g.0.errors.push(format!("connect: {e}"));
                        return;
                    }
                };
                for spec in shard {
                    let t0 = Instant::now();
                    let outcome = client.submit_until_accepted(&spec, max_retries).and_then(
                        |(id, status, retries)| client.result(id).map(|r| (r, status, retries)),
                    );
                    let ms = t0.elapsed().as_millis() as u64;
                    let mut g = shared.lock().expect("load report poisoned");
                    match outcome {
                        Ok((_result, status, retries)) => {
                            g.0.submitted += 1;
                            g.0.completed += 1;
                            g.0.retries += retries;
                            match status {
                                SubmitStatus::Coalesced => g.0.coalesced += 1,
                                SubmitStatus::Cached => g.0.cached += 1,
                                SubmitStatus::Queued => {}
                            }
                            g.1.push(ms);
                        }
                        Err(e) => {
                            g.0.failed += 1;
                            if g.0.errors.len() < 8 {
                                g.0.errors.push(e);
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().map_err(|_| "load client panicked".to_string())?;
    }
    let (mut report, mut latencies) = Arc::try_unwrap(shared)
        .map_err(|_| "load report still shared".to_string())?
        .into_inner()
        .map_err(|_| "load report poisoned".to_string())?;
    report.wall_ms = started.elapsed().as_millis() as u64;
    report.throughput = if report.wall_ms == 0 {
        report.completed as f64
    } else {
        report.completed as f64 * 1000.0 / report.wall_ms as f64
    };
    report.latency_ms = quantiles(&mut latencies);
    Ok(report)
}

/// Renders a report as the `hoploc load` text summary.
pub fn render_report(r: &LoadReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "jobs: {} completed, {} failed ({} coalesced, {} cached, {} backpressure retries)\n",
        r.completed, r.failed, r.coalesced, r.cached, r.retries
    ));
    s.push_str(&format!(
        "wall: {} ms, throughput: {:.1} jobs/s\n",
        r.wall_ms, r.throughput
    ));
    s.push_str(&format!(
        "latency (submit -> result): p50 {} ms, p95 {} ms, p99 {} ms, max {} ms\n",
        r.latency_ms.p50, r.latency_ms.p95, r.latency_ms.p99, r.latency_ms.max
    ));
    for e in &r.errors {
        s.push_str(&format!("error: {e}\n"));
    }
    s
}

/// Renders a report as a single JSON object (for `hoploc load --json`).
pub fn report_json(r: &LoadReport) -> String {
    format!(
        "{{\"submitted\": {}, \"completed\": {}, \"failed\": {}, \"coalesced\": {}, \
         \"cached\": {}, \"retries\": {}, \"wall_ms\": {}, \"throughput\": {:.3}, \
         \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \"max_ms\": {}}}\n",
        r.submitted,
        r.completed,
        r.failed,
        r.coalesced,
        r.cached,
        r.retries,
        r.wall_ms,
        r.throughput,
        r.latency_ms.p50,
        r.latency_ms.p95,
        r.latency_ms.p99,
        r.latency_ms.max
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_apps_kinds_and_repeats() {
        let cfg = LoadConfig {
            repeat: 3,
            ..LoadConfig::default()
        };
        let jobs = job_matrix(&cfg);
        let napps = all_apps(Scale::Test).len();
        assert_eq!(jobs.len(), napps * 2 * 3);
        let distinct: std::collections::HashSet<String> = jobs.iter().map(|j| j.canon()).collect();
        assert_eq!(distinct.len(), napps * 2, "repeats share canonical keys");
    }

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let mut xs: Vec<u64> = (1..=100).rev().collect();
        let q = quantiles(&mut xs);
        assert_eq!(q.p50, 51); // index round(99 * 0.5) = 50 -> value 51
        assert_eq!(q.p95, 95);
        assert_eq!(q.p99, 99);
        assert_eq!(q.max, 100);
        assert_eq!(quantiles(&mut []), LatencyQuantiles::default());
    }

    #[test]
    fn report_json_is_valid() {
        let r = LoadReport {
            completed: 10,
            throughput: 123.456,
            ..LoadReport::default()
        };
        let v = hoploc_obs::parse_json(&report_json(&r)).expect("valid json");
        assert_eq!(v.get("completed").and_then(|x| x.as_u64()), Some(10));
    }
}
