//! A bounded LRU result cache.
//!
//! Keyed by the *canonical job string* (not the 64-bit hash) so a hash
//! collision can never serve the wrong result. Values are the raw result
//! bytes behind an `Arc` — a hit hands out the same allocation the worker
//! produced, so cached replies are byte-identical to fresh ones by
//! construction.

use std::collections::HashMap;

/// A capacity-bounded least-recently-used map from canonical job string
/// to shared result bytes. Not internally synchronized: the server keeps
/// it inside its one core mutex.
pub struct LruCache {
    cap: usize,
    tick: u64,
    map: HashMap<String, (std::sync::Arc<String>, u64)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LruCache {
    /// A cache holding at most `cap` results. `cap == 0` disables caching
    /// entirely (every lookup misses, inserts are dropped).
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `canon`, refreshing its recency on a hit.
    pub fn get(&mut self, canon: &str) -> Option<std::sync::Arc<String>> {
        self.tick += 1;
        match self.map.get_mut(canon) {
            Some((v, used)) => {
                *used = self.tick;
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a result, evicting the least-recently-used entries to stay
    /// within capacity.
    pub fn put(&mut self, canon: String, value: std::sync::Arc<String>) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        self.map.insert(canon, (value, self.tick));
        while self.map.len() > self.cap {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.map.remove(&k);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime `(hits, misses, evictions)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn val(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put("a".into(), val("1"));
        c.put("b".into(), val("2"));
        assert!(c.get("a").is_some()); // refresh a; b is now LRU
        c.put("c".into(), val("3"));
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none(), "b was the LRU entry");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        let (hits, misses, evictions) = c.counters();
        assert_eq!((hits, misses, evictions), (3, 1, 1));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.put("a".into(), val("1"));
        assert!(c.get("a").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn hit_returns_the_same_allocation() {
        let mut c = LruCache::new(4);
        let v = val("{\"app\": \"swim\"}");
        c.put("a".into(), v.clone());
        let got = c.get("a").unwrap();
        assert!(Arc::ptr_eq(&v, &got), "cache must not copy result bytes");
    }
}
