//! Server-side metrics: counter, gauge, and histogram families in a
//! [`hoploc_obs::Registry`], snapshotted with the same byte-stable JSON
//! serialization the simulator's metrics snapshots use.
//!
//! Unlike simulation metrics these are wall-clock flavored (queue wait and
//! job wall time in milliseconds) — the registry is the shared vocabulary,
//! not the cycle-stamped semantics.

use hoploc_obs::registry::{CounterId, GaugeId, HistId};
use hoploc_obs::Registry;
use std::sync::Mutex;

/// Counter slots in the `serve.jobs` family, indexable by name.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ctr {
    /// Submissions received (accepted or not).
    Submitted,
    /// Submissions admitted to the queue.
    Accepted,
    /// Submissions rejected because the queue was at capacity.
    RejectedFull,
    /// Submissions rejected because the server was draining.
    RejectedDraining,
    /// Submissions rejected as malformed or invalid.
    RejectedInvalid,
    /// Submissions merged with an identical in-flight job.
    Coalesced,
    /// Submissions answered straight from the result cache.
    CacheHits,
    /// Results evicted from the cache to stay within capacity.
    CacheEvictions,
    /// Simulations actually executed by a worker.
    Executed,
    /// Jobs that ended in a structured error.
    Failed,
    /// Jobs that hit their wall-clock timeout.
    Timeouts,
    /// Request lines handled (any op).
    Requests,
    /// Request lines that failed to parse.
    ProtocolErrors,
    /// Jobs that received a terminal answer (done or error).
    Answered,
}

/// All counters, in wire/snapshot order.
pub const ALL_CTRS: [Ctr; 14] = [
    Ctr::Submitted,
    Ctr::Accepted,
    Ctr::RejectedFull,
    Ctr::RejectedDraining,
    Ctr::RejectedInvalid,
    Ctr::Coalesced,
    Ctr::CacheHits,
    Ctr::CacheEvictions,
    Ctr::Executed,
    Ctr::Failed,
    Ctr::Timeouts,
    Ctr::Requests,
    Ctr::ProtocolErrors,
    Ctr::Answered,
];

impl Ctr {
    /// Snapshot label for this counter slot.
    pub fn name(self) -> &'static str {
        match self {
            Ctr::Submitted => "submitted",
            Ctr::Accepted => "accepted",
            Ctr::RejectedFull => "rejected_full",
            Ctr::RejectedDraining => "rejected_draining",
            Ctr::RejectedInvalid => "rejected_invalid",
            Ctr::Coalesced => "coalesced",
            Ctr::CacheHits => "cache_hits",
            Ctr::CacheEvictions => "cache_evictions",
            Ctr::Executed => "executed",
            Ctr::Failed => "failed",
            Ctr::Timeouts => "timeouts",
            Ctr::Requests => "requests",
            Ctr::ProtocolErrors => "protocol_errors",
            Ctr::Answered => "answered",
        }
    }
}

struct Inner {
    reg: Registry,
    ctrs: CounterId,
    queue_depth: GaugeId,
    active_jobs: GaugeId,
    job_wall_ms: HistId,
    queue_wait_ms: HistId,
}

/// Thread-safe server metrics. Cheap to update from workers and
/// connection handlers; snapshots serialize the whole registry.
pub struct ServeMetrics {
    inner: Mutex<Inner>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// A fresh registry with every family registered at zero.
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let ctrs = reg.counter("serve.jobs", ALL_CTRS.len());
        let queue_depth = reg.gauge("serve.queue_depth", 1);
        let active_jobs = reg.gauge("serve.active_jobs", 1);
        let job_wall_ms = reg.hist("serve.job_wall_ms");
        let queue_wait_ms = reg.hist("serve.queue_wait_ms");
        ServeMetrics {
            inner: Mutex::new(Inner {
                reg,
                ctrs,
                queue_depth,
                active_jobs,
                job_wall_ms,
                queue_wait_ms,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("serve metrics poisoned")
    }

    /// Bumps one counter by `n`.
    pub fn inc(&self, c: Ctr, n: u64) {
        let mut g = self.lock();
        let id = g.ctrs;
        g.reg.inc(id, c as usize, n);
    }

    /// Reads one counter.
    pub fn get(&self, c: Ctr) -> u64 {
        let g = self.lock();
        g.reg
            .counter_family("serve.jobs")
            .map_or(0, |f| f[c as usize])
    }

    /// Publishes the current queue depth and in-flight job count.
    pub fn set_load(&self, queue_depth: usize, active_jobs: usize) {
        let mut g = self.lock();
        let (qd, aj) = (g.queue_depth, g.active_jobs);
        g.reg.set_gauge(qd, 0, queue_depth as i64);
        g.reg.set_gauge(aj, 0, active_jobs as i64);
    }

    /// Records one executed job's wall time in milliseconds.
    pub fn observe_job_wall_ms(&self, ms: u64) {
        let mut g = self.lock();
        let id = g.job_wall_ms;
        g.reg.observe(id, ms);
    }

    /// Records how long a job waited in the queue before a worker picked
    /// it up, in milliseconds.
    pub fn observe_queue_wait_ms(&self, ms: u64) {
        let mut g = self.lock();
        let id = g.queue_wait_ms;
        g.reg.observe(id, ms);
    }

    /// Multi-line pretty snapshot (file form, ends with a newline).
    pub fn snapshot_json(&self) -> String {
        self.lock().reg.snapshot_json()
    }

    /// Single-line snapshot for the wire: the same object with newlines
    /// and indentation stripped outside of strings (the snapshot contains
    /// no strings with meaningful whitespace, so this is a pure
    /// reformatting).
    pub fn snapshot_line(&self) -> String {
        let pretty = self.snapshot_json();
        let mut out = String::with_capacity(pretty.len());
        let mut in_string = false;
        let mut escaped = false;
        for c in pretty.chars() {
            if in_string {
                out.push(c);
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => {
                    in_string = true;
                    out.push(c);
                }
                '\n' | ' ' => {}
                c => out.push(c),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_obs::parse_json;

    #[test]
    fn counters_land_in_named_slots() {
        let m = ServeMetrics::new();
        m.inc(Ctr::Submitted, 3);
        m.inc(Ctr::Coalesced, 1);
        assert_eq!(m.get(Ctr::Submitted), 3);
        assert_eq!(m.get(Ctr::Coalesced), 1);
        assert_eq!(m.get(Ctr::Executed), 0);
    }

    #[test]
    fn snapshot_is_valid_json_with_families() {
        let m = ServeMetrics::new();
        m.inc(Ctr::Executed, 2);
        m.set_load(5, 3);
        m.observe_job_wall_ms(12);
        let v = parse_json(&m.snapshot_json()).expect("snapshot parses");
        let jobs = v
            .get("counters")
            .and_then(|c| c.get("serve.jobs"))
            .and_then(|f| f.as_array())
            .expect("serve.jobs family");
        assert_eq!(jobs.len(), ALL_CTRS.len());
        assert_eq!(jobs[Ctr::Executed as usize].as_u64(), Some(2));
        let qd = v
            .get("gauges")
            .and_then(|g| g.get("serve.queue_depth"))
            .and_then(|f| f.index(0))
            .and_then(|x| x.as_u64());
        assert_eq!(qd, Some(5));
        assert!(v
            .get("histograms")
            .and_then(|h| h.get("serve.job_wall_ms"))
            .is_some());
    }

    #[test]
    fn line_snapshot_is_one_line_and_parses_identically() {
        let m = ServeMetrics::new();
        m.inc(Ctr::Requests, 7);
        m.observe_queue_wait_ms(4);
        let line = m.snapshot_line();
        assert!(!line.contains('\n'));
        assert_eq!(
            parse_json(&line).unwrap(),
            parse_json(&m.snapshot_json()).unwrap()
        );
    }
}
