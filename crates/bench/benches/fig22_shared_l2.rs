//! Figure 22: the four headline reductions with a **shared SNUCA L2**
//! (cache-line interleaving for both L2 home banks and main memory).
//! The paper's average execution-time saving is 24.3% — better than the
//! private-L2 case except for fma3d and minighost.

use hoploc_bench::{
    banner, four_metric_avg, four_metric_header, four_metric_row, m1, standard_config, suite,
};
use hoploc_layout::{Granularity, L2Mode};
use hoploc_sim::Improvement;
use hoploc_workloads::{run_app, RunKind};

fn main() {
    banner("Figure 22", "optimized vs baseline (shared SNUCA L2)");
    let mut sim = standard_config(Granularity::CacheLine);
    sim.l2_mode = L2Mode::Shared;
    let mapping = m1(sim.mesh);
    four_metric_header();
    let mut rows = Vec::new();
    for app in suite() {
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        let imp = Improvement::between(&base, &opt);
        four_metric_row(app.name(), &imp);
        rows.push(imp);
    }
    four_metric_avg(&rows);
}
