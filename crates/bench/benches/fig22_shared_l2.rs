//! Figure 22: the four headline reductions with a **shared SNUCA L2**
//! (cache-line interleaving for both L2 home banks and main memory).
//! The paper's average execution-time saving is 24.3% — better than the
//! private-L2 case except for fma3d and minighost.

use hoploc_bench::{banner, bench_suite, four_metric_figure, m1, standard_config};
use hoploc_layout::{Granularity, L2Mode};
use hoploc_workloads::RunKind;

fn main() {
    banner("Figure 22", "optimized vs baseline (shared SNUCA L2)");
    let mut sim = standard_config(Granularity::CacheLine);
    sim.l2_mode = L2Mode::Shared;
    let s = bench_suite(sim.clone(), m1(sim.mesh));
    four_metric_figure(&s, RunKind::Baseline, RunKind::Optimized);
}
