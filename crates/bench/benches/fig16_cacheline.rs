//! Figure 16: the four headline reductions under **cache-line
//! interleaving** — the paper's main result. Paper averages:
//! 13.6% / 66.4% / 45.8% / 20.5%.

use hoploc_bench::{
    banner, four_metric_avg, four_metric_header, four_metric_row, m1, standard_config, suite,
};
use hoploc_layout::Granularity;
use hoploc_sim::Improvement;
use hoploc_workloads::{run_app, RunKind};

fn main() {
    banner(
        "Figure 16",
        "optimized vs baseline (cache-line interleaving, private L2)",
    );
    let sim = standard_config(Granularity::CacheLine);
    let mapping = m1(sim.mesh);
    four_metric_header();
    let mut rows = Vec::new();
    for app in suite() {
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        let imp = Improvement::between(&base, &opt);
        four_metric_row(app.name(), &imp);
        rows.push(imp);
    }
    four_metric_avg(&rows);
}
