//! Figure 16: the four headline reductions under **cache-line
//! interleaving** — the paper's main result. Paper averages:
//! 13.6% / 66.4% / 45.8% / 20.5%.

use hoploc_bench::{banner, bench_suite, four_metric_figure, m1, standard_config};
use hoploc_layout::Granularity;
use hoploc_workloads::RunKind;

fn main() {
    banner(
        "Figure 16",
        "optimized vs baseline (cache-line interleaving, private L2)",
    );
    let sim = standard_config(Granularity::CacheLine);
    let s = bench_suite(sim.clone(), m1(sim.mesh));
    four_metric_figure(&s, RunKind::Baseline, RunKind::Optimized);
}
