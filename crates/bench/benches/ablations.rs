//! Ablations of the design decisions DESIGN.md calls out:
//!
//! 1. weighted submatrix selection (§5.2) vs first-reference;
//! 2. the shared-L2 on-chip-first vs off-chip-first priority (§5.3);
//! 3. link-contention modelling on/off (where the on-chip gains come
//!    from, per the Figure 15 discussion);
//! 4. the indexed-approximation threshold (§5.4, 30%);
//! 5. the core memory-level parallelism assumed;
//! 6. dirty-line writebacks on/off;
//! 7. the DRAM row-buffer policy (open vs closed page).
//!
//! Each ablation runs a small representative subset to stay fast.

use hoploc_bench::{banner, exec_saving, m1, standard_config};
use hoploc_layout::{Granularity, L2Mode, SharedPolicy};
use hoploc_sim::{AddressSpace, PagePolicy, Simulator};
use hoploc_workloads::{ammp, apsi, generate_traces, run_app, swim, wupwise, App, RunKind, Scale};

/// Runs one app with an explicitly customized pass configuration.
fn run_custom(
    app: &App,
    sim: &hoploc_sim::SimConfig,
    mapping: &hoploc_noc::L2ToMcMapping,
    tweak: impl FnOnce(&mut hoploc_layout::PassConfig),
) -> hoploc_sim::RunStats {
    let mut pass = hoploc_layout::PassConfig {
        granularity: sim.granularity,
        l2_mode: sim.l2_mode,
        line_bytes: sim.l2.line_bytes as u32,
        page_bytes: sim.page_bytes as u32,
        ..hoploc_layout::PassConfig::default()
    };
    tweak(&mut pass);
    let layout = hoploc_layout::optimize_program(&app.program, mapping, pass);
    let space = AddressSpace::build(&app.program, &layout, 0);
    let traces = generate_traces(&app.program, &layout, &space, &app.gen);
    let mut cfg = sim.clone();
    cfg.mlp = app.mlp;
    Simulator::new(cfg, mapping.clone(), PagePolicy::Interleaved).run(&traces)
}

fn main() {
    banner("Ablations", "design-decision sensitivity studies");
    let sim = standard_config(Granularity::CacheLine);
    let mapping = m1(sim.mesh);

    // 1. Shared-L2 localization priority.
    {
        let mut shared = sim.clone();
        shared.l2_mode = L2Mode::Shared;
        let app = swim(Scale::Bench);
        let base = run_app(&app, &mapping, &shared, RunKind::Baseline);
        let on_first = run_custom(&app, &shared, &mapping, |p| {
            p.shared_policy = SharedPolicy::OnChipFirst;
        });
        let off_first = run_custom(&app, &shared, &mapping, |p| {
            p.shared_policy = SharedPolicy::OffChipFirst;
        });
        println!("\n[shared-L2 priority] swim exec saving:");
        println!(
            "  on-chip-first  (paper default): {:>6.1}%",
            exec_saving(&base, &on_first)
        );
        println!(
            "  off-chip-first (alternative)  : {:>6.1}%",
            exec_saving(&base, &off_first)
        );
    }

    // 2. Indexed-approximation threshold.
    {
        let app = ammp(Scale::Bench);
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let strict = run_custom(&app, &sim, &mapping, |p| p.approx_threshold = 0.0);
        let paper = run_custom(&app, &sim, &mapping, |p| p.approx_threshold = 0.30);
        let loose = run_custom(&app, &sim, &mapping, |p| p.approx_threshold = 1.0);
        println!("\n[approximation threshold] ammp exec saving:");
        println!(
            "  0%  (never approximate)  : {:>6.1}%",
            exec_saving(&base, &strict)
        );
        println!(
            "  30% (paper)              : {:>6.1}%",
            exec_saving(&base, &paper)
        );
        println!(
            "  100% (optimize everything): {:>6.1}%",
            exec_saving(&base, &loose)
        );
    }

    // 3. Link contention on/off: where do on-chip gains come from?
    {
        let app = apsi(Scale::Bench);
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        let mut nocont = sim.clone();
        nocont.noc.contention = false;
        let base_nc = run_app(&app, &mapping, &nocont, RunKind::Baseline);
        let opt_nc = run_app(&app, &mapping, &nocont, RunKind::Optimized);
        println!("\n[link contention] apsi exec saving:");
        println!(
            "  contended links (real)   : {:>6.1}%",
            exec_saving(&base, &opt)
        );
        println!(
            "  contention-free links    : {:>6.1}%",
            exec_saving(&base_nc, &opt_nc)
        );
        println!("  (the gap is the congestion-relief component of the gains)");
    }

    // 4b. Writeback traffic sensitivity.
    {
        let app = swim(Scale::Bench);
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        let mut wb = sim.clone();
        wb.writebacks = true;
        let base_wb = run_app(&app, &mapping, &wb, RunKind::Baseline);
        let opt_wb = run_app(&app, &mapping, &wb, RunKind::Optimized);
        println!("\n[writebacks] swim exec saving:");
        println!(
            "  without writeback traffic: {:>6.1}%",
            exec_saving(&base, &opt)
        );
        println!(
            "  with writeback traffic   : {:>6.1}%  ({} writebacks localized too)",
            exec_saving(&base_wb, &opt_wb),
            opt_wb.writebacks
        );
    }

    // 4c. DRAM row-buffer policy.
    {
        let app = swim(Scale::Bench);
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        let mut closed = sim.clone();
        closed.mc.row_policy = hoploc_mem::RowPolicy::Closed;
        let base_c = run_app(&app, &mapping, &closed, RunKind::Baseline);
        let opt_c = run_app(&app, &mapping, &closed, RunKind::Optimized);
        println!("\n[row-buffer policy] swim exec saving:");
        println!(
            "  open page (FR-FCFS)      : {:>6.1}%",
            exec_saving(&base, &opt)
        );
        println!(
            "  closed page              : {:>6.1}%",
            exec_saving(&base_c, &opt_c)
        );
    }

    // 4. Core MLP sensitivity.
    {
        let mut app = wupwise(Scale::Bench);
        let base1;
        let opt1;
        {
            app.mlp = 1;
            base1 = run_app(&app, &mapping, &sim, RunKind::Baseline);
            opt1 = run_app(&app, &mapping, &sim, RunKind::Optimized);
        }
        app.mlp = 4;
        let base4 = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt4 = run_app(&app, &mapping, &sim, RunKind::Optimized);
        println!("\n[core MLP] wupwise exec saving:");
        println!(
            "  blocking cores (mlp=1)   : {:>6.1}%",
            exec_saving(&base1, &opt1)
        );
        println!(
            "  4 outstanding misses     : {:>6.1}%",
            exec_saving(&base4, &opt4)
        );
    }
}
