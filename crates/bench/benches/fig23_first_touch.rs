//! Figure 23: execution-time improvement of the compiler scheme (with
//! page interleaving and the OS assist) over the OS first-touch policy.
//! The paper reports 12.3% on average; first-touch holds its own only
//! where the first toucher is also the dominant accessor (wupwise,
//! gafort, minimd).

use hoploc_bench::{banner, bench_suite, exec_saving, m1, standard_config, sweep_pair};
use hoploc_layout::Granularity;
use hoploc_workloads::RunKind;

fn main() {
    banner(
        "Figure 23",
        "compiler scheme vs OS first-touch (page interleaving)",
    );
    let sim = standard_config(Granularity::Page);
    let s = bench_suite(sim.clone(), m1(sim.mesh));
    println!(
        "{:<11} {:>14} {:>20}",
        "app", "vs first-touch", "first-touch friendly"
    );
    let pairs = sweep_pair(&s, RunKind::FirstTouch, RunKind::Optimized);
    let mut sum = 0.0;
    for (i, (name, ft, opt)) in pairs.iter().enumerate() {
        let gain = exec_saving(ft, opt);
        sum += gain;
        println!(
            "{:<11} {:>13.1}% {:>20}",
            name,
            gain,
            if s.apps()[i].first_touch_friendly {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!("{}", "-".repeat(50));
    println!("{:<11} {:>13.1}%", "AVERAGE", sum / pairs.len() as f64);
}
