//! Figure 23: execution-time improvement of the compiler scheme (with
//! page interleaving and the OS assist) over the OS first-touch policy.
//! The paper reports 12.3% on average; first-touch holds its own only
//! where the first toucher is also the dominant accessor (wupwise,
//! gafort, minimd).

use hoploc_bench::{banner, exec_saving, m1, standard_config, suite};
use hoploc_layout::Granularity;
use hoploc_workloads::{run_app, RunKind};

fn main() {
    banner(
        "Figure 23",
        "compiler scheme vs OS first-touch (page interleaving)",
    );
    let sim = standard_config(Granularity::Page);
    let mapping = m1(sim.mesh);
    println!(
        "{:<11} {:>14} {:>20}",
        "app", "vs first-touch", "first-touch friendly"
    );
    let apps = suite();
    let mut sum = 0.0;
    for app in &apps {
        let ft = run_app(app, &mapping, &sim, RunKind::FirstTouch);
        let opt = run_app(app, &mapping, &sim, RunKind::Optimized);
        let gain = exec_saving(&ft, &opt);
        sum += gain;
        println!(
            "{:<11} {:>13.1}% {:>20}",
            app.name(),
            gain,
            if app.first_touch_friendly {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!("{}", "-".repeat(50));
    println!("{:<11} {:>13.1}%", "AVERAGE", sum / apps.len() as f64);
}
