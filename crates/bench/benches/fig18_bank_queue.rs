//! Figure 18: bank-queue utilization (average occupancy) per application
//! under the M1 mapping. The paper's point: fma3d and minighost show far
//! higher occupancy than the rest — the memory-parallelism demand that
//! makes them prefer M2.

use hoploc_bench::{banner, bar, m1, standard_config, suite};
use hoploc_layout::Granularity;
use hoploc_workloads::{run_app, RunKind};

fn main() {
    banner(
        "Figure 18",
        "bank queue occupancy under M1 (optimized runs)",
    );
    let sim = standard_config(Granularity::CacheLine);
    let mapping = m1(sim.mesh);
    println!("{:<11} {:>10}", "app", "occupancy");
    for app in suite() {
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        let occ = opt.bank_queue_occupancy();
        println!("{:<11} {:>10.2}  {}", app.name(), occ, bar(occ, 4.0));
    }
}
