//! Figure 18: bank-queue utilization (average occupancy) per application
//! under the M1 mapping. The paper's point: fma3d and minighost show far
//! higher occupancy than the rest — the memory-parallelism demand that
//! makes them prefer M2.

use hoploc_bench::{banner, bar, bench_suite, m1, standard_config};
use hoploc_harness::default_jobs;
use hoploc_layout::Granularity;
use hoploc_workloads::RunKind;

fn main() {
    banner(
        "Figure 18",
        "bank queue occupancy under M1 (optimized runs)",
    );
    let sim = standard_config(Granularity::CacheLine);
    let s = bench_suite(sim.clone(), m1(sim.mesh));
    println!("{:<11} {:>10}", "app", "occupancy");
    for r in s.run_full(&[RunKind::Optimized], default_jobs()) {
        let occ = r.stats.bank_queue_occupancy();
        println!("{:<11} {:>10.2}  {}", r.app, occ, bar(occ, 4.0));
    }
}
