//! Figure 18: bank-queue utilization (average occupancy) per application
//! under the M1 mapping. The paper's point: fma3d and minighost show far
//! higher occupancy than the rest — the memory-parallelism demand that
//! makes them prefer M2.
//!
//! The occupancy is read off the observability layer's `mc.queue_cycles`
//! counter family ([`ObsReport::bank_queue_occupancy`]), which replicates
//! `RunStats::bank_queue_occupancy` arithmetic exactly — same rows as the
//! pre-obs version of this harness.

use hoploc_bench::{banner, bar, bench_suite, m1, obs_counters_only, standard_config};
use hoploc_harness::default_jobs;
use hoploc_layout::Granularity;
use hoploc_workloads::RunKind;

fn main() {
    banner(
        "Figure 18",
        "bank queue occupancy under M1 (optimized runs)",
    );
    let sim = standard_config(Granularity::CacheLine);
    let s = bench_suite(sim.clone(), m1(sim.mesh));
    println!("{:<11} {:>10}", "app", "occupancy");
    for r in s.run_full_traced(&[RunKind::Optimized], default_jobs(), obs_counters_only()) {
        let occ = r.report.bank_queue_occupancy();
        println!("{:<11} {:>10.2}  {}", r.app, occ, bar(occ, 4.0));
    }
}
