//! Figure 25: multiprogrammed workloads (pairs of applications
//! co-scheduled on the same mesh), evaluated by weighted speedup of the
//! optimized layouts over the baseline. The paper reports improvements
//! between 5.4% and 13.1% depending on the mix.

use hoploc_bench::{banner, m1, standard_config};
use hoploc_layout::Granularity;
use hoploc_workloads::{mixes, run_mix, weighted_speedup, RunKind, Scale};

fn main() {
    banner("Figure 25", "multiprogrammed mixes: weighted speedup");
    let sim = standard_config(Granularity::CacheLine);
    let mapping = m1(sim.mesh);
    println!("{:<26} {:>17}", "workload", "weighted speedup");
    for (name, apps) in mixes(Scale::Bench) {
        let base = run_mix(&apps, &mapping, &sim, RunKind::Baseline);
        let opt = run_mix(&apps, &mapping, &sim, RunKind::Optimized);
        let ws = weighted_speedup(&base, &opt);
        println!("{:<26} {:>16.3}  ({:+.1}%)", name, ws, (ws - 1.0) * 100.0);
    }
}
