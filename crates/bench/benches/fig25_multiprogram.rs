//! Figure 25: multiprogrammed workloads (pairs of applications
//! co-scheduled on the same mesh), evaluated by weighted speedup of the
//! optimized layouts over the baseline. The paper reports improvements
//! between 5.4% and 13.1% depending on the mix.

use hoploc_bench::{banner, m1, standard_config};
use hoploc_layout::Granularity;
use hoploc_workloads::{mixes, run_mix, weighted_speedup, RunKind, Scale};

fn main() {
    banner("Figure 25", "multiprogrammed mixes: weighted speedup");
    let sim = standard_config(Granularity::CacheLine);
    let mapping = m1(sim.mesh);
    println!("{:<26} {:>17}", "workload", "weighted speedup");
    for (name, apps) in mixes(Scale::Bench) {
        let base = run_mix(&apps, &mapping, &sim, RunKind::Baseline);
        let opt = run_mix(&apps, &mapping, &sim, RunKind::Optimized);
        let ws = weighted_speedup(&base, &opt);
        println!("{:<26} {:>16.3}  ({:+.1}%)", name, ws, (ws - 1.0) * 100.0);
    }
    // The paper also evaluates mixes where each program is confined to a
    // *partition* of the mesh's clusters (its layouts then compiled
    // against only that partition's controllers). The cluster map has no
    // partition-restricted compilation mode yet, so rather than silently
    // reporting the co-scheduled numbers as if they covered it, emit a
    // machine-readable record naming the gap.
    println!(
        "{{\"figure\": 25, \"scenario\": \"partitioned-cluster\", \
         \"status\": \"unimplemented\", \
         \"reason\": \"layout compilation cannot yet be restricted to a cluster \
         partition; mixes above share the full mesh and all controllers\", \
         \"needs\": [\"per-partition L2ToMcMapping\", \
         \"partition-scoped layout pass\"]}}"
    );
}
