//! Figure 17: execution-time savings under the M1 (quadrant, k=1) vs M2
//! (halves, k=2) L2-to-MC mappings. The paper finds M1 better for most
//! applications — locality beats memory-level parallelism — with fma3d and
//! minighost as the exceptions. The last column shows which mapping the
//! compiler's §4 selection analysis picks from the two candidates.

use hoploc_bench::{banner, bench_suite, exec_saving, m1, m2, standard_config, sweep_pair};
use hoploc_harness::default_jobs;
use hoploc_layout::{select_mapping, Granularity, SelectModel};
use hoploc_workloads::RunKind;

fn main() {
    banner("Figure 17", "execution-time savings: M1 vs M2 mappings");
    let sim = standard_config(Granularity::CacheLine);
    let m1 = m1(sim.mesh);
    let m2 = m2(sim.mesh);
    let candidates = [m1.clone(), m2.clone()];
    let model = SelectModel::default();
    let s1 = bench_suite(sim.clone(), m1);
    let s2 = bench_suite(sim, m2);
    let pairs = sweep_pair(&s1, RunKind::Baseline, RunKind::Optimized);
    let o2 = s2.run_full(&[RunKind::Optimized], default_jobs());
    println!("{:<11} {:>8} {:>8} {:>10}", "app", "M1", "M2", "compiler");
    for (i, (name, base, opt1)) in pairs.iter().enumerate() {
        let app = &s1.apps()[i];
        let pick = select_mapping(&candidates, &app.profile, &model);
        println!(
            "{:<11} {:>7.1}% {:>7.1}% {:>10}",
            name,
            exec_saving(base, opt1),
            exec_saving(base, &o2[i].stats),
            if pick == 0 { "M1" } else { "M2" }
        );
    }
}
