//! Figure 13: spatial distribution of off-chip accesses destined for MC1,
//! for apsi, original vs optimized. In the original case requests come
//! from all over the chip; optimized, they skew toward the nearby
//! (top-left) quadrant.

use hoploc_bench::{banner, m1, standard_config};
use hoploc_harness::Suite;
use hoploc_layout::Granularity;
use hoploc_sim::RunStats;
use hoploc_workloads::{apsi, RunKind, Scale};

fn print_map(label: &str, stats: &RunStats, width: usize) {
    println!("\n{label}: share of MC1's requests from each node (x100)");
    let shares = stats.mc_request_shares(0);
    for y in 0..shares.len() / width {
        for x in 0..width {
            print!("{:>5.1}", shares[y * width + x] * 100.0);
        }
        println!();
    }
    // Quadrant concentration: how much of MC1's traffic originates in its
    // own (top-left) quadrant.
    let mut own = 0.0;
    for y in 0..width / 2 {
        for x in 0..width / 2 {
            own += shares[y * width + x];
        }
    }
    println!(
        "top-left quadrant share of MC1 traffic: {:.1}%",
        own * 100.0
    );
}

fn main() {
    banner(
        "Figure 13",
        "apsi: node-wise distribution of accesses to MC1",
    );
    let sim = standard_config(Granularity::CacheLine);
    let mapping = m1(sim.mesh);
    let width = sim.mesh.width() as usize;
    let s = Suite::new(vec![apsi(Scale::Bench)], mapping, sim);
    let records = s.run_full(&[RunKind::Baseline, RunKind::Optimized], 2);
    print_map("ORIGINAL", &records[0].stats, width);
    print_map("OPTIMIZED", &records[1].stats, width);
}
