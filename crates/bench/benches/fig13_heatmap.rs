//! Figure 13: spatial distribution of off-chip accesses destined for MC1,
//! for apsi, original vs optimized. In the original case requests come
//! from all over the chip; optimized, they skew toward the nearby
//! (top-left) quadrant.
//!
//! The map is read off the observability layer's `sim.node_mc_requests`
//! counter family ([`ObsReport::mc_request_shares`]), which mirrors
//! `RunStats::node_mc_requests` exactly — same rows as the pre-obs
//! version of this harness.

use hoploc_bench::{banner, m1, obs_counters_only, standard_config};
use hoploc_harness::Suite;
use hoploc_layout::Granularity;
use hoploc_obs::ObsReport;
use hoploc_workloads::{apsi, RunKind, Scale};

fn print_map(label: &str, report: &ObsReport, width: usize) {
    println!("\n{label}: share of MC1's requests from each node (x100)");
    let shares = report.mc_request_shares(0);
    for y in 0..shares.len() / width {
        for x in 0..width {
            print!("{:>5.1}", shares[y * width + x] * 100.0);
        }
        println!();
    }
    // Quadrant concentration: how much of MC1's traffic originates in its
    // own (top-left) quadrant.
    let mut own = 0.0;
    for y in 0..width / 2 {
        for x in 0..width / 2 {
            own += shares[y * width + x];
        }
    }
    println!(
        "top-left quadrant share of MC1 traffic: {:.1}%",
        own * 100.0
    );
}

fn main() {
    banner(
        "Figure 13",
        "apsi: node-wise distribution of accesses to MC1",
    );
    let sim = standard_config(Granularity::CacheLine);
    let mapping = m1(sim.mesh);
    let width = sim.mesh.width() as usize;
    let s = Suite::new(vec![apsi(Scale::Bench)], mapping, sim);
    let records = s.run_full_traced(
        &[RunKind::Baseline, RunKind::Optimized],
        2,
        obs_counters_only(),
    );
    print_map("ORIGINAL", &records[0].report, width);
    print_map("OPTIMIZED", &records[1].report, width);
}
