//! Resilience sweep: execution-cycle inflation of the M1 and M2 layouts
//! versus the baseline layout as seeded fault intensity rises through the
//! [`FaultRates::at_level`] ladder (level 0 = quiet machine, level 3 adds
//! the first whole-MC outage, level 6 = severe).
//!
//! Each row pools the full benchmark-scale suite: per app the plan is
//! generated from `SEED + level·1000 + app` with the placement horizon
//! matched to that app's clean run length, so every level's windows land
//! inside the run. Everything is seeded — the same binary prints the same
//! bytes on every invocation (level 0 is the built-in check: its plans are
//! empty, so its inflation must print as exactly +0.00%).
//!
//! Run with `cargo bench --bench resilience`; shift the plan population
//! with `HOPLOC_RESILIENCE_SEED`.

use hoploc_bench::{banner, bench_suite, m1, m2, standard_config};
use hoploc_fault::{FaultPlan, FaultRates};
use hoploc_harness::{default_jobs, fault_topo, parallel_map, RunSpec, Suite};
use hoploc_layout::Granularity;
use hoploc_sim::RunStats;
use hoploc_workloads::RunKind;

fn seed() -> u64 {
    std::env::var("HOPLOC_RESILIENCE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// One arm of the comparison: a suite under a mapping, run as `kind`.
struct Arm<'a> {
    label: &'static str,
    suite: &'a Suite,
    kind: RunKind,
    /// Clean (fault-free) stats per app, the inflation denominator and the
    /// per-app plan horizon.
    clean: Vec<RunStats>,
}

impl<'a> Arm<'a> {
    fn new(label: &'static str, suite: &'a Suite, kind: RunKind) -> Arm<'a> {
        let clean = suite
            .run_full(&[kind], default_jobs())
            .into_iter()
            .map(|r| r.stats)
            .collect();
        Arm {
            label,
            suite,
            kind,
            clean,
        }
    }

    /// Pooled faulted stats at `level`: per-app seeded plans, fanned across
    /// workers, summed over the suite.
    fn at_level(&self, level: u32, seed: u64) -> (f64, u64, u64, u64) {
        let topo = fault_topo(self.suite.sim());
        let apps: Vec<usize> = (0..self.suite.apps().len()).collect();
        let faulted = parallel_map(&apps, default_jobs(), |&app| {
            let horizon = self.clean[app].exec_cycles.max(1);
            let rates = FaultRates::at_level(level).with_horizon(horizon);
            let plan = FaultPlan::from_seed(seed + level as u64 * 1000 + app as u64, &topo, &rates);
            self.suite.run_one_faulted(
                RunSpec {
                    app,
                    kind: self.kind,
                },
                &plan,
            )
        });
        let clean_cyc: u64 = self.clean.iter().map(|s| s.exec_cycles).sum();
        let fault_cyc: u64 = faulted.iter().map(|s| s.exec_cycles).sum();
        let retries: u64 = faulted
            .iter()
            .flat_map(|s| s.mc.iter())
            .map(|m| m.retries)
            .sum();
        let drops: u64 = faulted.iter().map(|s| s.dropped_requests).sum();
        let rehomed: u64 = faulted.iter().map(|s| s.rehomed_requests).sum();
        let inflation = (fault_cyc as f64 / clean_cyc.max(1) as f64 - 1.0) * 100.0;
        (inflation, retries, drops, rehomed)
    }
}

fn main() {
    banner(
        "Resilience",
        "exec-cycle inflation under rising fault intensity: baseline vs M1 vs M2",
    );
    let seed = seed();
    let sim = standard_config(Granularity::CacheLine);
    let s1 = bench_suite(sim.clone(), m1(sim.mesh));
    let s2 = bench_suite(sim.clone(), m2(sim.mesh));
    let arms = [
        Arm::new("baseline", &s1, RunKind::Baseline),
        Arm::new("M1", &s1, RunKind::Optimized),
        Arm::new("M2", &s2, RunKind::Optimized),
    ];
    println!(
        "plan seed {seed}; suite pooled over {} apps",
        s1.apps().len()
    );
    for arm in &arms {
        let pooled: u64 = arm.clean.iter().map(|s| s.exec_cycles).sum();
        println!("  {:<8} clean pooled exec: {pooled} cycles", arm.label);
    }
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>9} {:>7} {:>9}",
        "level", "baseline", "M1", "M2", "retries", "drops", "re-homed"
    );
    for level in 0..=6u32 {
        let rows: Vec<_> = arms.iter().map(|arm| arm.at_level(level, seed)).collect();
        // The operational counters are reported for the M1 arm (the
        // paper's default mapping); the other arms see the same plan
        // volume by construction.
        let (_, retries, drops, rehomed) = rows[1];
        println!(
            "{:<6} {:>9.2}% {:>9.2}% {:>9.2}% {:>9} {:>7} {:>9}",
            level, rows[0].0, rows[1].0, rows[2].0, retries, drops, rehomed
        );
    }
}
