//! Table 2: percentage of arrays optimized and array references satisfied
//! by the layout pass, per application.

use hoploc_bench::{banner, m1, standard_config, suite};
use hoploc_layout::Granularity;
use hoploc_workloads::{layout_for, RunKind};

fn main() {
    banner(
        "Table 2",
        "arrays optimized / references satisfied per application",
    );
    let sim = standard_config(Granularity::CacheLine);
    let mapping = m1(sim.mesh);
    println!(
        "{:<11} {:>16} {:>20}",
        "app", "arrays optimized", "references satisfied"
    );
    let mut arr_sum = 0.0;
    let mut ref_sum = 0.0;
    let apps = suite();
    for app in &apps {
        let layout = layout_for(app, &mapping, &sim, RunKind::Optimized);
        let a = layout.arrays_optimized() * 100.0;
        let r = layout.refs_satisfied() * 100.0;
        arr_sum += a;
        ref_sum += r;
        println!("{:<11} {:>15.0}% {:>19.0}%", app.name(), a, r);
    }
    println!("{}", "-".repeat(50));
    println!(
        "{:<11} {:>15.0}% {:>19.0}%",
        "AVERAGE",
        arr_sum / apps.len() as f64,
        ref_sum / apps.len() as f64
    );
}
