//! Figure 21: execution-time savings on 4×4, 4×8, and 8×8 meshes (four
//! corner MCs each). The paper reports 14% / 18% / 20.5% — gains grow
//! with the mesh because distances grow.

use hoploc_bench::{banner, exec_saving, standard_config, suite};
use hoploc_layout::Granularity;
use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh};
use hoploc_sim::SimConfig;
use hoploc_workloads::{run_app, RunKind};

fn main() {
    banner(
        "Figure 21",
        "execution-time savings on 4x4 / 4x8 / 8x8 meshes",
    );
    let base_cfg = standard_config(Granularity::CacheLine);
    let meshes = [Mesh::new(4, 4), Mesh::new(8, 4), Mesh::new(8, 8)];
    println!("{:<11} {:>8} {:>8} {:>8}", "app", "4x4", "4x8", "8x8");
    let apps = suite();
    let mut avgs = [0.0f64; 3];
    for app in &apps {
        let mut row = Vec::new();
        for mesh in &meshes {
            let sim = SimConfig {
                mesh: *mesh,
                ..base_cfg.clone()
            };
            let mapping = L2ToMcMapping::nearest_cluster(*mesh, &McPlacement::Corners);
            let base = run_app(app, &mapping, &sim, RunKind::Baseline);
            let opt = run_app(app, &mapping, &sim, RunKind::Optimized);
            row.push(exec_saving(&base, &opt));
        }
        println!(
            "{:<11} {:>7.1}% {:>7.1}% {:>7.1}%",
            app.name(),
            row[0],
            row[1],
            row[2]
        );
        for (a, r) in avgs.iter_mut().zip(&row) {
            *a += r;
        }
    }
    println!("{}", "-".repeat(40));
    println!(
        "{:<11} {:>7.1}% {:>7.1}% {:>7.1}%",
        "AVERAGE",
        avgs[0] / apps.len() as f64,
        avgs[1] / apps.len() as f64,
        avgs[2] / apps.len() as f64
    );
}
