//! Figure 21: execution-time savings on 4×4, 4×8, and 8×8 meshes (four
//! corner MCs each). The paper reports 14% / 18% / 20.5% — gains grow
//! with the mesh because distances grow.

use hoploc_bench::{banner, exec_saving_figure, standard_config, suite};
use hoploc_harness::Suite;
use hoploc_layout::Granularity;
use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh};
use hoploc_sim::SimConfig;
use hoploc_workloads::RunKind;

fn main() {
    banner(
        "Figure 21",
        "execution-time savings on 4x4 / 4x8 / 8x8 meshes",
    );
    let base_cfg = standard_config(Granularity::CacheLine);
    let meshes = [Mesh::new(4, 4), Mesh::new(8, 4), Mesh::new(8, 8)];
    let suites: Vec<Suite> = meshes
        .iter()
        .map(|mesh| {
            let sim = SimConfig {
                mesh: *mesh,
                ..base_cfg.clone()
            };
            let mapping = L2ToMcMapping::nearest_cluster(*mesh, &McPlacement::Corners);
            Suite::new(suite(), mapping, sim)
        })
        .collect();
    exec_saving_figure(
        &suites,
        &["4x4", "4x8", "8x8"],
        RunKind::Baseline,
        RunKind::Optimized,
    );
}
