//! Figure 24: execution-time savings with 1, 2, and 4 threads per core.
//! The paper finds higher improvements with more threads per core, because
//! baseline network contention grows dramatically while the optimization
//! keeps distances short.

use hoploc_bench::{banner, bench_suite, exec_saving_figure, m1, standard_config};
use hoploc_layout::Granularity;
use hoploc_workloads::RunKind;

fn main() {
    banner(
        "Figure 24",
        "execution-time savings with 1 / 2 / 4 threads per core",
    );
    let sim = standard_config(Granularity::CacheLine);
    let suites: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&tpc| bench_suite(sim.clone(), m1(sim.mesh)).with_threads_per_core(tpc))
        .collect();
    exec_saving_figure(
        &suites,
        &["1t", "2t", "4t"],
        RunKind::Baseline,
        RunKind::Optimized,
    );
}
