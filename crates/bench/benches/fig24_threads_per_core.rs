//! Figure 24: execution-time savings with 1, 2, and 4 threads per core.
//! The paper finds higher improvements with more threads per core, because
//! baseline network contention grows dramatically while the optimization
//! keeps distances short.

use hoploc_bench::{banner, exec_saving, m1, standard_config, suite};
use hoploc_layout::Granularity;
use hoploc_workloads::{run_app_threads, RunKind};

fn main() {
    banner(
        "Figure 24",
        "execution-time savings with 1 / 2 / 4 threads per core",
    );
    let sim = standard_config(Granularity::CacheLine);
    let mapping = m1(sim.mesh);
    println!("{:<11} {:>8} {:>8} {:>8}", "app", "1t", "2t", "4t");
    let apps = suite();
    let mut avgs = [0.0f64; 3];
    for app in &apps {
        let mut row = Vec::new();
        for (i, tpc) in [1usize, 2, 4].iter().enumerate() {
            let base = run_app_threads(app, &mapping, &sim, RunKind::Baseline, *tpc);
            let opt = run_app_threads(app, &mapping, &sim, RunKind::Optimized, *tpc);
            let s = exec_saving(&base, &opt);
            avgs[i] += s;
            row.push(s);
        }
        println!(
            "{:<11} {:>7.1}% {:>7.1}% {:>7.1}%",
            app.name(),
            row[0],
            row[1],
            row[2]
        );
    }
    println!("{}", "-".repeat(40));
    println!(
        "{:<11} {:>7.1}% {:>7.1}% {:>7.1}%",
        "AVERAGE",
        avgs[0] / apps.len() as f64,
        avgs[1] / apps.len() as f64,
        avgs[2] / apps.len() as f64
    );
}
