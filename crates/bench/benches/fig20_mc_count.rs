//! Figure 20: execution-time savings with 4, 8, and 16 memory controllers
//! (Figure 27 configurations). The paper sees higher savings at larger MC
//! counts — more memory parallelism within each cluster.

use hoploc_bench::{banner, exec_saving_figure, standard_config, suite};
use hoploc_harness::Suite;
use hoploc_layout::Granularity;
use hoploc_noc::{L2ToMcMapping, McPlacement};
use hoploc_sim::SimConfig;
use hoploc_workloads::RunKind;

fn main() {
    banner("Figure 20", "execution-time savings with 4 / 8 / 16 MCs");
    let base_cfg = standard_config(Granularity::CacheLine);
    let configs = [
        McPlacement::Corners,
        McPlacement::Eight,
        McPlacement::Sixteen,
    ];
    let suites: Vec<Suite> = configs
        .iter()
        .map(|placement| {
            let sim = SimConfig {
                placement: placement.clone(),
                ..base_cfg.clone()
            };
            let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, placement);
            Suite::new(suite(), mapping, sim)
        })
        .collect();
    exec_saving_figure(
        &suites,
        &["4", "8", "16"],
        RunKind::Baseline,
        RunKind::Optimized,
    );
}
