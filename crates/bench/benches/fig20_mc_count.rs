//! Figure 20: execution-time savings with 4, 8, and 16 memory controllers
//! (Figure 27 configurations). The paper sees higher savings at larger MC
//! counts — more memory parallelism within each cluster.

use hoploc_bench::{banner, exec_saving, standard_config, suite};
use hoploc_layout::Granularity;
use hoploc_noc::{L2ToMcMapping, McPlacement};
use hoploc_sim::SimConfig;
use hoploc_workloads::{run_app, RunKind};

fn main() {
    banner("Figure 20", "execution-time savings with 4 / 8 / 16 MCs");
    let base_cfg = standard_config(Granularity::CacheLine);
    let configs = [
        ("4 MCs", McPlacement::Corners),
        ("8 MCs", McPlacement::Eight),
        ("16 MCs", McPlacement::Sixteen),
    ];
    println!("{:<11} {:>8} {:>8} {:>8}", "app", "4", "8", "16");
    let apps = suite();
    let mut avgs = [0.0f64; 3];
    for app in &apps {
        let mut row = Vec::new();
        for (_, placement) in &configs {
            let sim = SimConfig {
                placement: placement.clone(),
                ..base_cfg.clone()
            };
            let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, placement);
            let base = run_app(app, &mapping, &sim, RunKind::Baseline);
            let opt = run_app(app, &mapping, &sim, RunKind::Optimized);
            row.push(exec_saving(&base, &opt));
        }
        println!(
            "{:<11} {:>7.1}% {:>7.1}% {:>7.1}%",
            app.name(),
            row[0],
            row[1],
            row[2]
        );
        for (a, r) in avgs.iter_mut().zip(&row) {
            *a += r;
        }
    }
    println!("{}", "-".repeat(40));
    println!(
        "{:<11} {:>7.1}% {:>7.1}% {:>7.1}%",
        "AVERAGE",
        avgs[0] / apps.len() as f64,
        avgs[1] / apps.len() as f64,
        avgs[2] / apps.len() as f64
    );
}
