//! Figure 15: CDF of the number of links traversed by on-chip and off-chip
//! requests, original vs optimized, pooled over all applications. The
//! paper's observation: the optimization shifts the *off-chip* CDF left
//! (e.g. 22% → 31% of requests within 4 links) while barely moving the
//! on-chip CDF — on-chip gains come from reduced contention, not distance.
//!
//! The histograms are read off the observability layer's
//! `net.{onchip,offchip}.hop_hist` counter families, which mirror the
//! NoC's `ClassStats::hop_histogram` exactly — same rows as the pre-obs
//! version of this harness.

use hoploc_bench::{banner, bench_suite, m1, standard_config, sweep_pair_traced};
use hoploc_layout::Granularity;
use hoploc_obs::HOP_HIST_LEN;
use hoploc_workloads::RunKind;

fn main() {
    banner(
        "Figure 15",
        "CDF of links traversed (pooled over all applications)",
    );
    let sim = standard_config(Granularity::CacheLine);
    let s = bench_suite(sim.clone(), m1(sim.mesh));

    let mut hists = [[0u64; HOP_HIST_LEN]; 4]; // on-base, on-opt, off-base, off-opt
    for (_, base, opt) in sweep_pair_traced(&s, RunKind::Baseline, RunKind::Optimized) {
        #[allow(clippy::needless_range_loop)]
        for h in 0..HOP_HIST_LEN {
            hists[0][h] += base.hop_histogram("onchip")[h];
            hists[1][h] += opt.hop_histogram("onchip")[h];
            hists[2][h] += base.hop_histogram("offchip")[h];
            hists[3][h] += opt.hop_histogram("offchip")[h];
        }
    }
    let cdf = |hist: &[u64; HOP_HIST_LEN]| -> Vec<f64> {
        let total: u64 = hist.iter().sum();
        let mut acc = 0u64;
        hist.iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total.max(1) as f64
            })
            .collect()
    };
    let cdfs: Vec<Vec<f64>> = hists.iter().map(cdf).collect();
    println!(
        "{:>5} {:>14} {:>14} {:>15} {:>15}",
        "links", "on-chip orig", "on-chip opt", "off-chip orig", "off-chip opt"
    );
    #[allow(clippy::needless_range_loop)]
    for h in 0..=14 {
        println!(
            "{:>5} {:>13.1}% {:>13.1}% {:>14.1}% {:>14.1}%",
            h,
            cdfs[0][h] * 100.0,
            cdfs[1][h] * 100.0,
            cdfs[2][h] * 100.0,
            cdfs[3][h] * 100.0
        );
    }
    println!(
        "\noff-chip requests within 4 links: {:.0}% original -> {:.0}% optimized",
        cdfs[2][4] * 100.0,
        cdfs[3][4] * 100.0
    );
}
