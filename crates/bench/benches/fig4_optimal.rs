//! Figure 4: impact of the *optimal scheme* (every off-chip request served
//! by the nearest MC at fixed row-hit latency, no bank contention) on the
//! four headline metrics, under page interleaving. Paper averages:
//! 20.8% / 68.2% / 45.6% / 19.5%.

use hoploc_bench::{banner, bench_suite, four_metric_figure, m1, standard_config};
use hoploc_layout::Granularity;
use hoploc_workloads::RunKind;

fn main() {
    banner("Figure 4", "optimal scheme vs baseline (page interleaving)");
    let sim = standard_config(Granularity::Page);
    let s = bench_suite(sim.clone(), m1(sim.mesh));
    four_metric_figure(&s, RunKind::Baseline, RunKind::Optimal);
}
