//! Figure 4: impact of the *optimal scheme* (every off-chip request served
//! by the nearest MC at fixed row-hit latency, no bank contention) on the
//! four headline metrics, under page interleaving. Paper averages:
//! 20.8% / 68.2% / 45.6% / 19.5%.

use hoploc_bench::{
    banner, four_metric_avg, four_metric_header, four_metric_row, m1, standard_config, suite,
};
use hoploc_layout::Granularity;
use hoploc_sim::Improvement;
use hoploc_workloads::{run_app, RunKind};

fn main() {
    banner("Figure 4", "optimal scheme vs baseline (page interleaving)");
    let sim = standard_config(Granularity::Page);
    let mapping = m1(sim.mesh);
    four_metric_header();
    let mut rows = Vec::new();
    for app in suite() {
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let optimal = run_app(&app, &mapping, &sim, RunKind::Optimal);
        let imp = Improvement::between(&base, &optimal);
        four_metric_row(app.name(), &imp);
        rows.push(imp);
    }
    four_metric_avg(&rows);
}
