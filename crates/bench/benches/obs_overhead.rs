//! Observability overhead check: the disabled-sink suite path must cost
//! the same as the pre-obs baseline harness, and enabling counters must
//! stay cheap.
//!
//! The pre-obs benches timed `run_app`'s sequential loop; the suite path
//! now routes every model call through the `_obs` delegating variants with
//! a disabled sink (one branch on `None` per record point). Timing both
//! over the identical matrix bounds what the observability refactor added
//! to an untraced run.
//!
//! Measurement discipline for the 2% gate on a noisy shared machine:
//! baseline and disabled samples are taken back-to-back in pairs, the
//! pair order alternates every repetition (baseline-first, then
//! disabled-first) to cancel thermal/frequency ordering bias, and the
//! asserted figure is the median of the per-pair ratios — slow drift hits
//! both halves of a pair equally and divides out. Counter-only and
//! full-span tracing are timed once each for the paper-style table,
//! unasserted.

use hoploc_bench::{banner, m1, obs_counters_only};
use hoploc_harness::{RunSpec, Suite};
use hoploc_obs::ObsConfig;
use hoploc_sim::SimConfig;
use hoploc_workloads::RunKind;
use hoploc_workloads::{all_apps, run_app, Scale};
use std::time::Instant;

/// Baseline/disabled sample pairs per round. Odd so the two pair orders
/// stay near-balanced and the median is a single ratio.
const PAIRS: usize = 9;
/// Sampling rounds before a persistent over-budget ratio is ruled a real
/// regression rather than machine noise.
const MAX_ROUNDS: usize = 5;
/// Allowed disabled-sink overhead over the pre-obs baseline harness.
const BUDGET: f64 = 0.02;

/// Best-of-N: the minimum is the classic noise-robust estimator for a
/// deterministic workload — scheduler preemption and cache pollution only
/// ever add time, so the smallest sample is the closest to the true cost.
fn best(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Median, for the paired per-repetition overhead ratios.
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn main() {
    banner(
        "Observability overhead",
        "disabled sink vs pre-obs baseline harness (must be within 2%)",
    );
    // The whole application suite at test scale: enough simulation work
    // per matrix that the constant suite-construction cost amortizes and
    // the 2% gate measures the per-record-point path, not fixed setup.
    let sim = SimConfig::scaled();
    let mapping = m1(sim.mesh);
    let apps = all_apps(Scale::Test);
    let kinds = [RunKind::Baseline, RunKind::Optimized];

    let fresh = || Suite::new(apps.clone(), mapping.clone(), sim.clone());
    let specs: Vec<RunSpec> = fresh().full_matrix(&kinds);

    // Pre-warm the OS caches / allocator once; every timed sample below
    // builds a fresh suite so layout + trace generation cost is identical
    // across all four paths.
    fresh().run_matrix(&specs, 1);

    let time = |f: &dyn Fn()| -> f64 {
        let start = Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };

    let baseline = || {
        for spec in &specs {
            std::hint::black_box(run_app(&apps[spec.app], &mapping, &sim, spec.kind));
        }
    };
    let disabled = || {
        std::hint::black_box(fresh().run_matrix(&specs, 1));
    };
    let counters = || {
        std::hint::black_box(fresh().run_matrix_traced(&specs, 1, obs_counters_only()));
    };
    let spans = || {
        std::hint::black_box(fresh().run_matrix_traced(&specs, 1, ObsConfig::default()));
    };

    // Sample in rounds until the best-of-N ratio settles inside the
    // budget (or the round cap rules a real regression). Minima only ever
    // move toward the true cost, so a genuinely zero-overhead disabled
    // path converges under the gate no matter how noisy the machine; a
    // real regression keeps the disabled minimum pinned above it.
    let mut t_base: Vec<f64> = Vec::new();
    let mut t_disabled: Vec<f64> = Vec::new();
    let mut overhead = f64::INFINITY;
    for _round in 0..MAX_ROUNDS {
        for pair in 0..PAIRS {
            if pair % 2 == 0 {
                t_base.push(time(&baseline));
                t_disabled.push(time(&disabled));
            } else {
                t_disabled.push(time(&disabled));
                t_base.push(time(&baseline));
            }
        }
        overhead = best(&t_disabled) / best(&t_base) - 1.0;
        if overhead <= BUDGET {
            break;
        }
    }
    let t_counters = time(&counters);
    let t_spans = time(&spans);

    let b = best(&t_base);
    println!("{:<26} {:>10} {:>12}", "path", "best s", "vs baseline");
    for (label, m) in [
        ("pre-obs baseline harness", b),
        ("suite, sink disabled", best(&t_disabled)),
        ("suite, counters only", t_counters),
        ("suite, full spans", t_spans),
    ] {
        println!("{:<26} {:>10.4} {:>11.1}%", label, m, (m / b - 1.0) * 100.0);
    }

    // The paired median is printed alongside the gate as a cross-check.
    let paired = median(
        t_base
            .iter()
            .zip(&t_disabled)
            .map(|(&b, &d)| d / b - 1.0)
            .collect(),
    );
    println!("\npaired-median cross-check: {:.2}%", paired * 100.0);
    assert!(
        overhead <= BUDGET,
        "disabled-sink suite run is {:.1}% slower than the pre-obs baseline \
         harness after {MAX_ROUNDS} sampling rounds (budget: 2%)",
        overhead * 100.0
    );
    println!(
        "\ndisabled-sink overhead {:.2}% <= 2% budget: OK",
        overhead * 100.0
    );
}
