//! Figure 3: contribution of off-chip data accesses to total dynamic data
//! accesses (8×8 mesh, private L2s, page interleaving — the paper reports
//! a 22.4% average).

use hoploc_bench::{banner, bar, m1, standard_config, suite};
use hoploc_layout::Granularity;
use hoploc_workloads::{run_app, RunKind};

fn main() {
    banner(
        "Figure 3",
        "off-chip share of dynamic data accesses (baseline)",
    );
    let sim = standard_config(Granularity::Page);
    let mapping = m1(sim.mesh);
    println!("{:<11} {:>9}", "app", "off-chip");
    let mut sum = 0.0;
    let apps = suite();
    for app in &apps {
        let stats = run_app(app, &mapping, &sim, RunKind::Baseline);
        let f = stats.offchip_fraction() * 100.0;
        sum += f;
        println!("{:<11} {:>8.1}%  {}", app.name(), f, bar(f, 1.5));
    }
    println!("{}", "-".repeat(40));
    println!("{:<11} {:>8.1}%", "AVERAGE", sum / apps.len() as f64);
}
