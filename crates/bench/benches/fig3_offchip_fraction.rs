//! Figure 3: contribution of off-chip data accesses to total dynamic data
//! accesses (8×8 mesh, private L2s, page interleaving — the paper reports
//! a 22.4% average).

use hoploc_bench::{banner, bar, bench_suite, m1, standard_config};
use hoploc_harness::default_jobs;
use hoploc_layout::Granularity;
use hoploc_workloads::RunKind;

fn main() {
    banner(
        "Figure 3",
        "off-chip share of dynamic data accesses (baseline)",
    );
    let sim = standard_config(Granularity::Page);
    let s = bench_suite(sim.clone(), m1(sim.mesh));
    let records = s.run_full(&[RunKind::Baseline], default_jobs());
    println!("{:<11} {:>9}", "app", "off-chip");
    let mut sum = 0.0;
    for r in &records {
        let f = r.stats.offchip_fraction() * 100.0;
        sum += f;
        println!("{:<11} {:>8.1}%  {}", r.app, f, bar(f, 1.5));
    }
    println!("{}", "-".repeat(40));
    println!("{:<11} {:>8.1}%", "AVERAGE", sum / records.len() as f64);
}
