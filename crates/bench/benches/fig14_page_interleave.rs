//! Figure 14: the four headline reductions under **page interleaving**
//! (compiler layout + OS-assisted page allocation). Paper averages:
//! 12.1% / 62.8% / 41.9% / 17.1%.

use hoploc_bench::{
    banner, four_metric_avg, four_metric_header, four_metric_row, m1, standard_config, suite,
};
use hoploc_layout::Granularity;
use hoploc_sim::Improvement;
use hoploc_workloads::{run_app, RunKind};

fn main() {
    banner(
        "Figure 14",
        "optimized vs baseline (page interleaving, private L2)",
    );
    let sim = standard_config(Granularity::Page);
    let mapping = m1(sim.mesh);
    four_metric_header();
    let mut rows = Vec::new();
    for app in suite() {
        let base = run_app(&app, &mapping, &sim, RunKind::Baseline);
        let opt = run_app(&app, &mapping, &sim, RunKind::Optimized);
        let imp = Improvement::between(&base, &opt);
        four_metric_row(app.name(), &imp);
        rows.push(imp);
    }
    four_metric_avg(&rows);
}
