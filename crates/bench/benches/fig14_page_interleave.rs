//! Figure 14: the four headline reductions under **page interleaving**
//! (compiler layout + OS-assisted page allocation). Paper averages:
//! 12.1% / 62.8% / 41.9% / 17.1%.

use hoploc_bench::{banner, bench_suite, four_metric_figure, m1, standard_config};
use hoploc_layout::Granularity;
use hoploc_workloads::RunKind;

fn main() {
    banner(
        "Figure 14",
        "optimized vs baseline (page interleaving, private L2)",
    );
    let sim = standard_config(Granularity::Page);
    let s = bench_suite(sim.clone(), m1(sim.mesh));
    four_metric_figure(&s, RunKind::Baseline, RunKind::Optimized);
}
