//! Microbenchmarks of the compiler and simulator substrates: the
//! integer-linear-algebra kernels of the layout pass, the address
//! function, and the NoC/MC fast paths. Self-timed (no external bench
//! framework): each kernel is warmed up, then timed over enough
//! iterations for a stable per-call figure.

use hoploc_affine::{
    complete_unimodular, hermite_normal_form, nullspace, AffineAccess, ArrayDecl, ArrayRef, IMat,
    IVec, Loop, LoopNest, Program, Statement,
};
use hoploc_bench::time_kernel;
use hoploc_layout::{optimize_program, PassConfig};
use hoploc_mem::{McConfig, MemoryController};
use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh, Network, NocConfig, NodeId, TrafficClass};
use std::hint::black_box;

fn stencil_program() -> Program {
    let mut p = Program::new("bench");
    let z = p.add_array(ArrayDecl::new("Z", vec![512, 512], 8));
    let a = IMat::from_rows(&[&[0, 1], &[1, 0]]);
    p.add_nest(LoopNest::new(
        vec![Loop::constant(1, 511), Loop::constant(1, 511)],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::read(z, AffineAccess::new(a.clone(), IVec::new(vec![-1, 0]))),
                ArrayRef::write(z, AffineAccess::new(a, IVec::zeros(2))),
            ],
            2,
        )],
        10,
    ));
    p
}

fn bench_linear_algebra() {
    let m = IMat::from_rows(&[&[2, 4, 6, 1], &[1, 3, 5, 7], &[0, 2, 4, 6]]);
    time_kernel("nullspace_3x4", || nullspace(black_box(&m)));
    time_kernel("hnf_3x4", || hermite_normal_form(black_box(&m)));
    let g = IVec::new(vec![3, 5, 7, 11]);
    time_kernel("complete_unimodular_4", || {
        complete_unimodular(black_box(&g), 0)
    });
}

fn bench_layout_pass() {
    let p = stencil_program();
    let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners);
    time_kernel("optimize_program_stencil", || {
        optimize_program(black_box(&p), &mapping, PassConfig::default())
    });
    let layout = optimize_program(&p, &mapping, PassConfig::default());
    let l = layout.layout(hoploc_affine::ArrayId(0));
    time_kernel("place_element", || l.place(black_box(&[137, 253])));
}

fn bench_substrates() {
    let mut net = Network::new(Mesh::new(8, 8), NocConfig::default());
    let mut t = 0u64;
    time_kernel("noc_send_cross_mesh", || {
        t += 10;
        net.send(NodeId(0), NodeId(63), 256, TrafficClass::OffChip, t)
    });
    let mut mc = MemoryController::new(McConfig::default());
    let mut now = 0u64;
    let mut addr = 0u64;
    time_kernel("mc_enqueue_stream", || {
        now += 50;
        addr += 256;
        mc.enqueue(addr, now, now)
    });
}

fn main() {
    bench_linear_algebra();
    bench_layout_pass();
    bench_substrates();
}
