//! Criterion microbenchmarks of the compiler and simulator substrates:
//! the integer-linear-algebra kernels of the layout pass, the address
//! function, and the NoC/MC fast paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hoploc_affine::{
    complete_unimodular, hermite_normal_form, nullspace, AffineAccess, ArrayDecl, ArrayRef, IMat,
    IVec, Loop, LoopNest, Program, Statement,
};
use hoploc_layout::{optimize_program, PassConfig};
use hoploc_mem::{McConfig, MemoryController};
use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh, Network, NocConfig, NodeId, TrafficClass};

fn stencil_program() -> Program {
    let mut p = Program::new("bench");
    let z = p.add_array(ArrayDecl::new("Z", vec![512, 512], 8));
    let a = IMat::from_rows(&[&[0, 1], &[1, 0]]);
    p.add_nest(LoopNest::new(
        vec![Loop::constant(1, 511), Loop::constant(1, 511)],
        0,
        vec![Statement::new(
            vec![
                ArrayRef::read(z, AffineAccess::new(a.clone(), IVec::new(vec![-1, 0]))),
                ArrayRef::write(z, AffineAccess::new(a, IVec::zeros(2))),
            ],
            2,
        )],
        10,
    ));
    p
}

fn bench_linear_algebra(c: &mut Criterion) {
    let m = IMat::from_rows(&[&[2, 4, 6, 1], &[1, 3, 5, 7], &[0, 2, 4, 6]]);
    c.bench_function("nullspace_3x4", |b| b.iter(|| nullspace(black_box(&m))));
    c.bench_function("hnf_3x4", |b| b.iter(|| hermite_normal_form(black_box(&m))));
    let g = IVec::new(vec![3, 5, 7, 11]);
    c.bench_function("complete_unimodular_4", |b| {
        b.iter(|| complete_unimodular(black_box(&g), 0))
    });
}

fn bench_layout_pass(c: &mut Criterion) {
    let p = stencil_program();
    let mapping = L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners);
    c.bench_function("optimize_program_stencil", |b| {
        b.iter(|| optimize_program(black_box(&p), &mapping, PassConfig::default()))
    });
    let layout = optimize_program(&p, &mapping, PassConfig::default());
    let l = layout.layout(hoploc_affine::ArrayId(0));
    c.bench_function("place_element", |b| {
        b.iter(|| l.place(black_box(&[137, 253])))
    });
}

fn bench_substrates(c: &mut Criterion) {
    c.bench_function("noc_send_cross_mesh", |b| {
        let mut net = Network::new(Mesh::new(8, 8), NocConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            net.send(NodeId(0), NodeId(63), 256, TrafficClass::OffChip, t)
        })
    });
    c.bench_function("mc_enqueue_stream", |b| {
        let mut mc = MemoryController::new(McConfig::default());
        let mut t = 0u64;
        let mut addr = 0u64;
        b.iter(|| {
            t += 50;
            addr += 256;
            mc.enqueue(addr, t, t)
        })
    });
}

criterion_group!(
    benches,
    bench_linear_algebra,
    bench_layout_pass,
    bench_substrates
);
criterion_main!(benches);
