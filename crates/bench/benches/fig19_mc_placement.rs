//! Figure 19: execution-time savings under three MC placements — P1
//! (corners, Figure 8a), P2 (edge midpoints, Figure 26a), and P3
//! (diagonal, Figure 26b). The paper finds P2 slightly best (~20.7% avg)
//! because its average distance-to-controller is lowest.

use hoploc_bench::{banner, exec_saving_figure, standard_config, suite};
use hoploc_harness::Suite;
use hoploc_layout::Granularity;
use hoploc_noc::{L2ToMcMapping, McPlacement};
use hoploc_sim::SimConfig;
use hoploc_workloads::RunKind;

fn main() {
    banner(
        "Figure 19",
        "execution-time savings under MC placements P1/P2/P3",
    );
    let base_cfg = standard_config(Granularity::CacheLine);
    let placements = [
        McPlacement::Corners,
        McPlacement::EdgeMidpoints,
        McPlacement::Diagonal,
    ];
    // One suite per placement: the configuration is part of the cache key
    // by construction.
    let suites: Vec<Suite> = placements
        .iter()
        .map(|placement| {
            let sim = SimConfig {
                placement: placement.clone(),
                ..base_cfg.clone()
            };
            let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, placement);
            Suite::new(suite(), mapping, sim)
        })
        .collect();
    exec_saving_figure(
        &suites,
        &["P1", "P2", "P3"],
        RunKind::Baseline,
        RunKind::Optimized,
    );
}
