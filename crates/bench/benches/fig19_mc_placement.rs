//! Figure 19: execution-time savings under three MC placements — P1
//! (corners, Figure 8a), P2 (edge midpoints, Figure 26a), and P3
//! (diagonal, Figure 26b). The paper finds P2 slightly best (~20.7% avg)
//! because its average distance-to-controller is lowest.

use hoploc_bench::{banner, exec_saving, standard_config, suite};
use hoploc_layout::Granularity;
use hoploc_noc::{L2ToMcMapping, McPlacement};
use hoploc_sim::SimConfig;
use hoploc_workloads::{run_app, RunKind};

fn main() {
    banner(
        "Figure 19",
        "execution-time savings under MC placements P1/P2/P3",
    );
    let base_cfg = standard_config(Granularity::CacheLine);
    let placements = [
        ("P1", McPlacement::Corners),
        ("P2", McPlacement::EdgeMidpoints),
        ("P3", McPlacement::Diagonal),
    ];
    println!("{:<11} {:>8} {:>8} {:>8}", "app", "P1", "P2", "P3");
    let apps = suite();
    let mut avgs = [0.0f64; 3];
    for app in &apps {
        let mut row = Vec::new();
        for (_, placement) in &placements {
            let sim = SimConfig {
                placement: placement.clone(),
                ..base_cfg.clone()
            };
            let mapping = L2ToMcMapping::nearest_cluster(sim.mesh, placement);
            let base = run_app(app, &mapping, &sim, RunKind::Baseline);
            let opt = run_app(app, &mapping, &sim, RunKind::Optimized);
            row.push(exec_saving(&base, &opt));
        }
        println!(
            "{:<11} {:>7.1}% {:>7.1}% {:>7.1}%",
            app.name(),
            row[0],
            row[1],
            row[2]
        );
        for (a, r) in avgs.iter_mut().zip(&row) {
            *a += r;
        }
    }
    println!("{}", "-".repeat(40));
    println!(
        "{:<11} {:>7.1}% {:>7.1}% {:>7.1}%",
        "AVERAGE",
        avgs[0] / apps.len() as f64,
        avgs[1] / apps.len() as f64,
        avgs[2] / apps.len() as f64
    );
}
