//! # hoploc-bench
//!
//! Shared support for the figure/table reproduction harnesses in
//! `benches/`. Every harness prints the same rows or series as the
//! corresponding figure of *Optimizing Off-Chip Accesses in Multicores*
//! (PLDI 2015); `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! All suite sweeps go through [`hoploc_harness::Suite`]: the whole
//! (app × run-kind) matrix of a figure is fanned out across worker
//! threads, layout compilation and trace generation are memoized, and the
//! results are bit-identical to the sequential `run_app` loops the
//! harnesses used to run.
//!
//! Run all of them with `cargo bench`, or one with
//! `cargo bench --bench fig16_cacheline`.

#![forbid(unsafe_code)]

use hoploc_harness::{default_jobs, RunRecord, Suite, TracedRecord};
use hoploc_layout::Granularity;
use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh};
use hoploc_obs::{ObsConfig, ObsReport};
use hoploc_sim::{Improvement, RunStats, SimConfig};
use hoploc_workloads::{all_apps, App, RunKind, Scale};
use std::time::Instant;

/// The standard capacity-scaled simulator configuration all harnesses use,
/// at the given interleaving granularity.
pub fn standard_config(granularity: Granularity) -> SimConfig {
    SimConfig {
        granularity,
        ..SimConfig::scaled()
    }
}

/// The paper's default L2-to-MC mapping (M1, Figure 8a) on a mesh.
pub fn m1(mesh: Mesh) -> L2ToMcMapping {
    L2ToMcMapping::nearest_cluster(mesh, &McPlacement::Corners)
}

/// The alternate mapping M2 (Figure 8b).
pub fn m2(mesh: Mesh) -> L2ToMcMapping {
    L2ToMcMapping::halves(mesh, &McPlacement::Corners)
}

/// The benchmark-scale application suite.
pub fn suite() -> Vec<App> {
    all_apps(Scale::Bench)
}

/// A [`Suite`] over the benchmark-scale apps under the given config and
/// mapping — the standard harness every figure sweep starts from.
pub fn bench_suite(sim: SimConfig, mapping: L2ToMcMapping) -> Suite {
    Suite::new(suite(), mapping, sim)
}

/// Runs the full (suite × kinds) matrix in parallel and returns, per app,
/// the records in kind order — `result[a][k]` is app `a` under `kinds[k]`.
pub fn sweep_kinds(s: &Suite, kinds: &[RunKind]) -> Vec<Vec<RunRecord>> {
    let records = s.run_full(kinds, default_jobs());
    let napps = s.apps().len();
    let mut per_app: Vec<Vec<RunRecord>> = (0..napps).map(|_| Vec::new()).collect();
    // full_matrix orders kinds outermost, apps innermost.
    for (i, r) in records.into_iter().enumerate() {
        per_app[i % napps].push(r);
    }
    per_app
}

/// The commonest figure shape: baseline-vs-other per app, as
/// `(name, baseline, other)` rows in suite order.
pub fn sweep_pair(s: &Suite, base: RunKind, other: RunKind) -> Vec<(String, RunStats, RunStats)> {
    sweep_kinds(s, &[base, other])
        .into_iter()
        .map(|mut recs| {
            let o = recs.pop().expect("two kinds");
            let b = recs.pop().expect("two kinds");
            (b.app, b.stats, o.stats)
        })
        .collect()
}

/// The counter-only observability configuration figure sweeps use: the
/// metric registry is live (the figures read it) but no span events are
/// buffered, so the sweep stays cheap.
pub fn obs_counters_only() -> ObsConfig {
    ObsConfig {
        record_spans: false,
        ..ObsConfig::default()
    }
}

/// [`sweep_kinds`] with counter-only observability on every cell:
/// `result[a][k]` is app `a` under `kinds[k]`, carrying both the stats and
/// the [`ObsReport`] whose counters mirror them exactly.
pub fn sweep_kinds_traced(s: &Suite, kinds: &[RunKind]) -> Vec<Vec<TracedRecord>> {
    let records = s.run_full_traced(kinds, default_jobs(), obs_counters_only());
    let napps = s.apps().len();
    let mut per_app: Vec<Vec<TracedRecord>> = (0..napps).map(|_| Vec::new()).collect();
    for (i, r) in records.into_iter().enumerate() {
        per_app[i % napps].push(r);
    }
    per_app
}

/// [`sweep_pair`] over observability reports: baseline-vs-other per app,
/// as `(name, baseline report, other report)` rows in suite order.
pub fn sweep_pair_traced(
    s: &Suite,
    base: RunKind,
    other: RunKind,
) -> Vec<(String, ObsReport, ObsReport)> {
    sweep_kinds_traced(s, &[base, other])
        .into_iter()
        .map(|mut recs| {
            let o = recs.pop().expect("two kinds");
            let b = recs.pop().expect("two kinds");
            (b.app, b.report, o.report)
        })
        .collect()
}

/// Prints a figure banner.
pub fn banner(fig: &str, caption: &str) {
    println!();
    println!("================================================================");
    println!("{fig}: {caption}");
    println!("================================================================");
}

/// Prints the four-metric header used by Figures 4, 14, 16, and 22.
pub fn four_metric_header() {
    println!(
        "{:<11} {:>12} {:>13} {:>11} {:>10}",
        "app", "on-chip net", "off-chip net", "memory", "exec time"
    );
}

/// Prints one four-metric reduction row.
pub fn four_metric_row(name: &str, imp: &Improvement) {
    println!(
        "{:<11} {:>11.1}% {:>12.1}% {:>10.1}% {:>9.1}%",
        name,
        imp.onchip_net * 100.0,
        imp.offchip_net * 100.0,
        imp.memory * 100.0,
        imp.exec_time * 100.0
    );
}

/// Prints the four-metric average row.
pub fn four_metric_avg(rows: &[Improvement]) {
    let n = rows.len().max(1) as f64;
    let avg = Improvement {
        onchip_net: rows.iter().map(|r| r.onchip_net).sum::<f64>() / n,
        offchip_net: rows.iter().map(|r| r.offchip_net).sum::<f64>() / n,
        memory: rows.iter().map(|r| r.memory).sum::<f64>() / n,
        exec_time: rows.iter().map(|r| r.exec_time).sum::<f64>() / n,
    };
    println!("{}", "-".repeat(60));
    four_metric_row("AVERAGE", &avg);
}

/// The standard four-metric figure body: sweep the suite under two kinds
/// in parallel, print one reduction row per app plus the average.
pub fn four_metric_figure(s: &Suite, base: RunKind, other: RunKind) {
    four_metric_header();
    let mut rows = Vec::new();
    for (name, b, o) in sweep_pair(s, base, other) {
        let imp = Improvement::between(&b, &o);
        four_metric_row(&name, &imp);
        rows.push(imp);
    }
    four_metric_avg(&rows);
}

/// The three-configuration exec-saving figure shape (Figures 19–21, 24):
/// one column per suite (all over the same app list), one row per app,
/// plus the average row. Each suite's matrix is swept in parallel.
pub fn exec_saving_figure(suites: &[Suite], labels: &[&str], base: RunKind, other: RunKind) {
    assert_eq!(suites.len(), labels.len());
    print!("{:<11}", "app");
    for l in labels {
        print!(" {:>8}", l);
    }
    println!();
    let cols: Vec<Vec<f64>> = suites
        .iter()
        .map(|s| {
            sweep_pair(s, base, other)
                .iter()
                .map(|(_, b, o)| exec_saving(b, o))
                .collect()
        })
        .collect();
    let napps = suites[0].apps().len();
    let mut avgs = vec![0.0f64; suites.len()];
    for i in 0..napps {
        print!("{:<11}", suites[0].apps()[i].name());
        for (c, col) in cols.iter().enumerate() {
            print!(" {:>7.1}%", col[i]);
            avgs[c] += col[i];
        }
        println!();
    }
    println!("{}", "-".repeat(11 + 9 * suites.len()));
    print!("{:<11}", "AVERAGE");
    for a in &avgs {
        print!(" {:>7.1}%", a / napps.max(1) as f64);
    }
    println!();
}

/// Execution-time reduction of `opt` over `base` as a percentage.
pub fn exec_saving(base: &RunStats, opt: &RunStats) -> f64 {
    RunStats::reduction(opt.exec_cycles as f64, base.exec_cycles as f64) * 100.0
}

/// Renders a crude horizontal bar for terminal "figures".
pub fn bar(value: f64, scale: f64) -> String {
    let n = ((value * scale).round().max(0.0) as usize).min(60);
    "#".repeat(n)
}

/// Times a kernel: warms it up, then reports mean ns/call over enough
/// iterations for a stable figure. The return value is consumed with
/// `std::hint::black_box` so the call is not optimized away.
pub fn time_kernel<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm up and size the batch so the timed region is ≥ ~20 ms.
    let mut iters: u64 = 8;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 20 || iters >= 1 << 24 {
            let per_call = elapsed.as_nanos() as f64 / iters as f64;
            println!("{name:<28} {per_call:>12.1} ns/call   ({iters} iters)");
            return;
        }
        iters = iters.saturating_mul(4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_config_is_scaled() {
        let c = standard_config(Granularity::CacheLine);
        assert_eq!(c.l2.size_bytes, 32 * 1024);
    }

    #[test]
    fn suite_has_thirteen_apps() {
        assert_eq!(suite().len(), 13);
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(2.0, 100.0), "#".repeat(60));
        assert_eq!(bar(-1.0, 10.0), "");
    }

    #[test]
    fn sweep_kinds_keeps_app_and_kind_order() {
        // Test-scale subset to keep this fast.
        let sim = SimConfig::scaled();
        let mapping = m1(sim.mesh);
        let apps = vec![
            hoploc_workloads::swim(Scale::Test),
            hoploc_workloads::mgrid(Scale::Test),
        ];
        let s = Suite::new(apps, mapping, sim);
        let rows = sweep_kinds(&s, &[RunKind::Baseline, RunKind::Optimized]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0].app, "swim");
        assert_eq!(rows[0][0].kind, RunKind::Baseline);
        assert_eq!(rows[0][1].kind, RunKind::Optimized);
        assert_eq!(rows[1][0].app, "mgrid");
    }
}
