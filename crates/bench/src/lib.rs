//! # hoploc-bench
//!
//! Shared support for the figure/table reproduction harnesses in
//! `benches/`. Every harness prints the same rows or series as the
//! corresponding figure of *Optimizing Off-Chip Accesses in Multicores*
//! (PLDI 2015); `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! Run all of them with `cargo bench`, or one with
//! `cargo bench --bench fig16_cacheline`.

#![forbid(unsafe_code)]

use hoploc_layout::Granularity;
use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh};
use hoploc_sim::{Improvement, RunStats, SimConfig};
use hoploc_workloads::{all_apps, App, Scale};

/// The standard capacity-scaled simulator configuration all harnesses use,
/// at the given interleaving granularity.
pub fn standard_config(granularity: Granularity) -> SimConfig {
    SimConfig {
        granularity,
        ..SimConfig::scaled()
    }
}

/// The paper's default L2-to-MC mapping (M1, Figure 8a) on a mesh.
pub fn m1(mesh: Mesh) -> L2ToMcMapping {
    L2ToMcMapping::nearest_cluster(mesh, &McPlacement::Corners)
}

/// The alternate mapping M2 (Figure 8b).
pub fn m2(mesh: Mesh) -> L2ToMcMapping {
    L2ToMcMapping::halves(mesh, &McPlacement::Corners)
}

/// The benchmark-scale application suite.
pub fn suite() -> Vec<App> {
    all_apps(Scale::Bench)
}

/// Prints a figure banner.
pub fn banner(fig: &str, caption: &str) {
    println!();
    println!("================================================================");
    println!("{fig}: {caption}");
    println!("================================================================");
}

/// Prints the four-metric header used by Figures 4, 14, 16, and 22.
pub fn four_metric_header() {
    println!(
        "{:<11} {:>12} {:>13} {:>11} {:>10}",
        "app", "on-chip net", "off-chip net", "memory", "exec time"
    );
}

/// Prints one four-metric reduction row.
pub fn four_metric_row(name: &str, imp: &Improvement) {
    println!(
        "{:<11} {:>11.1}% {:>12.1}% {:>10.1}% {:>9.1}%",
        name,
        imp.onchip_net * 100.0,
        imp.offchip_net * 100.0,
        imp.memory * 100.0,
        imp.exec_time * 100.0
    );
}

/// Prints the four-metric average row.
pub fn four_metric_avg(rows: &[Improvement]) {
    let n = rows.len().max(1) as f64;
    let avg = Improvement {
        onchip_net: rows.iter().map(|r| r.onchip_net).sum::<f64>() / n,
        offchip_net: rows.iter().map(|r| r.offchip_net).sum::<f64>() / n,
        memory: rows.iter().map(|r| r.memory).sum::<f64>() / n,
        exec_time: rows.iter().map(|r| r.exec_time).sum::<f64>() / n,
    };
    println!("{}", "-".repeat(60));
    four_metric_row("AVERAGE", &avg);
}

/// Execution-time reduction of `opt` over `base` as a percentage.
pub fn exec_saving(base: &RunStats, opt: &RunStats) -> f64 {
    RunStats::reduction(opt.exec_cycles as f64, base.exec_cycles as f64) * 100.0
}

/// Renders a crude horizontal bar for terminal "figures".
pub fn bar(value: f64, scale: f64) -> String {
    let n = ((value * scale).round().max(0.0) as usize).min(60);
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_config_is_scaled() {
        let c = standard_config(Granularity::CacheLine);
        assert_eq!(c.l2.size_bytes, 32 * 1024);
    }

    #[test]
    fn suite_has_thirteen_apps() {
        assert_eq!(suite().len(), 13);
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(2.0, 100.0), "#".repeat(60));
        assert_eq!(bar(-1.0, 10.0), "");
    }
}
