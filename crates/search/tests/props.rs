//! Property tests for the design-space search: legality of every
//! candidate the move generator can emit, admissibility of the
//! branch-and-bound bound on random instances, and monotonicity of the
//! best-so-far progress stream.

use hoploc_check::{check_layout, CheckConfig, Severity};
use hoploc_layout::Granularity;
use hoploc_ptest::{run_cases, SmallRng};
use hoploc_search::{
    balanced_assignment, balanced_assignment_brute, curated, propose, search_app, Candidate,
    Objective, SearchConfig, TILINGS,
};
use hoploc_sim::SimConfig;
use hoploc_workloads::{gafort, RunKind, Scale};

fn base_sim() -> SimConfig {
    SimConfig {
        granularity: Granularity::CacheLine,
        ..SimConfig::scaled()
    }
}

/// A random curated starting point for a walk.
fn random_start(rng: &mut SmallRng, sim: &SimConfig) -> Candidate {
    let all = curated(&sim.mesh, &[Granularity::CacheLine, Granularity::Page]);
    all[rng.usize_in(0..all.len())].clone()
}

#[test]
fn every_reachable_candidate_is_legal_and_checks_clean() {
    // The search only ever emits candidates built by `curated` or by a
    // chain of `propose` moves, so a random walk covers exactly the
    // reachable space. Each sampled point must (a) build a validated
    // placement and (b) produce a layout plan the static verifier
    // accepts with zero errors.
    let sim = base_sim();
    let app = gafort(Scale::Test);
    let cfg = CheckConfig::default();
    run_cases("search.space.legal", 30, |rng| {
        let mut cand = random_start(rng, &sim);
        for step in 0..8 {
            if let Some(next) = propose(rng, &cand, &sim.mesh) {
                cand = next;
            }
            let placement = cand
                .placement(&sim.mesh)
                .expect("moves must only emit legal candidates");
            // Checking the full layout is the expensive half; sample it.
            if step % 4 != 0 {
                continue;
            }
            let layout_sim = SimConfig {
                granularity: cand.granularity,
                ..sim.clone()
            };
            let layout = hoploc_workloads::layout_with(
                &app,
                placement.mapping(),
                &layout_sim,
                RunKind::Optimized,
                cand.approx,
            );
            let errors: Vec<String> = check_layout(&app.program, &layout, "search", &cfg)
                .into_iter()
                .filter(|d| d.severity() >= Severity::Error)
                .map(|d| format!("{d:?}"))
                .collect();
            assert!(
                errors.is_empty(),
                "candidate {} must check clean, found:\n{}",
                cand.key(),
                errors.join("\n")
            );
        }
    });
}

#[test]
fn bnb_bound_is_admissible_on_random_instances() {
    // Pruned branch-and-bound must return exactly the brute-force
    // optimum for random MC placements and every supported tiling.
    let mesh = base_sim().mesh;
    run_cases("search.bnb.admissible", 25, |rng| {
        let mut nodes = Vec::new();
        while nodes.len() < 4 {
            let n = hoploc_noc::NodeId(rng.u16_in(0..64));
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
        let (cw, ch, k) = TILINGS[rng.usize_in(0..TILINGS.len())];
        let pruned = balanced_assignment(&mesh, &nodes, cw, ch, k);
        let brute = balanced_assignment_brute(&mesh, &nodes, cw, ch, k);
        match (pruned, brute) {
            (Some((_, a)), Some((_, b))) => {
                assert_eq!(a, b, "pruning must not cut the optimum ({cw}x{ch} k={k})");
            }
            (None, None) => {}
            (a, b) => panic!("feasibility must agree: {a:?} vs {b:?}"),
        }
    });
}

#[test]
fn best_score_is_monotone_non_increasing_along_the_stream() {
    // Progress events are best-so-far improvements, so the emitted
    // scores must strictly decrease, end at the report's final score,
    // and every embedded candidate must be legal.
    fn field_f64(event: &str, key: &str) -> f64 {
        let needle = format!("\"{key}\":");
        let start = event.find(&needle).expect("event carries the field") + needle.len();
        let rest = &event[start..];
        let end = rest
            .find([',', '}'])
            .expect("field is followed by a delimiter");
        rest[..end].parse().expect("field parses as a number")
    }
    let sim = base_sim();
    let app = gafort(Scale::Test);
    run_cases("search.stream.monotone", 6, |rng| {
        let cfg = SearchConfig {
            seed: rng.next_u64(),
            budget: 24,
            objective: Objective::default(),
            ..SearchConfig::new(sim.clone(), Scale::Test)
        };
        let mut events = Vec::new();
        let report = search_app(&app, &cfg, &mut |e| events.push(e));
        assert!(!events.is_empty(), "the starting point is always emitted");
        let scores: Vec<f64> = events.iter().map(|e| field_f64(e, "best_score")).collect();
        for pair in scores.windows(2) {
            assert!(
                pair[1] < pair[0],
                "best-so-far must strictly improve: {scores:?}"
            );
        }
        assert_eq!(
            *scores.last().expect("non-empty"),
            field_f64(&report.to_json(), "best_score"),
            "the last event must carry the final best score"
        );
        let evals: Vec<f64> = events.iter().map(|e| field_f64(e, "evaluated")).collect();
        for pair in evals.windows(2) {
            assert!(
                pair[1] >= pair[0],
                "evaluation counts must be non-decreasing: {evals:?}"
            );
        }
    });
}
