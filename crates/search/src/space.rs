//! The design space: candidate points and the neighbor-move generator.
//!
//! A candidate fixes all three axes the optimizer explores — MC attach
//! nodes, the L2-to-MC cluster map, and the layout-plan parameters
//! (interleaving granularity, approximation threshold). Candidates are
//! *legal by construction*: every constructor and every move goes
//! through [`Candidate::placement`], which builds a validated
//! [`Placement`] (the paper's §4 validity constraints plus
//! duplicate-node rejection), and moves that would produce an invalid
//! point return `None` instead of emitting it.

use crate::bnb::balanced_assignment;
use hoploc_layout::Granularity;
use hoploc_noc::{McId, McPlacement, Mesh, NodeId, Placement};
use hoploc_ptest::SmallRng;
use std::fmt::Write as _;

/// Approximation thresholds the layout-plan axis ranges over.
pub const APPROX_LEVELS: [f64; 3] = [0.15, 0.30, 0.45];

/// Cluster tilings `(cluster_w, cluster_h, k)` explored on an 8×8 mesh
/// with 4 MCs — every combination that tiles the mesh evenly and
/// balances `n_clusters · k` slots across 4 controllers.
pub const TILINGS: [(u16, u16, usize); 8] = [
    (4, 4, 1),
    (2, 8, 1),
    (8, 2, 1),
    (2, 4, 1),
    (4, 2, 1),
    (4, 8, 2),
    (8, 4, 2),
    (8, 8, 4),
];

/// One point of the design space.
#[derive(Clone, PartialEq, Debug)]
pub struct Candidate {
    /// MC attach nodes, indexed by [`McId`].
    pub mc_nodes: Vec<NodeId>,
    /// Cluster width in cores.
    pub cluster_w: u16,
    /// Cluster height in cores.
    pub cluster_h: u16,
    /// Per-cluster MC assignments.
    pub assignments: Vec<Vec<McId>>,
    /// Physical interleaving granularity of the layout plan.
    pub granularity: Granularity,
    /// Approximation threshold of the layout pass.
    pub approx: f64,
}

/// Renders a granularity the way the CLI flags spell it.
pub fn granularity_name(g: Granularity) -> &'static str {
    match g {
        Granularity::CacheLine => "cacheline",
        Granularity::Page => "page",
    }
}

impl Candidate {
    /// The paper's default design point under a given base granularity:
    /// a named placement with its nearest-cluster (M1) mapping.
    pub fn from_named(mesh: &Mesh, placement: &McPlacement, granularity: Granularity) -> Self {
        let p = Placement::nearest(*mesh, placement);
        let mapping = p.mapping();
        let assignments = (0..mapping.num_clusters())
            .map(|c| {
                mapping
                    .cluster_mcs(hoploc_noc::ClusterId(c as u16))
                    .to_vec()
            })
            .collect();
        Self {
            mc_nodes: mapping.mc_nodes().to_vec(),
            cluster_w: mapping.cores_x(),
            cluster_h: mapping.cores_y(),
            assignments,
            granularity,
            approx: 0.30,
        }
    }

    /// Builds the validated geometry half. `Err` means the candidate is
    /// illegal — constructors and moves never emit such a point, so
    /// downstream code treats `Err` as a bug.
    pub fn placement(&self, mesh: &Mesh) -> Result<Placement, hoploc_noc::MappingError> {
        Placement::custom(
            *mesh,
            self.mc_nodes.clone(),
            self.cluster_w,
            self.cluster_h,
            self.assignments.clone(),
        )
    }

    /// A stable identity key: the placement canon plus the layout-plan
    /// parameters. Byte-equal keys mean identical candidates; the
    /// evaluator dedupes on it.
    pub fn key(&self) -> String {
        let mut s = String::from("mcs=");
        for (i, n) in self.mc_nodes.iter().enumerate() {
            if i > 0 {
                s.push('+');
            }
            let _ = write!(s, "{}", n.0);
        }
        let _ = write!(s, ";tile={}x{};assign=", self.cluster_w, self.cluster_h);
        for (c, a) in self.assignments.iter().enumerate() {
            if c > 0 {
                s.push('|');
            }
            for (i, mc) in a.iter().enumerate() {
                if i > 0 {
                    s.push('+');
                }
                let _ = write!(s, "{}", mc.0);
            }
        }
        let _ = write!(
            s,
            ";gran={};approx={:.2}",
            granularity_name(self.granularity),
            self.approx
        );
        s
    }

    /// The candidate as a single-line JSON object (stable field order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"mcs\":[");
        for (i, n) in self.mc_nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}", n.0);
        }
        let _ = write!(
            s,
            "],\"tile\":\"{}x{}\",\"assign\":\"",
            self.cluster_w, self.cluster_h
        );
        for (c, a) in self.assignments.iter().enumerate() {
            if c > 0 {
                s.push('|');
            }
            for (i, mc) in a.iter().enumerate() {
                if i > 0 {
                    s.push('+');
                }
                let _ = write!(s, "{}", mc.0);
            }
        }
        let _ = write!(
            s,
            "\",\"granularity\":\"{}\",\"approx\":{:.2}}}",
            granularity_name(self.granularity),
            self.approx
        );
        s
    }
}

/// The curated phase-1 space: the paper's 4-MC placements plus the mesh
/// quadrant centres, crossed with every balanced tiling and every
/// layout-plan parameter; assignments come from the exact
/// branch-and-bound, so each point is the distance-optimal balanced
/// mapping of its (placement, tiling) pair.
pub fn curated(mesh: &Mesh, granularities: &[Granularity]) -> Vec<Candidate> {
    let mut placements: Vec<Vec<NodeId>> = vec![
        McPlacement::Corners.attach_nodes(mesh),
        McPlacement::EdgeMidpoints.attach_nodes(mesh),
        McPlacement::Diagonal.attach_nodes(mesh),
    ];
    // Quadrant centres: the interior counterpart of the corner placement
    // (for an 8×8 mesh: nodes 18, 21, 42, 45).
    if mesh.width() >= 4 && mesh.height() >= 4 {
        let qx = [mesh.width() / 4, mesh.width() - 1 - mesh.width() / 4];
        let qy = [mesh.height() / 4, mesh.height() - 1 - mesh.height() / 4];
        placements.push(vec![
            mesh.node_at(qx[0], qy[0]),
            mesh.node_at(qx[1], qy[0]),
            mesh.node_at(qx[0], qy[1]),
            mesh.node_at(qx[1], qy[1]),
        ]);
    }
    let mut out = Vec::new();
    for nodes in &placements {
        for &(cw, ch, k) in &TILINGS {
            let Some((assignments, _)) = balanced_assignment(mesh, nodes, cw, ch, k) else {
                continue;
            };
            for &granularity in granularities {
                for &approx in &[0.15, 0.30] {
                    out.push(Candidate {
                        mc_nodes: nodes.clone(),
                        cluster_w: cw,
                        cluster_h: ch,
                        assignments: assignments.clone(),
                        granularity,
                        approx,
                    });
                }
            }
        }
    }
    out
}

/// Proposes one neighbor of `cand`, or `None` if the drawn move would
/// not change the candidate or would produce an illegal point (the
/// caller redraws). Every `Some` is a valid design point.
pub fn propose(rng: &mut SmallRng, cand: &Candidate, mesh: &Mesh) -> Option<Candidate> {
    let mut next = cand.clone();
    match rng.usize_in(0..6) {
        // Relocate one MC to a random free node.
        0 => {
            let i = rng.usize_in(0..next.mc_nodes.len());
            let node = NodeId(rng.u16_in(0..mesh.num_nodes() as u16));
            if next.mc_nodes.contains(&node) {
                return None;
            }
            next.mc_nodes[i] = node;
        }
        // Change the cluster tiling, re-deriving the distance-optimal
        // balanced assignment for the new grid.
        1 => {
            let (cw, ch, k) = TILINGS[rng.usize_in(0..TILINGS.len())];
            let (assignments, _) = balanced_assignment(mesh, &next.mc_nodes, cw, ch, k)?;
            if cw == next.cluster_w && ch == next.cluster_h && assignments == next.assignments {
                return None;
            }
            next.cluster_w = cw;
            next.cluster_h = ch;
            next.assignments = assignments;
        }
        // Reassign one cluster to a different same-size MC subset
        // (validity does not require each MC be used exactly once).
        2 => {
            let c = rng.usize_in(0..next.assignments.len());
            let k = next.assignments[c].len();
            let n_mcs = next.mc_nodes.len();
            if k >= n_mcs {
                return None;
            }
            let mut subset: Vec<McId> = Vec::with_capacity(k);
            let mut remaining: Vec<u16> = (0..n_mcs as u16).collect();
            for _ in 0..k {
                let i = rng.usize_in(0..remaining.len());
                subset.push(McId(remaining.remove(i)));
            }
            subset.sort();
            if subset == next.assignments[c] {
                return None;
            }
            next.assignments[c] = subset;
        }
        // Swap two clusters' MC subsets.
        3 => {
            if next.assignments.len() < 2 {
                return None;
            }
            let a = rng.usize_in(0..next.assignments.len());
            let b = rng.usize_in(0..next.assignments.len());
            if a == b || next.assignments[a] == next.assignments[b] {
                return None;
            }
            next.assignments.swap(a, b);
        }
        // Flip the interleaving granularity.
        4 => {
            next.granularity = match next.granularity {
                Granularity::CacheLine => Granularity::Page,
                Granularity::Page => Granularity::CacheLine,
            };
        }
        // Step the approximation threshold.
        _ => {
            let level = APPROX_LEVELS[rng.usize_in(0..APPROX_LEVELS.len())];
            if (level - next.approx).abs() < 1e-9 {
                return None;
            }
            next.approx = level;
        }
    }
    // Defense in depth: a move that slipped an invalid point through
    // construction is dropped here rather than emitted.
    next.placement(mesh).ok()?;
    Some(next)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curated_points_are_all_legal() {
        let mesh = Mesh::new(8, 8);
        let pts = curated(&mesh, &[Granularity::CacheLine, Granularity::Page]);
        assert!(pts.len() >= 64, "curated space unexpectedly small");
        for c in &pts {
            c.placement(&mesh).expect("curated candidate must be legal");
        }
    }

    #[test]
    fn curated_keys_are_distinct() {
        let mesh = Mesh::new(8, 8);
        let pts = curated(&mesh, &[Granularity::CacheLine]);
        let mut keys: Vec<String> = pts.iter().map(|c| c.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), pts.len());
    }

    #[test]
    fn proposals_are_always_legal() {
        let mesh = Mesh::new(8, 8);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut cand = Candidate::from_named(&mesh, &McPlacement::Corners, Granularity::CacheLine);
        let mut accepted = 0;
        for _ in 0..2000 {
            if let Some(next) = propose(&mut rng, &cand, &mesh) {
                next.placement(&mesh)
                    .expect("proposed candidate must be legal");
                assert_ne!(next.key(), cand.key(), "move must change the candidate");
                cand = next;
                accepted += 1;
            }
        }
        assert!(accepted > 500, "move generator rejects too much");
    }

    #[test]
    fn from_named_matches_nearest_cluster() {
        let mesh = Mesh::new(8, 8);
        let c = Candidate::from_named(&mesh, &McPlacement::Corners, Granularity::CacheLine);
        let p = c.placement(&mesh).unwrap();
        let m1 = Placement::nearest(mesh, &McPlacement::Corners);
        assert_eq!(p.mapping(), m1.mapping());
    }
}
