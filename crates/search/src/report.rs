//! Search results: the per-app report and the deterministic single-line
//! JSON encodings shared by the CLI and the serve result cache.
//!
//! Every encoding here is a pure function of the report value with fixed
//! field order and fixed float precision, so a served search result is
//! byte-identical to the direct CLI run of the same seed.

use crate::objective::Objective;
use crate::space::Candidate;
use hoploc_workloads::Scale;
use std::fmt::Write as _;

/// Wire/report name of a scale (matches the serve protocol's spelling).
pub fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Test => "test",
        Scale::Bench => "bench",
    }
}

/// One cycle-sim-verified finalist.
#[derive(Clone, PartialEq, Debug)]
pub struct Verified {
    /// The candidate design point.
    pub candidate: Candidate,
    /// Its estimator objective score (lower is better).
    pub score: f64,
    /// Cycle-simulated completion time under the candidate's geometry
    /// and layout plan.
    pub cycles: u64,
}

/// The estimator terms of the best candidate, for the report.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EstTerms {
    /// Predicted off-chip fraction.
    pub offchip: f64,
    /// Predicted mean off-chip hop count.
    pub hops: f64,
    /// Predicted queue pressure (1 = balanced).
    pub queue: f64,
}

/// The result of one per-app search.
#[derive(Clone, PartialEq, Debug)]
pub struct SearchReport {
    /// Application name.
    pub app: String,
    /// Problem scale searched at.
    pub scale: Scale,
    /// The seed the whole search derives from.
    pub seed: u64,
    /// Estimator-evaluation budget given.
    pub budget: u32,
    /// The objective optimized.
    pub objective: Objective,
    /// Fresh estimator evaluations actually spent.
    pub evaluated: u32,
    /// Best candidate by estimator score.
    pub best: Candidate,
    /// Its objective score.
    pub best_score: f64,
    /// Its estimator terms.
    pub est: EstTerms,
    /// The cycle-sim-verified finalists, in score order.
    pub verified: Vec<Verified>,
    /// Cycle-sim completion time of the paper's corner placement (P1).
    pub corners_cycles: u64,
    /// Cycle-sim completion time of the paper's edge placement (P2).
    pub edge_cycles: u64,
    /// Cycle-sim completion time of the paper's diamond placement (P3).
    pub diamond_cycles: u64,
    /// The verified finalist with the lowest completion time.
    pub found: Candidate,
    /// Its completion time.
    pub found_cycles: u64,
}

impl SearchReport {
    /// Whether the found design beats the paper's diamond placement.
    pub fn beats_diamond(&self) -> bool {
        self.found_cycles < self.diamond_cycles
    }

    /// Whether the found design beats the paper's edge placement.
    pub fn beats_edge(&self) -> bool {
        self.found_cycles < self.edge_cycles
    }

    /// The report as one line of JSON (starts with `{`, no newline) —
    /// the serve job result payload and the CLI `--json` record.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"search\":{");
        let _ = write!(
            s,
            "\"app\":\"{}\",\"scale\":\"{}\",\"seed\":{},\"budget\":{},\"objective\":\"{}\",\
             \"evaluated\":{},\"best\":{},\"best_score\":{:.6},\
             \"est\":{{\"offchip\":{:.6},\"hops\":{:.6},\"queue\":{:.6}}},\"verified\":[",
            self.app,
            scale_name(self.scale),
            self.seed,
            self.budget,
            self.objective.canon(),
            self.evaluated,
            self.best.to_json(),
            self.best_score,
            self.est.offchip,
            self.est.hops,
            self.est.queue,
        );
        for (i, v) in self.verified.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"candidate\":{},\"score\":{:.6},\"cycles\":{}}}",
                v.candidate.to_json(),
                v.score,
                v.cycles
            );
        }
        let _ = write!(
            s,
            "],\"baselines\":{{\"corners\":{},\"edge\":{},\"diamond\":{}}},\
             \"found\":{},\"found_cycles\":{},\"beats_diamond\":{},\"beats_edge\":{}}}}}",
            self.corners_cycles,
            self.edge_cycles,
            self.diamond_cycles,
            self.found.to_json(),
            self.found_cycles,
            self.beats_diamond(),
            self.beats_edge(),
        );
        s
    }

    /// One row of the human-readable table ([`text_header`] gives the
    /// matching header).
    pub fn text_row(&self) -> String {
        let beats = match (self.beats_diamond(), self.beats_edge()) {
            (true, true) => "diamond+edge",
            (true, false) => "diamond",
            (false, true) => "edge",
            (false, false) => "-",
        };
        format!(
            "{:<10} {:>6} {:>10.6} {:>12} {:>12} {:>12} {:>12}  {}",
            self.app,
            self.evaluated,
            self.best_score,
            self.found_cycles,
            self.diamond_cycles,
            self.edge_cycles,
            self.corners_cycles,
            beats
        )
    }
}

/// Header row matching [`SearchReport::text_row`].
pub fn text_header() -> String {
    format!(
        "{:<10} {:>6} {:>10} {:>12} {:>12} {:>12} {:>12}  {}",
        "app", "evals", "score", "found", "diamond", "edge", "corners", "beats"
    )
}

/// A progress event as one line of JSON (starts with `{`): emitted at
/// every strict best-so-far improvement, so `best_score` is monotone
/// non-increasing along the stream.
pub fn event_json(
    app: &str,
    phase: &str,
    evaluated: u32,
    best_score: f64,
    best: &Candidate,
) -> String {
    format!(
        "{{\"app\":\"{}\",\"phase\":\"{}\",\"evaluated\":{},\"best_score\":{:.6},\"best\":{}}}",
        app,
        phase,
        evaluated,
        best_score,
        best.to_json()
    )
}
