//! The simulated-annealing engine: a single sequential Metropolis chain
//! over the candidate space, deterministic for a fixed seed.
//!
//! Determinism is load-bearing: the chain consumes randomness from one
//! [`SmallRng`] in a strictly sequential order, the evaluator is a pure
//! function of the candidate, and no wall-clock or thread identity ever
//! enters the state — so the same seed yields the same trajectory at any
//! `--jobs` count (parallelism only ever runs *different apps'* chains
//! concurrently).

use crate::space::{propose, Candidate};
use hoploc_noc::Mesh;
use hoploc_ptest::SmallRng;

/// Annealing schedule parameters. The temperature decays geometrically
/// from `t0` to `t_end` across the move budget.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Schedule {
    /// Initial temperature, in objective-score units.
    pub t0: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Maximum chain steps (proposals drawn), independent of how many
    /// cost fresh evaluations.
    pub max_steps: u32,
}

impl Schedule {
    /// A schedule sized to an evaluation budget: enough steps to spend
    /// it with cache hits to spare.
    pub fn for_budget(budget: u32) -> Self {
        Self {
            t0: 0.02,
            t_end: 0.0005,
            max_steps: budget.saturating_mul(4).max(16),
        }
    }

    fn temperature(&self, step: u32) -> f64 {
        let n = self.max_steps.max(2) as f64;
        let frac = step as f64 / (n - 1.0);
        self.t0 * (self.t_end / self.t0).powf(frac)
    }
}

/// A uniform draw in `[0, 1)` from the shared deterministic PRNG.
fn unit(rng: &mut SmallRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Runs the chain from `start` until the evaluator's budget is spent or
/// `max_steps` proposals have been drawn. `eval` returns `None` when
/// the budget is exhausted (a cached revisit is free and returns
/// `Some`). `improved` fires whenever the best-so-far score strictly
/// decreases. Returns the best candidate and its score.
pub fn anneal(
    mesh: &Mesh,
    rng: &mut SmallRng,
    schedule: &Schedule,
    start: Candidate,
    start_score: f64,
    eval: &mut dyn FnMut(&Candidate) -> Option<f64>,
    improved: &mut dyn FnMut(&Candidate, f64),
) -> (Candidate, f64) {
    let mut current = start.clone();
    let mut current_score = start_score;
    let mut best = start;
    let mut best_score = start_score;
    for step in 0..schedule.max_steps {
        // Redraw a handful of times if the move generator rejects; a
        // fully stuck step just advances the schedule.
        let mut proposal = None;
        for _ in 0..16 {
            if let Some(p) = propose(rng, &current, mesh) {
                proposal = Some(p);
                break;
            }
        }
        let Some(candidate) = proposal else { continue };
        let Some(score) = eval(&candidate) else { break };
        let delta = score - current_score;
        let t = schedule.temperature(step);
        if delta < 0.0 || (t > 0.0 && unit(rng) < (-delta / t).exp()) {
            current = candidate;
            current_score = score;
            if current_score < best_score {
                best = current.clone();
                best_score = current_score;
                improved(&best, best_score);
            }
        }
    }
    (best, best_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_layout::Granularity;
    use hoploc_noc::McPlacement;

    /// A synthetic, cheap objective: mean hop distance of the mapping.
    fn distance_score(mesh: &Mesh, c: &Candidate) -> f64 {
        c.placement(mesh).unwrap().avg_distance_to_mc()
    }

    #[test]
    fn chain_is_deterministic_and_improves() {
        let mesh = Mesh::new(8, 8);
        let start = Candidate::from_named(&mesh, &McPlacement::Corners, Granularity::CacheLine);
        let start_score = distance_score(&mesh, &start);
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut evals = 0u32;
            let mut eval = |c: &Candidate| {
                if evals >= 300 {
                    return None;
                }
                evals += 1;
                Some(distance_score(&mesh, c))
            };
            let mut trail = Vec::new();
            let (best, score) = anneal(
                &mesh,
                &mut rng,
                &Schedule::for_budget(300),
                start.clone(),
                start_score,
                &mut eval,
                &mut |c, s| trail.push((c.key(), s)),
            );
            (best.key(), score, trail)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce the whole trajectory");
        assert!(a.1 < start_score, "chain should improve mean distance");
        // Best-so-far is monotone non-increasing along the trail.
        for w in a.2.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        let c = run(8);
        assert_ne!(a.2, c.2, "different seeds should explore differently");
    }
}
