//! The search objective: a weighted sum of the estimator's normalized
//! prediction terms.
//!
//! Queue pressure is **excluded by default**: cross-validation (DESIGN.md
//! §14) measures only ρ(queue) = 0.270 against the cycle simulator — the
//! static max-share imbalance proxy cannot see the temporal burstiness
//! that dominates real MC queue delay — so optimizing it would chase
//! noise. Pass `--objective offchip,hops,queue` to opt in anyway.

use hoploc_est::AppEstimate;

/// Weighted search objective over the estimator's terms. Lower is
/// better. Each term is normalized to roughly `[0, 1]` before
/// weighting, so unit weights mean "equally important".
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Objective {
    /// Weight of the predicted off-chip fraction (already a fraction).
    pub offchip: f64,
    /// Weight of the predicted mean off-chip hop count, normalized by
    /// the mesh diameter.
    pub hops: f64,
    /// Weight of predicted MC queue pressure, normalized so 0 is
    /// balanced and 1 is one controller taking everything.
    pub queue: f64,
}

impl Default for Objective {
    fn default() -> Self {
        Self {
            offchip: 1.0,
            hops: 1.0,
            queue: 0.0,
        }
    }
}

impl Objective {
    /// Parses an `--objective` flag value: a list of terms from
    /// {`offchip`, `hops`, `queue`} separated by `,` (flag form) or `+`
    /// (the [`canon`](Self::canon) form, so a canon string re-parses to
    /// the same objective), each optionally weighted as `name:weight`.
    /// Unlisted terms get weight 0.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending term if one is unknown,
    /// repeated, non-finite, negative, or the list is empty/all-zero.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut o = Self {
            offchip: 0.0,
            hops: 0.0,
            queue: 0.0,
        };
        let mut seen = [false; 3];
        for term in s.split([',', '+']) {
            let term = term.trim();
            if term.is_empty() {
                return Err("empty objective term".into());
            }
            let (name, weight) = match term.split_once(':') {
                Some((n, w)) => {
                    let w: f64 = w
                        .parse()
                        .map_err(|_| format!("bad weight in objective term `{term}`"))?;
                    if !w.is_finite() || w < 0.0 {
                        return Err(format!("weight in objective term `{term}` must be >= 0"));
                    }
                    (n, w)
                }
                None => (term, 1.0),
            };
            let slot = match name {
                "offchip" => 0,
                "hops" => 1,
                "queue" => 2,
                _ => {
                    return Err(format!(
                        "unknown objective term `{name}`; valid terms: offchip, hops, queue"
                    ))
                }
            };
            if seen[slot] {
                return Err(format!("objective term `{name}` given twice"));
            }
            seen[slot] = true;
            match slot {
                0 => o.offchip = weight,
                1 => o.hops = weight,
                _ => o.queue = weight,
            }
        }
        if o.offchip == 0.0 && o.hops == 0.0 && o.queue == 0.0 {
            return Err("objective must weight at least one term".into());
        }
        Ok(o)
    }

    /// Canonical form: terms in fixed `offchip,hops,queue` order joined
    /// by `+`, zero-weight terms omitted, `:weight` omitted when 1.
    /// Byte-equal canon means identical objective.
    pub fn canon(&self) -> String {
        let mut parts = Vec::new();
        for (name, w) in [
            ("offchip", self.offchip),
            ("hops", self.hops),
            ("queue", self.queue),
        ] {
            if w == 0.0 {
                continue;
            }
            if w == 1.0 {
                parts.push(name.to_string());
            } else {
                parts.push(format!("{name}:{w}"));
            }
        }
        parts.join("+")
    }

    /// Scores one estimate; lower is better. `mesh_diameter` is the
    /// maximum hop distance of the mesh, `num_mcs` the MC count the
    /// estimate was made against.
    pub fn score(&self, est: &AppEstimate, mesh_diameter: u16, num_mcs: usize) -> f64 {
        let hops_norm = if mesh_diameter == 0 {
            0.0
        } else {
            est.avg_offchip_hops / mesh_diameter as f64
        };
        let queue_norm = if num_mcs <= 1 {
            0.0
        } else {
            ((est.queue_pressure - 1.0) / (num_mcs as f64 - 1.0)).max(0.0)
        };
        self.offchip * est.offchip_fraction() + self.hops * hops_norm + self.queue * queue_norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_excludes_queue() {
        let o = Objective::default();
        assert_eq!(o.queue, 0.0);
        assert_eq!(o.canon(), "offchip+hops");
    }

    #[test]
    fn parse_roundtrips_canon() {
        for s in ["offchip,hops", "offchip", "offchip:2,hops,queue:0.5"] {
            let o = Objective::parse(s).unwrap();
            // Canon re-parses to itself in both separator spellings.
            assert_eq!(o, Objective::parse(&o.canon()).unwrap());
            assert_eq!(o, Objective::parse(&o.canon().replace('+', ",")).unwrap());
        }
        assert_eq!(
            Objective::parse("offchip:2,hops,queue:0.5")
                .unwrap()
                .canon(),
            "offchip:2+hops+queue:0.5"
        );
    }

    #[test]
    fn parse_rejects_bad_terms() {
        assert!(Objective::parse("").is_err());
        assert!(Objective::parse("latency").is_err());
        assert!(Objective::parse("offchip,offchip").is_err());
        assert!(Objective::parse("offchip:-1").is_err());
        assert!(Objective::parse("offchip:0,hops:0").is_err());
    }
}
