//! # hoploc-search
//!
//! Seeded, deterministic design-space search over the three axes the
//! paper fixes by hand: (a) where the four memory controllers attach to
//! the mesh, (b) how L2 clusters map to MCs, and (c) the layout-plan
//! parameters (interleaving granularity, approximation threshold).
//!
//! The optimizer is a two-phase pipeline:
//!
//! 1. **Curated branch-and-bound.** The paper's placements (plus the
//!    quadrant-centre interior placement) are crossed with every
//!    balanced cluster tiling; for each pair, an exact branch-and-bound
//!    ([`balanced_assignment`]) finds the distance-optimal balanced
//!    cluster map. These few dozen points are scored first.
//! 2. **Simulated annealing.** A single sequential Metropolis chain
//!    ([`anneal`]) explores the full space from the phase-1 incumbent —
//!    relocating MCs, retiling, reassigning and swapping cluster MC
//!    sets, and flipping layout-plan parameters.
//!
//! Candidates are scored by the static estimator (`hoploc-est`,
//! thousands of evaluations per second); the top-K finalists are then
//! *verified* by the cycle simulator against the paper's corner, edge,
//! and diamond placements before any win is reported. Every candidate
//! is legal by construction ([`Candidate::placement`] builds a validated
//! [`hoploc_noc::Placement`]), every search is reproducible from one
//! seed at any `--jobs` count, and every emitted line (progress events,
//! final report) is a deterministic single-line JSON object.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod bnb;
mod objective;
mod report;
mod space;

pub use anneal::{anneal, Schedule};
pub use bnb::{balanced_assignment, balanced_assignment_brute};
pub use objective::Objective;
pub use report::{event_json, scale_name, text_header, EstTerms, SearchReport, Verified};
pub use space::{curated, granularity_name, propose, Candidate, APPROX_LEVELS, TILINGS};

use hoploc_est::estimate_placement;
use hoploc_harness::{parallel_map, RunSpec, Suite};
use hoploc_layout::Granularity;
use hoploc_noc::{McPlacement, Placement};
use hoploc_ptest::SmallRng;
use hoploc_sim::SimConfig;
use hoploc_workloads::{App, RunKind, Scale};
use std::collections::HashMap;

/// One search's configuration. The base [`SimConfig`] carries the
/// machine (mesh, caches, default granularity) the baselines run under;
/// candidates override its placement and granularity per point.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Base machine configuration.
    pub sim: SimConfig,
    /// Problem scale the apps are built at (reported, and must match
    /// the apps handed to [`search_app`]).
    pub scale: Scale,
    /// Master seed; each app's chain forks deterministically from it.
    pub seed: u64,
    /// Estimator-evaluation budget per app.
    pub budget: u32,
    /// The objective to minimize.
    pub objective: Objective,
    /// How many top candidates to verify with the cycle simulator.
    pub top_k: usize,
}

impl SearchConfig {
    /// Defaults: seed 0, 400 evaluations, `offchip+hops` objective,
    /// 3 verified finalists.
    pub fn new(sim: SimConfig, scale: Scale) -> Self {
        Self {
            sim,
            scale,
            seed: 0,
            budget: 400,
            objective: Objective::default(),
            top_k: 3,
        }
    }
}

/// FNV-1a, the workspace's standard content hash — used to fork each
/// app's PRNG stream from the master seed by name, so the chain is
/// independent of the app's position in the suite and of `--jobs`.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The estimator-backed scorer: caches by candidate key (revisits are
/// free), counts fresh evaluations against the budget, and keeps the
/// top-K distinct candidates for verification.
struct Evaluator<'a> {
    app: &'a App,
    cfg: &'a SearchConfig,
    diameter: u16,
    cache: HashMap<String, (f64, EstTerms)>,
    evaluated: u32,
    /// `(score, key, candidate)`, ascending, truncated to `top_k`.
    top: Vec<(f64, String, Candidate)>,
}

impl<'a> Evaluator<'a> {
    fn new(app: &'a App, cfg: &'a SearchConfig) -> Self {
        let diameter = (cfg.sim.mesh.width() - 1) + (cfg.sim.mesh.height() - 1);
        Self {
            app,
            cfg,
            diameter,
            cache: HashMap::new(),
            evaluated: 0,
            top: Vec::new(),
        }
    }

    /// Scores a candidate, or `None` once the budget is spent (cached
    /// revisits stay free).
    fn score(&mut self, c: &Candidate) -> Option<f64> {
        let key = c.key();
        if let Some(&(score, _)) = self.cache.get(&key) {
            return Some(score);
        }
        if self.evaluated >= self.cfg.budget {
            return None;
        }
        self.evaluated += 1;
        let placement = c
            .placement(&self.cfg.sim.mesh)
            .expect("search candidates are legal by construction");
        let sim = SimConfig {
            granularity: c.granularity,
            ..self.cfg.sim.clone()
        };
        let est = estimate_placement(self.app, &placement, &sim, RunKind::Optimized, c.approx);
        let score = self
            .cfg
            .objective
            .score(&est, self.diameter, placement.mc_nodes().len());
        let terms = EstTerms {
            offchip: est.offchip_fraction(),
            hops: est.avg_offchip_hops,
            queue: est.queue_pressure,
        };
        self.cache.insert(key.clone(), (score, terms));
        // Keep the verification shortlist sorted and bounded; ties break
        // on the candidate key so the list is seed-deterministic.
        let entry = (score, key, c.clone());
        let pos = self
            .top
            .binary_search_by(|e| {
                e.0.partial_cmp(&entry.0)
                    .expect("objective scores are finite")
                    .then_with(|| e.1.cmp(&entry.1))
            })
            .unwrap_err();
        self.top.insert(pos, entry);
        self.top.truncate(self.cfg.top_k.max(1));
        Some(score)
    }

    fn terms_of(&self, c: &Candidate) -> EstTerms {
        self.cache
            .get(&c.key())
            .expect("best candidate was scored through the cache")
            .1
    }
}

/// Cycle-sim completion time of one candidate: the suite is constructed
/// from the candidate's own [`Placement`], granularity, and
/// approximation threshold, so verification replays the exact plan the
/// estimator scored.
fn verify_candidate(app: &App, cfg: &SearchConfig, c: &Candidate) -> u64 {
    let placement = c
        .placement(&cfg.sim.mesh)
        .expect("search candidates are legal by construction");
    let sim = SimConfig {
        granularity: c.granularity,
        ..cfg.sim.clone()
    };
    let suite =
        Suite::for_placement(vec![app.clone()], &placement, sim).with_approx_threshold(c.approx);
    suite
        .run_one(RunSpec {
            app: 0,
            kind: RunKind::Optimized,
        })
        .exec_cycles
}

/// Cycle-sim completion time of a paper placement under the base config
/// (nearest-cluster M1 mapping, default layout parameters).
fn baseline_cycles(app: &App, cfg: &SearchConfig, placement: &McPlacement) -> u64 {
    let p = Placement::nearest(cfg.sim.mesh, placement);
    let suite = Suite::for_placement(vec![app.clone()], &p, cfg.sim.clone());
    suite
        .run_one(RunSpec {
            app: 0,
            kind: RunKind::Optimized,
        })
        .exec_cycles
}

/// Searches one application. `emit` receives each progress event as a
/// finished single-line JSON string (best-so-far improvements only, so
/// `best_score` is monotone non-increasing along the stream); the
/// returned report carries the verified outcome.
///
/// Deterministic: the chain's PRNG forks from `cfg.seed` by app *name*,
/// the chain is strictly sequential, and nothing time- or
/// thread-dependent enters the state.
pub fn search_app(app: &App, cfg: &SearchConfig, emit: &mut dyn FnMut(String)) -> SearchReport {
    assert!(cfg.budget >= 1, "search needs a budget of at least 1");
    let mesh = cfg.sim.mesh;
    let mut rng = SmallRng::seed_from_u64(cfg.seed).fork(fnv1a(app.name()));
    let mut ev = Evaluator::new(app, cfg);

    // Phase 1: curated branch-and-bound points, best-known first order.
    let start = Candidate::from_named(&mesh, &cfg.sim.placement, cfg.sim.granularity);
    let mut best = start.clone();
    let mut best_score = ev.score(&start).expect("budget >= 1 admits one evaluation");
    emit(event_json(
        app.name(),
        "curated",
        ev.evaluated,
        best_score,
        &best,
    ));
    let phase1_cap = (cfg.budget / 2).max(1);
    for c in curated(&mesh, &[Granularity::CacheLine, Granularity::Page]) {
        if ev.evaluated >= phase1_cap {
            break;
        }
        let Some(score) = ev.score(&c) else { break };
        if score < best_score {
            best = c;
            best_score = score;
            emit(event_json(
                app.name(),
                "curated",
                ev.evaluated,
                best_score,
                &best,
            ));
        }
    }

    // Phase 2: annealing from the incumbent with the remaining budget.
    let remaining = cfg.budget.saturating_sub(ev.evaluated);
    if remaining > 0 {
        let schedule = Schedule::for_budget(remaining);
        // The improvement callback needs the live evaluation count, but
        // the evaluator is exclusively borrowed by the scoring closure —
        // a Cell shares the counter without aliasing the borrow.
        let evaluated_at = std::cell::Cell::new(ev.evaluated);
        let (b, s) = anneal(
            &mesh,
            &mut rng,
            &schedule,
            best.clone(),
            best_score,
            &mut |c| {
                let r = ev.score(c);
                evaluated_at.set(ev.evaluated);
                r
            },
            &mut |c, s| emit(event_json(app.name(), "anneal", evaluated_at.get(), s, c)),
        );
        best = b;
        best_score = s;
    }

    // Verification: cycle-sim the shortlist and the paper baselines.
    let shortlist = ev.top.clone();
    let verified: Vec<Verified> = shortlist
        .iter()
        .map(|(score, _, c)| Verified {
            candidate: c.clone(),
            score: *score,
            cycles: verify_candidate(app, cfg, c),
        })
        .collect();
    let corners_cycles = baseline_cycles(app, cfg, &McPlacement::Corners);
    let edge_cycles = baseline_cycles(app, cfg, &McPlacement::EdgeMidpoints);
    let diamond_cycles = baseline_cycles(app, cfg, &McPlacement::Diagonal);
    let winner = verified
        .iter()
        .min_by(|a, b| {
            a.cycles
                .cmp(&b.cycles)
                .then_with(|| a.candidate.key().cmp(&b.candidate.key()))
        })
        .expect("top_k >= 1 and budget >= 1 guarantee a verified finalist");

    let est = ev.terms_of(&best);
    SearchReport {
        app: app.name().to_string(),
        scale: cfg.scale,
        seed: cfg.seed,
        budget: cfg.budget,
        objective: cfg.objective,
        evaluated: ev.evaluated,
        best,
        best_score,
        est,
        verified: verified.clone(),
        corners_cycles,
        edge_cycles,
        diamond_cycles,
        found: winner.candidate.clone(),
        found_cycles: winner.cycles,
    }
}

/// Searches many applications, fanning per-app chains across `jobs`
/// threads. Results are in app order and bit-identical at any job
/// count: each app's chain is sequential and seeded by name, and
/// [`parallel_map`] collects by index.
pub fn search_suite(
    apps: &[App],
    cfg: &SearchConfig,
    jobs: usize,
) -> Vec<(SearchReport, Vec<String>)> {
    parallel_map(apps, jobs, |app| {
        let mut events = Vec::new();
        let report = search_app(app, cfg, &mut |e| events.push(e));
        (report, events)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_workloads::{apsi, gafort};

    fn test_cfg(seed: u64, budget: u32) -> SearchConfig {
        let sim = SimConfig {
            granularity: Granularity::CacheLine,
            ..SimConfig::scaled()
        };
        SearchConfig {
            seed,
            budget,
            top_k: 2,
            ..SearchConfig::new(sim, Scale::Test)
        }
    }

    #[test]
    fn search_is_seed_deterministic() {
        let app = gafort(Scale::Test);
        let cfg = test_cfg(7, 40);
        let mut ev_a = Vec::new();
        let a = search_app(&app, &cfg, &mut |e| ev_a.push(e));
        let mut ev_b = Vec::new();
        let b = search_app(&app, &cfg, &mut |e| ev_b.push(e));
        assert_eq!(a, b);
        assert_eq!(ev_a, ev_b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn suite_order_and_jobs_do_not_change_results() {
        let apps = [gafort(Scale::Test), apsi(Scale::Test)];
        let cfg = test_cfg(3, 24);
        let seq = search_suite(&apps, &cfg, 1);
        let par = search_suite(&apps, &cfg, 4);
        assert_eq!(seq, par);
        // Reversing the suite reverses the outputs but not any result.
        let rev_apps = [apps[1].clone(), apps[0].clone()];
        let rev = search_suite(&rev_apps, &cfg, 2);
        assert_eq!(seq[0], rev[1]);
        assert_eq!(seq[1], rev[0]);
    }

    #[test]
    fn report_json_is_single_line_object() {
        let app = gafort(Scale::Test);
        let cfg = test_cfg(1, 16);
        let mut events = Vec::new();
        let r = search_app(&app, &cfg, &mut |e| events.push(e));
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains('\n'));
        for e in &events {
            assert!(e.starts_with('{') && !e.contains('\n'));
        }
        assert!(r.verified.len() <= 2 && !r.verified.is_empty());
    }
}
