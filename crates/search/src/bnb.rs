//! Exact branch-and-bound for the *balanced assignment* subproblem:
//! given fixed MC attach nodes and a fixed cluster tiling, assign each
//! cluster `k` MCs so that every MC serves the same number of clusters,
//! minimizing total core-to-assigned-MC hop distance (the compiler's
//! distance-to-MC metric, §4).
//!
//! Without the balance constraint the optimum is trivially separable
//! (each cluster independently takes its nearest `k`-subset); *with* it
//! the per-cluster choices compete for MC capacity, which is what makes
//! the search interesting — and a classic branch-and-bound with an
//! admissible remaining-cost bound solves the small instances here
//! exactly. The bound is the sum of each remaining cluster's
//! *unconstrained* minimum subset cost, which never exceeds any feasible
//! completion, so pruning cannot cut off the optimum (the property suite
//! cross-checks this against unpruned brute force).

use hoploc_noc::{McId, Mesh, NodeId};

/// All `k`-element subsets of `0..n`, in lexicographic order.
fn k_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    rec(0, n, k, &mut Vec::new(), &mut out);
    out
}

/// Per-cluster total hop distance from every node of the cluster to one
/// MC attach node, for all (cluster, MC) pairs.
fn cluster_mc_costs(mesh: &Mesh, mc_nodes: &[NodeId], cw: u16, ch: u16) -> Vec<Vec<u64>> {
    let gx = mesh.width() / cw;
    let gy = mesh.height() / ch;
    let mut costs = vec![vec![0u64; mc_nodes.len()]; (gx * gy) as usize];
    for cy in 0..gy {
        for cx in 0..gx {
            let c = (cy * gx + cx) as usize;
            for y in cy * ch..(cy + 1) * ch {
                for x in cx * cw..(cx + 1) * cw {
                    let n = mesh.node_at(x, y);
                    for (m, &mc) in mc_nodes.iter().enumerate() {
                        costs[c][m] += mesh.hop_distance(n, mc) as u64;
                    }
                }
            }
        }
    }
    costs
}

struct Solver {
    subsets: Vec<Vec<usize>>,
    subset_costs: Vec<Vec<u64>>, // [cluster][subset index]
    suffix_min: Vec<u64>,        // suffix_min[c] = Σ_{c' >= c} min subset cost
    cap: usize,
    prune: bool,
    best_total: u64,
    best: Vec<usize>, // subset index per cluster
}

impl Solver {
    fn solve(&mut self, c: usize, usage: &mut [usize], total: u64, picked: &mut Vec<usize>) {
        if c == self.subset_costs.len() {
            if total < self.best_total {
                self.best_total = total;
                self.best = picked.clone();
            }
            return;
        }
        if self.prune && total + self.suffix_min[c] >= self.best_total {
            return;
        }
        'subset: for si in 0..self.subsets.len() {
            let subset = self.subsets[si].clone();
            for &m in &subset {
                if usage[m] == self.cap {
                    continue 'subset;
                }
            }
            for &m in &subset {
                usage[m] += 1;
            }
            picked.push(si);
            self.solve(c + 1, usage, total + self.subset_costs[c][si], picked);
            picked.pop();
            for &m in &subset {
                usage[m] -= 1;
            }
        }
    }
}

fn run(
    mesh: &Mesh,
    mc_nodes: &[NodeId],
    cw: u16,
    ch: u16,
    k: usize,
    prune: bool,
) -> Option<(Vec<Vec<McId>>, u64)> {
    let n_mcs = mc_nodes.len();
    if k == 0 || k > n_mcs || cw == 0 || ch == 0 {
        return None;
    }
    if !mesh.width().is_multiple_of(cw) || !mesh.height().is_multiple_of(ch) {
        return None;
    }
    let costs = cluster_mc_costs(mesh, mc_nodes, cw, ch);
    let n_clusters = costs.len();
    // Balance: every MC serves exactly slots / n_mcs clusters.
    if !(n_clusters * k).is_multiple_of(n_mcs) {
        return None;
    }
    let cap = n_clusters * k / n_mcs;
    let subsets = k_subsets(n_mcs, k);
    let subset_costs: Vec<Vec<u64>> = costs
        .iter()
        .map(|row| {
            subsets
                .iter()
                .map(|s| s.iter().map(|&m| row[m]).sum())
                .collect()
        })
        .collect();
    let mut suffix_min = vec![0u64; n_clusters + 1];
    for c in (0..n_clusters).rev() {
        let min = *subset_costs[c].iter().min().expect("subsets are non-empty");
        suffix_min[c] = suffix_min[c + 1] + min;
    }
    let mut solver = Solver {
        subsets,
        subset_costs,
        suffix_min,
        cap,
        prune,
        best_total: u64::MAX,
        best: Vec::new(),
    };
    solver.solve(0, &mut vec![0usize; n_mcs], 0, &mut Vec::new());
    if solver.best.len() != n_clusters {
        return None;
    }
    let assignments = solver
        .best
        .iter()
        .map(|&si| solver.subsets[si].iter().map(|&m| McId(m as u16)).collect())
        .collect();
    Some((assignments, solver.best_total))
}

/// Minimum-distance balanced assignment: each cluster gets `k` MCs, each
/// MC serves `n_clusters·k / n_mcs` clusters, total core-to-MC hop
/// distance is exactly minimized. Returns `None` if the tiling does not
/// divide the mesh or the slot count does not balance across MCs.
pub fn balanced_assignment(
    mesh: &Mesh,
    mc_nodes: &[NodeId],
    cw: u16,
    ch: u16,
    k: usize,
) -> Option<(Vec<Vec<McId>>, u64)> {
    run(mesh, mc_nodes, cw, ch, k, true)
}

/// Unpruned brute force over the same space — the oracle the property
/// suite compares [`balanced_assignment`] against.
pub fn balanced_assignment_brute(
    mesh: &Mesh,
    mc_nodes: &[NodeId],
    cw: u16,
    ch: u16,
    k: usize,
) -> Option<(Vec<Vec<McId>>, u64)> {
    run(mesh, mc_nodes, cw, ch, k, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_noc::McPlacement;

    fn corners(mesh: &Mesh) -> Vec<NodeId> {
        McPlacement::Corners.attach_nodes(mesh)
    }

    #[test]
    fn quadrants_with_corner_mcs_recover_m1() {
        let mesh = Mesh::new(8, 8);
        let (assign, _) = balanced_assignment(&mesh, &corners(&mesh), 4, 4, 1).unwrap();
        // Each quadrant takes its own corner, exactly the paper's M1.
        assert_eq!(
            assign,
            vec![vec![McId(0)], vec![McId(1)], vec![McId(2)], vec![McId(3)]]
        );
    }

    #[test]
    fn halves_with_corner_mcs_recover_m2() {
        let mesh = Mesh::new(8, 8);
        let (assign, _) = balanced_assignment(&mesh, &corners(&mesh), 4, 8, 2).unwrap();
        assert_eq!(assign, vec![vec![McId(0), McId(2)], vec![McId(1), McId(3)]]);
    }

    #[test]
    fn unbalanced_slot_counts_rejected() {
        let mesh = Mesh::new(8, 8);
        // 2 clusters × k=3 = 6 slots over 4 MCs: not balanceable.
        assert!(balanced_assignment(&mesh, &corners(&mesh), 4, 8, 3).is_none());
        // Uneven tiling.
        assert!(balanced_assignment(&mesh, &corners(&mesh), 3, 8, 1).is_none());
    }

    #[test]
    fn pruned_matches_brute_force() {
        let mesh = Mesh::new(8, 8);
        for nodes in [
            corners(&mesh),
            McPlacement::Diagonal.attach_nodes(&mesh),
            vec![NodeId(18), NodeId(21), NodeId(42), NodeId(45)],
        ] {
            for (cw, ch, k) in [(4, 4, 1), (2, 8, 1), (2, 4, 1), (4, 8, 2), (8, 8, 4)] {
                let a = balanced_assignment(&mesh, &nodes, cw, ch, k).unwrap();
                let b = balanced_assignment_brute(&mesh, &nodes, cw, ch, k).unwrap();
                assert_eq!(a.1, b.1, "bound must be admissible for {cw}x{ch} k={k}");
            }
        }
    }
}
