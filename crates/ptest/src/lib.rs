//! # hoploc-ptest
//!
//! A dependency-free, deterministic pseudo-random number generator and a
//! tiny randomized-property test harness. The workspace builds in fully
//! offline environments, so this crate stands in for `rand` (the
//! [`SmallRng`] generator) and for `proptest` (the [`run_cases`] driver):
//! every test case is derived from a fixed seed, so failures reproduce
//! exactly and reruns are bit-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A small, fast, deterministic PRNG (xorshift64* seeded through
/// splitmix64). Not cryptographic; statistically fine for test-case and
/// jitter generation.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid;
    /// the seed is diffused through splitmix64 before use.
    pub fn seed_from_u64(seed: u64) -> Self {
        // One splitmix64 round guarantees a non-zero, well-mixed state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: z | 1 }
    }

    /// Derives an independent generator keyed by `key` — the tool for
    /// giving each parallel run its own stream without sharing state.
    pub fn fork(&self, key: u64) -> Self {
        Self::seed_from_u64(self.state ^ key.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "u64_below requires a non-empty range");
        // Rejection sampling keeps the distribution exactly uniform.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `u64` in a half-open range.
    pub fn u64_in(&mut self, r: Range<u64>) -> u64 {
        assert!(r.start < r.end, "empty range");
        r.start + self.u64_below(r.end - r.start)
    }

    /// Uniform `i64` in a half-open range.
    pub fn i64_in(&mut self, r: Range<i64>) -> i64 {
        assert!(r.start < r.end, "empty range");
        let span = r.end.wrapping_sub(r.start) as u64;
        r.start.wrapping_add(self.u64_below(span) as i64)
    }

    /// Uniform `usize` in a half-open range.
    pub fn usize_in(&mut self, r: Range<usize>) -> usize {
        self.u64_in(r.start as u64..r.end as u64) as usize
    }

    /// Uniform `u32` in a half-open range.
    pub fn u32_in(&mut self, r: Range<u32>) -> u32 {
        self.u64_in(r.start as u64..r.end as u64) as u32
    }

    /// Uniform `u16` in a half-open range.
    pub fn u16_in(&mut self, r: Range<u16>) -> u16 {
        self.u64_in(r.start as u64..r.end as u64) as u16
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of uniform `i64`s with length drawn from `len` and values
    /// drawn from `val`.
    pub fn vec_i64(&mut self, len: Range<usize>, val: Range<i64>) -> Vec<i64> {
        let n = self.usize_in(len);
        (0..n).map(|_| self.i64_in(val.clone())).collect()
    }

    /// A vector of uniform `u64`s with length drawn from `len` and values
    /// drawn from `val`.
    pub fn vec_u64(&mut self, len: Range<usize>, val: Range<u64>) -> Vec<u64> {
        let n = self.usize_in(len);
        (0..n).map(|_| self.u64_in(val.clone())).collect()
    }
}

/// Runs `cases` deterministic randomized test cases. Each case gets a
/// generator seeded from the test `name` and the case index, so adding or
/// removing sibling tests never shifts another test's inputs. On panic,
/// the failing case index and seed are printed before the panic resumes.
pub fn run_cases(name: &str, cases: usize, mut body: impl FnMut(&mut SmallRng)) {
    for case in 0..cases {
        let seed = hash_name(name) ^ (case as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let mut rng = SmallRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("property `{name}` failed at case {case} (seed {seed:#018x})");
            std::panic::resume_unwind(e);
        }
    }
}

/// FNV-1a over the test name: a stable, platform-independent seed source.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.i64_in(-9..10);
            assert!((-9..10).contains(&v));
            let u = rng.u64_below(3);
            assert!(u < 3);
            let w = rng.usize_in(1..2);
            assert_eq!(w, 1);
        }
    }

    #[test]
    fn values_cover_the_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.usize_in(0..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn forked_streams_differ() {
        let base = SmallRng::seed_from_u64(3);
        let mut a = base.fork(1);
        let mut b = base.fork(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_cases_passes_distinct_rngs() {
        let mut firsts = Vec::new();
        run_cases("collect", 8, |rng| firsts.push(rng.next_u64()));
        assert_eq!(firsts.len(), 8);
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 8, "case streams must differ");
    }
}
