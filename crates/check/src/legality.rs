//! The HL01xx layout-legality verifier.
//!
//! A customized layout ([`ArrayLayout`]) is legal when its address function
//! is injective over the declared index box and lands inside the padded
//! span. The construction in `hoploc-layout` is legal by design; this
//! module *proves* it per array, per configuration, so a bug anywhere in
//! the strip-mine/permute/pad pipeline (or a hand-assembled plan via
//! `ArrayLayout::from_parts`) surfaces as a diagnostic instead of silently
//! corrupting simulated traffic:
//!
//! * [`Code::NonUnimodularTransform`]: the data transformation `U` must be
//!   a bijection on index vectors (|det U| = 1, §5.2).
//! * [`Code::SlotAliasing`]: structural plan defects — an owner group out
//!   of range, a group owning threads but holding no interleave-unit
//!   slots, a slot index at or past the super-group size, or one slot
//!   claimed twice (within a group or across groups). Each makes two
//!   distinct units share a physical unit, or makes the address function
//!   partial.
//! * [`Code::SpanOverflow`] / [`Code::PlacementCollision`]: the empirical
//!   backstop — enumerate (or, past [`CheckConfig::sample_cap`], subsample)
//!   the index box and check every placed offset for range and uniqueness.
//!   A collision diagnostic carries a concrete witness pair.
//! * [`Code::BadInterleaveUnit`] / [`Code::ArraySkipped`]: per-array pass
//!   reports are folded in — a config whose interleave unit cannot hold a
//!   whole number of elements is an error, any other skip reason is a
//!   note (the original layout remains valid; §5.4).

use crate::diag::{Code, Diagnostic};
use crate::CheckConfig;
use hoploc_affine::{ArrayDecl, Program};
use hoploc_layout::{ArrayLayout, LayoutError, ProgramLayout};
use std::collections::HashMap;

/// Verifies every array layout of a pass result, folding in the pass's own
/// per-array skip reports. `label` names the configuration (for example
/// `"private/cacheline"`) and lands in each diagnostic's config field.
pub fn check_layout(
    program: &Program,
    layout: &ProgramLayout,
    label: &str,
    cfg: &CheckConfig,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for report in layout.reports() {
        let Some(reason) = &report.reason else {
            continue;
        };
        let d = match reason {
            LayoutError::BadInterleaveUnit { .. } => Diagnostic::new(
                Code::BadInterleaveUnit,
                program.name(),
                reason.render(program),
            )
            .with_help("choose line/page bytes divisible by every element size"),
            _ => Diagnostic::new(Code::ArraySkipped, program.name(), reason.render(program))
                .with_help("the original row-major layout remains in use"),
        };
        out.push(d.with_config(label).on_array(&report.name));
    }
    for (decl, al) in program.arrays().iter().zip(layout.layouts()) {
        let mut ds = verify_array_layout(decl, al, program.name(), cfg);
        for d in &mut ds {
            *d = std::mem::replace(d, Diagnostic::new(Code::ArraySkipped, "", ""))
                .with_config(label);
        }
        out.append(&mut ds);
    }
    out
}

/// Proves one array's layout injective and in-bounds (see the module docs
/// for the individual checks). The original layout is trivially legal and
/// produces nothing.
pub fn verify_array_layout(
    decl: &ArrayDecl,
    layout: &ArrayLayout,
    app: &str,
    cfg: &CheckConfig,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(view) = layout.plan_view() else {
        return out;
    };
    let name = decl.name();

    if !layout.u().is_unimodular() {
        out.push(
            Diagnostic::new(
                Code::NonUnimodularTransform,
                app,
                format!(
                    "data transformation U of `{name}` has |det| != 1 and is \
                     not a bijection on index vectors"
                ),
            )
            .on_array(name)
            .with_help("only unimodular transformations preserve every element (§5.2)"),
        );
    }

    // Structural plan checks. Out-of-range groups and slotless owning
    // groups make `place` partial (they would panic), so those abort the
    // enumeration below.
    let mut partial = false;
    let n_groups = view.group_slots.len();
    for (t, &g) in view.thread_group.iter().enumerate() {
        if (g as usize) >= n_groups {
            out.push(
                Diagnostic::new(
                    Code::SlotAliasing,
                    app,
                    format!(
                        "thread {t} of `{name}` is owned by group {g}, but the \
                         plan only defines {n_groups} slot groups"
                    ),
                )
                .on_array(name),
            );
            partial = true;
        } else if view.group_slots[g as usize].is_empty() {
            out.push(
                Diagnostic::new(
                    Code::SlotAliasing,
                    app,
                    format!(
                        "group {g} of `{name}` owns thread {t} but holds no \
                         interleave-unit slots, so its data has nowhere to go"
                    ),
                )
                .on_array(name),
            );
            partial = true;
        }
    }
    let owning: Vec<bool> = (0..n_groups)
        .map(|g| view.thread_group.iter().any(|&tg| tg as usize == g))
        .collect();
    let mut slot_owner: HashMap<u32, usize> = HashMap::new();
    for (g, _) in owning.iter().enumerate().filter(|&(_, &own)| own) {
        for &s in &view.group_slots[g] {
            if s >= view.n_slots_total {
                out.push(
                    Diagnostic::new(
                        Code::SlotAliasing,
                        app,
                        format!(
                            "group {g} of `{name}` claims slot {s}, at or past \
                             the super-group size {}",
                            view.n_slots_total
                        ),
                    )
                    .on_array(name),
                );
            }
            if let Some(&prev) = slot_owner.get(&s) {
                let whose = if prev == g {
                    format!("twice within group {g}")
                } else {
                    format!("by groups {prev} and {g}")
                };
                out.push(
                    Diagnostic::new(
                        Code::SlotAliasing,
                        app,
                        format!(
                            "slot {s} of `{name}` is claimed {whose}: their \
                             units share one physical interleave unit"
                        ),
                    )
                    .on_array(name),
                );
            } else {
                slot_owner.insert(s, g);
            }
        }
    }
    if partial {
        return out;
    }

    enumerate_placements(decl, layout, app, cfg, &mut out);
    out
}

/// Walks the index box (subsampled past the cap), placing every vector and
/// checking range and uniqueness. Emits at most one [`Code::SpanOverflow`]
/// and one [`Code::PlacementCollision`] (with a witness pair) per array.
fn enumerate_placements(
    decl: &ArrayDecl,
    layout: &ArrayLayout,
    app: &str,
    cfg: &CheckConfig,
    out: &mut Vec<Diagnostic>,
) {
    let name = decl.name();
    let rank = decl.rank();
    let coords: Vec<Vec<i64>> = if decl.num_elements() as u64 <= cfg.sample_cap {
        decl.dims().iter().map(|&d| (0..d).collect()).collect()
    } else {
        let per_dim = ((cfg.sample_cap as f64).powf(1.0 / rank as f64) as usize).max(2);
        decl.dims()
            .iter()
            .map(|&d| sample_coords(d, per_dim))
            .collect()
    };
    let span = layout.span_elements();
    let mut seen: HashMap<i64, Vec<i64>> = HashMap::new();
    let mut overflow = false;
    let mut collision = false;
    let mut idx = vec![0usize; rank];
    'walk: loop {
        let dvec: Vec<i64> = idx.iter().zip(&coords).map(|(&i, c)| c[i]).collect();
        let off = layout.place(&dvec);
        if !overflow && (off < 0 || off >= span) {
            overflow = true;
            out.push(
                Diagnostic::new(
                    Code::SpanOverflow,
                    app,
                    format!(
                        "element {dvec:?} of `{name}` places at offset {off}, \
                         outside the padded span of {span} elements"
                    ),
                )
                .on_array(name),
            );
        }
        if !collision {
            if let Some(prev) = seen.insert(off, dvec.clone()) {
                collision = true;
                out.push(
                    Diagnostic::new(
                        Code::PlacementCollision,
                        app,
                        format!(
                            "elements {prev:?} and {dvec:?} of `{name}` both \
                             place at offset {off}: the layout is not injective"
                        ),
                    )
                    .on_array(name),
                );
            }
        }
        if overflow && collision {
            break;
        }
        // Odometer increment, innermost dimension fastest.
        let mut k = rank;
        loop {
            if k == 0 {
                break 'walk;
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < coords[k].len() {
                break;
            }
            idx[k] = 0;
        }
    }
}

/// Up to `cap` evenly spaced coordinates of a dimension, always including
/// both boundaries (where clamping and padding defects concentrate).
fn sample_coords(d: i64, cap: usize) -> Vec<i64> {
    if d as u128 <= cap as u128 {
        return (0..d).collect();
    }
    let mut v: Vec<i64> = (0..cap)
        .map(|i| (i as i64 * (d - 1)) / (cap as i64 - 1))
        .collect();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use hoploc_affine::{AffineAccess, ArrayRef, IMat, IVec, Loop, LoopNest, Statement};
    use hoploc_layout::{optimize_program, PassConfig};
    use hoploc_noc::{L2ToMcMapping, McPlacement, Mesh};

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    fn mapping() -> L2ToMcMapping {
        L2ToMcMapping::nearest_cluster(Mesh::new(8, 8), &McPlacement::Corners)
    }

    fn stencil_program() -> Program {
        let mut p = Program::new("stencil");
        let z = p.add_array(ArrayDecl::new("Z", vec![512, 512], 8));
        let a = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        p.add_nest(LoopNest::new(
            vec![Loop::constant(1, 511), Loop::constant(1, 511)],
            0,
            vec![Statement::new(
                vec![
                    ArrayRef::read(z, AffineAccess::new(a.clone(), IVec::new(vec![-1, 0]))),
                    ArrayRef::write(z, AffineAccess::new(a, IVec::zeros(2))),
                ],
                4,
            )],
            10,
        ));
        p
    }

    #[test]
    fn real_pass_output_verifies_clean() {
        let p = stencil_program();
        let out = optimize_program(&p, &mapping(), PassConfig::default());
        let d = check_layout(&p, &out, "private/cacheline", &CheckConfig::default());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn skipped_array_becomes_a_note() {
        let mut p = stencil_program();
        p.add_array(ArrayDecl::new("dead", vec![64], 8));
        let out = optimize_program(&p, &mapping(), PassConfig::default());
        let d = check_layout(&p, &out, "private/cacheline", &CheckConfig::default());
        assert_eq!(codes(&d), vec!["HL0110"], "{d:?}");
        assert_eq!(d[0].severity(), Severity::Note);
        assert!(d[0].message.contains("`dead`"));
        assert_eq!(d[0].config.as_deref(), Some("private/cacheline"));
    }

    #[test]
    fn bad_interleave_unit_is_an_error() {
        let p = stencil_program();
        let cfg = PassConfig {
            line_bytes: 100,
            ..PassConfig::default()
        };
        let out = optimize_program(&p, &mapping(), cfg);
        let d = check_layout(&p, &out, "private/cacheline", &CheckConfig::default());
        assert_eq!(codes(&d), vec!["HL0105"], "{d:?}");
        assert_eq!(d[0].severity(), Severity::Error);
    }

    #[test]
    fn shared_slot_plan_aliases_and_collides() {
        // The from_parts fixture from hoploc-layout: two groups both on
        // slot 0 of a 4-slot super-group.
        let decl = ArrayDecl::new("X", vec![64, 32], 8);
        let l = ArrayLayout::from_parts(
            &decl,
            IMat::identity(2),
            256,
            vec![0; 32].into_iter().chain(vec![1; 32]).collect(),
            vec![vec![0], vec![0]],
            4,
            4,
        );
        let d = verify_array_layout(&decl, &l, "fixture", &CheckConfig::default());
        let c = codes(&d);
        assert!(c.contains(&"HL0102"), "{d:?}");
        assert!(c.contains(&"HL0104"), "{d:?}");
        assert!(d.iter().all(|x| x.severity() == Severity::Error));
    }

    #[test]
    fn non_unimodular_transform_is_flagged() {
        let decl = ArrayDecl::new("X", vec![64, 32], 8);
        let l = ArrayLayout::from_parts(
            &decl,
            IMat::from_rows(&[&[2, 0], &[0, 1]]),
            256,
            vec![0; 64],
            vec![vec![0], vec![1], vec![2], vec![3]],
            4,
            4,
        );
        let d = verify_array_layout(&decl, &l, "fixture", &CheckConfig::default());
        assert!(codes(&d).contains(&"HL0101"), "{d:?}");
    }

    #[test]
    fn out_of_range_slot_overflows_the_span() {
        let decl = ArrayDecl::new("X", vec![64, 32], 8);
        let l = ArrayLayout::from_parts(
            &decl,
            IMat::identity(2),
            256,
            vec![0; 64],
            vec![vec![7]],
            4,
            4,
        );
        let d = verify_array_layout(&decl, &l, "fixture", &CheckConfig::default());
        let c = codes(&d);
        assert!(c.contains(&"HL0102"), "{d:?}");
        assert!(c.contains(&"HL0103"), "{d:?}");
    }

    #[test]
    fn slotless_owning_group_aborts_before_place_panics() {
        let decl = ArrayDecl::new("X", vec![64, 32], 8);
        let l = ArrayLayout::from_parts(
            &decl,
            IMat::identity(2),
            256,
            vec![0; 64],
            vec![vec![]],
            4,
            4,
        );
        let d = verify_array_layout(&decl, &l, "fixture", &CheckConfig::default());
        assert_eq!(codes(&d), vec!["HL0102"; 64], "{d:?}");
    }

    #[test]
    fn large_arrays_are_subsampled_not_skipped() {
        let small = CheckConfig {
            sample_cap: 1 << 10,
            ..CheckConfig::default()
        };
        // A duplicated slot within the single group folds every pair of
        // units 32 elements apart onto one offset — collisions dense
        // enough that the subsampled walk must still witness one.
        let decl = ArrayDecl::new("X", vec![4096, 64], 8);
        let l = ArrayLayout::from_parts(
            &decl,
            IMat::identity(2),
            256,
            vec![0; 64],
            vec![vec![0, 0]],
            4,
            4,
        );
        let d = verify_array_layout(&decl, &l, "fixture", &small);
        let c = codes(&d);
        assert!(c.contains(&"HL0102"), "{d:?}");
        assert!(c.contains(&"HL0104"), "{d:?}");
    }
}
