//! The HL03xx bounds and overflow lints: per-reference range analysis of
//! affine subscripts against declared array extents, index-table sanity,
//! and structural checks (rank/depth mismatches, dead declarations).
//!
//! The lints mirror the runtime semantics of the trace generator: affine
//! subscripts are clamped into the array by `ArrayDecl::linearize` /
//! `ArrayLayout::place`, and indexed table positions wrap via
//! `rem_euclid`. A program that trips a lint still *runs*, but its access
//! geometry silently differs from what the source expresses — exactly the
//! class of modelling bug the checker exists to surface.

use crate::diag::{Code, Diagnostic};
use crate::CheckConfig;
use hoploc_affine::{AccessFn, AffineAccess, ArrayDecl, LoopNest, Program};

/// Runs every bounds/overflow lint over a program.
pub fn lint_program(program: &Program, _cfg: &CheckConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let app = program.name();
    let mut array_used = vec![false; program.arrays().len()];
    let mut table_used = vec![false; program.tables().len()];

    // Declared footprints that cannot be linearized in i64 poison every
    // offset computed through them; flag the declaration once.
    for decl in program.arrays() {
        let total: i128 = decl.dims().iter().map(|&d| d as i128).product();
        if total.saturating_mul(decl.elem_size() as i128) > i64::MAX as i128 {
            out.push(
                Diagnostic::new(
                    Code::StrideOverflowRisk,
                    app,
                    format!(
                        "array `{}` spans {total} bytes: row-major linearization \
                         overflows i64",
                        decl.name()
                    ),
                )
                .on_array(decl.name()),
            );
        }
    }

    for (ni, nest) in program.nests().iter().enumerate() {
        lint_nest(
            program,
            ni,
            nest,
            &mut array_used,
            &mut table_used,
            &mut out,
        );
    }

    for (i, used) in array_used.iter().enumerate() {
        if !used {
            let name = program.arrays()[i].name();
            out.push(
                Diagnostic::new(
                    Code::DeadArray,
                    app,
                    format!("array `{name}` is declared but never referenced"),
                )
                .on_array(name)
                .with_help("remove the declaration or add the missing references"),
            );
        }
    }
    for (i, used) in table_used.iter().enumerate() {
        if !used {
            out.push(Diagnostic::new(
                Code::UnusedTable,
                app,
                format!("index table #{i} is declared but never referenced"),
            ));
        }
    }
    out
}

fn lint_nest(
    program: &Program,
    ni: usize,
    nest: &LoopNest,
    array_used: &mut [bool],
    table_used: &mut [bool],
    out: &mut Vec<Diagnostic>,
) {
    let app = program.name();

    // A bound referencing its own or a deeper iterator cannot be evaluated
    // at loop entry; flag it and lint the rest with the (garbage-free)
    // enclosing prefix treated as authoritative.
    for (k, l) in nest.loops().iter().enumerate() {
        for (which, expr) in [("lower", &l.lower), ("upper", &l.upper)] {
            if let Some(j) = (k..expr.coeffs().len()).find(|&j| expr.coeffs()[j] != 0) {
                out.push(
                    Diagnostic::new(
                        Code::DepthMismatch,
                        app,
                        format!(
                            "{which} bound of loop i{k} references iterator i{j}, \
                             which is not an enclosing loop"
                        ),
                    )
                    .in_nest(ni),
                );
            }
        }
    }

    let ranges = nest.iteration_ranges();
    let empty = ranges.iter().any(|&(lo, hi)| lo > hi);
    if empty {
        out.push(
            Diagnostic::new(
                Code::EmptyIterationDomain,
                app,
                "the nest's iteration domain is provably empty: its body never runs",
            )
            .in_nest(ni),
        );
    }

    for (si, stmt) in nest.body().iter().enumerate() {
        for (ri, r) in stmt.refs.iter().enumerate() {
            let Some(decl) = program.try_array(r.array) else {
                out.push(
                    Diagnostic::new(
                        Code::RankMismatch,
                        app,
                        format!(
                            "reference names array #{} but the program declares \
                             only {} arrays",
                            r.array.0,
                            program.arrays().len()
                        ),
                    )
                    .at(ni, si, ri),
                );
                continue;
            };
            array_used[r.array.0] = true;
            match &r.access {
                AccessFn::Affine(a) => {
                    lint_affine_ref(app, ni, si, ri, nest, decl, a, &ranges, empty, out)
                }
                AccessFn::Indexed { table, pos } => {
                    if let Some(t) = program.try_table(*table) {
                        if !t.is_empty() {
                            table_used[table.0] = true;
                        }
                    }
                    lint_indexed_ref(
                        program, ni, si, ri, nest, decl, *table, pos, &ranges, empty, out,
                    )
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn lint_affine_ref(
    app: &str,
    ni: usize,
    si: usize,
    ri: usize,
    nest: &LoopNest,
    decl: &ArrayDecl,
    a: &AffineAccess,
    ranges: &[(i64, i64)],
    empty_domain: bool,
    out: &mut Vec<Diagnostic>,
) {
    let at = |d: Diagnostic| d.at(ni, si, ri).on_array(decl.name());
    if a.rank() != decl.rank() {
        out.push(at(Diagnostic::new(
            Code::RankMismatch,
            app,
            format!(
                "{} subscripts given for rank-{} array `{}`",
                a.rank(),
                decl.rank(),
                decl.name()
            ),
        )));
        return;
    }
    if a.depth() != nest.depth() {
        out.push(at(Diagnostic::new(
            Code::DepthMismatch,
            app,
            format!(
                "access function expects a {}-deep nest but the nest is {}-deep",
                a.depth(),
                nest.depth()
            ),
        )));
        return;
    }
    if empty_domain {
        return; // No iteration evaluates the subscripts.
    }
    for rk in 0..a.rank() {
        // Interval of subscript rk over the iteration box, exactly in i128.
        let mut lo = a.offset()[rk] as i128;
        let mut hi = lo;
        for (c, &(rl, rh)) in ranges.iter().enumerate().take(a.depth()) {
            let k = a.matrix()[(rk, c)] as i128;
            if k == 0 {
                continue;
            }
            let x = k * rl as i128;
            let y = k * rh as i128;
            lo += x.min(y);
            hi += x.max(y);
        }
        if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
            out.push(at(Diagnostic::new(
                Code::StrideOverflowRisk,
                app,
                format!(
                    "subscript {rk} reaches magnitude {} and overflows i64 \
                     when evaluated at runtime",
                    lo.abs().max(hi.abs())
                ),
            )));
            continue;
        }
        let dim = decl.dims()[rk] as i128;
        if hi < 0 || lo >= dim {
            out.push(
                at(Diagnostic::new(
                    Code::DefiniteOutOfBounds,
                    app,
                    format!(
                        "subscript {rk} ranges over [{lo}, {hi}], entirely outside \
                         the declared extent {dim}"
                    ),
                ))
                .with_help("the reference never touches the array it names"),
            );
        } else if lo < 0 || hi >= dim {
            out.push(
                at(Diagnostic::new(
                    Code::PossibleOutOfBounds,
                    app,
                    format!(
                        "subscript {rk} ranges over [{lo}, {hi}] but the declared \
                         extent is {dim}; the runtime clamps, distorting the \
                         access geometry"
                    ),
                ))
                .with_help("widen the array or tighten the loop bounds / offset"),
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn lint_indexed_ref(
    program: &Program,
    ni: usize,
    si: usize,
    ri: usize,
    nest: &LoopNest,
    decl: &ArrayDecl,
    table: hoploc_affine::TableId,
    pos: &hoploc_affine::AffineExpr,
    ranges: &[(i64, i64)],
    empty_domain: bool,
    out: &mut Vec<Diagnostic>,
) {
    let app = program.name();
    let at = |d: Diagnostic| d.at(ni, si, ri).on_array(decl.name());
    if decl.rank() != 1 {
        out.push(at(Diagnostic::new(
            Code::RankMismatch,
            app,
            format!(
                "indexed reference targets rank-{} array `{}`; indexed \
                 references are one-dimensional in this IR",
                decl.rank(),
                decl.name()
            ),
        )));
        return;
    }
    if pos.coeffs().len() > nest.depth() && pos.coeffs()[nest.depth()..].iter().any(|&c| c != 0) {
        out.push(at(Diagnostic::new(
            Code::DepthMismatch,
            app,
            format!(
                "table position references an iterator deeper than the \
                 {}-deep nest",
                nest.depth()
            ),
        )));
        return;
    }
    let Some(tab) = program.try_table(table) else {
        out.push(at(Diagnostic::new(
            Code::NoProfiledTable,
            app,
            format!(
                "reference names table #{} but the program declares only {} tables",
                table.0,
                program.tables().len()
            ),
        )));
        return;
    };
    if tab.is_empty() {
        out.push(
            at(Diagnostic::new(
                Code::NoProfiledTable,
                app,
                format!(
                    "profile table #{} is empty: the reference generates no \
                     accesses and the layout pass cannot approximate it",
                    table.0
                ),
            ))
            .with_help("profile the table or drop the reference"),
        );
        return;
    }
    let extent = decl.dims()[0];
    let oob = tab.iter().filter(|&&e| e < 0 || e >= extent).count();
    if oob > 0 {
        let first = tab.iter().find(|&&e| e < 0 || e >= extent).copied();
        out.push(at(Diagnostic::new(
            Code::TableEntryOutOfBounds,
            app,
            format!(
                "{oob} of {} table entries fall outside `{}`'s extent {extent} \
                 (first: {})",
                tab.len(),
                decl.name(),
                first.unwrap_or(0)
            ),
        )));
    }
    if !empty_domain {
        let (pmin, pmax) = pos.range(ranges);
        let len = tab.len() as i64;
        if pmin < 0 || pmax >= len {
            out.push(
                at(Diagnostic::new(
                    Code::TablePositionWraps,
                    app,
                    format!(
                        "table position ranges over [{pmin}, {pmax}] but the \
                         table has {len} entries; positions wrap modulo the \
                         table length at runtime"
                    ),
                ))
                .with_help("size the profile table to the position range"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use hoploc_affine::{
        AffineAccess, AffineExpr, ArrayDecl, ArrayRef, IMat, IVec, Loop, LoopNest, Statement,
    };

    fn cfg() -> CheckConfig {
        CheckConfig::default()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_program_produces_nothing() {
        let mut p = Program::new("clean");
        let x = p.add_array(ArrayDecl::new("X", vec![32, 32], 8));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 32), Loop::constant(0, 32)],
            0,
            vec![Statement::new(
                vec![ArrayRef::write(x, AffineAccess::identity(2))],
                1,
            )],
            1,
        ));
        assert!(lint_program(&p, &cfg()).is_empty());
    }

    #[test]
    fn stencil_offset_past_extent_warns() {
        let mut p = Program::new("oob");
        let x = p.add_array(ArrayDecl::new("X", vec![32], 8));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 32)],
            0,
            vec![Statement::new(
                vec![ArrayRef::read(
                    x,
                    AffineAccess::new(IMat::identity(1), IVec::new(vec![1])),
                )],
                1,
            )],
            1,
        ));
        let d = lint_program(&p, &cfg());
        assert_eq!(codes(&d), vec!["HL0301"]);
        assert_eq!(d[0].severity(), Severity::Warning);
        assert_eq!(
            (d[0].nest, d[0].statement, d[0].reference),
            (Some(0), Some(0), Some(0))
        );
    }

    #[test]
    fn fully_oob_subscript_errors() {
        let mut p = Program::new("oob2");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 4)],
            0,
            vec![Statement::new(
                vec![ArrayRef::read(
                    x,
                    AffineAccess::new(IMat::identity(1), IVec::new(vec![100])),
                )],
                1,
            )],
            1,
        ));
        assert_eq!(codes(&lint_program(&p, &cfg())), vec!["HL0302"]);
    }

    #[test]
    fn rank_and_depth_mismatches_error() {
        let mut p = Program::new("shape");
        let x = p.add_array(ArrayDecl::new("X", vec![8, 8], 8));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 8)],
            0,
            vec![Statement::new(
                vec![
                    // One subscript for a rank-2 array.
                    ArrayRef::read(x, AffineAccess::identity(1)),
                    // Right rank, but built for a 2-deep nest.
                    ArrayRef::read(x, AffineAccess::identity(2)),
                ],
                1,
            )],
            1,
        ));
        let c = codes(&lint_program(&p, &cfg()));
        assert!(c.contains(&"HL0307"), "{c:?}");
        assert!(c.contains(&"HL0308"), "{c:?}");
    }

    #[test]
    fn dead_array_and_unused_table_flagged() {
        let mut p = Program::new("dead");
        let x = p.add_array(ArrayDecl::new("X", vec![8], 8));
        p.add_array(ArrayDecl::new("unused", vec![8], 8));
        p.add_table(vec![1, 2, 3]);
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 8)],
            0,
            vec![Statement::new(
                vec![ArrayRef::read(x, AffineAccess::identity(1))],
                1,
            )],
            1,
        ));
        let c = codes(&lint_program(&p, &cfg()));
        assert!(c.contains(&"HL0306"), "{c:?}");
        assert!(c.contains(&"HL0311"), "{c:?}");
    }

    #[test]
    fn table_lints_fire() {
        let mut p = Program::new("tables");
        let x = p.add_array(ArrayDecl::new("X", vec![16], 8));
        let short = p.add_table(vec![0, 5, 99]); // 99 out of extent 16
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 32)], // position range [0,31] > 3 entries
            0,
            vec![Statement::new(
                vec![ArrayRef::indexed_read(x, short, AffineExpr::var(1, 0))],
                1,
            )],
            1,
        ));
        let c = codes(&lint_program(&p, &cfg()));
        assert!(c.contains(&"HL0304"), "{c:?}");
        assert!(c.contains(&"HL0305"), "{c:?}");
    }

    #[test]
    fn empty_domain_noted_and_bounds_not_linted() {
        let mut p = Program::new("empty");
        let x = p.add_array(ArrayDecl::new("X", vec![4], 8));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(7, 7)],
            0,
            vec![Statement::new(
                vec![ArrayRef::read(
                    x,
                    AffineAccess::new(IMat::identity(1), IVec::new(vec![100])),
                )],
                1,
            )],
            1,
        ));
        // The (dead) out-of-bounds subscript must not drown the real finding.
        assert_eq!(codes(&lint_program(&p, &cfg())), vec!["HL0310"]);
    }

    #[test]
    fn huge_footprint_flags_overflow_risk() {
        let mut p = Program::new("huge");
        let x = p.add_array(ArrayDecl::new("X", vec![1 << 31, 1 << 31, 4], 8));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 4)],
            0,
            vec![Statement::new(
                vec![ArrayRef::read(
                    x,
                    AffineAccess::new(IMat::from_rows(&[&[0], &[0], &[1]]), IVec::zeros(3)),
                )],
                1,
            )],
            1,
        ));
        let c = codes(&lint_program(&p, &cfg()));
        assert!(c.contains(&"HL0309"), "{c:?}");
    }
}
