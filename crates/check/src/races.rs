//! The HL02xx static race detector.
//!
//! Per nest, every write-involving reference pair is dependence-tested
//! (`nest_dependence_pairs`) and the verdicts are turned into diagnostics
//! against the nest's declared `parallel_dim` under the block (chunked)
//! iteration distribution the trace generator uses:
//!
//! * **Uniform** dependences with a carried distance at the parallel
//!   dimension are classified by distance: within the halo limit they are
//!   the chunk-boundary stencil pattern the modelled applications
//!   synchronize outside the model ([`Code::HaloCarriedDependence`], a
//!   note); beyond it, conflicts span whole core chunks
//!   ([`Code::CarriedDependenceSpansChunks`], an error).
//! * **Kernel overlap**: a write whose access matrix has a kernel
//!   direction along the parallel dimension (broadcast writes are the
//!   simplest case) is written identically by distinct parallel
//!   iterations ([`Code::ParallelWriteOverlap`]).
//! * **Unknown** verdicts (indexed references, coupled subscripts) fall
//!   back to a decision procedure: enumerate the iteration domain, map
//!   every touched element to the cores touching it, and classify the
//!   observed cross-core conflicts. An exhaustive enumeration that finds
//!   none is a proof of independence; domains beyond the enumeration cap
//!   are subsampled on sequential dimensions (a spot check), and domains
//!   whose parallel extent alone exceeds the cap are reported as unproven
//!   ([`Code::UnprovenIndependence`]).
//!
//! This subsumes `parallelization_is_legal`: where that predicate answers
//! yes/no for a whole nest, the detector names the offending pair, its
//! array, and the distance — and distinguishes benign halo sharing from
//! chunk-spanning races.

use crate::diag::{Code, Diagnostic};
use crate::CheckConfig;
use hoploc_affine::{
    nest_dependence_pairs, nullspace, AccessFn, ArrayRef, Dependence, DependencePair, LoopNest,
    Program, RefKind,
};
use std::collections::HashMap;

/// Runs the race detector over every nest of a program.
pub fn check_races(program: &Program, cfg: &CheckConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if cfg.cores < 2 {
        return out;
    }
    for (ni, nest) in program.nests().iter().enumerate() {
        check_nest(program, ni, nest, cfg, &mut out);
    }
    out
}

fn check_nest(
    program: &Program,
    ni: usize,
    nest: &LoopNest,
    cfg: &CheckConfig,
    out: &mut Vec<Diagnostic>,
) {
    let ranges = nest.iteration_ranges();
    if ranges.iter().any(|&(lo, hi)| lo > hi) {
        return; // Empty domain: nothing executes (HL0310 from the lints).
    }
    let u = nest.parallel_dim();
    // Maximum iteration-vector delta representable inside the domain box.
    let deltas: Vec<i64> = ranges.iter().map(|&(lo, hi)| hi - lo).collect();
    if deltas[u] < 1 {
        return; // A single parallel iteration cannot race with itself.
    }
    let app = program.name();

    // Kernel overlap: distinct parallel iterations writing one element.
    for (si, stmt) in nest.body().iter().enumerate() {
        for (ri, r) in stmt.refs.iter().enumerate() {
            if r.kind != RefKind::Write || !ref_ok(program, nest, r) {
                continue;
            }
            let Some(a) = r.access.as_affine() else {
                continue;
            };
            let overlap = nullspace(a.matrix())
                .into_iter()
                .find(|n| n[u] != 0 && (0..nest.depth()).all(|k| n[k].abs() <= deltas[k]));
            if let Some(n) = overlap {
                let name = program.array(r.array).name();
                out.push(
                    Diagnostic::new(
                        Code::ParallelWriteOverlap,
                        app,
                        format!(
                            "distinct iterations of parallel loop i{u} write the \
                             same elements of `{name}` (iteration direction \
                             {:?} maps to one element)",
                            n.as_slice()
                        ),
                    )
                    .at(ni, si, ri)
                    .on_array(name)
                    .with_help(
                        "parallelize a loop the write's subscripts depend on, \
                         or privatize the array",
                    ),
                );
            }
        }
    }

    let pairs = nest_dependence_pairs(nest);
    let mut unknown: Vec<DependencePair> = Vec::new();
    for p in pairs {
        match &p.dep {
            Dependence::Independent => {}
            Dependence::Uniform(d) => {
                if u >= d.len() || d[u] == 0 {
                    continue; // Loop-independent at the parallel dimension.
                }
                if !(0..d.len()).all(|k| d[k].abs() <= deltas[k]) {
                    continue; // The distance does not fit the domain: no pair exists.
                }
                let dist = d[u].abs();
                let name = program.array(p.array).name().to_string();
                let loc = format!(
                    "stmt {} ref {} and stmt {} ref {}",
                    p.a.0, p.a.1, p.b.0, p.b.1
                );
                if dist <= cfg.halo_limit {
                    out.push(
                        Diagnostic::new(
                            Code::HaloCarriedDependence,
                            app,
                            format!(
                                "dependence between {loc} on `{name}` is carried \
                                 by parallel loop i{u} at distance {dist}: only \
                                 chunk-boundary (halo) elements conflict, which \
                                 the modelled application synchronizes outside \
                                 the model"
                            ),
                        )
                        .at(ni, p.a.0, p.a.1)
                        .on_array(&name),
                    );
                } else {
                    out.push(
                        Diagnostic::new(
                            Code::CarriedDependenceSpansChunks,
                            app,
                            format!(
                                "dependence between {loc} on `{name}` is carried \
                                 by parallel loop i{u} at distance {dist}, beyond \
                                 the halo limit {}: conflicts span whole core \
                                 chunks",
                                cfg.halo_limit
                            ),
                        )
                        .at(ni, p.a.0, p.a.1)
                        .on_array(&name)
                        .with_help("parallelize a loop with zero carried distance"),
                    );
                }
            }
            Dependence::Unknown => unknown.push(p),
        }
    }

    if !unknown.is_empty() {
        enumerate_unknown(program, ni, nest, &ranges, &unknown, cfg, out);
    }
}

/// Whether a reference is well-formed enough to analyze (the lints report
/// the malformed ones).
fn ref_ok(program: &Program, nest: &LoopNest, r: &ArrayRef) -> bool {
    let Some(decl) = program.try_array(r.array) else {
        return false;
    };
    match &r.access {
        AccessFn::Affine(a) => a.depth() == nest.depth() && a.rank() == decl.rank(),
        AccessFn::Indexed { table, .. } => {
            decl.rank() == 1 && program.try_table(*table).is_some_and(|t| !t.is_empty())
        }
    }
}

/// The element a reference touches at one iteration, mirroring the trace
/// generator: affine subscripts clamp into the array, indexed positions
/// wrap modulo the table length, and the fetched entry clamps as well.
fn elem_of(program: &Program, r: &ArrayRef, iter: &[i64]) -> i64 {
    let decl = program.array(r.array);
    match &r.access {
        AccessFn::Affine(a) => {
            let mut off: i128 = 0;
            for rk in 0..a.rank() {
                let mut v = a.offset()[rk] as i128;
                for (c, &i) in iter.iter().enumerate() {
                    v += a.matrix()[(rk, c)] as i128 * i as i128;
                }
                let d = decl.dims()[rk] as i128;
                off = off * d + v.clamp(0, d - 1);
            }
            off as i64
        }
        AccessFn::Indexed { table, pos } => {
            let tab = program.table(*table);
            let p = pos.eval(iter).rem_euclid(tab.len() as i64);
            tab[p as usize].clamp(0, decl.dims()[0] - 1)
        }
    }
}

/// Per-element core footprint of one reference: element → (min, max) core
/// index that touches it.
type CoreMap = HashMap<i64, (u32, u32)>;

#[allow(clippy::too_many_arguments)]
fn enumerate_unknown(
    program: &Program,
    ni: usize,
    nest: &LoopNest,
    ranges: &[(i64, i64)],
    unknown: &[DependencePair],
    cfg: &CheckConfig,
    out: &mut Vec<Diagnostic>,
) {
    let app = program.name();
    let u = nest.parallel_dim();
    let usable: Vec<&DependencePair> = unknown
        .iter()
        .filter(|p| {
            ref_ok(program, nest, &nest.body()[p.a.0].refs[p.a.1])
                && ref_ok(program, nest, &nest.body()[p.b.0].refs[p.b.1])
        })
        .collect();
    if usable.is_empty() {
        return;
    }

    // Fit the walk under the enumeration cap by subsampling sequential
    // dimensions (innermost first). The parallel dimension is never
    // subsampled: core attribution must be exact.
    let counts: Vec<u128> = ranges
        .iter()
        .map(|&(lo, hi)| (hi - lo + 1) as u128)
        .collect();
    let mut strides = vec![1i64; nest.depth()];
    let total: u128 = counts.iter().product();
    let cap = cfg.enum_cap as u128;
    let mut exhaustive = true;
    if total > cap {
        exhaustive = false;
        let mut factor = total.div_ceil(cap);
        for k in (0..nest.depth()).rev() {
            if k == u || factor <= 1 {
                continue;
            }
            let take = counts[k].min(factor).max(1);
            strides[k] = take as i64;
            factor = factor.div_ceil(take);
        }
        if factor > 1 {
            // Even sequential subsampling cannot fit the walk: the parallel
            // extent alone exceeds the cap. Independence stays unproven.
            for p in &usable {
                let name = program.array(p.array).name();
                out.push(
                    Diagnostic::new(
                        Code::UnprovenIndependence,
                        app,
                        format!(
                            "dependence between stmt {} ref {} and stmt {} ref {} \
                             on `{name}` is inconclusive and the parallel extent \
                             exceeds the {} -iteration enumeration cap",
                            p.a.0, p.a.1, p.b.0, p.b.1, cfg.enum_cap
                        ),
                    )
                    .at(ni, p.a.0, p.a.1)
                    .on_array(name),
                );
            }
            return;
        }
    }

    // One walk of the (possibly subsampled) domain fills the core map of
    // every participating reference.
    let mut participants: Vec<(usize, usize)> = usable.iter().flat_map(|p| [p.a, p.b]).collect();
    participants.sort_unstable();
    participants.dedup();
    let mut maps: HashMap<(usize, usize), CoreMap> = participants
        .iter()
        .map(|&loc| (loc, CoreMap::new()))
        .collect();
    for core in 0..cfg.cores as usize {
        nest.walk_core_iterations(core, cfg.cores as usize, &strides, |iter| {
            for &(si, ri) in &participants {
                let elem = elem_of(program, &nest.body()[si].refs[ri], iter);
                let e = maps
                    .get_mut(&(si, ri))
                    .expect("participant map inserted above")
                    .entry(elem)
                    .or_insert((core as u32, core as u32));
                e.0 = e.0.min(core as u32);
                e.1 = e.1.max(core as u32);
            }
        });
    }

    for p in &usable {
        let (conflicts, max_sep) = cross_core_conflicts(&maps[&p.a], &maps[&p.b], p.a == p.b);
        if conflicts == 0 {
            continue; // Exhaustive: proven independent. Sampled: spot-check clean.
        }
        let ra = &nest.body()[p.a.0].refs[p.a.1];
        let rb = &nest.body()[p.b.0].refs[p.b.1];
        let name = program.array(p.array).name().to_string();
        let indexed = ra.access.is_indexed() || rb.access.is_indexed();
        let both_write = ra.kind == RefKind::Write && rb.kind == RefKind::Write;
        let loc = format!(
            "stmt {} ref {} and stmt {} ref {}",
            p.a.0, p.a.1, p.b.0, p.b.1
        );
        let evidence = format!(
            "{} of `{name}` {} touched from different cores (max core \
             distance {max_sep}{})",
            plural(conflicts, "element"),
            if conflicts == 1 { "is" } else { "are" },
            if exhaustive { "" } else { ", subsampled walk" },
        );
        let d = if both_write {
            let code = if indexed {
                Code::IndexedWriteRace
            } else {
                Code::CrossCoreCollision
            };
            Diagnostic::new(
                code,
                app,
                format!("{loc} both write `{name}` across cores: {evidence}"),
            )
            .with_help("distinct cores write the same element with no ordering")
        } else if indexed {
            Diagnostic::new(
                Code::IndexedSharing,
                app,
                format!(
                    "indexed sharing between {loc}: {evidence}; the model \
                     assumes the application synchronizes these"
                ),
            )
        } else if max_sep <= 1 {
            Diagnostic::new(
                Code::HaloCarriedDependence,
                app,
                format!(
                    "sharing between {loc} stays on adjacent cores (halo): \
                     {evidence}; the modelled application synchronizes \
                     chunk boundaries outside the model"
                ),
            )
        } else {
            Diagnostic::new(
                Code::CrossCoreCollision,
                app,
                format!("cross-core collision between {loc}: {evidence}"),
            )
            .with_help("the nest is not parallel-safe at its declared parallel_dim")
        };
        out.push(d.at(ni, p.a.0, p.a.1).on_array(&name));
    }
}

/// Counts elements touched from more than one core across the pair, and
/// the largest core separation observed.
fn cross_core_conflicts(a: &CoreMap, b: &CoreMap, self_pair: bool) -> (usize, i64) {
    let mut conflicts = 0usize;
    let mut max_sep = 0i64;
    if self_pair {
        for &(mn, mx) in a.values() {
            if mn != mx {
                conflicts += 1;
                max_sep = max_sep.max(mx as i64 - mn as i64);
            }
        }
        return (conflicts, max_sep);
    }
    for (elem, &(mna, mxa)) in a {
        let Some(&(mnb, mxb)) = b.get(elem) else {
            continue;
        };
        let sep = (mxa as i64 - mnb as i64).max(mxb as i64 - mna as i64);
        if sep > 0 || mna != mnb {
            conflicts += 1;
            max_sep = max_sep.max(sep.abs());
        }
    }
    (conflicts, max_sep)
}

fn plural(n: usize, what: &str) -> String {
    if n == 1 {
        format!("1 {what}")
    } else {
        format!("{n} {what}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use hoploc_affine::{
        AffineAccess, AffineExpr, ArrayDecl, ArrayRef, IMat, IVec, Loop, LoopNest, Statement,
    };

    fn cfg4() -> CheckConfig {
        CheckConfig {
            cores: 4,
            ..CheckConfig::default()
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    fn one_nest(arrays: Vec<ArrayDecl>, tables: Vec<Vec<i64>>, nest: LoopNest) -> Program {
        let mut p = Program::new("fixture");
        for a in arrays {
            p.add_array(a);
        }
        for t in tables {
            p.add_table(t);
        }
        p.add_nest(nest);
        p
    }

    #[test]
    fn broadcast_write_is_a_parallel_overlap() {
        // W[i1] written in an (i0 parallel, i1) nest: every i0 writes the
        // same row — the kernel of [[0, 1]] contains e0.
        let p = one_nest(
            vec![ArrayDecl::new("W", vec![32], 8)],
            vec![],
            LoopNest::new(
                vec![Loop::constant(0, 16), Loop::constant(0, 32)],
                0,
                vec![Statement::new(
                    vec![ArrayRef::write(
                        hoploc_affine::ArrayId(0),
                        AffineAccess::new(IMat::from_rows(&[&[0, 1]]), IVec::zeros(1)),
                    )],
                    1,
                )],
                1,
            ),
        );
        let d = check_races(&p, &cfg4());
        assert!(codes(&d).contains(&"HL0201"), "{d:?}");
        assert_eq!(d[0].severity(), Severity::Error);
    }

    #[test]
    fn halo_distance_is_a_note_and_far_distance_an_error() {
        let mk = |off: i64| {
            one_nest(
                vec![ArrayDecl::new("X", vec![64], 8)],
                vec![],
                LoopNest::new(
                    vec![Loop::constant(0, 64)],
                    0,
                    vec![Statement::new(
                        vec![
                            ArrayRef::write(hoploc_affine::ArrayId(0), AffineAccess::identity(1)),
                            ArrayRef::read(
                                hoploc_affine::ArrayId(0),
                                AffineAccess::new(IMat::identity(1), IVec::new(vec![off])),
                            ),
                        ],
                        1,
                    )],
                    1,
                ),
            )
        };
        let halo = check_races(&mk(-1), &cfg4());
        assert_eq!(codes(&halo), vec!["HL0202"], "{halo:?}");
        assert_eq!(halo[0].severity(), Severity::Note);
        let far = check_races(&mk(-17), &cfg4());
        assert_eq!(codes(&far), vec!["HL0203"], "{far:?}");
        assert_eq!(far[0].severity(), Severity::Error);
    }

    #[test]
    fn distance_beyond_the_domain_is_no_dependence() {
        // X[i0] vs X[i0 - 100] over 0..64: the distance cannot fit.
        let p = one_nest(
            vec![ArrayDecl::new("X", vec![200], 8)],
            vec![],
            LoopNest::new(
                vec![Loop::constant(0, 64)],
                0,
                vec![Statement::new(
                    vec![
                        ArrayRef::write(hoploc_affine::ArrayId(0), AffineAccess::identity(1)),
                        ArrayRef::read(
                            hoploc_affine::ArrayId(0),
                            AffineAccess::new(IMat::identity(1), IVec::new(vec![-100])),
                        ),
                    ],
                    1,
                )],
                1,
            ),
        );
        assert!(check_races(&p, &cfg4()).is_empty());
    }

    #[test]
    fn transposed_pair_is_enumerated_to_a_cross_core_collision() {
        // X[i0][i1] written, X[i1][i0] read: coupled subscripts the affine
        // test cannot classify; enumeration finds far cross-core conflicts.
        let m = IMat::identity(2);
        let t = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let p = one_nest(
            vec![ArrayDecl::new("X", vec![32, 32], 8)],
            vec![],
            LoopNest::new(
                vec![Loop::constant(0, 32), Loop::constant(0, 32)],
                0,
                vec![Statement::new(
                    vec![
                        ArrayRef::write(
                            hoploc_affine::ArrayId(0),
                            AffineAccess::new(m, IVec::zeros(2)),
                        ),
                        ArrayRef::read(
                            hoploc_affine::ArrayId(0),
                            AffineAccess::new(t, IVec::zeros(2)),
                        ),
                    ],
                    1,
                )],
                1,
            ),
        );
        let d = check_races(&p, &cfg4());
        assert_eq!(codes(&d), vec!["HL0204"], "{d:?}");
    }

    #[test]
    fn identity_table_sharing_stays_on_core_and_is_quiet() {
        // X[T[i0]] with T = identity: the indexed read touches exactly the
        // elements its own core writes — enumeration proves independence.
        let p = one_nest(
            vec![ArrayDecl::new("X", vec![64], 8)],
            vec![(0..64).collect()],
            LoopNest::new(
                vec![Loop::constant(0, 64)],
                0,
                vec![Statement::new(
                    vec![
                        ArrayRef::write(hoploc_affine::ArrayId(0), AffineAccess::identity(1)),
                        ArrayRef::indexed_read(
                            hoploc_affine::ArrayId(0),
                            hoploc_affine::TableId(0),
                            AffineExpr::var(1, 0),
                        ),
                    ],
                    1,
                )],
                1,
            ),
        );
        assert!(check_races(&p, &cfg4()).is_empty());
    }

    #[test]
    fn scattered_table_sharing_is_an_indexed_note() {
        // T reverses the array: reads gather from the opposite core.
        let p = one_nest(
            vec![ArrayDecl::new("X", vec![64], 8)],
            vec![(0..64).rev().collect()],
            LoopNest::new(
                vec![Loop::constant(0, 64)],
                0,
                vec![Statement::new(
                    vec![
                        ArrayRef::write(hoploc_affine::ArrayId(0), AffineAccess::identity(1)),
                        ArrayRef::indexed_read(
                            hoploc_affine::ArrayId(0),
                            hoploc_affine::TableId(0),
                            AffineExpr::var(1, 0),
                        ),
                    ],
                    1,
                )],
                1,
            ),
        );
        let d = check_races(&p, &cfg4());
        assert_eq!(codes(&d), vec!["HL0206"], "{d:?}");
        assert_eq!(d[0].severity(), Severity::Note);
    }

    #[test]
    fn indexed_write_write_race_is_an_error() {
        use hoploc_affine::AccessFn;
        let indexed_write = ArrayRef {
            array: hoploc_affine::ArrayId(0),
            access: AccessFn::Indexed {
                table: hoploc_affine::TableId(0),
                pos: AffineExpr::var(1, 0),
            },
            kind: RefKind::Write,
        };
        let p = one_nest(
            vec![ArrayDecl::new("X", vec![64], 8)],
            vec![vec![0; 64]], // every iteration writes element 0
            LoopNest::new(
                vec![Loop::constant(0, 64)],
                0,
                vec![Statement::new(vec![indexed_write], 1)],
                1,
            ),
        );
        let d = check_races(&p, &cfg4());
        assert_eq!(codes(&d), vec!["HL0207"], "{d:?}");
        assert_eq!(d[0].severity(), Severity::Error);
    }

    #[test]
    fn oversized_parallel_extent_reports_unproven() {
        let small = CheckConfig {
            cores: 4,
            enum_cap: 1 << 8,
            ..CheckConfig::default()
        };
        let p = one_nest(
            vec![ArrayDecl::new("X", vec![1024], 8)],
            vec![(0..1024).rev().collect()],
            LoopNest::new(
                vec![Loop::constant(0, 1024)],
                0,
                vec![Statement::new(
                    vec![
                        ArrayRef::write(hoploc_affine::ArrayId(0), AffineAccess::identity(1)),
                        ArrayRef::indexed_read(
                            hoploc_affine::ArrayId(0),
                            hoploc_affine::TableId(0),
                            AffineExpr::var(1, 0),
                        ),
                    ],
                    1,
                )],
                1,
            ),
        );
        let d = check_races(&p, &small);
        assert_eq!(codes(&d), vec!["HL0205"], "{d:?}");
        assert_eq!(d[0].severity(), Severity::Warning);
    }

    #[test]
    fn subsampled_walk_still_finds_scattered_sharing() {
        // Domain 1024 × 1024 exceeds a 2^16 cap; the parallel dim (1024)
        // fits, so sequential subsampling kicks in and the reversed table
        // is still caught.
        let small = CheckConfig {
            cores: 4,
            enum_cap: 1 << 16,
            ..CheckConfig::default()
        };
        let p = one_nest(
            vec![ArrayDecl::new("X", vec![1024], 8)],
            vec![(0..1024).rev().collect()],
            LoopNest::new(
                vec![Loop::constant(0, 1024), Loop::constant(0, 1024)],
                0,
                vec![Statement::new(
                    vec![
                        ArrayRef::write(
                            hoploc_affine::ArrayId(0),
                            AffineAccess::new(IMat::from_rows(&[&[1, 0]]), IVec::zeros(1)),
                        ),
                        ArrayRef::indexed_read(
                            hoploc_affine::ArrayId(0),
                            hoploc_affine::TableId(0),
                            AffineExpr::var(2, 0),
                        ),
                    ],
                    1,
                )],
                1,
            ),
        );
        let d = check_races(&p, &small);
        assert_eq!(codes(&d), vec!["HL0206"], "{d:?}");
        assert!(d[0].message.contains("subsampled"), "{}", d[0].message);
    }

    #[test]
    fn sequential_nests_are_quiet() {
        // Carried dependence on the *sequential* loop, parallel loop clean:
        // the Figure 9 pattern.
        let m = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let p = one_nest(
            vec![ArrayDecl::new("Z", vec![64, 64], 8)],
            vec![],
            LoopNest::new(
                vec![Loop::constant(1, 63), Loop::constant(1, 63)],
                0,
                vec![Statement::new(
                    vec![
                        ArrayRef::write(
                            hoploc_affine::ArrayId(0),
                            AffineAccess::new(m.clone(), IVec::zeros(2)),
                        ),
                        ArrayRef::read(
                            hoploc_affine::ArrayId(0),
                            AffineAccess::new(m, IVec::new(vec![-1, 0])),
                        ),
                    ],
                    1,
                )],
                1,
            ),
        );
        assert!(check_races(&p, &cfg4()).is_empty());
    }
}
