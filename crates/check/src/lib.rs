//! Static verifier and lint pass over the affine IR and layout output.
//!
//! Three analyses, each reporting structured [`Diagnostic`]s with stable
//! `HLxxxx` codes instead of panicking or silently mis-simulating:
//!
//! * **Layout legality** ([`check_layout`] / [`verify_array_layout`],
//!   HL01xx): proves each strip-mine/permute/pad recipe injective and
//!   in-bounds, and folds the pass's per-array skip reports into notes.
//! * **Race detection** ([`check_races`], HL02xx): recomputes dependences
//!   per reference pair and flags writes whose conflicts cross core chunks
//!   under the block distribution, distinguishing benign halo sharing from
//!   genuine races.
//! * **Bounds and consistency lints** ([`lint_program`], HL03xx): range
//!   analysis of every access against the declared dimensions, overflow
//!   risks, stale ids, rank/depth mismatches, dead arrays, and table
//!   defects.
//!
//! [`check_program`] runs the program-level analyses (lints + races);
//! [`check_layout`] additionally needs a pass result. The `hoploc check`
//! subcommand drives all of them over every application × configuration
//! and renders text or JSON via [`render_text`] / [`render_json`].

mod diag;
mod legality;
mod lints;
mod races;

pub use diag::{count, render_json, render_text, should_fail, Code, Counts, Diagnostic, Severity};
pub use legality::{check_layout, verify_array_layout};
pub use lints::lint_program;
pub use races::check_races;

use hoploc_affine::Program;

/// Tunables of the analyses. The defaults model the paper's machine and
/// keep full verification of every bundled application exact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CheckConfig {
    /// Cores the parallel dimension is chunked over (Table 1: 64).
    pub cores: u32,
    /// Largest carried distance treated as chunk-boundary (halo) sharing
    /// rather than a race; stencils in the suite reach at most ±2.
    pub halo_limit: i64,
    /// Elements per array above which layout verification subsamples the
    /// index box instead of enumerating it exhaustively.
    pub sample_cap: u64,
    /// Iterations per nest above which the race decision procedure
    /// subsamples sequential dimensions.
    pub enum_cap: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            cores: 64,
            halo_limit: 2,
            sample_cap: 1 << 17,
            enum_cap: 1 << 22,
        }
    }
}

/// Runs every program-level analysis (bounds/consistency lints, then the
/// race detector) and returns the combined diagnostics.
pub fn check_program(program: &Program, cfg: &CheckConfig) -> Vec<Diagnostic> {
    let mut out = lint_program(program, cfg);
    out.extend(check_races(program, cfg));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoploc_affine::{AffineAccess, ArrayDecl, ArrayRef, Loop, LoopNest, Statement};

    #[test]
    fn defaults_model_the_paper_machine() {
        let cfg = CheckConfig::default();
        assert_eq!(cfg.cores, 64);
        assert!(cfg.halo_limit >= 1);
    }

    #[test]
    fn check_program_combines_lints_and_races() {
        // One nest with both a dead array (lint) and a broadcast write
        // (race): both families must appear in one report.
        let mut p = Program::new("combo");
        let w = p.add_array(ArrayDecl::new("W", vec![32], 8));
        p.add_array(ArrayDecl::new("dead", vec![8], 8));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 16), Loop::constant(0, 32)],
            0,
            vec![Statement::new(
                vec![ArrayRef::write(
                    w,
                    AffineAccess::new(
                        hoploc_affine::IMat::from_rows(&[&[0, 1]]),
                        hoploc_affine::IVec::zeros(1),
                    ),
                )],
                1,
            )],
            1,
        ));
        let d = check_program(&p, &CheckConfig::default());
        let codes: Vec<_> = d.iter().map(|x| x.code.as_str()).collect();
        assert!(codes.contains(&"HL0306"), "{codes:?}");
        assert!(codes.contains(&"HL0201"), "{codes:?}");
    }
}
