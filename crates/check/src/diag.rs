//! The diagnostics model: stable codes, severities, locations, and the
//! text / JSON emitters.
//!
//! Every analysis in this crate reports findings as [`Diagnostic`] values
//! with a stable `HLxxxx` code, so tooling (CI gates, editors, trend
//! dashboards) can match on codes rather than message text. Codes are
//! grouped by analysis: `HL01xx` layout legality, `HL02xx` parallelization
//! races, `HL03xx` bounds and overflow lints, `HL10xx` static performance
//! predictions, and `HL11xx` prefetch advisories (the last two produced
//! by the `hoploc-est` estimator, which depends on this crate — not the
//! other way around; `HL11xx` is opt-in, emitted only when a prefetch
//! mode is requested).

use std::fmt;
use std::fmt::Write as _;

/// How serious a finding is.
///
/// * [`Severity::Error`] — the program or layout is wrong: an aliasing
///   layout, an out-of-bounds access that always fires, a parallel loop
///   whose iterations race beyond neighbouring cores.
/// * [`Severity::Warning`] — suspicious and worth fixing, but the model
///   has defined (if surprising) behaviour: clamped subscripts, wrapped
///   table positions, dead declarations.
/// * [`Severity::Note`] — expected properties of the modelled workloads
///   that a reviewer should know about: halo-carried dependences the apps
///   synchronize outside the model, arrays the pass declined to optimize.
///   Notes never fail a `--deny warnings` gate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Expected/informational finding; never gates.
    Note,
    /// Suspicious construct; gates only under `--deny warnings`.
    Warning,
    /// Definite defect; always gates.
    Error,
}

impl Severity {
    /// Lower-case display name (stable across `Debug` changes).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes. The numeric part never changes meaning once
/// released; retired codes are not reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Code {
    // ── HL01xx: layout legality ────────────────────────────────────────
    /// Layout transformation matrix `U` is not unimodular, so it is not a
    /// bijection of the data space.
    NonUnimodularTransform,
    /// An interleave-unit slot is assigned to more than one owner group
    /// (or lies outside the super-group), so two owners' units collide.
    SlotAliasing,
    /// The plan places elements at offsets beyond the allocated span.
    SpanOverflow,
    /// Empirical witness: two distinct data vectors map to one offset.
    PlacementCollision,
    /// The interleave unit is not a positive multiple of the element size.
    BadInterleaveUnit,
    /// The pass left the array in its original layout (with the reason).
    ArraySkipped,
    // ── HL02xx: parallelization races ──────────────────────────────────
    /// Distinct iterations of the parallel loop write the same element
    /// (the write access matrix has a kernel component along the parallel
    /// dimension — broadcast writes are the simplest case).
    ParallelWriteOverlap,
    /// A carried dependence with small constant distance at the parallel
    /// dimension: only chunk-boundary elements conflict, the halo pattern
    /// the modelled applications synchronize outside the model.
    HaloCarriedDependence,
    /// A carried dependence whose distance at the parallel dimension
    /// exceeds the halo limit: conflicts span whole core chunks.
    CarriedDependenceSpansChunks,
    /// Exhaustive enumeration found iterations on non-adjacent cores
    /// touching the same element through a write-involving pair.
    CrossCoreCollision,
    /// The dependence test returned Unknown and the iteration domain was
    /// too large to enumerate exhaustively; independence is unproven.
    UnprovenIndependence,
    /// An indexed reference shares elements with a write across cores
    /// (through its profiled table) — assumed synchronized by the app.
    IndexedSharing,
    /// Two writes to the same element from different cores, at least one
    /// through an index table.
    IndexedWriteRace,
    // ── HL03xx: bounds and overflow lints ──────────────────────────────
    /// A subscript can leave the declared dimension (runtime clamps it,
    /// distorting the access geometry).
    PossibleOutOfBounds,
    /// A subscript is out of bounds for every iteration.
    DefiniteOutOfBounds,
    /// An indexed reference names a stale or empty profile table.
    NoProfiledTable,
    /// A table entry exceeds the indexed array's extent.
    TableEntryOutOfBounds,
    /// The table position range exceeds the table length (wraps).
    TablePositionWraps,
    /// An array is declared but never referenced.
    DeadArray,
    /// Subscript count differs from the array's declared rank.
    RankMismatch,
    /// A reference or bound uses an iterator deeper than the nest.
    DepthMismatch,
    /// Linearization magnitudes approach `i64` overflow.
    StrideOverflowRisk,
    /// A nest's iteration domain is provably empty.
    EmptyIterationDomain,
    /// An index table is declared but never referenced.
    UnusedTable,
    // ── HL10xx: static performance predictions (produced by hoploc-est) ─
    /// A localized plan is predicted not to reduce off-chip hop distance
    /// for a traffic-significant array (its slots sit no closer to the
    /// requesting threads than uniform interleaving would).
    PredictedPlanIneffective,
    /// A localized plan concentrates a traffic-significant array's slots
    /// on few controllers, so one MC queue is predicted to saturate.
    PredictedMcImbalance,
    /// The application's working set is predicted to stream through the
    /// L2 (footprint ≫ capacity): off-chip traffic scales with accesses
    /// and layout placement, not caching, dominates performance.
    PredictedCapacityStreaming,
    /// The prediction involves index-table references, where the static
    /// model is a coarse approximation.
    EstimateApproximate,
    // ── HL11xx: prefetch advisories (opt-in; emitted only when the
    //    requested prefetch mode is not `off`) ──────────────────────────
    /// A significant share of the application's accesses go through index
    /// tables, where a stride/stream prefetcher learns nothing — the
    /// requested engine is predicted useless for that traffic.
    PrefetchUselessOnIndexed,
    /// The estimator predicts the application is L2-resident, so the
    /// requested prefetcher can only pollute a cache that already holds
    /// the working set — predicted harmful, not merely useless.
    PrefetchPredictedHarmful,
}

impl Code {
    /// The stable `HLxxxx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::NonUnimodularTransform => "HL0101",
            Code::SlotAliasing => "HL0102",
            Code::SpanOverflow => "HL0103",
            Code::PlacementCollision => "HL0104",
            Code::BadInterleaveUnit => "HL0105",
            Code::ArraySkipped => "HL0110",
            Code::ParallelWriteOverlap => "HL0201",
            Code::HaloCarriedDependence => "HL0202",
            Code::CarriedDependenceSpansChunks => "HL0203",
            Code::CrossCoreCollision => "HL0204",
            Code::UnprovenIndependence => "HL0205",
            Code::IndexedSharing => "HL0206",
            Code::IndexedWriteRace => "HL0207",
            Code::PossibleOutOfBounds => "HL0301",
            Code::DefiniteOutOfBounds => "HL0302",
            Code::NoProfiledTable => "HL0303",
            Code::TableEntryOutOfBounds => "HL0304",
            Code::TablePositionWraps => "HL0305",
            Code::DeadArray => "HL0306",
            Code::RankMismatch => "HL0307",
            Code::DepthMismatch => "HL0308",
            Code::StrideOverflowRisk => "HL0309",
            Code::EmptyIterationDomain => "HL0310",
            Code::UnusedTable => "HL0311",
            Code::PredictedPlanIneffective => "HL1001",
            Code::PredictedMcImbalance => "HL1002",
            Code::PredictedCapacityStreaming => "HL1003",
            Code::EstimateApproximate => "HL1004",
            Code::PrefetchUselessOnIndexed => "HL1101",
            Code::PrefetchPredictedHarmful => "HL1102",
        }
    }

    /// The severity every finding with this code carries.
    pub fn severity(self) -> Severity {
        match self {
            Code::NonUnimodularTransform
            | Code::SlotAliasing
            | Code::SpanOverflow
            | Code::PlacementCollision
            | Code::BadInterleaveUnit
            | Code::ParallelWriteOverlap
            | Code::CarriedDependenceSpansChunks
            | Code::CrossCoreCollision
            | Code::IndexedWriteRace
            | Code::DefiniteOutOfBounds
            | Code::NoProfiledTable
            | Code::TableEntryOutOfBounds
            | Code::RankMismatch
            | Code::DepthMismatch => Severity::Error,
            Code::UnprovenIndependence
            | Code::PossibleOutOfBounds
            | Code::TablePositionWraps
            | Code::DeadArray
            | Code::StrideOverflowRisk
            | Code::PredictedPlanIneffective
            | Code::PredictedMcImbalance
            | Code::PrefetchPredictedHarmful => Severity::Warning,
            Code::ArraySkipped
            | Code::HaloCarriedDependence
            | Code::IndexedSharing
            | Code::EmptyIterationDomain
            | Code::UnusedTable
            | Code::PredictedCapacityStreaming
            | Code::EstimateApproximate
            | Code::PrefetchUselessOnIndexed => Severity::Note,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a coded, located, rendered defect or observation.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Stable code; fixes the severity.
    pub code: Code,
    /// The application (program) name.
    pub app: String,
    /// The pass configuration label (e.g. `private/cacheline`) for
    /// layout-scoped findings; `None` for program-scoped ones.
    pub config: Option<String>,
    /// Nest index within the program.
    pub nest: Option<usize>,
    /// Statement index within the nest.
    pub statement: Option<usize>,
    /// Reference index within the statement.
    pub reference: Option<usize>,
    /// The array concerned, by name.
    pub array: Option<String>,
    /// The rendered finding.
    pub message: String,
    /// A suggested fix, when the analysis can offer one.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Creates a finding with only app-level location.
    pub fn new(code: Code, app: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            code,
            app: app.into(),
            config: None,
            nest: None,
            statement: None,
            reference: None,
            array: None,
            message: message.into(),
            help: None,
        }
    }

    /// The severity implied by the code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Attaches the pass-configuration label.
    pub fn with_config(mut self, label: impl Into<String>) -> Self {
        self.config = Some(label.into());
        self
    }

    /// Attaches a `(nest, statement, reference)` location.
    pub fn at(mut self, nest: usize, statement: usize, reference: usize) -> Self {
        self.nest = Some(nest);
        self.statement = Some(statement);
        self.reference = Some(reference);
        self
    }

    /// Attaches only a nest location.
    pub fn in_nest(mut self, nest: usize) -> Self {
        self.nest = Some(nest);
        self
    }

    /// Attaches the concerned array's name.
    pub fn on_array(mut self, name: impl Into<String>) -> Self {
        self.array = Some(name.into());
        self
    }

    /// Attaches a suggested fix.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

/// Severity tallies over a batch of findings.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Counts {
    /// Number of errors.
    pub errors: usize,
    /// Number of warnings.
    pub warnings: usize,
    /// Number of notes.
    pub notes: usize,
}

/// Tallies findings by severity.
pub fn count(diags: &[Diagnostic]) -> Counts {
    let mut c = Counts::default();
    for d in diags {
        match d.severity() {
            Severity::Error => c.errors += 1,
            Severity::Warning => c.warnings += 1,
            Severity::Note => c.notes += 1,
        }
    }
    c
}

/// Whether a batch should fail the run: any error, or any warning when
/// `deny_warnings` escalates them. Notes never gate.
pub fn should_fail(diags: &[Diagnostic], deny_warnings: bool) -> bool {
    let c = count(diags);
    c.errors > 0 || (deny_warnings && c.warnings > 0)
}

/// Renders one finding's location prefix: `app [config] nest N stmt S ref R`.
fn location(d: &Diagnostic) -> String {
    let mut out = d.app.clone();
    if let Some(cfg) = &d.config {
        let _ = write!(out, " [{cfg}]");
    }
    if let Some(n) = d.nest {
        let _ = write!(out, " nest {n}");
    }
    if let Some(s) = d.statement {
        let _ = write!(out, " stmt {s}");
    }
    if let Some(r) = d.reference {
        let _ = write!(out, " ref {r}");
    }
    if let Some(a) = &d.array {
        let _ = write!(out, " array `{a}`");
    }
    out
}

/// Renders findings as compiler-style text, one per line (plus help
/// lines), most severe first within the given order.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(
            out,
            "{}[{}]: {}: {}",
            d.severity().name(),
            d.code,
            location(d),
            d.message
        );
        if let Some(h) = &d.help {
            let _ = writeln!(out, "    help: {h}");
        }
    }
    out
}

/// Serializes findings as a JSON document. Hand-rolled like the harness's
/// emitter: the workspace has no serde and builds offline.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let c = count(diags);
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"counts\": {{\"errors\": {}, \"warnings\": {}, \"notes\": {}}},",
        c.errors, c.warnings, c.notes
    );
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let opt_num = |v: Option<usize>| v.map_or("null".to_string(), |n| n.to_string());
        let opt_str = |v: &Option<String>| v.as_deref().map_or("null".to_string(), json_string);
        let _ = write!(
            out,
            "    {{\"code\": \"{}\", \"severity\": \"{}\", \"app\": {}, \
             \"config\": {}, \"nest\": {}, \"statement\": {}, \"reference\": {}, \
             \"array\": {}, \"message\": {}, \"help\": {}}}",
            d.code,
            d.severity().name(),
            json_string(&d.app),
            opt_str(&d.config),
            opt_num(d.nest),
            opt_num(d.statement),
            opt_num(d.reference),
            opt_str(&d.array),
            json_string(&d.message),
            opt_str(&d.help),
        );
        out.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// JSON string literal with escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(Code::SlotAliasing, "swim", "slot 3 assigned twice")
                .with_config("private/cacheline")
                .on_array("U"),
            Diagnostic::new(Code::PossibleOutOfBounds, "swim", "subscript may reach -1")
                .at(1, 0, 2)
                .on_array("V")
                .with_help("widen the array or shift the offset"),
            Diagnostic::new(Code::HaloCarriedDependence, "mgrid", "distance 1 at dim 0").in_nest(2),
        ]
    }

    #[test]
    fn severities_follow_codes() {
        assert_eq!(Code::SlotAliasing.severity(), Severity::Error);
        assert_eq!(Code::PossibleOutOfBounds.severity(), Severity::Warning);
        assert_eq!(Code::HaloCarriedDependence.severity(), Severity::Note);
    }

    #[test]
    fn counts_and_gating() {
        let d = sample();
        let c = count(&d);
        assert_eq!((c.errors, c.warnings, c.notes), (1, 1, 1));
        assert!(should_fail(&d, false));
        let warn_only = &d[1..];
        assert!(!should_fail(warn_only, false));
        assert!(should_fail(warn_only, true));
        let note_only = &d[2..];
        assert!(!should_fail(note_only, true), "notes never gate");
    }

    #[test]
    fn text_rendering_includes_code_and_location() {
        let t = render_text(&sample());
        assert!(t.contains("error[HL0102]: swim [private/cacheline] array `U`"));
        assert!(t.contains("warning[HL0301]: swim nest 1 stmt 0 ref 2 array `V`"));
        assert!(t.contains("    help: widen the array"));
        assert!(t.contains("note[HL0202]: mgrid nest 2"));
    }

    #[test]
    fn json_is_balanced_and_typed() {
        let j = render_json(&sample());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"code\": \"HL0102\""));
        assert!(j.contains("\"severity\": \"error\""));
        assert!(j.contains("\"counts\": {\"errors\": 1, \"warnings\": 1, \"notes\": 1}"));
        assert!(j.contains("\"nest\": null"));
        assert!(j.contains("\"help\": \"widen the array or shift the offset\""));
    }

    #[test]
    fn json_of_empty_batch_is_wellformed() {
        let j = render_json(&[]);
        assert!(j.contains("\"diagnostics\": [\n  ]"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
