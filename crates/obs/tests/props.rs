//! Randomized properties of the log-bucketed histogram, checked against an
//! exact sorted-vector oracle.
//!
//! The contract under test is [`Histogram::quantile`]'s documented
//! guarantee: for the order statistic `x` at rank `ceil(q * count)`, the
//! returned value `r` satisfies `x <= r`, lands in the same bucket as `x`
//! (so the over-report is bounded by the bucket width — 25% relative),
//! and never exceeds the recorded maximum.

use hoploc_obs::hist::{bucket_of, Histogram, LINEAR_LIMIT};
use hoploc_ptest::{run_cases, SmallRng};

/// Samples spread across the full bucket layout: exact linear values,
/// octave boundaries, and wide-range values up to 2^48.
fn sample_value(rng: &mut SmallRng) -> u64 {
    match rng.u64_below(4) {
        0 => rng.u64_below(LINEAR_LIMIT),
        1 => rng.u64_in(LINEAR_LIMIT..256),
        2 => {
            // Octave edges stress the bucket-boundary arithmetic.
            let shift = rng.u64_in(4..48);
            (1u64 << shift) + rng.u64_below(3) - 1
        }
        _ => rng.u64_in(0..1 << 48),
    }
}

/// The exact rank the histogram's `quantile` targets.
fn oracle(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn quantile_is_a_tight_upper_bound_on_the_sorted_oracle() {
    run_cases("quantile_vs_sorted_oracle", 256, |rng| {
        let n = rng.usize_in(1..400);
        let vals: Vec<u64> = (0..n).map(|_| sample_value(rng)).collect();
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals;
        sorted.sort_unstable();

        assert_eq!(h.count(), sorted.len() as u64);
        assert_eq!(h.min(), sorted[0]);
        assert_eq!(h.max(), *sorted.last().unwrap());
        let exact_mean = sorted.iter().map(|&v| v as u128).sum::<u128>() as f64 / n as f64;
        assert!((h.mean() - exact_mean).abs() <= 1e-9 * exact_mean.max(1.0));

        for q in [0.001, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            let x = oracle(&sorted, q);
            let r = h.quantile(q);
            assert!(r >= x, "q={q}: reported {r} below exact {x}");
            assert!(r <= h.max(), "q={q}: reported {r} above max {}", h.max());
            assert_eq!(
                bucket_of(r),
                bucket_of(x),
                "q={q}: reported {r} left the exact value's bucket ({x})"
            );
        }
    });
}

#[test]
fn values_below_the_linear_limit_quantile_exactly() {
    // One bucket per value below LINEAR_LIMIT, so every quantile must
    // equal the oracle exactly, not just bucket-wise.
    run_cases("linear_range_is_exact", 128, |rng| {
        let vals = rng.vec_u64(1..200, 0..LINEAR_LIMIT);
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals;
        sorted.sort_unstable();
        for q in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(h.quantile(q), oracle(&sorted, q));
        }
    });
}

#[test]
fn single_bucket_histograms_answer_with_the_recorded_max() {
    // All mass in one bucket: every quantile is clamped to the recorded
    // maximum, whatever the bucket's upper bound is.
    run_cases("single_bucket_clamps_to_max", 128, |rng| {
        let base = sample_value(rng);
        let b = bucket_of(base);
        let mut h = Histogram::new();
        let mut max = 0;
        for _ in 0..rng.usize_in(1..20) {
            // Another value from the same bucket (octave sub-buckets span
            // a range; linear buckets are a single value).
            let (lo, hi) = hoploc_obs::hist::bucket_bounds(b);
            let v = rng.u64_in(lo..hi.saturating_add(1).max(lo + 1));
            assert_eq!(bucket_of(v), b);
            h.record(v);
            max = max.max(v);
        }
        for q in [0.01, 0.5, 1.0] {
            assert_eq!(h.quantile(q), max);
        }
    });
}

#[test]
fn saturating_counts_never_wrap_or_panic() {
    run_cases("saturating_counts", 64, |rng| {
        let mut h = Histogram::new();
        let small = sample_value(rng);
        let big = sample_value(rng).max(small);
        h.record_n(small, u64::MAX - rng.u64_below(3));
        h.record_n(big, rng.u64_in(1..1000));
        assert_eq!(h.count(), u64::MAX, "count must saturate, not wrap");
        // The saturated low bucket holds every rank, so all quantiles
        // resolve inside it.
        assert_eq!(bucket_of(h.quantile(0.5)), bucket_of(small));
        assert!(h.quantile(1.0) <= h.max());
        assert_eq!(h.max(), big);
    });
}

#[test]
fn merge_equals_recording_the_concatenation() {
    run_cases("merge_is_concat", 128, |rng| {
        let xs = rng.vec_u64(0..100, 0..1 << 32);
        let ys = rng.vec_u64(0..100, 0..1 << 32);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &v in &xs {
            a.record(v);
            both.record(v);
        }
        for &v in &ys {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both, "merge must equal recording the union");
    });
}
