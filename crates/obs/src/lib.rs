//! `hoploc-obs` — deterministic observability for the hoploc simulator stack.
//!
//! Everything here is timestamped in **sim cycles**, never wall clock, so a
//! recording is a pure function of the simulated machine and workload: two
//! runs (on any host, at any `--jobs` level) produce byte-identical traces
//! and snapshots.
//!
//! The crate has three layers:
//!
//! * **Recording** — a [`Sink`] handed by reference into the instrumented
//!   components (`sim`, `noc`, `mem`, `cache`). A disabled sink costs one
//!   branch per call site and allocates nothing; an enabled sink records
//!   each off-chip request's lifecycle as spans (L1 miss → directory →
//!   per-hop NoC traversal with link-wait cycles → MC queue → bank
//!   row-hit/miss service → reply) plus a [`Registry`] of counters, gauges,
//!   log-bucketed latency [`Histogram`]s, and windowed per-epoch series.
//! * **Report** — [`ObsReport`], the frozen result: plain data (safe to send
//!   across harness worker threads) with figure-level derived views that
//!   replicate the aggregate `RunStats` formulas operation-for-operation.
//! * **Export** — Chrome trace-event JSON (Perfetto-loadable, one lane per
//!   core/link/MC/bank), a per-link heatmap TSV, and a stable JSON metrics
//!   snapshot, plus a dependency-free JSON parser and schema validator used
//!   by tests and the `hoploc trace-validate` CI check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod hist;
pub mod json;
pub mod registry;
pub mod report;
pub mod sink;

pub use event::{CacheLevel, CacheTag, EvName, NetClass, Phase, ReqTag, SpanEvent, Track};
pub use hist::Histogram;
pub use json::{parse as parse_json, validate_chrome_trace, ChromeSummary, Value as JsonValue};
pub use registry::{Registry, WindowMode};
pub use report::ObsReport;
pub use sink::{ObsConfig, PfEvent, Sink, Topology, HOP_HIST_LEN};
