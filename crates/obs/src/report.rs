//! Frozen recording of one run: metric access, figure-level derived views,
//! and the metrics-snapshot / link-heatmap exporters.
//!
//! All exports are deterministic: metrics serialize in registration order,
//! events in a stable per-track order, and every number comes from sim-cycle
//! arithmetic — so two runs of the same workload produce byte-identical
//! output regardless of host threading.

use crate::event::SpanEvent;
use crate::hist::Histogram;
use crate::registry::{Registry, WindowMode};
use crate::sink::{ObsConfig, Topology};
use std::fmt::Write as _;

/// Immutable result of a traced run. Plain data: freely `Send` across the
/// harness's worker threads.
#[derive(Debug)]
pub struct ObsReport {
    topo: Topology,
    config: ObsConfig,
    exec_cycles: u64,
    reg: Registry,
    events: Vec<SpanEvent>,
    dropped_spans: u64,
}

/// Direction letters matching the NoC's link encoding (`node*4 + dir`).
pub const DIR_LETTERS: [char; 4] = ['E', 'W', 'N', 'S'];

impl ObsReport {
    pub(crate) fn from_parts(
        topo: Topology,
        config: ObsConfig,
        exec_cycles: u64,
        reg: Registry,
        events: Vec<SpanEvent>,
        dropped_spans: u64,
    ) -> Self {
        ObsReport {
            topo,
            config,
            exec_cycles,
            reg,
            events,
            dropped_spans,
        }
    }

    /// Machine shape this run was recorded on.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Recording options used.
    pub fn config(&self) -> ObsConfig {
        self.config
    }

    /// Total executed cycles of the run.
    pub fn exec_cycles(&self) -> u64 {
        self.exec_cycles
    }

    /// The underlying metric registry.
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// All recorded span events, in recording order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Requests whose spans were dropped by the span capacity cap.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    /// A scalar counter's value.
    ///
    /// # Panics
    ///
    /// Panics if the counter was never registered (a typo in the caller).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_family(name)[0]
    }

    /// An indexed counter family's slots.
    ///
    /// # Panics
    ///
    /// Panics if the family was never registered.
    pub fn counter_family(&self, name: &str) -> &[u64] {
        self.reg
            .counter_family(name)
            .unwrap_or_else(|| panic!("unknown obs counter {name:?}"))
    }

    // ---- figure-level derived views ---------------------------------------

    /// Off-chip requests observed.
    pub fn offchip(&self) -> u64 {
        self.counter("sim.offchip")
    }

    /// Hop histogram for a traffic class (`"onchip"` / `"offchip"`),
    /// identical to the NoC's `ClassStats::hop_histogram`.
    pub fn hop_histogram(&self, class: &str) -> &[u64] {
        match class {
            "onchip" => self.counter_family("net.onchip.hop_hist"),
            "offchip" => self.counter_family("net.offchip.hop_hist"),
            other => panic!("unknown traffic class {other:?}"),
        }
    }

    /// Fraction of requests each node sent to controller `mc`, replicating
    /// `RunStats::mc_request_shares` operation-for-operation (Figure 13).
    pub fn mc_request_shares(&self, mc: usize) -> Vec<f64> {
        let nodes = self.topo.nodes();
        let mcs = self.topo.mcs;
        let m = self.counter_family("sim.node_mc_requests");
        let total: u64 = (0..nodes).map(|n| m[n * mcs + mc]).sum();
        if total == 0 {
            return vec![0.0; nodes];
        }
        (0..nodes)
            .map(|n| m[n * mcs + mc] as f64 / total as f64)
            .collect()
    }

    /// Mean bank-queue occupancy across controllers, replicating
    /// `RunStats::bank_queue_occupancy` operation-for-operation (Figure 18).
    pub fn bank_queue_occupancy(&self) -> f64 {
        let q = self.counter_family("mc.queue_cycles");
        if q.is_empty() || self.exec_cycles == 0 {
            return 0.0;
        }
        let per_mc = |cycles: u64| {
            if self.exec_cycles == 0 {
                0.0
            } else {
                cycles as f64 / self.exec_cycles as f64
            }
        };
        q.iter().map(|&c| per_mc(c)).sum::<f64>() / q.len() as f64
    }

    /// Latency quantile of a named histogram (e.g. `"req.offchip_cycles"`).
    pub fn quantile(&self, hist: &str, q: f64) -> u64 {
        self.hist(hist).quantile(q)
    }

    fn hist(&self, name: &str) -> &Histogram {
        self.reg
            .histogram(name)
            .unwrap_or_else(|| panic!("unknown obs histogram {name:?}"))
    }

    // ---- exporters --------------------------------------------------------

    /// Stable JSON metrics snapshot: meta, counters, gauges, histograms
    /// (with exact-bucket p50/p95/p99), and windowed series, in registration
    /// order. Byte-identical across identical runs.
    pub fn metrics_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n\"meta\": {");
        let _ = write!(
            s,
            "\"mesh_width\": {}, \"mesh_height\": {}, \"nodes\": {}, \"mcs\": {}, \
             \"banks_per_mc\": {}, \"exec_cycles\": {}, \"epoch_cycles\": {}, \
             \"record_spans\": {}, \"span_capacity\": {}, \"events\": {}, \
             \"dropped_spans\": {}",
            self.topo.mesh_width,
            self.topo.mesh_height,
            self.topo.nodes(),
            self.topo.mcs,
            self.topo.banks_per_mc,
            self.exec_cycles,
            self.config.epoch_cycles.max(1),
            self.config.record_spans,
            self.config.span_capacity,
            self.events.len(),
            self.dropped_spans,
        );
        s.push_str("},\n");
        s.push_str(&registry_sections_json(&self.reg));
        s.push_str("\n}\n");
        s
    }

    /// Per-link heatmap dump: one TSV row per directed link with its flit
    /// cycles, wait cycles, and utilization over the run.
    pub fn links_tsv(&self) -> String {
        let flits = self.counter_family("net.link.flit_cycles");
        let waits = self.counter_family("net.link.wait_cycles");
        let e = self.exec_cycles.max(1) as f64;
        let w = self.topo.mesh_width;
        let mut s = String::from("node\tx\ty\tdir\tflit_cycles\twait_cycles\tutilization\n");
        for link in 0..self.topo.links() {
            let node = link / 4;
            let dir = DIR_LETTERS[link % 4];
            let _ = writeln!(
                s,
                "{node}\t{}\t{}\t{dir}\t{}\t{}\t{}",
                node % w,
                node / w,
                flits[link],
                waits[link],
                fmt_f64(flits[link] as f64 / e),
            );
        }
        s
    }

    /// Chrome trace-event JSON (see [`crate::chrome`]).
    pub fn chrome_trace_json(&self) -> String {
        crate::chrome::chrome_trace_json(self)
    }
}

/// The `"counters"/"gauges"/"histograms"/"series"` sections of a metrics
/// snapshot, in registration order — shared between [`ObsReport::metrics_json`]
/// (which prepends run metadata) and [`Registry::snapshot_json`] (standalone
/// registries, e.g. the `hoploc-serve` server metrics).
pub(crate) fn registry_sections_json(reg: &Registry) -> String {
    let mut s = String::from("\"counters\": {");
    for (i, f) in reg.counters.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n\"{}\": {}", f.name, u64_array(&f.vals));
    }
    s.push_str("},\n\"gauges\": {");
    for (i, f) in reg.gauges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n\"{}\": {}", f.name, i64_array(&f.vals));
    }
    s.push_str("},\n\"histograms\": {");
    for (i, (name, h)) in reg.hists.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n\"{name}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
            h.count(),
            h.min(),
            h.max(),
            fmt_f64(h.mean()),
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
        );
        for (j, (lo, hi, c)) in h.nonzero_buckets().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{lo}, {hi}, {c}]");
        }
        s.push_str("]}");
    }
    s.push_str("},\n\"series\": {");
    for (i, ser) in reg.series.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let mode = match ser.mode {
            WindowMode::Add => "add",
            WindowMode::Max => "max",
        };
        let _ = write!(
            s,
            "\n\"{}\": {{\"epoch_cycles\": {}, \"mode\": \"{}\", \"values\": {}}}",
            ser.name,
            ser.epoch_cycles,
            mode,
            u64_array(&ser.vals),
        );
    }
    s.push('}');
    s
}

impl Registry {
    /// Stable JSON snapshot of a standalone registry: counters, gauges,
    /// histograms (with exact-bucket p50/p95/p99), and windowed series, in
    /// registration order — the same section format as
    /// [`ObsReport::metrics_json`], without the per-run metadata. Used for
    /// registries that outlive any single simulation, such as the
    /// `hoploc-serve` server metrics.
    pub fn snapshot_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&registry_sections_json(self));
        s.push_str("\n}\n");
        s
    }
}

fn u64_array(vals: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
    s
}

fn i64_array(vals: &[i64]) -> String {
    let mut s = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
    s
}

/// Deterministic shortest-roundtrip decimal for a finite `f64`; JSON has no
/// NaN/inf, so those render as 0 (they cannot occur in practice: every
/// derived ratio here divides by a guarded non-zero denominator).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    // `{}` prints integral floats without a decimal point; that is still a
    // valid JSON number, so leave it.
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::sink::{Sink, HOP_HIST_LEN};

    fn topo() -> Topology {
        Topology {
            mesh_width: 2,
            mesh_height: 2,
            mcs: 1,
            banks_per_mc: 2,
        }
    }

    fn small_report() -> ObsReport {
        let s = Sink::recording(
            topo(),
            ObsConfig {
                epoch_cycles: 64,
                ..ObsConfig::default()
            },
        );
        let tag = s.begin_req(0, 1);
        s.offchip(tag, 0, 1, 0);
        s.bind_token(9, tag);
        s.hop(4, 2, 1, 4, tag);
        s.bank_service(0, 1, 9, 5, 8, 40, true, 0);
        s.retire(tag, 50);
        s.into_report(100).unwrap()
    }

    #[test]
    fn metrics_json_is_valid_and_stable() {
        let rep = small_report();
        let a = rep.metrics_json();
        let b = rep.metrics_json();
        assert_eq!(a, b);
        let v = parse(&a).expect("snapshot must be valid JSON");
        let counters = v.get("counters").expect("counters object");
        assert_eq!(
            counters
                .get("sim.offchip")
                .and_then(|c| c.index(0))
                .and_then(|x| x.as_u64()),
            Some(1)
        );
        let meta = v.get("meta").expect("meta object");
        assert_eq!(meta.get("exec_cycles").and_then(|x| x.as_u64()), Some(100));
    }

    #[test]
    fn links_tsv_has_one_row_per_directed_link() {
        let rep = small_report();
        let tsv = rep.links_tsv();
        let rows: Vec<&str> = tsv.lines().collect();
        assert_eq!(rows.len(), 1 + rep.topology().links());
        assert!(
            rows[1 + 4].starts_with("1\t1\t0\tE\t4\t1\t"),
            "link 4 = node 1 east: {}",
            rows[5]
        );
    }

    #[test]
    fn empty_report_derivations_are_zero() {
        let s = Sink::recording(topo(), ObsConfig::default());
        let rep = s.into_report(0).unwrap();
        assert_eq!(rep.bank_queue_occupancy(), 0.0);
        assert_eq!(rep.mc_request_shares(0), vec![0.0; 4]);
        assert_eq!(rep.offchip(), 0);
    }

    #[test]
    fn standalone_registry_snapshot_is_valid_json() {
        let mut r = Registry::new();
        let c = r.counter("serve.submitted", 1);
        let g = r.gauge("serve.queue_depth", 1);
        let h = r.hist("serve.job_wall_ms");
        r.inc(c, 0, 3);
        r.set_gauge(g, 0, 2);
        r.observe(h, 40);
        let snap = r.snapshot_json();
        let v = parse(&snap).expect("snapshot must be valid JSON");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("serve.submitted"))
                .and_then(|c| c.index(0))
                .and_then(|x| x.as_u64()),
            Some(3)
        );
        assert_eq!(
            v.get("histograms")
                .and_then(|h| h.get("serve.job_wall_ms"))
                .and_then(|h| h.get("count"))
                .and_then(|x| x.as_u64()),
            Some(1)
        );
        // The sections must serialize exactly as in a full report snapshot.
        let rep = small_report();
        assert!(rep
            .metrics_json()
            .contains(&registry_sections_json(rep.registry())));
    }

    #[test]
    fn hop_histogram_matches_class() {
        let rep = small_report();
        assert_eq!(rep.hop_histogram("onchip").len(), HOP_HIST_LEN);
        assert_eq!(rep.hop_histogram("offchip").len(), HOP_HIST_LEN);
    }
}
