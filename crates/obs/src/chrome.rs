//! Chrome trace-event JSON export (the format Perfetto and `chrome://tracing`
//! load).
//!
//! Layout: one *process* per track family — cores, links, memory-controller
//! queues, DRAM banks — and one *thread* per track, so Perfetto renders one
//! named lane per core/link/MC/bank. All spans are `"X"` (complete) events
//! with sim-cycle `ts`/`dur` (displayed as microseconds); `"M"` metadata
//! events name the lanes. Events are emitted sorted by `(pid, tid, ts)`, so
//! timestamps are monotone within every lane.

use crate::event::{SpanEvent, Track};
use crate::report::{ObsReport, DIR_LETTERS};
use std::fmt::Write as _;

/// Process ids, one per track family.
const PID_CORES: u64 = 1;
const PID_LINKS: u64 = 2;
const PID_MCS: u64 = 3;
const PID_BANKS: u64 = 4;

fn pid_tid(track: Track) -> (u64, u64) {
    match track {
        Track::Core(n) => (PID_CORES, n as u64),
        Track::Link(l) => (PID_LINKS, l as u64),
        Track::McQueue(m) => (PID_MCS, m as u64),
        Track::Bank(b) => (PID_BANKS, b as u64),
    }
}

fn track_label(report: &ObsReport, track: Track) -> String {
    match track {
        Track::Core(n) => {
            let w = report.topology().mesh_width;
            format!("core {n} ({},{})", n as usize % w, n as usize / w)
        }
        Track::Link(l) => format!("link {}{}", l / 4, DIR_LETTERS[(l % 4) as usize]),
        Track::McQueue(m) => format!("mc {m} queue"),
        Track::Bank(b) => {
            let banks = report.topology().banks_per_mc as u32;
            format!("mc {} bank {}", b / banks, b % banks)
        }
    }
}

fn category(track: Track) -> &'static str {
    match track {
        Track::Core(_) => "core",
        Track::Link(_) => "link",
        Track::McQueue(_) => "mc",
        Track::Bank(_) => "bank",
    }
}

/// Serialize a report's span events as Chrome trace-event JSON.
pub fn chrome_trace_json(report: &ObsReport) -> String {
    // Stable sort: equal-(pid, tid, ts) events keep recording order, so the
    // export is deterministic and per-lane timestamps are monotone.
    let mut order: Vec<(u64, u64, &SpanEvent)> = report
        .events()
        .iter()
        .map(|e| {
            let (pid, tid) = pid_tid(e.track);
            (pid, tid, e)
        })
        .collect();
    order.sort_by_key(|&(pid, tid, e)| (pid, tid, e.ts));

    let mut s = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
    let mut first = true;
    let mut emit = |s: &mut String, line: &str| {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        s.push_str(line);
    };

    for (pid, name) in [
        (PID_CORES, "cores"),
        (PID_LINKS, "links"),
        (PID_MCS, "memory controllers"),
        (PID_BANKS, "dram banks"),
    ] {
        emit(
            &mut s,
            &format!(
                "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {pid}, \"tid\": 0, \
                 \"args\": {{\"name\": \"{name}\"}}}}"
            ),
        );
    }
    // Name each lane that actually carries events.
    let mut last_lane = None;
    for &(pid, tid, e) in &order {
        if last_lane == Some((pid, tid)) {
            continue;
        }
        last_lane = Some((pid, tid));
        emit(
            &mut s,
            &format!(
                "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {pid}, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                track_label(report, e.track)
            ),
        );
    }

    for &(pid, tid, e) in &order {
        let mut args = String::new();
        if e.req != u64::MAX {
            let _ = write!(args, "\"req\": {}", e.req);
        }
        if matches!(e.track, Track::Link(_)) {
            if !args.is_empty() {
                args.push_str(", ");
            }
            let _ = write!(args, "\"wait\": {}", e.arg);
        }
        emit(
            &mut s,
            &format!(
                "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"{}\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": {pid}, \"tid\": {tid}, \"args\": {{{args}}}}}",
                e.name.as_str(),
                category(e.track),
                e.ts,
                e.dur,
            ),
        );
    }
    s.push_str("\n]}\n");
    s
}

#[cfg(test)]
mod tests {
    use crate::json::validate_chrome_trace;
    use crate::sink::{ObsConfig, Sink, Topology};

    #[test]
    fn export_round_trips_through_the_validator() {
        let topo = Topology {
            mesh_width: 2,
            mesh_height: 2,
            mcs: 1,
            banks_per_mc: 2,
        };
        let s = Sink::recording(topo, ObsConfig::default());
        // Two interleaved requests so per-lane sorting actually has work.
        let a = s.begin_req(0, 0);
        let b = s.begin_req(1, 3);
        s.offchip(a, 2, 0, 0);
        s.offchip(b, 3, 3, 0);
        s.bind_token(1, a);
        s.bind_token(2, b);
        s.hop(0, 10, 0, 2, b);
        s.hop(0, 4, 1, 2, a);
        s.bank_service(0, 0, 1, 12, 20, 50, false, 1);
        s.bank_service(0, 0, 2, 13, 50, 70, true, 0);
        s.retire(b, 90);
        s.retire(a, 80);
        let rep = s.into_report(100).unwrap();
        let json = rep.chrome_trace_json();
        let summary = validate_chrome_trace(&json).expect("export must validate");
        assert_eq!(summary.span_events, rep.events().len());
        assert!(summary.tracks >= 3, "core, link, and bank lanes expected");
    }

    #[test]
    fn empty_report_exports_header_only() {
        let topo = Topology {
            mesh_width: 2,
            mesh_height: 2,
            mcs: 1,
            banks_per_mc: 1,
        };
        let rep = Sink::recording(topo, ObsConfig::default())
            .into_report(1)
            .unwrap();
        let json = rep.chrome_trace_json();
        let summary = validate_chrome_trace(&json).expect("empty export still validates");
        assert_eq!(summary.span_events, 0);
    }
}
