//! The span/event model: request tags carried through the simulator and the
//! per-track span events a recording accumulates.
//!
//! Timestamps are **sim cycles** — never wall clock — so two runs of the same
//! workload produce byte-identical traces regardless of host load or thread
//! count.

/// Lifecycle phase a network message belongs to, carried inside a [`ReqTag`]
/// so per-hop events can be told apart in the trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Requester (or home L2) toward directory/MC: the outbound miss.
    Request,
    /// Directory to a forwarder (cache-to-cache intervention).
    Forward,
    /// Data on its way back to the requester.
    Reply,
}

/// Opaque per-request tag minted by [`Sink::begin_req`](crate::Sink::begin_req)
/// and threaded through NoC sends and MC tokens. The disabled sink mints only
/// [`ReqTag::NONE`], which every record call ignores.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReqTag {
    pub(crate) id: u64,
    pub(crate) phase: Phase,
}

impl Default for ReqTag {
    fn default() -> Self {
        ReqTag::NONE
    }
}

impl ReqTag {
    /// The "no request" tag: recording calls carrying it attach no span.
    pub const NONE: ReqTag = ReqTag {
        id: u64::MAX,
        phase: Phase::Request,
    };

    /// Whether this tag refers to a live request.
    pub fn is_some(self) -> bool {
        self.id != u64::MAX
    }

    /// The same request, relabelled with a message phase.
    pub fn phase(self, phase: Phase) -> ReqTag {
        ReqTag { phase, ..self }
    }

    /// The request id, or `u64::MAX` for [`ReqTag::NONE`].
    pub fn id(self) -> u64 {
        self.id
    }
}

/// Traffic class as seen by the observability layer (mirror of the NoC's
/// class split; `hoploc-obs` has no dependencies, so it defines its own).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetClass {
    /// Cache/coherence traffic.
    OnChip,
    /// Traffic to/from a memory controller.
    OffChip,
}

/// Cache level for per-cache counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheLevel {
    /// Private per-core L1.
    L1,
    /// L2 slice (private or shared-home, per node).
    L2,
}

/// Which cache an access touched: level + owning node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheTag {
    /// Cache level.
    pub level: CacheLevel,
    /// Owning node index.
    pub node: u16,
}

impl CacheTag {
    /// The L1 of `node`.
    pub fn l1(node: u16) -> Self {
        CacheTag {
            level: CacheLevel::L1,
            node,
        }
    }

    /// The L2 slice at `node`.
    pub fn l2(node: u16) -> Self {
        CacheTag {
            level: CacheLevel::L2,
            node,
        }
    }
}

/// The timeline a span event is drawn on. One Chrome-trace thread per track.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Track {
    /// A core/node timeline (whole-request spans).
    Core(u16),
    /// A directed NoC link, indexed `node * 4 + direction` (E, W, N, S).
    Link(u32),
    /// A memory controller's queue timeline.
    McQueue(u16),
    /// A DRAM bank timeline, indexed `mc * banks_per_mc + bank`.
    Bank(u32),
}

/// What a span event represents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvName {
    /// Whole off-chip request: L1 miss to reply arrival (core track).
    Offchip,
    /// Whole cache-to-cache request: L1 miss to forwarded-data arrival.
    CacheToCache,
    /// One link traversal of a request-phase message.
    HopRequest,
    /// One link traversal of a forward-phase message.
    HopForward,
    /// One link traversal of a reply-phase message.
    HopReply,
    /// Time a request sat in an MC bank queue before service began.
    McQueue,
    /// Bank service that hit the open row.
    BankRowHit,
    /// Bank service that missed the open row.
    BankRowMiss,
    /// A link traversal delayed by an injected link-fault window.
    LinkFault,
    /// Bank service stretched by an injected bank-stall window.
    BankStall,
    /// A transient MC error: the request re-enters the bank queue after its
    /// backoff (span duration = backoff cycles).
    McRetry,
    /// A request dropped after exhausting its retry budget.
    Dropped,
}

impl EvName {
    /// Stable event name used in the Chrome-trace export.
    pub fn as_str(self) -> &'static str {
        match self {
            EvName::Offchip => "offchip",
            EvName::CacheToCache => "c2c",
            EvName::HopRequest => "hop.req",
            EvName::HopForward => "hop.fwd",
            EvName::HopReply => "hop.reply",
            EvName::McQueue => "queue",
            EvName::BankRowHit => "row_hit",
            EvName::BankRowMiss => "row_miss",
            EvName::LinkFault => "link_fault",
            EvName::BankStall => "bank_stall",
            EvName::McRetry => "retry",
            EvName::Dropped => "dropped",
        }
    }
}

/// One recorded span: a `[ts, ts + dur]` interval on a track, optionally
/// attributed to a request id.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanEvent {
    /// Timeline the span belongs to.
    pub track: Track,
    /// Event kind.
    pub name: EvName,
    /// Start, in sim cycles.
    pub ts: u64,
    /// Duration, in sim cycles (0 allowed).
    pub dur: u64,
    /// Request id, or `u64::MAX` when unattributed (e.g. writebacks).
    pub req: u64,
    /// Kind-specific argument: link-wait cycles for hop events, 0 otherwise.
    pub arg: u64,
}
