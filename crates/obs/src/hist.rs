//! Log-bucketed latency histogram with exact quantile queries over buckets.
//!
//! Layout: values below [`LINEAR_LIMIT`] get one bucket each (exact), every
//! larger octave `[2^k, 2^(k+1))` is split into four equal sub-buckets, so the
//! relative quantile error is bounded by 25% while the whole `u64` range fits
//! in [`NUM_BUCKETS`] fixed slots. Counts saturate instead of wrapping so a
//! pathological run can never panic or alias a small count.

/// Values below this limit are stored exactly, one bucket per value.
pub const LINEAR_LIMIT: u64 = 16;

/// Total number of buckets: 16 linear + 4 sub-buckets for each of the 60
/// octaves `[2^4, 2^5) .. [2^63, 2^64)`.
pub const NUM_BUCKETS: usize = 256;

/// Fixed-size log-linear histogram of `u64` samples (sim cycles).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample value.
pub fn bucket_of(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (msb - 2)) & 3) as usize;
        LINEAR_LIMIT as usize + (msb - 4) * 4 + sub
    }
}

/// Inclusive `[lo, hi]` value range covered by a bucket.
pub fn bucket_bounds(bucket: usize) -> (u64, u64) {
    assert!(bucket < NUM_BUCKETS, "bucket out of range");
    if (bucket as u64) < LINEAR_LIMIT {
        (bucket as u64, bucket as u64)
    } else {
        let octave = (bucket - LINEAR_LIMIT as usize) / 4;
        let sub = ((bucket - LINEAR_LIMIT as usize) % 4) as u64;
        let base = 1u64 << (octave + 4);
        let step = base / 4;
        let lo = base + sub * step;
        (lo, lo + (step - 1))
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; NUM_BUCKETS]),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples. Counts saturate at `u64::MAX`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = bucket_of(v);
        self.counts[b] = self.counts[b].saturating_add(n);
        self.total = self.total.saturating_add(n);
        self.sum = self.sum.saturating_add(v as u128 * n as u128);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples (saturating).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 < q <= 1.0`), clamped to the recorded maximum so single-valued
    /// histograms answer exactly. Returns 0 when empty.
    ///
    /// Guarantee: for the exact order statistic `x` at rank `ceil(q * count)`,
    /// the returned value `r` satisfies `x <= r` and `bucket_of(r) ==
    /// bucket_of(x)` — i.e. the answer is never below the truth and never
    /// over-reports by more than the bucket width (25% relative).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_bounds(b).1.min(self.max);
            }
        }
        self.max
    }

    /// Iterate the non-empty buckets as `(lo, hi, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let (lo, hi) = bucket_bounds(b);
                (lo, hi, c)
            })
    }

    /// Merge another histogram into this one (bucket-wise saturating add).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exact_below_linear_limit() {
        for v in 0..LINEAR_LIMIT {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        // Every bucket's hi + 1 must be the next bucket's lo, ending at MAX.
        let mut expect_lo = 0u64;
        for b in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(lo, expect_lo, "bucket {b} lo");
            assert!(hi >= lo);
            if b + 1 < NUM_BUCKETS {
                expect_lo = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn bucket_of_matches_bounds() {
        for v in [0, 1, 15, 16, 17, 19, 20, 31, 32, 100, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= v && v <= hi, "v={v} b={b} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record_n(100, 7);
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 100);
        }
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 100.0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn saturating_counts_do_not_wrap() {
        let mut h = Histogram::new();
        h.record_n(3, u64::MAX);
        h.record_n(3, 5);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.quantile(1.0), 3);
    }

    #[test]
    fn merge_pools_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(2, 3);
        b.record_n(40, 2);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 40);
        assert_eq!(a.quantile(0.5), 2);
        assert!(a.quantile(1.0) >= 40);
    }
}
