//! Metric registry: named counter/gauge families, histograms, and windowed
//! time series, all addressed by cheap integer handles.
//!
//! Metrics are registered once when a recorder is constructed and updated by
//! index afterwards, so the hot path never hashes a name. Registration order
//! is the (deterministic) serialization order of the metrics snapshot.

use crate::hist::Histogram;

/// Handle to a counter family.
#[derive(Clone, Copy, Debug)]
pub struct CounterId(pub(crate) usize);

/// Handle to a gauge family.
#[derive(Clone, Copy, Debug)]
pub struct GaugeId(pub(crate) usize);

/// Handle to a histogram.
#[derive(Clone, Copy, Debug)]
pub struct HistId(pub(crate) usize);

/// Handle to a windowed series.
#[derive(Clone, Copy, Debug)]
pub struct SeriesId(pub(crate) usize);

/// A named family of values. A scalar metric is a family of length 1; indexed
/// metrics (per-link, per-bank, node x MC) use one slot per element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Family<T> {
    /// Stable snapshot key, e.g. `"net.link.flit_cycles"`.
    pub name: &'static str,
    /// One value per element, in element order.
    pub vals: Vec<T>,
}

/// How a windowed series folds samples that land in the same epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowMode {
    /// Sum all samples in the epoch (event rates).
    Add,
    /// Keep the maximum sample in the epoch (peaks, e.g. queue depth).
    Max,
}

/// A time series sampled by sim-cycle epoch: slot `i` covers cycles
/// `[i * epoch_cycles, (i + 1) * epoch_cycles)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Series {
    /// Stable snapshot key, e.g. `"win.offchip"`.
    pub name: &'static str,
    /// Epoch width in sim cycles (>= 1).
    pub epoch_cycles: u64,
    /// Fold mode for same-epoch samples.
    pub mode: WindowMode,
    /// One folded value per epoch, from cycle 0.
    pub vals: Vec<u64>,
}

impl Series {
    fn bump(&mut self, ts: u64, n: u64) {
        let epoch = (ts / self.epoch_cycles) as usize;
        if self.vals.len() <= epoch {
            self.vals.resize(epoch + 1, 0);
        }
        match self.mode {
            WindowMode::Add => self.vals[epoch] = self.vals[epoch].saturating_add(n),
            WindowMode::Max => self.vals[epoch] = self.vals[epoch].max(n),
        }
    }
}

/// The registry proper: all metric storage for one recording.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Registry {
    pub(crate) counters: Vec<Family<u64>>,
    pub(crate) gauges: Vec<Family<i64>>,
    pub(crate) hists: Vec<(&'static str, Histogram)>,
    pub(crate) series: Vec<Series>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a counter family with `len` zeroed slots.
    pub fn counter(&mut self, name: &'static str, len: usize) -> CounterId {
        self.counters.push(Family {
            name,
            vals: vec![0; len],
        });
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge family with `len` zeroed slots.
    pub fn gauge(&mut self, name: &'static str, len: usize) -> GaugeId {
        self.gauges.push(Family {
            name,
            vals: vec![0; len],
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Register an empty histogram.
    pub fn hist(&mut self, name: &'static str) -> HistId {
        self.hists.push((name, Histogram::new()));
        HistId(self.hists.len() - 1)
    }

    /// Register a windowed series. `epoch_cycles` is clamped to at least 1.
    pub fn series(&mut self, name: &'static str, epoch_cycles: u64, mode: WindowMode) -> SeriesId {
        self.series.push(Series {
            name,
            epoch_cycles: epoch_cycles.max(1),
            mode,
            vals: Vec::new(),
        });
        SeriesId(self.series.len() - 1)
    }

    /// Add `n` to slot `idx` of a counter family.
    #[inline]
    pub fn inc(&mut self, id: CounterId, idx: usize, n: u64) {
        self.counters[id.0].vals[idx] += n;
    }

    /// Set slot `idx` of a gauge family.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, idx: usize, v: i64) {
        self.gauges[id.0].vals[idx] = v;
    }

    /// Read slot `idx` of a gauge family.
    #[inline]
    pub fn gauge_val(&self, id: GaugeId, idx: usize) -> i64 {
        self.gauges[id.0].vals[idx]
    }

    /// Record a sample into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0].1.record(v);
    }

    /// Fold a sample into the epoch of `ts` for a windowed series.
    #[inline]
    pub fn sample(&mut self, id: SeriesId, ts: u64, n: u64) {
        self.series[id.0].bump(ts, n);
    }

    /// Look up a counter family by name (snapshot/report access).
    pub fn counter_family(&self, name: &str) -> Option<&[u64]> {
        self.counters
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.vals.as_slice())
    }

    /// Look up a gauge family by name.
    pub fn gauge_family(&self, name: &str) -> Option<&[i64]> {
        self.gauges
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.vals.as_slice())
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Look up a windowed series by name.
    pub fn series_by_name(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_update_by_handle() {
        let mut r = Registry::new();
        let c = r.counter("c", 3);
        let g = r.gauge("g", 2);
        r.inc(c, 1, 5);
        r.inc(c, 1, 2);
        r.set_gauge(g, 0, -4);
        assert_eq!(r.counter_family("c").unwrap(), &[0, 7, 0]);
        assert_eq!(r.gauge_family("g").unwrap(), &[-4, 0]);
        assert_eq!(r.gauge_val(g, 0), -4);
        assert!(r.counter_family("missing").is_none());
    }

    #[test]
    fn series_fold_by_epoch() {
        let mut r = Registry::new();
        let a = r.series("a", 10, WindowMode::Add);
        let m = r.series("m", 10, WindowMode::Max);
        for (ts, n) in [(0, 1), (9, 2), (10, 4), (35, 7)] {
            r.sample(a, ts, n);
            r.sample(m, ts, n);
        }
        assert_eq!(r.series_by_name("a").unwrap().vals, vec![3, 4, 0, 7]);
        assert_eq!(r.series_by_name("m").unwrap().vals, vec![2, 4, 0, 7]);
    }

    #[test]
    fn zero_epoch_is_clamped() {
        let mut r = Registry::new();
        let s = r.series("s", 0, WindowMode::Add);
        r.sample(s, 123, 1);
        assert_eq!(r.series_by_name("s").unwrap().epoch_cycles, 1);
    }
}
