//! The recording sink handed to instrumented components.
//!
//! A [`Sink`] is either *disabled* — every record call is a single branch on
//! a `None`, no allocation, no wall clock — or it wraps a shared [`Recorder`]
//! that owns the metric registry and span buffer for one simulation run.
//! Components never store a sink; the simulator owns it and passes `&Sink`
//! into the `_obs` method variants, so the untraced code paths compile to the
//! exact same work as before the observability layer existed.

use crate::event::{CacheLevel, CacheTag, EvName, NetClass, Phase, ReqTag, SpanEvent, Track};
use crate::registry::{CounterId, GaugeId, HistId, Registry, SeriesId, WindowMode};
use crate::report::ObsReport;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Static shape of the machine being observed, used to size metric families
/// and name exporter tracks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Topology {
    /// Mesh width in nodes.
    pub mesh_width: usize,
    /// Mesh height in nodes.
    pub mesh_height: usize,
    /// Number of memory controllers.
    pub mcs: usize,
    /// DRAM banks per controller.
    pub banks_per_mc: usize,
}

impl Topology {
    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.mesh_width * self.mesh_height
    }

    /// Directed link count (`nodes * 4`; E, W, N, S per node).
    pub fn links(&self) -> usize {
        self.nodes() * 4
    }
}

/// Recording options.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ObsConfig {
    /// Record span events (the Chrome-trace payload). Counters, histograms,
    /// and windows are always recorded by an enabled sink.
    pub record_spans: bool,
    /// Epoch width for windowed series, in sim cycles.
    pub epoch_cycles: u64,
    /// Maximum number of requests that get spans; `0` means unlimited.
    /// Requests beyond the cap are still fully counted — only their spans
    /// are dropped, and the drop count is reported in the snapshot.
    pub span_capacity: u64,
    /// Register the prefetch metric families (`pf.*`). Unlike the fault
    /// families — which exist unconditionally — these are opt-in: a run
    /// with prefetching off must serialize a metrics snapshot
    /// byte-identical to a build that predates the prefetch subsystem,
    /// so the families only exist when the prefetcher does.
    pub prefetch: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            record_spans: true,
            epoch_cycles: 8192,
            span_capacity: 0,
            prefetch: false,
        }
    }
}

/// One prefetch-pipeline counter event, mirrored from the simulator's
/// `PrefetchSummary` accounting so the obs families match it by
/// construction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PfEvent {
    /// Candidate lines the engines produced.
    Candidates,
    /// Candidates the off-chip predictor filtered out.
    Gated,
    /// Prefetch requests sent toward a memory controller.
    Issued,
    /// Prefetched lines later hit by a demand access.
    Useful,
    /// Demand misses that joined an in-flight prefetch.
    Late,
    /// Prefetched lines evicted untouched.
    Harmful,
    /// Prefetches dropped (queue full, dark MC, transient error).
    Dropped,
    /// Off-chip predictions that matched the demand outcome.
    PredCorrect,
    /// Demand accesses the predictor scored.
    PredTotal,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ReqKind {
    /// Began (L1 miss), destination not yet known.
    Pending,
    /// Resolved to a cache-to-cache transfer.
    CacheToCache,
    /// Resolved to an off-chip (MC) access.
    Offchip,
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    node: u16,
    start: u64,
    kind: ReqKind,
}

/// Every metric handle the recorder uses, registered once at construction.
#[derive(Clone, Copy, Debug)]
struct Ids {
    accesses: CounterId,
    c2c: CounterId,
    offchip: CounterId,
    writebacks: CounterId,
    node_mc: CounterId,
    dir_forwards: CounterId,
    dir_misses: CounterId,
    l1_accesses: CounterId,
    l1_hits: CounterId,
    l2_accesses: CounterId,
    l2_hits: CounterId,
    l2_evictions: CounterId,
    l2_evictions_dirty: CounterId,
    net_msgs: [CounterId; 2],
    net_latency: [CounterId; 2],
    net_hops: [CounterId; 2],
    net_hop_hist: [CounterId; 2],
    link_flit_cycles: CounterId,
    link_wait_cycles: CounterId,
    mc_served: CounterId,
    mc_row_hits: CounterId,
    mc_queue_cycles: CounterId,
    mc_service_cycles: CounterId,
    bank_served: CounterId,
    bank_queue_cycles: CounterId,
    bank_busy_cycles: CounterId,
    mc_queue_depth: GaugeId,
    h_offchip: HistId,
    h_c2c: HistId,
    h_mc_queue: HistId,
    h_mc_service: HistId,
    h_net: [HistId; 2],
    win_accesses: SeriesId,
    win_offchip: SeriesId,
    win_row_hits: SeriesId,
    win_row_misses: SeriesId,
    win_net_msgs: [SeriesId; 2],
    win_queue_peak: SeriesId,
    // Fault-injection families. Registered unconditionally (after every
    // pre-existing family, preserving their serialization order) so a
    // zero-fault plan's metrics snapshot is byte-identical to an unfaulted
    // run's: both serialize the same families, all zero.
    fault_link_hops: CounterId,
    fault_link_cycles: CounterId,
    fault_bank_stalls: CounterId,
    fault_bank_stall_cycles: CounterId,
    fault_retries: CounterId,
    fault_dropped: CounterId,
    fault_rehomed: CounterId,
    backstop_flushes: CounterId,
    backstop_pending: CounterId,
    h_dropped: HistId,
    win_faults: SeriesId,
    // Prefetch families. Unlike the fault families these register only
    // when [`ObsConfig::prefetch`] is set, so prefetch-off snapshots stay
    // byte-identical to builds that predate the subsystem.
    pf: Option<PfIds>,
}

/// Per-node prefetch-pipeline counters, mirroring `PrefetchSummary`.
#[derive(Clone, Copy, Debug)]
struct PfIds {
    candidates: CounterId,
    gated: CounterId,
    issued: CounterId,
    useful: CounterId,
    late: CounterId,
    harmful: CounterId,
    dropped: CounterId,
    pred_correct: CounterId,
    pred_total: CounterId,
}

/// Mutable recording state for one simulation run.
#[derive(Debug)]
pub struct Recorder {
    topo: Topology,
    config: ObsConfig,
    reg: Registry,
    ids: Ids,
    events: Vec<SpanEvent>,
    inflight: HashMap<u64, InFlight>,
    token_req: HashMap<u64, u64>,
    next_req: u64,
    spans_started: u64,
    dropped_spans: u64,
}

fn class_idx(class: NetClass) -> usize {
    match class {
        NetClass::OnChip => 0,
        NetClass::OffChip => 1,
    }
}

/// Hop-histogram width, matching the NoC's clamp (`hops.min(31)`).
pub const HOP_HIST_LEN: usize = 32;

impl Recorder {
    /// Fresh recorder for a machine of the given shape.
    pub fn new(topo: Topology, config: ObsConfig) -> Self {
        let mut reg = Registry::new();
        let nodes = topo.nodes();
        let e = config.epoch_cycles;
        let ids = Ids {
            accesses: reg.counter("sim.accesses", 1),
            c2c: reg.counter("sim.cache_to_cache", 1),
            offchip: reg.counter("sim.offchip", 1),
            writebacks: reg.counter("sim.writebacks", 1),
            node_mc: reg.counter("sim.node_mc_requests", nodes * topo.mcs),
            dir_forwards: reg.counter("dir.forwards", 1),
            dir_misses: reg.counter("dir.misses", 1),
            l1_accesses: reg.counter("cache.l1.accesses", nodes),
            l1_hits: reg.counter("cache.l1.hits", nodes),
            l2_accesses: reg.counter("cache.l2.accesses", nodes),
            l2_hits: reg.counter("cache.l2.hits", nodes),
            l2_evictions: reg.counter("cache.l2.evictions", nodes),
            l2_evictions_dirty: reg.counter("cache.l2.evictions_dirty", nodes),
            net_msgs: [
                reg.counter("net.onchip.msgs", 1),
                reg.counter("net.offchip.msgs", 1),
            ],
            net_latency: [
                reg.counter("net.onchip.latency_cycles", 1),
                reg.counter("net.offchip.latency_cycles", 1),
            ],
            net_hops: [
                reg.counter("net.onchip.hops", 1),
                reg.counter("net.offchip.hops", 1),
            ],
            net_hop_hist: [
                reg.counter("net.onchip.hop_hist", HOP_HIST_LEN),
                reg.counter("net.offchip.hop_hist", HOP_HIST_LEN),
            ],
            link_flit_cycles: reg.counter("net.link.flit_cycles", topo.links()),
            link_wait_cycles: reg.counter("net.link.wait_cycles", topo.links()),
            mc_served: reg.counter("mc.served", topo.mcs),
            mc_row_hits: reg.counter("mc.row_hits", topo.mcs),
            mc_queue_cycles: reg.counter("mc.queue_cycles", topo.mcs),
            mc_service_cycles: reg.counter("mc.service_cycles", topo.mcs),
            bank_served: reg.counter("mc.bank.served", topo.mcs * topo.banks_per_mc),
            bank_queue_cycles: reg.counter("mc.bank.queue_cycles", topo.mcs * topo.banks_per_mc),
            bank_busy_cycles: reg.counter("mc.bank.busy_cycles", topo.mcs * topo.banks_per_mc),
            mc_queue_depth: reg.gauge("mc.queue_depth", topo.mcs),
            h_offchip: reg.hist("req.offchip_cycles"),
            h_c2c: reg.hist("req.c2c_cycles"),
            h_mc_queue: reg.hist("mc.queue_wait_cycles"),
            h_mc_service: reg.hist("mc.service_cycles"),
            h_net: [
                reg.hist("net.onchip_cycles"),
                reg.hist("net.offchip_cycles"),
            ],
            win_accesses: reg.series("win.accesses", e, WindowMode::Add),
            win_offchip: reg.series("win.offchip", e, WindowMode::Add),
            win_row_hits: reg.series("win.row_hits", e, WindowMode::Add),
            win_row_misses: reg.series("win.row_misses", e, WindowMode::Add),
            win_net_msgs: [
                reg.series("win.onchip_msgs", e, WindowMode::Add),
                reg.series("win.offchip_msgs", e, WindowMode::Add),
            ],
            win_queue_peak: reg.series("win.mc_queue_depth_peak", e, WindowMode::Max),
            fault_link_hops: reg.counter("fault.link.hops", 1),
            fault_link_cycles: reg.counter("fault.link.extra_cycles", topo.links()),
            fault_bank_stalls: reg.counter("fault.bank.stalls", topo.mcs),
            fault_bank_stall_cycles: reg.counter("fault.bank.stall_cycles", topo.mcs),
            fault_retries: reg.counter("fault.mc.retries", topo.mcs),
            fault_dropped: reg.counter("fault.mc.dropped", topo.mcs),
            fault_rehomed: reg.counter("fault.rehomed", topo.mcs),
            backstop_flushes: reg.counter("sim.backstop_flushes", 1),
            backstop_pending: reg.counter("sim.backstop_pending", 1),
            h_dropped: reg.hist("req.dropped_cycles"),
            win_faults: reg.series("win.fault_events", e, WindowMode::Add),
            pf: config.prefetch.then(|| PfIds {
                candidates: reg.counter("pf.candidates", nodes),
                gated: reg.counter("pf.gated", nodes),
                issued: reg.counter("pf.issued", nodes),
                useful: reg.counter("pf.useful", nodes),
                late: reg.counter("pf.late", nodes),
                harmful: reg.counter("pf.harmful", nodes),
                dropped: reg.counter("pf.dropped", nodes),
                pred_correct: reg.counter("pf.pred.correct", nodes),
                pred_total: reg.counter("pf.pred.total", nodes),
            }),
        };
        Recorder {
            topo,
            config,
            reg,
            ids,
            events: Vec::new(),
            inflight: HashMap::new(),
            token_req: HashMap::new(),
            next_req: 0,
            spans_started: 0,
            dropped_spans: 0,
        }
    }

    fn push_event(&mut self, ev: SpanEvent) {
        if self.config.record_spans {
            self.events.push(ev);
        }
    }

    fn into_report(self, exec_cycles: u64) -> ObsReport {
        ObsReport::from_parts(
            self.topo,
            self.config,
            exec_cycles,
            self.reg,
            self.events,
            self.dropped_spans,
        )
    }
}

/// Handle passed into instrumented components: either disabled (free) or a
/// shared reference to the run's [`Recorder`].
#[derive(Clone, Debug, Default)]
pub struct Sink {
    rec: Option<Rc<RefCell<Recorder>>>,
}

impl Sink {
    /// A sink that records nothing. Every call is one branch on `None`.
    pub fn disabled() -> Sink {
        Sink { rec: None }
    }

    /// A sink recording into a fresh [`Recorder`].
    pub fn recording(topo: Topology, config: ObsConfig) -> Sink {
        Sink {
            rec: Some(Rc::new(RefCell::new(Recorder::new(topo, config)))),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }

    #[inline]
    fn with<R: Default>(&self, f: impl FnOnce(&mut Recorder) -> R) -> R {
        match &self.rec {
            None => R::default(),
            Some(rc) => f(&mut rc.borrow_mut()),
        }
    }

    /// Consume the sink and freeze its recording. Returns `None` for a
    /// disabled sink.
    ///
    /// # Panics
    ///
    /// Panics if other clones of the sink are still alive; the owner must be
    /// the last holder when the run finishes.
    pub fn into_report(self, exec_cycles: u64) -> Option<ObsReport> {
        let rc = self.rec?;
        let rec = Rc::try_unwrap(rc)
            .expect("invariant: the simulator holds the only sink at report time")
            .into_inner();
        Some(rec.into_report(exec_cycles))
    }

    // ---- sim-level records -------------------------------------------------

    /// One memory access issued by `node` at `ts`.
    pub fn access(&self, ts: u64, node: u16) {
        let _ = node;
        self.with(|r| {
            r.reg.inc(r.ids.accesses, 0, 1);
            r.reg.sample(r.ids.win_accesses, ts, 1);
        });
    }

    /// An L1 miss at `node` starts a request lifecycle; returns its tag.
    pub fn begin_req(&self, ts: u64, node: u16) -> ReqTag {
        self.with(|r| {
            let id = r.next_req;
            r.next_req += 1;
            if r.config.record_spans {
                if r.config.span_capacity > 0 && r.spans_started >= r.config.span_capacity {
                    r.dropped_spans += 1;
                } else {
                    r.spans_started += 1;
                }
            }
            r.inflight.insert(
                id,
                InFlight {
                    node,
                    start: ts,
                    kind: ReqKind::Pending,
                },
            );
            ReqTag {
                id,
                phase: Phase::Request,
            }
        })
    }

    fn span_allowed(r: &Recorder, tag: ReqTag) -> bool {
        // Requests past the span capacity keep counting but draw no events.
        r.config.record_spans
            && tag.is_some()
            && (r.config.span_capacity == 0 || tag.id < r.config.span_capacity)
    }

    /// The request was satisfied by an L2 (local or home) hit; no span is
    /// drawn for it.
    pub fn req_l2_hit(&self, tag: ReqTag, ts: u64) {
        let _ = ts;
        if !tag.is_some() {
            return;
        }
        self.with(|r| {
            r.inflight.remove(&tag.id);
        });
    }

    /// The request resolved to a cache-to-cache transfer.
    pub fn c2c(&self, tag: ReqTag, ts: u64, node: u16) {
        let _ = (ts, node);
        self.with(|r| {
            r.reg.inc(r.ids.c2c, 0, 1);
            if let Some(f) = r.inflight.get_mut(&tag.id) {
                f.kind = ReqKind::CacheToCache;
            }
        });
    }

    /// The request resolved to an off-chip access bound for `mc`, accounted
    /// to `node` (the requester in private mode, the home slice in shared
    /// mode — mirroring `RunStats::node_mc_requests`).
    pub fn offchip(&self, tag: ReqTag, ts: u64, node: u16, mc: u16) {
        self.with(|r| {
            r.reg.inc(r.ids.offchip, 0, 1);
            let idx = node as usize * r.topo.mcs + mc as usize;
            r.reg.inc(r.ids.node_mc, idx, 1);
            r.reg.sample(r.ids.win_offchip, ts, 1);
            if let Some(f) = r.inflight.get_mut(&tag.id) {
                f.kind = ReqKind::Offchip;
            }
        });
    }

    /// A dirty L2 eviction was written back toward `mc`.
    pub fn writeback(&self, ts: u64, node: u16, mc: u16) {
        let _ = (ts, node, mc);
        self.with(|r| r.reg.inc(r.ids.writebacks, 0, 1));
    }

    /// The request's data arrived back at the requester: close its span and
    /// record its end-to-end latency.
    pub fn retire(&self, tag: ReqTag, ts: u64) {
        if !tag.is_some() {
            return;
        }
        self.with(|r| {
            let Some(f) = r.inflight.remove(&tag.id) else {
                return;
            };
            let (name, hist) = match f.kind {
                ReqKind::Offchip => (EvName::Offchip, r.ids.h_offchip),
                ReqKind::CacheToCache => (EvName::CacheToCache, r.ids.h_c2c),
                ReqKind::Pending => return,
            };
            let dur = ts.saturating_sub(f.start);
            r.reg.observe(hist, dur);
            if Sink::span_allowed(r, tag) {
                r.push_event(SpanEvent {
                    track: Track::Core(f.node),
                    name,
                    ts: f.start,
                    dur,
                    req: tag.id,
                    arg: 0,
                });
            }
        });
    }

    /// The request was dropped after exhausting its retry budget: close its
    /// span as [`EvName::Dropped`] and record time-to-drop.
    pub fn drop_req(&self, tag: ReqTag, ts: u64) {
        if !tag.is_some() {
            return;
        }
        self.with(|r| {
            let Some(f) = r.inflight.remove(&tag.id) else {
                return;
            };
            let dur = ts.saturating_sub(f.start);
            r.reg.observe(r.ids.h_dropped, dur);
            if Sink::span_allowed(r, tag) {
                r.push_event(SpanEvent {
                    track: Track::Core(f.node),
                    name: EvName::Dropped,
                    ts: f.start,
                    dur,
                    req: tag.id,
                    arg: 0,
                });
            }
        });
    }

    /// An off-chip request bound for dark controller `from_mc` was re-homed
    /// to live controller `to_mc`.
    pub fn rehome(&self, ts: u64, from_mc: u16, to_mc: u16) {
        let _ = to_mc;
        self.with(|r| {
            r.reg.inc(r.ids.fault_rehomed, from_mc as usize, 1);
            r.reg.sample(r.ids.win_faults, ts, 1);
        });
    }

    /// The simulator's liveness backstop fired: the event heap drained with
    /// `pending` requests still in flight and the MCs were force-flushed.
    pub fn backstop(&self, ts: u64, pending: usize) {
        let _ = ts;
        self.with(|r| {
            r.reg.inc(r.ids.backstop_flushes, 0, 1);
            r.reg.inc(r.ids.backstop_pending, 0, pending as u64);
        });
    }

    /// Associate an MC token with the request it serves, so bank-service
    /// events can be attributed.
    pub fn bind_token(&self, token: u64, tag: ReqTag) {
        if !tag.is_some() {
            return;
        }
        self.with(|r| {
            r.token_req.insert(token, tag.id);
        });
    }

    // ---- NoC records -------------------------------------------------------

    /// A message finished routing: aggregate per-class counters, mirroring
    /// the NoC's own `ClassStats` update.
    pub fn net_msg(&self, class: NetClass, hops: usize, latency: u64, ts: u64) {
        self.with(|r| {
            let k = class_idx(class);
            r.reg.inc(r.ids.net_msgs[k], 0, 1);
            r.reg.inc(r.ids.net_latency[k], 0, latency);
            r.reg.inc(r.ids.net_hops[k], 0, hops as u64);
            r.reg
                .inc(r.ids.net_hop_hist[k], hops.min(HOP_HIST_LEN - 1), 1);
            r.reg.observe(r.ids.h_net[k], latency);
            r.reg.sample(r.ids.win_net_msgs[k], ts, 1);
        });
    }

    /// One link traversal: `depart` is when the flits start crossing `link`,
    /// `wait` is how long they queued for the link, `flits` its occupancy.
    pub fn hop(&self, link: u32, depart: u64, wait: u64, flits: u64, tag: ReqTag) {
        self.with(|r| {
            r.reg.inc(r.ids.link_flit_cycles, link as usize, flits);
            r.reg.inc(r.ids.link_wait_cycles, link as usize, wait);
            if Sink::span_allowed(r, tag) {
                let name = match tag.phase {
                    Phase::Request => EvName::HopRequest,
                    Phase::Forward => EvName::HopForward,
                    Phase::Reply => EvName::HopReply,
                };
                r.push_event(SpanEvent {
                    track: Track::Link(link),
                    name,
                    ts: depart,
                    dur: flits,
                    req: tag.id,
                    arg: wait,
                });
            }
        });
    }

    /// A link traversal was delayed `extra` cycles by an active link-fault
    /// window.
    pub fn link_fault(&self, link: u32, depart: u64, extra: u64, tag: ReqTag) {
        self.with(|r| {
            r.reg.inc(r.ids.fault_link_hops, 0, 1);
            r.reg.inc(r.ids.fault_link_cycles, link as usize, extra);
            r.reg.sample(r.ids.win_faults, depart, 1);
            if Sink::span_allowed(r, tag) {
                r.push_event(SpanEvent {
                    track: Track::Link(link),
                    name: EvName::LinkFault,
                    ts: depart,
                    dur: extra,
                    req: tag.id,
                    arg: 0,
                });
            }
        });
    }

    // ---- memory-controller records -----------------------------------------

    /// A request entered `mc`'s queues; `depth` is the owning bank's queue
    /// depth after insertion.
    pub fn mc_enqueue(&self, mc: u16, depth: usize, ts: u64) {
        self.with(|r| {
            r.reg
                .set_gauge(r.ids.mc_queue_depth, mc as usize, depth as i64);
            r.reg.sample(r.ids.win_queue_peak, ts, depth as u64);
        });
    }

    /// A bank finished scheduling one request: `arrival..start` queued,
    /// `start..finish` in service; `depth` is the bank queue depth after
    /// removal.
    #[allow(clippy::too_many_arguments)]
    pub fn bank_service(
        &self,
        mc: u16,
        bank: u16,
        token: u64,
        arrival: u64,
        start: u64,
        finish: u64,
        row_hit: bool,
        depth: usize,
    ) {
        self.with(|r| {
            let m = mc as usize;
            let b = m * r.topo.banks_per_mc + bank as usize;
            let queue_cycles = start - arrival;
            let service_cycles = finish - start;
            r.reg.inc(r.ids.mc_served, m, 1);
            r.reg.inc(r.ids.mc_queue_cycles, m, queue_cycles);
            r.reg.inc(r.ids.mc_service_cycles, m, service_cycles);
            r.reg.inc(r.ids.bank_served, b, 1);
            r.reg.inc(r.ids.bank_queue_cycles, b, queue_cycles);
            r.reg.inc(r.ids.bank_busy_cycles, b, service_cycles);
            if row_hit {
                r.reg.inc(r.ids.mc_row_hits, m, 1);
                r.reg.sample(r.ids.win_row_hits, start, 1);
            } else {
                r.reg.sample(r.ids.win_row_misses, start, 1);
            }
            r.reg.observe(r.ids.h_mc_queue, queue_cycles);
            r.reg.observe(r.ids.h_mc_service, service_cycles);
            r.reg.set_gauge(r.ids.mc_queue_depth, m, depth as i64);
            let req = r.token_req.remove(&token).unwrap_or(u64::MAX);
            if r.config.record_spans
                && (req == u64::MAX || r.config.span_capacity == 0 || req < r.config.span_capacity)
            {
                if queue_cycles > 0 {
                    r.push_event(SpanEvent {
                        track: Track::McQueue(mc),
                        name: EvName::McQueue,
                        ts: arrival,
                        dur: queue_cycles,
                        req,
                        arg: 0,
                    });
                }
                let name = if row_hit {
                    EvName::BankRowHit
                } else {
                    EvName::BankRowMiss
                };
                r.push_event(SpanEvent {
                    track: Track::Bank(b as u32),
                    name,
                    ts: start,
                    dur: service_cycles,
                    req,
                    arg: 0,
                });
            }
        });
    }

    /// Whether a span attributed via a token→request lookup (which may have
    /// found nothing: `req == u64::MAX`) should be drawn.
    fn token_span_allowed(r: &Recorder, req: u64) -> bool {
        r.config.record_spans
            && (req == u64::MAX || r.config.span_capacity == 0 || req < r.config.span_capacity)
    }

    /// A bank service at `mc`/`bank` was stretched `stall` cycles by an
    /// active bank-stall window. `start` is when the stalled service began.
    pub fn bank_stall(&self, mc: u16, bank: u16, token: u64, start: u64, stall: u64) {
        self.with(|r| {
            let m = mc as usize;
            r.reg.inc(r.ids.fault_bank_stalls, m, 1);
            r.reg.inc(r.ids.fault_bank_stall_cycles, m, stall);
            r.reg.sample(r.ids.win_faults, start, 1);
            let req = r.token_req.get(&token).copied().unwrap_or(u64::MAX);
            if Sink::token_span_allowed(r, req) {
                let b = m * r.topo.banks_per_mc + bank as usize;
                r.push_event(SpanEvent {
                    track: Track::Bank(b as u32),
                    name: EvName::BankStall,
                    ts: start,
                    dur: stall,
                    req,
                    arg: 0,
                });
            }
        });
    }

    /// A transient error at `mc` failed the request behind `token`; it will
    /// retry after `backoff` cycles (span drawn over the backoff interval).
    /// The token binding survives, so the eventual successful service (or
    /// drop) is still attributed.
    pub fn mc_retry(&self, mc: u16, token: u64, ts: u64, backoff: u64) {
        self.with(|r| {
            r.reg.inc(r.ids.fault_retries, mc as usize, 1);
            r.reg.sample(r.ids.win_faults, ts, 1);
            let req = r.token_req.get(&token).copied().unwrap_or(u64::MAX);
            if Sink::token_span_allowed(r, req) {
                r.push_event(SpanEvent {
                    track: Track::McQueue(mc),
                    name: EvName::McRetry,
                    ts,
                    dur: backoff,
                    req,
                    arg: 0,
                });
            }
        });
    }

    /// The request behind `token` exhausted its retry budget at `mc` and was
    /// dropped; the token binding is consumed.
    pub fn mc_drop(&self, mc: u16, token: u64, ts: u64) {
        self.with(|r| {
            r.reg.inc(r.ids.fault_dropped, mc as usize, 1);
            r.reg.sample(r.ids.win_faults, ts, 1);
            let req = r.token_req.remove(&token).unwrap_or(u64::MAX);
            if Sink::token_span_allowed(r, req) {
                r.push_event(SpanEvent {
                    track: Track::McQueue(mc),
                    name: EvName::Dropped,
                    ts,
                    dur: 0,
                    req,
                    arg: 0,
                });
            }
        });
    }

    // ---- cache / directory records -----------------------------------------

    /// One set-associative cache access.
    pub fn cache_access(&self, tag: CacheTag, ts: u64, hit: bool, evicted: bool, dirty: bool) {
        let _ = ts;
        self.with(|r| {
            let n = tag.node as usize;
            match tag.level {
                CacheLevel::L1 => {
                    r.reg.inc(r.ids.l1_accesses, n, 1);
                    if hit {
                        r.reg.inc(r.ids.l1_hits, n, 1);
                    }
                }
                CacheLevel::L2 => {
                    r.reg.inc(r.ids.l2_accesses, n, 1);
                    if hit {
                        r.reg.inc(r.ids.l2_hits, n, 1);
                    }
                    if evicted {
                        r.reg.inc(r.ids.l2_evictions, n, 1);
                        if dirty {
                            r.reg.inc(r.ids.l2_evictions_dirty, n, 1);
                        }
                    }
                }
            }
        });
    }

    /// `n` prefetch-pipeline events of kind `ev` at `node`. A no-op unless
    /// the recorder was built with [`ObsConfig::prefetch`], keeping
    /// prefetch-off snapshots byte-identical to pre-prefetch builds.
    pub fn prefetch(&self, ev: PfEvent, node: u16, n: u64) {
        if n == 0 {
            return;
        }
        self.with(|r| {
            let Some(pf) = r.ids.pf else { return };
            let id = match ev {
                PfEvent::Candidates => pf.candidates,
                PfEvent::Gated => pf.gated,
                PfEvent::Issued => pf.issued,
                PfEvent::Useful => pf.useful,
                PfEvent::Late => pf.late,
                PfEvent::Harmful => pf.harmful,
                PfEvent::Dropped => pf.dropped,
                PfEvent::PredCorrect => pf.pred_correct,
                PfEvent::PredTotal => pf.pred_total,
            };
            r.reg.inc(id, node as usize, n);
        });
    }

    /// One directory lookup; `forward` when a sharer could supply the line.
    pub fn dir_lookup(&self, ts: u64, node: u16, forward: bool) {
        let _ = (ts, node);
        self.with(|r| {
            if forward {
                r.reg.inc(r.ids.dir_forwards, 0, 1);
            } else {
                r.reg.inc(r.ids.dir_misses, 0, 1);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology {
            mesh_width: 2,
            mesh_height: 2,
            mcs: 2,
            banks_per_mc: 2,
        }
    }

    #[test]
    fn disabled_sink_is_inert() {
        let s = Sink::disabled();
        assert!(!s.is_enabled());
        s.access(0, 0);
        let tag = s.begin_req(0, 0);
        assert!(!tag.is_some());
        s.retire(tag, 10);
        s.hop(0, 0, 0, 1, tag);
        assert!(s.into_report(100).is_none());
    }

    #[test]
    fn offchip_lifecycle_produces_span_and_latency() {
        let s = Sink::recording(topo(), ObsConfig::default());
        let tag = s.begin_req(10, 3);
        s.offchip(tag, 12, 3, 1);
        s.bind_token(77, tag);
        s.hop(5, 14, 2, 4, tag);
        s.bank_service(1, 0, 77, 20, 25, 60, false, 0);
        s.hop(6, 61, 0, 4, tag.phase(Phase::Reply));
        s.retire(tag, 70);
        let rep = s.into_report(100).unwrap();
        assert_eq!(rep.counter("sim.offchip"), 1);
        assert_eq!(
            rep.registry()
                .histogram("req.offchip_cycles")
                .unwrap()
                .count(),
            1
        );
        assert_eq!(
            rep.registry()
                .histogram("req.offchip_cycles")
                .unwrap()
                .quantile(1.0),
            60
        );
        let names: Vec<&str> = rep.events().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["hop.req", "queue", "row_miss", "hop.reply", "offchip"]
        );
        // Bank service attributed to the request via the token binding.
        assert!(rep.events().iter().all(|e| e.req == tag.id()));
    }

    #[test]
    fn l2_hit_draws_no_span() {
        let s = Sink::recording(topo(), ObsConfig::default());
        let tag = s.begin_req(0, 0);
        s.req_l2_hit(tag, 5);
        s.retire(tag, 9); // late retire of a finished request is a no-op
        let rep = s.into_report(10).unwrap();
        assert!(rep.events().is_empty());
    }

    #[test]
    fn span_capacity_drops_spans_not_counts() {
        let cfg = ObsConfig {
            span_capacity: 1,
            ..ObsConfig::default()
        };
        let s = Sink::recording(topo(), cfg);
        for i in 0..3 {
            let tag = s.begin_req(i, 0);
            s.offchip(tag, i, 0, 0);
            s.retire(tag, i + 100);
        }
        let rep = s.into_report(200).unwrap();
        assert_eq!(rep.counter("sim.offchip"), 3);
        assert_eq!(rep.events().len(), 1, "only the first request draws a span");
        assert_eq!(rep.dropped_spans(), 2);
        assert_eq!(
            rep.registry()
                .histogram("req.offchip_cycles")
                .unwrap()
                .count(),
            3
        );
    }

    #[test]
    fn record_spans_false_keeps_metrics_only() {
        let cfg = ObsConfig {
            record_spans: false,
            ..ObsConfig::default()
        };
        let s = Sink::recording(topo(), cfg);
        let tag = s.begin_req(0, 1);
        s.offchip(tag, 0, 1, 0);
        s.retire(tag, 50);
        s.net_msg(NetClass::OffChip, 3, 18, 0);
        let rep = s.into_report(100).unwrap();
        assert!(rep.events().is_empty());
        assert_eq!(rep.counter("sim.offchip"), 1);
        assert_eq!(rep.counter("net.offchip.msgs"), 1);
        assert_eq!(rep.counter_family("net.offchip.hop_hist")[3], 1);
        assert_eq!(
            rep.registry()
                .histogram("req.offchip_cycles")
                .unwrap()
                .quantile(0.5),
            50
        );
    }

    #[test]
    fn fault_records_count_and_draw_spans() {
        let s = Sink::recording(topo(), ObsConfig::default());
        let tag = s.begin_req(0, 1);
        s.offchip(tag, 1, 1, 0);
        s.bind_token(7, tag);
        s.link_fault(3, 10, 5, tag);
        s.bank_stall(0, 1, 7, 20, 9);
        s.mc_retry(0, 7, 40, 16);
        s.mc_drop(0, 7, 80);
        s.drop_req(tag, 90);
        s.rehome(85, 1, 0);
        s.backstop(100, 2);
        let rep = s.into_report(200).unwrap();
        assert_eq!(rep.counter("fault.link.hops"), 1);
        assert_eq!(rep.counter_family("fault.link.extra_cycles")[3], 5);
        assert_eq!(rep.counter_family("fault.bank.stalls")[0], 1);
        assert_eq!(rep.counter_family("fault.bank.stall_cycles")[0], 9);
        assert_eq!(rep.counter_family("fault.mc.retries")[0], 1);
        assert_eq!(rep.counter_family("fault.mc.dropped")[0], 1);
        assert_eq!(rep.counter_family("fault.rehomed")[1], 1);
        assert_eq!(rep.counter("sim.backstop_flushes"), 1);
        assert_eq!(rep.counter("sim.backstop_pending"), 2);
        let names: Vec<&str> = rep.events().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["link_fault", "bank_stall", "retry", "dropped", "dropped"]
        );
        // Every fault span is attributed to the request via tag or token.
        assert!(rep.events().iter().all(|e| e.req == tag.id()));
        assert_eq!(
            rep.registry()
                .histogram("req.dropped_cycles")
                .unwrap()
                .quantile(1.0),
            90
        );
    }

    #[test]
    fn zero_fault_families_serialize_all_zero() {
        // The fault families exist (all zero) even when nothing faulted, so
        // a zero-fault run's snapshot matches an unfaulted run's bytes.
        let s = Sink::recording(topo(), ObsConfig::default());
        s.access(0, 0);
        let rep = s.into_report(10).unwrap();
        assert_eq!(rep.counter("fault.link.hops"), 0);
        assert_eq!(rep.counter("fault.rehomed"), 0);
        assert_eq!(rep.counter("sim.backstop_flushes"), 0);
        assert!(rep.metrics_json().contains("fault.mc.retries"));
    }

    #[test]
    fn prefetch_families_are_absent_by_default() {
        // Unlike the fault families, pf.* only registers when opted in, so
        // prefetch-off snapshots are byte-identical to pre-prefetch builds.
        let s = Sink::recording(topo(), ObsConfig::default());
        s.access(0, 0);
        s.prefetch(PfEvent::Issued, 0, 3); // must be a silent no-op
        let rep = s.into_report(10).unwrap();
        assert!(!rep.metrics_json().contains("pf."));
    }

    #[test]
    fn prefetch_families_register_and_count_when_enabled() {
        let cfg = ObsConfig {
            prefetch: true,
            ..ObsConfig::default()
        };
        let s = Sink::recording(topo(), cfg);
        s.prefetch(PfEvent::Candidates, 1, 5);
        s.prefetch(PfEvent::Gated, 1, 2);
        s.prefetch(PfEvent::Issued, 1, 3);
        s.prefetch(PfEvent::Useful, 1, 1);
        s.prefetch(PfEvent::Late, 2, 1);
        s.prefetch(PfEvent::Harmful, 2, 1);
        s.prefetch(PfEvent::Dropped, 2, 1);
        s.prefetch(PfEvent::PredCorrect, 3, 4);
        s.prefetch(PfEvent::PredTotal, 3, 6);
        s.prefetch(PfEvent::PredTotal, 3, 0); // zero increments are free
        let rep = s.into_report(10).unwrap();
        let total = |name: &str| rep.counter_family(name).iter().sum::<u64>();
        assert_eq!(total("pf.candidates"), 5);
        assert_eq!(total("pf.gated"), 2);
        assert_eq!(total("pf.issued"), 3);
        assert_eq!(total("pf.useful"), 1);
        assert_eq!(total("pf.late"), 1);
        assert_eq!(total("pf.harmful"), 1);
        assert_eq!(total("pf.dropped"), 1);
        assert_eq!(total("pf.pred.correct"), 4);
        assert_eq!(total("pf.pred.total"), 6);
        // The counts land on the node that reported them.
        assert_eq!(rep.counter_family("pf.candidates")[1], 5);
        assert_eq!(rep.counter_family("pf.late")[2], 1);
    }

    #[test]
    fn windows_bucket_by_epoch() {
        let cfg = ObsConfig {
            epoch_cycles: 100,
            ..ObsConfig::default()
        };
        let s = Sink::recording(topo(), cfg);
        s.access(0, 0);
        s.access(99, 0);
        s.access(100, 0);
        s.mc_enqueue(0, 4, 50);
        s.mc_enqueue(0, 2, 60);
        let rep = s.into_report(200).unwrap();
        assert_eq!(
            rep.registry().series_by_name("win.accesses").unwrap().vals,
            vec![2, 1]
        );
        assert_eq!(
            rep.registry()
                .series_by_name("win.mc_queue_depth_peak")
                .unwrap()
                .vals,
            vec![4]
        );
    }
}
