//! A minimal JSON parser (no dependencies) and the Chrome-trace schema
//! validator built on it.
//!
//! The parser exists so exports can be checked — by tests and by the
//! `hoploc trace-validate` CLI used in CI — without adding a serde
//! dependency to the workspace. It handles the full JSON grammar except
//! `\u` surrogate pairs (kept as-is), which our exporters never emit.

use std::collections::HashMap;
use std::str::Chars;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element by index.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Arr(a) => a.get(i),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// String content.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as a non-negative integer, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }
}

struct Parser<'a> {
    it: std::iter::Peekable<Chars<'a>>,
    pos: usize,
}

/// Parse a JSON document. Returns a descriptive error with a character
/// offset on malformed input.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        it: src.chars().peekable(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.it.peek().is_some() {
        return Err(format!("trailing data at offset {}", p.pos));
    }
    Ok(v)
}

impl Parser<'_> {
    fn bump(&mut self) -> Option<char> {
        let c = self.it.next();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.it.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(g) if g == c => Ok(()),
            got => Err(format!(
                "expected {c:?} at offset {}, got {got:?}",
                self.pos
            )),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.it.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if *c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        for want in lit.chars() {
            self.expect(want)?;
        }
        Ok(v)
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.it.peek() == Some(&'}') {
            self.bump();
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Obj(members)),
                got => {
                    return Err(format!(
                        "expected ',' or '}}' at offset {}, got {got:?}",
                        self.pos
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.it.peek() == Some(&']') {
            self.bump();
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Arr(items)),
                got => {
                    return Err(format!(
                        "expected ',' or ']' at offset {}, got {got:?}",
                        self.pos
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| format!("bad \\u escape at offset {}", self.pos))?;
                            code = code * 16 + d;
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    got => return Err(format!("bad escape {got:?} at offset {}", self.pos)),
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let mut text = String::new();
        if self.it.peek() == Some(&'-') {
            text.push(self.bump().expect("peeked"));
        }
        while matches!(self.it.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            text.push(self.bump().expect("peeked"));
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?} at offset {}: {e}", self.pos))
    }
}

/// What a successful Chrome-trace validation observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChromeSummary {
    /// `"X"` (complete/span) events.
    pub span_events: usize,
    /// `"M"` (metadata) events.
    pub meta_events: usize,
    /// Distinct `(pid, tid)` lanes carrying span events.
    pub tracks: usize,
}

/// Validate a Chrome trace-event JSON document: well-formed JSON, a
/// `traceEvents` array, every event an object with a `ph` string, every
/// `"X"` event carrying string `name`/`cat` and non-negative numeric
/// `ts`/`dur`/`pid`/`tid`, and `ts` monotone non-decreasing within each
/// `(pid, tid)` lane.
pub fn validate_chrome_trace(src: &str) -> Result<ChromeSummary, String> {
    let root = parse(src)?;
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;
    let mut last_ts: HashMap<(u64, u64), u64> = HashMap::new();
    let mut summary = ChromeSummary {
        span_events: 0,
        meta_events: 0,
        tracks: 0,
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        match ph {
            "M" => summary.meta_events += 1,
            "X" => {
                for key in ["name", "cat"] {
                    ev.get(key)
                        .and_then(|v| v.as_str())
                        .ok_or_else(|| format!("event {i}: missing string {key}"))?;
                }
                let mut nums = [0u64; 4];
                for (slot, key) in ["ts", "dur", "pid", "tid"].iter().enumerate() {
                    nums[slot] = ev
                        .get(key)
                        .and_then(|v| v.as_u64())
                        .ok_or_else(|| format!("event {i}: missing non-negative {key}"))?;
                }
                let [ts, _dur, pid, tid] = nums;
                match last_ts.insert((pid, tid), ts) {
                    None => summary.tracks += 1,
                    Some(prev) if prev > ts => {
                        return Err(format!(
                            "event {i}: ts {ts} < {prev} on lane pid={pid} tid={tid}"
                        ));
                    }
                    Some(_) => {}
                }
                summary.span_events += 1;
            }
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": true, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().index(1).unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().index(2).unwrap().as_u64(), None);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "01a", "{} x"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn validator_accepts_monotone_lanes() {
        let src = r#"{"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 1, "tid": 0, "args": {"name": "c"}},
            {"ph": "X", "name": "a", "cat": "c", "ts": 1, "dur": 2, "pid": 1, "tid": 0, "args": {}},
            {"ph": "X", "name": "b", "cat": "c", "ts": 1, "dur": 0, "pid": 1, "tid": 0, "args": {}},
            {"ph": "X", "name": "c", "cat": "c", "ts": 0, "dur": 9, "pid": 1, "tid": 1, "args": {}}
        ]}"#;
        let s = validate_chrome_trace(src).unwrap();
        assert_eq!(
            s,
            ChromeSummary {
                span_events: 3,
                meta_events: 1,
                tracks: 2
            }
        );
    }

    #[test]
    fn validator_rejects_non_monotone_lane() {
        let src = r#"{"traceEvents": [
            {"ph": "X", "name": "a", "cat": "c", "ts": 5, "dur": 1, "pid": 1, "tid": 0, "args": {}},
            {"ph": "X", "name": "b", "cat": "c", "ts": 4, "dur": 1, "pid": 1, "tid": 0, "args": {}}
        ]}"#;
        let err = validate_chrome_trace(src).unwrap_err();
        assert!(err.contains("ts 4 < 5"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_fields() {
        let src = r#"{"traceEvents": [{"ph": "X", "name": "a", "cat": "c", "ts": 1}]}"#;
        assert!(validate_chrome_trace(src).is_err());
    }
}
