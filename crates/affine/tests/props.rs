//! Property-based tests of the integer linear algebra invariants that the
//! layout pass's correctness rests on. Deterministic randomized cases via
//! `hoploc-ptest` (the workspace's offline stand-in for proptest).

use hoploc_affine::{
    complete_unimodular, gcd, hermite_normal_form, nullspace, test_dependence, AffineAccess,
    Dependence, IMat, IVec,
};
use hoploc_ptest::{run_cases, SmallRng};

/// A small non-zero integer vector of length `len`.
fn small_vec(rng: &mut SmallRng, len: usize) -> IVec {
    loop {
        let v: Vec<i64> = (0..len).map(|_| rng.i64_in(-9..10)).collect();
        if v.iter().any(|&x| x != 0) {
            return IVec::new(v);
        }
    }
}

/// A small matrix of the given shape.
fn small_mat(rng: &mut SmallRng, rows: usize, cols: usize) -> IMat {
    IMat::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.i64_in(-6..7)).collect(),
    )
}

/// The rank of `m`: the number of non-zero rows of its Hermite normal
/// form (row echelon form under unimodular row operations).
fn rank(m: &IMat) -> usize {
    let (h, _) = hermite_normal_form(m);
    (0..h.rows())
        .filter(|&r| (0..h.cols()).any(|c| h[(r, c)] != 0))
        .count()
}

#[test]
fn completion_is_always_unimodular() {
    run_cases("completion_is_always_unimodular", 256, |rng| {
        let v = small_vec(rng, 4);
        let row = rng.usize_in(0..4);
        let u = complete_unimodular(&v, row).expect("non-zero vector completes");
        assert!(u.is_unimodular());
        assert_eq!(u.row(row), v.to_primitive());
    });
}

#[test]
fn completion_inverse_roundtrips() {
    run_cases("completion_inverse_roundtrips", 256, |rng| {
        let v = small_vec(rng, 3);
        let row = rng.usize_in(0..3);
        let u = complete_unimodular(&v, row).expect("non-zero vector completes");
        let inv = u.inverse_unimodular();
        assert_eq!(&u * &inv, IMat::identity(3));
        assert_eq!(&inv * &u, IMat::identity(3));
    });
}

#[test]
fn completion_roundtrips_for_random_primitive_vectors() {
    // For primitive v the completion embeds v exactly (no gcd division),
    // and conjugating the identity through U is lossless.
    run_cases(
        "completion_roundtrips_for_random_primitive_vectors",
        256,
        |rng| {
            let n = rng.usize_in(2..5);
            let v = small_vec(rng, n).to_primitive();
            let row = rng.usize_in(0..n);
            let u = complete_unimodular(&v, row).expect("non-zero vector completes");
            assert_eq!(u.row(row), v, "primitive vector must embed verbatim");
            let inv = u.inverse_unimodular();
            assert_eq!(&(&u * &inv) * &u, u, "U·U⁻¹·U must round-trip to U");
            // Recovering v through the inverse: (0,…,1,…,0)·U = row(U).
            let e = IVec::unit(n, row);
            assert_eq!(u.transpose().mul_vec(&e), v);
        },
    );
}

#[test]
fn nullspace_vectors_annihilate() {
    run_cases("nullspace_vectors_annihilate", 256, |rng| {
        let m = small_mat(rng, 2, 4);
        for b in nullspace(&m) {
            assert!(m.mul_vec(&b).is_zero(), "basis vector not in kernel");
            assert_eq!(b.gcd(), 1, "basis vectors are primitive");
        }
    });
}

#[test]
fn nullspace_dimension_equals_cols_minus_rank() {
    run_cases("nullspace_dimension_equals_cols_minus_rank", 256, |rng| {
        let rows = rng.usize_in(1..4);
        let cols = rng.usize_in(1..5);
        let m = small_mat(rng, rows, cols);
        let basis = nullspace(&m);
        assert_eq!(
            basis.len(),
            cols - rank(&m),
            "rank-nullity violated for {m:?}"
        );
        for b in &basis {
            assert!(m.mul_vec(b).is_zero());
        }
    });
}

#[test]
fn nullspace_dimension_bound() {
    run_cases("nullspace_dimension_bound", 256, |rng| {
        // rank + nullity = 3; nullity is 0 iff the matrix is nonsingular.
        let m = small_mat(rng, 3, 3);
        let basis = nullspace(&m);
        assert!(basis.len() <= 3);
        if m.det() != 0 {
            assert!(basis.is_empty(), "nonsingular matrix has trivial kernel");
        } else {
            assert!(!basis.is_empty(), "singular matrix has non-trivial kernel");
        }
    });
}

#[test]
fn hnf_is_a_unimodular_row_transform() {
    run_cases("hnf_is_a_unimodular_row_transform", 256, |rng| {
        let m = small_mat(rng, 3, 4);
        let (h, t) = hermite_normal_form(&m);
        assert!(t.is_unimodular());
        assert_eq!(&t * &m, h);
    });
}

#[test]
fn hnf_is_idempotent() {
    run_cases("hnf_is_idempotent", 256, |rng| {
        let rows = rng.usize_in(1..4);
        let cols = rng.usize_in(1..5);
        let m = small_mat(rng, rows, cols);
        let (h, _) = hermite_normal_form(&m);
        let (h2, t2) = hermite_normal_form(&h);
        assert_eq!(h2, h, "HNF must be a fixed point of itself for {m:?}");
        assert!(t2.is_unimodular());
    });
}

#[test]
fn det_is_multiplicative() {
    run_cases("det_is_multiplicative", 256, |rng| {
        let a = small_mat(rng, 3, 3);
        let b = small_mat(rng, 3, 3);
        assert_eq!((&a * &b).det(), a.det() * b.det());
    });
}

#[test]
fn transpose_preserves_det() {
    run_cases("transpose_preserves_det", 256, |rng| {
        let m = small_mat(rng, 3, 3);
        assert_eq!(m.det(), m.transpose().det());
    });
}

#[test]
fn gcd_divides_both() {
    run_cases("gcd_divides_both", 512, |rng| {
        let a = rng.i64_in(-1000..1000);
        let b = rng.i64_in(-1000..1000);
        let g = gcd(a, b);
        if g != 0 {
            assert_eq!(a % g, 0);
            assert_eq!(b % g, 0);
        } else {
            assert_eq!((a, b), (0, 0));
        }
    });
}

/// A random access of the given shape with small coefficients and offsets.
fn rand_access(rng: &mut SmallRng, rank: usize, depth: usize) -> AffineAccess {
    let rows: Vec<Vec<i64>> = (0..rank)
        .map(|_| (0..depth).map(|_| rng.i64_in(-3..4)).collect())
        .collect();
    let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
    let off: Vec<i64> = (0..rank).map(|_| rng.i64_in(-4..5)).collect();
    AffineAccess::new(IMat::from_rows(&refs), IVec::new(off))
}

/// All iteration points of the cube `[0, n)^depth`.
fn domain(depth: usize, n: i64) -> Vec<Vec<i64>> {
    let mut pts = vec![vec![]];
    for _ in 0..depth {
        pts = pts
            .into_iter()
            .flat_map(|p| {
                (0..n).map(move |v| {
                    let mut q = p.clone();
                    q.push(v);
                    q
                })
            })
            .collect();
    }
    pts
}

/// Whether any two iterations map the two accesses onto the same element.
fn collides_somewhere(a: &AffineAccess, b: &AffineAccess, iters: &[Vec<i64>]) -> bool {
    iters
        .iter()
        .any(|i1| iters.iter().any(|i2| a.eval_slice(i1) == b.eval_slice(i2)))
}

#[test]
fn independence_is_sound_against_exhaustive_enumeration() {
    // If the test says Independent, no pair of iterations in a small cube
    // may touch the same element: independence must never be overclaimed.
    run_cases("dependence-soundness", 400, |rng| {
        let depth = rng.usize_in(1..3);
        let rank = rng.usize_in(1..3);
        let a = rand_access(rng, rank, depth);
        let b = rand_access(rng, rank, depth);
        if test_dependence(&a, &b) == Dependence::Independent {
            let iters = domain(depth, 4);
            assert!(
                !collides_somewhere(&a, &b, &iters),
                "claimed Independent but {a:?} and {b:?} collide"
            );
        }
    });
}

#[test]
fn independence_is_symmetric() {
    // Whether two references are independent cannot depend on which one is
    // named first, and a uniform distance reverses sign under swapping.
    run_cases("dependence-symmetry", 400, |rng| {
        let depth = rng.usize_in(1..4);
        let rank = rng.usize_in(1..3);
        let a = rand_access(rng, rank, depth);
        let b = if rng.flip() {
            // Share a's matrix half the time to exercise the uniform path.
            AffineAccess::new(
                a.matrix().clone(),
                IVec::new((0..rank).map(|_| rng.i64_in(-4..5)).collect()),
            )
        } else {
            rand_access(rng, rank, depth)
        };
        let ab = test_dependence(&a, &b);
        let ba = test_dependence(&b, &a);
        assert_eq!(
            ab == Dependence::Independent,
            ba == Dependence::Independent,
            "asymmetric verdicts {ab:?} / {ba:?} for {a:?} and {b:?}"
        );
        if let (Dependence::Uniform(d), Dependence::Uniform(e)) = (&ab, &ba) {
            let neg: Vec<i64> = d.as_slice().iter().map(|x| -x).collect();
            assert_eq!(neg, e.as_slice(), "distances must be negations");
        }
    });
}

#[test]
fn uniform_distance_maps_sink_onto_source() {
    // Uniform(d) promises a(i + d) == b(i) for every iteration i.
    run_cases("uniform-distance", 400, |rng| {
        let depth = rng.usize_in(1..4);
        let rank = rng.usize_in(1..3);
        let a = rand_access(rng, rank, depth);
        let b = AffineAccess::new(
            a.matrix().clone(),
            IVec::new((0..rank).map(|_| rng.i64_in(-4..5)).collect()),
        );
        if let Dependence::Uniform(d) = test_dependence(&a, &b) {
            for i in domain(depth, 3) {
                let shifted: Vec<i64> = i.iter().zip(d.as_slice()).map(|(x, y)| x + y).collect();
                assert_eq!(
                    a.eval_slice(&shifted),
                    b.eval_slice(&i),
                    "distance {d:?} does not map {a:?} onto {b:?} at {i:?}"
                );
            }
        }
    });
}

#[test]
fn access_transform_commutes_with_eval() {
    run_cases("access_transform_commutes_with_eval", 256, |rng| {
        // (U·r)(i) == U·(r(i)) for any transformation matrix U.
        let m = small_mat(rng, 2, 2);
        let off: Vec<i64> = (0..2).map(|_| rng.i64_in(-4..5)).collect();
        let iv = IVec::new(vec![rng.i64_in(0..16), rng.i64_in(0..16)]);
        let access = AffineAccess::new(m, IVec::new(off));
        let u = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let direct = access.transformed(&u).eval(&iv);
        let indirect = u.mul_vec(&access.eval(&iv));
        assert_eq!(direct, indirect);
    });
}
