//! Property-based tests of the integer linear algebra invariants that the
//! layout pass's correctness rests on.

use hoploc_affine::{
    complete_unimodular, gcd, hermite_normal_form, nullspace, AffineAccess, IMat, IVec,
};
use proptest::prelude::*;

/// Strategy: a small non-zero integer vector.
fn small_vec(len: usize) -> impl Strategy<Value = IVec> {
    proptest::collection::vec(-9i64..=9, len)
        .prop_filter("non-zero", |v| v.iter().any(|&x| x != 0))
        .prop_map(IVec::new)
}

/// Strategy: a small matrix of the given shape.
fn small_mat(rows: usize, cols: usize) -> impl Strategy<Value = IMat> {
    proptest::collection::vec(-6i64..=6, rows * cols)
        .prop_map(move |data| IMat::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn completion_is_always_unimodular(v in small_vec(4), row in 0usize..4) {
        let u = complete_unimodular(&v, row).expect("non-zero vector completes");
        prop_assert!(u.is_unimodular());
        prop_assert_eq!(u.row(row), v.to_primitive());
    }

    #[test]
    fn completion_inverse_roundtrips(v in small_vec(3), row in 0usize..3) {
        let u = complete_unimodular(&v, row).expect("non-zero vector completes");
        let inv = u.inverse_unimodular();
        prop_assert_eq!(&u * &inv, IMat::identity(3));
    }

    #[test]
    fn nullspace_vectors_annihilate(m in small_mat(2, 4)) {
        for b in nullspace(&m) {
            prop_assert!(m.mul_vec(&b).is_zero(), "basis vector not in kernel");
            prop_assert_eq!(b.gcd(), 1, "basis vectors are primitive");
        }
    }

    #[test]
    fn nullspace_dimension_bound(m in small_mat(3, 3)) {
        // rank + nullity = 3; nullity is 3 iff the matrix is zero.
        let basis = nullspace(&m);
        prop_assert!(basis.len() <= 3);
        if m.det() != 0 {
            prop_assert!(basis.is_empty(), "nonsingular matrix has trivial kernel");
        } else {
            prop_assert!(!basis.is_empty(), "singular matrix has non-trivial kernel");
        }
    }

    #[test]
    fn hnf_is_a_unimodular_row_transform(m in small_mat(3, 4)) {
        let (h, t) = hermite_normal_form(&m);
        prop_assert!(t.is_unimodular());
        prop_assert_eq!(&t * &m, h);
    }

    #[test]
    fn det_is_multiplicative(a in small_mat(3, 3), b in small_mat(3, 3)) {
        prop_assert_eq!((&a * &b).det(), a.det() * b.det());
    }

    #[test]
    fn transpose_preserves_det(m in small_mat(3, 3)) {
        prop_assert_eq!(m.det(), m.transpose().det());
    }

    #[test]
    fn gcd_divides_both(a in -1000i64..1000, b in -1000i64..1000) {
        let g = gcd(a, b);
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        } else {
            prop_assert_eq!((a, b), (0, 0));
        }
    }

    #[test]
    fn access_transform_commutes_with_eval(
        m in small_mat(2, 2),
        off in proptest::collection::vec(-4i64..=4, 2),
        i0 in 0i64..16,
        i1 in 0i64..16,
    ) {
        // (U·r)(i) == U·(r(i)) for any transformation matrix U.
        let access = AffineAccess::new(m, IVec::new(off));
        let u = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let iv = IVec::new(vec![i0, i1]);
        let direct = access.transformed(&u).eval(&iv);
        let indirect = u.mul_vec(&access.eval(&iv));
        prop_assert_eq!(direct, indirect);
    }
}
