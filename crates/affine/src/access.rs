//! Affine array access functions `r⃗ = A·i⃗ + o⃗`.

use crate::matrix::{IMat, IVec};
use std::fmt;

/// An affine array reference: the data vector touched by iteration `i⃗` is
/// `A·i⃗ + o⃗`, where `A` is the *access matrix* (§5.1 of the paper).
///
/// # Examples
///
/// ```
/// use hoploc_affine::{AffineAccess, IMat, IVec};
///
/// // Reference A[i1][2*i2 + 1] from the paper, §5.1.
/// let acc = AffineAccess::new(
///     IMat::from_rows(&[&[1, 0], &[0, 2]]),
///     IVec::new(vec![0, 1]),
/// );
/// assert_eq!(acc.eval(&IVec::new(vec![1, 2])), IVec::new(vec![1, 5]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AffineAccess {
    matrix: IMat,
    offset: IVec,
}

impl AffineAccess {
    /// Creates an access function from its matrix and offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset.len() != matrix.rows()`.
    pub fn new(matrix: IMat, offset: IVec) -> Self {
        assert_eq!(
            offset.len(),
            matrix.rows(),
            "offset length must equal the number of array dimensions"
        );
        Self { matrix, offset }
    }

    /// The identity access `X[i1][i2]…` for an `n`-deep nest over an
    /// `n`-dimensional array.
    pub fn identity(n: usize) -> Self {
        Self::new(IMat::identity(n), IVec::zeros(n))
    }

    /// The access matrix `A`.
    pub fn matrix(&self) -> &IMat {
        &self.matrix
    }

    /// The constant offset `o⃗`.
    pub fn offset(&self) -> &IVec {
        &self.offset
    }

    /// Array rank (number of subscripts).
    pub fn rank(&self) -> usize {
        self.matrix.rows()
    }

    /// Loop depth this access expects.
    pub fn depth(&self) -> usize {
        self.matrix.cols()
    }

    /// Evaluates the data vector for an iteration vector.
    ///
    /// # Panics
    ///
    /// Panics if `i.len() != self.depth()`.
    pub fn eval(&self, i: &IVec) -> IVec {
        &self.matrix.mul_vec(i) + &self.offset
    }

    /// Evaluates from a plain slice iteration vector.
    pub fn eval_slice(&self, i: &[i64]) -> IVec {
        self.eval(&IVec::from(i))
    }

    /// Applies a layout transformation `U`: the transformed reference is
    /// `r⃗' = U·r⃗ = (U·A)·i⃗ + U·o⃗` (§5.2).
    pub fn transformed(&self, u: &IMat) -> AffineAccess {
        AffineAccess::new(u * &self.matrix, u.mul_vec(&self.offset))
    }

    /// The submatrix `B`: the access matrix with the `u`-th column (the
    /// iteration partition dimension) removed (§5.2, Eq. 3).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range or the nest has depth 1 (a 1-deep
    /// parallel nest has no sequential dimensions; its `B` is empty and
    /// every layout satisfies it).
    pub fn submatrix(&self, u: usize) -> IMat {
        self.matrix.drop_col(u)
    }

    /// The inclusive per-subscript value range (image box) of this access
    /// over an iteration box: subscript `d` ranges over
    /// `[Σ min(a_dk·lo_k, a_dk·hi_k) + o_d, Σ max(a_dk·lo_k, a_dk·hi_k) + o_d]`.
    ///
    /// The box is exact for accesses whose subscripts each depend on a
    /// single iterator (every access in the bundled suite) and an
    /// over-approximation otherwise — interval arithmetic cannot see
    /// correlations between iterators. This is the footprint query the
    /// static locality estimator (`hoploc-est`) and the bounds lints build
    /// on.
    ///
    /// # Panics
    ///
    /// Panics if `ranges.len() != self.depth()`.
    pub fn subscript_bounds(&self, ranges: &[(i64, i64)]) -> Vec<(i64, i64)> {
        assert_eq!(ranges.len(), self.depth(), "one range per iterator");
        (0..self.rank())
            .map(|d| {
                let (mut lo, mut hi) = (self.offset[d], self.offset[d]);
                for (k, &(rlo, rhi)) in ranges.iter().enumerate() {
                    let a = self.matrix[(d, k)];
                    let (t0, t1) = (a.saturating_mul(rlo), a.saturating_mul(rhi));
                    lo = lo.saturating_add(t0.min(t1));
                    hi = hi.saturating_add(t0.max(t1));
                }
                (lo, hi)
            })
            .collect()
    }

    /// Whether any subscript of this access depends on iterator `k` —
    /// i.e. column `k` of the access matrix is non-zero. References that do
    /// *not* depend on the parallel iterator are broadcast: every core
    /// touches the same elements.
    pub fn depends_on(&self, k: usize) -> bool {
        (0..self.rank()).any(|d| self.matrix[(d, k)] != 0)
    }
}

impl fmt::Debug for AffineAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AffineAccess(A={:?}, o={:?})", self.matrix, self.offset)
    }
}

impl fmt::Display for AffineAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rank() {
            write!(f, "[")?;
            let mut wrote = false;
            for c in 0..self.depth() {
                let k = self.matrix[(r, c)];
                if k == 0 {
                    continue;
                }
                if wrote {
                    write!(f, "{}", if k < 0 { " - " } else { " + " })?;
                    if k.abs() != 1 {
                        write!(f, "{}*", k.abs())?;
                    }
                } else {
                    if k == -1 {
                        write!(f, "-")?;
                    } else if k != 1 {
                        write!(f, "{k}*")?;
                    }
                    wrote = true;
                }
                write!(f, "i{c}")?;
            }
            let o = self.offset[r];
            if !wrote {
                write!(f, "{o}")?;
            } else if o != 0 {
                write!(f, " {} {}", if o < 0 { "-" } else { "+" }, o.abs())?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_evaluates() {
        let acc = AffineAccess::new(IMat::from_rows(&[&[1, 0], &[0, 2]]), IVec::new(vec![0, 1]));
        assert_eq!(acc.eval(&IVec::new(vec![1, 2])), IVec::new(vec![1, 5]));
    }

    #[test]
    fn transform_composes_linearly() {
        let acc = AffineAccess::identity(2);
        let u = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let t = acc.transformed(&u);
        // Swapped subscripts: X'[i2][i1].
        assert_eq!(t.eval(&IVec::new(vec![3, 9])), IVec::new(vec![9, 3]));
    }

    #[test]
    fn transform_applies_to_offset() {
        let acc = AffineAccess::new(IMat::identity(2), IVec::new(vec![1, -1]));
        let u = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let t = acc.transformed(&u);
        assert_eq!(t.offset(), &IVec::new(vec![-1, 1]));
    }

    #[test]
    fn subscript_bounds_are_the_image_box() {
        // X[i0 - i1][2*i1 + 1] over i0 ∈ [0,9], i1 ∈ [−2,3].
        let acc = AffineAccess::new(IMat::from_rows(&[&[1, -1], &[0, 2]]), IVec::new(vec![0, 1]));
        let b = acc.subscript_bounds(&[(0, 9), (-2, 3)]);
        assert_eq!(b, vec![(-3, 11), (-3, 7)]);
    }

    #[test]
    fn depends_on_reads_matrix_columns() {
        let acc = AffineAccess::new(IMat::from_rows(&[&[0, 1], &[0, 2]]), IVec::zeros(2));
        assert!(!acc.depends_on(0), "column 0 is zero: broadcast over i0");
        assert!(acc.depends_on(1));
    }

    #[test]
    fn display_shows_subscripts() {
        let acc = AffineAccess::new(IMat::from_rows(&[&[1, 0], &[0, 2]]), IVec::new(vec![0, 1]));
        assert_eq!(acc.to_string(), "[i0][2*i1 + 1]");
    }
}
