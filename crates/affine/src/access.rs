//! Affine array access functions `r⃗ = A·i⃗ + o⃗`.

use crate::matrix::{IMat, IVec};
use std::fmt;

/// An affine array reference: the data vector touched by iteration `i⃗` is
/// `A·i⃗ + o⃗`, where `A` is the *access matrix* (§5.1 of the paper).
///
/// # Examples
///
/// ```
/// use hoploc_affine::{AffineAccess, IMat, IVec};
///
/// // Reference A[i1][2*i2 + 1] from the paper, §5.1.
/// let acc = AffineAccess::new(
///     IMat::from_rows(&[&[1, 0], &[0, 2]]),
///     IVec::new(vec![0, 1]),
/// );
/// assert_eq!(acc.eval(&IVec::new(vec![1, 2])), IVec::new(vec![1, 5]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AffineAccess {
    matrix: IMat,
    offset: IVec,
}

impl AffineAccess {
    /// Creates an access function from its matrix and offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset.len() != matrix.rows()`.
    pub fn new(matrix: IMat, offset: IVec) -> Self {
        assert_eq!(
            offset.len(),
            matrix.rows(),
            "offset length must equal the number of array dimensions"
        );
        Self { matrix, offset }
    }

    /// The identity access `X[i1][i2]…` for an `n`-deep nest over an
    /// `n`-dimensional array.
    pub fn identity(n: usize) -> Self {
        Self::new(IMat::identity(n), IVec::zeros(n))
    }

    /// The access matrix `A`.
    pub fn matrix(&self) -> &IMat {
        &self.matrix
    }

    /// The constant offset `o⃗`.
    pub fn offset(&self) -> &IVec {
        &self.offset
    }

    /// Array rank (number of subscripts).
    pub fn rank(&self) -> usize {
        self.matrix.rows()
    }

    /// Loop depth this access expects.
    pub fn depth(&self) -> usize {
        self.matrix.cols()
    }

    /// Evaluates the data vector for an iteration vector.
    ///
    /// # Panics
    ///
    /// Panics if `i.len() != self.depth()`.
    pub fn eval(&self, i: &IVec) -> IVec {
        &self.matrix.mul_vec(i) + &self.offset
    }

    /// Evaluates from a plain slice iteration vector.
    pub fn eval_slice(&self, i: &[i64]) -> IVec {
        self.eval(&IVec::from(i))
    }

    /// Applies a layout transformation `U`: the transformed reference is
    /// `r⃗' = U·r⃗ = (U·A)·i⃗ + U·o⃗` (§5.2).
    pub fn transformed(&self, u: &IMat) -> AffineAccess {
        AffineAccess::new(u * &self.matrix, u.mul_vec(&self.offset))
    }

    /// The submatrix `B`: the access matrix with the `u`-th column (the
    /// iteration partition dimension) removed (§5.2, Eq. 3).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range or the nest has depth 1 (a 1-deep
    /// parallel nest has no sequential dimensions; its `B` is empty and
    /// every layout satisfies it).
    pub fn submatrix(&self, u: usize) -> IMat {
        self.matrix.drop_col(u)
    }
}

impl fmt::Debug for AffineAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AffineAccess(A={:?}, o={:?})", self.matrix, self.offset)
    }
}

impl fmt::Display for AffineAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rank() {
            write!(f, "[")?;
            let mut wrote = false;
            for c in 0..self.depth() {
                let k = self.matrix[(r, c)];
                if k == 0 {
                    continue;
                }
                if wrote {
                    write!(f, "{}", if k < 0 { " - " } else { " + " })?;
                    if k.abs() != 1 {
                        write!(f, "{}*", k.abs())?;
                    }
                } else {
                    if k == -1 {
                        write!(f, "-")?;
                    } else if k != 1 {
                        write!(f, "{k}*")?;
                    }
                    wrote = true;
                }
                write!(f, "i{c}")?;
            }
            let o = self.offset[r];
            if !wrote {
                write!(f, "{o}")?;
            } else if o != 0 {
                write!(f, " {} {}", if o < 0 { "-" } else { "+" }, o.abs())?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_evaluates() {
        let acc = AffineAccess::new(IMat::from_rows(&[&[1, 0], &[0, 2]]), IVec::new(vec![0, 1]));
        assert_eq!(acc.eval(&IVec::new(vec![1, 2])), IVec::new(vec![1, 5]));
    }

    #[test]
    fn transform_composes_linearly() {
        let acc = AffineAccess::identity(2);
        let u = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let t = acc.transformed(&u);
        // Swapped subscripts: X'[i2][i1].
        assert_eq!(t.eval(&IVec::new(vec![3, 9])), IVec::new(vec![9, 3]));
    }

    #[test]
    fn transform_applies_to_offset() {
        let acc = AffineAccess::new(IMat::identity(2), IVec::new(vec![1, -1]));
        let u = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let t = acc.transformed(&u);
        assert_eq!(t.offset(), &IVec::new(vec![-1, 1]));
    }

    #[test]
    fn display_shows_subscripts() {
        let acc = AffineAccess::new(IMat::from_rows(&[&[1, 0], &[0, 2]]), IVec::new(vec![0, 1]));
        assert_eq!(acc.to_string(), "[i0][2*i1 + 1]");
    }
}
