//! Parallelized affine loop nests and their statements.
//!
//! A [`LoopNest`] is an `m`-deep rectangular-ish nest (bounds are affine in
//! enclosing iterators) with one *parallel* dimension `u` — the iteration
//! partition dimension of §5.1 — distributed block-wise across cores, as in
//! OpenMP static scheduling.

use crate::access::AffineAccess;
use crate::expr::AffineExpr;
use crate::matrix::IVec;
use std::fmt;

/// Identifies an array within a [`crate::Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ArrayId(pub usize);

/// Identifies an index table (for indexed references) within a
/// [`crate::Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TableId(pub usize);

/// Whether a reference reads or writes its array.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RefKind {
    /// The reference loads from the array.
    Read,
    /// The reference stores to the array.
    Write,
}

/// How a reference computes its subscripts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AccessFn {
    /// A fully affine reference `A·i⃗ + o⃗`.
    Affine(AffineAccess),
    /// An indexed reference `X[T[f(i⃗)]]` into a one-dimensional array:
    /// the subscript is fetched from index table `table` at the affine
    /// position `pos` (§5.4 — handled by profile-guided affine
    /// approximation in the layout pass).
    Indexed {
        /// The index table supplying subscript values.
        table: TableId,
        /// Affine position of the lookup within the table.
        pos: AffineExpr,
    },
}

impl AccessFn {
    /// Returns the affine access if this reference is affine.
    pub fn as_affine(&self) -> Option<&AffineAccess> {
        match self {
            AccessFn::Affine(a) => Some(a),
            AccessFn::Indexed { .. } => None,
        }
    }

    /// Returns `true` for indexed (non-affine) references.
    pub fn is_indexed(&self) -> bool {
        matches!(self, AccessFn::Indexed { .. })
    }
}

/// A single array reference inside a statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayRef {
    /// The referenced array.
    pub array: ArrayId,
    /// Subscript computation.
    pub access: AccessFn,
    /// Read or write.
    pub kind: RefKind,
}

impl ArrayRef {
    /// Convenience constructor for an affine read.
    pub fn read(array: ArrayId, access: AffineAccess) -> Self {
        Self {
            array,
            access: AccessFn::Affine(access),
            kind: RefKind::Read,
        }
    }

    /// Convenience constructor for an affine write.
    pub fn write(array: ArrayId, access: AffineAccess) -> Self {
        Self {
            array,
            access: AccessFn::Affine(access),
            kind: RefKind::Write,
        }
    }

    /// Convenience constructor for an indexed read `X[T[pos]]`.
    pub fn indexed_read(array: ArrayId, table: TableId, pos: AffineExpr) -> Self {
        Self {
            array,
            access: AccessFn::Indexed { table, pos },
            kind: RefKind::Read,
        }
    }
}

/// A statement: the references it makes per iteration plus the amount of
/// pure compute between them (used by the simulator to space out memory
/// operations).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Statement {
    /// References executed each iteration, in order.
    pub refs: Vec<ArrayRef>,
    /// Compute cycles consumed per iteration after issuing the references.
    pub compute_cycles: u32,
}

impl Statement {
    /// Creates a statement with the given references and compute cost.
    pub fn new(refs: Vec<ArrayRef>, compute_cycles: u32) -> Self {
        Self {
            refs,
            compute_cycles,
        }
    }
}

/// One loop of a nest with half-open affine bounds `[lower, upper)` and
/// unit step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Loop {
    /// Inclusive lower bound.
    pub lower: AffineExpr,
    /// Exclusive upper bound.
    pub upper: AffineExpr,
}

impl Loop {
    /// A loop with constant bounds `[lo, hi)`.
    pub fn constant(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "loop bounds must be ordered");
        Self {
            lower: AffineExpr::constant(lo),
            upper: AffineExpr::constant(hi),
        }
    }

    /// A loop with affine bounds.
    pub fn new(lower: AffineExpr, upper: AffineExpr) -> Self {
        Self { lower, upper }
    }
}

/// A parallelized affine loop nest.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LoopNest {
    loops: Vec<Loop>,
    parallel_dim: usize,
    body: Vec<Statement>,
    weight: u64,
}

impl LoopNest {
    /// Creates a nest.
    ///
    /// `parallel_dim` is the iteration partition dimension `u` (§5.1): that
    /// loop is divided into contiguous chunks across cores. Its bounds must
    /// be constant (independent of enclosing iterators), matching the
    /// paper's block-cyclic distribution with `w = 1`.
    ///
    /// `weight` counts how many times the whole nest executes (e.g. an
    /// enclosing sequential time-step loop); it scales trip-count-based
    /// reference weights (§5.2, *Multiple Array References*).
    ///
    /// # Panics
    ///
    /// Panics if `loops` is empty, `parallel_dim` is out of range, or the
    /// parallel loop's bounds are not constant.
    pub fn new(loops: Vec<Loop>, parallel_dim: usize, body: Vec<Statement>, weight: u64) -> Self {
        assert!(!loops.is_empty(), "loop nest must have at least one loop");
        assert!(
            parallel_dim < loops.len(),
            "parallel dimension out of range"
        );
        assert!(
            loops[parallel_dim].lower.is_constant() && loops[parallel_dim].upper.is_constant(),
            "parallel loop bounds must be constant for block distribution"
        );
        Self {
            loops,
            parallel_dim,
            body,
            weight,
        }
    }

    /// Nest depth `m`.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// The iteration partition dimension `u`.
    pub fn parallel_dim(&self) -> usize {
        self.parallel_dim
    }

    /// The loops, outermost first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The statements in the body.
    pub fn body(&self) -> &[Statement] {
        &self.body
    }

    /// The nest's execution weight (outer sequential repetitions).
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// The constant bounds `[lo, hi)` of the parallel loop.
    pub fn parallel_bounds(&self) -> (i64, i64) {
        let l = &self.loops[self.parallel_dim];
        (l.lower.eval(&[]), l.upper.eval(&[]))
    }

    /// Conservative inclusive value range of every iterator, outermost
    /// first, by interval-evaluating each loop's affine bounds over the
    /// ranges of its enclosing iterators.
    ///
    /// A returned range with `lo > hi` means that loop's body can never
    /// execute (an empty iteration domain). Ranges are an over-
    /// approximation for triangular nests: every executed iteration lies
    /// within them, but not every point within them is executed.
    pub fn iteration_ranges(&self) -> Vec<(i64, i64)> {
        let mut ranges: Vec<(i64, i64)> = Vec::with_capacity(self.depth());
        for l in &self.loops {
            let (lo_min, _) = l.lower.range(&ranges);
            let (_, hi_max) = l.upper.range(&ranges);
            // Half-open [lower, upper) bounds: largest reachable value is
            // upper − 1.
            ranges.push((lo_min, hi_max.saturating_sub(1)));
        }
        ranges
    }

    /// Estimated trip count of each loop, evaluating affine bounds with
    /// enclosing iterators at their midpoints.
    pub fn trip_count_estimates(&self) -> Vec<i64> {
        let mut mids: Vec<i64> = Vec::with_capacity(self.depth());
        let mut trips = Vec::with_capacity(self.depth());
        for l in &self.loops {
            let lo = l.lower.eval(&mids);
            let hi = l.upper.eval(&mids);
            trips.push((hi - lo).max(0));
            mids.push(lo + (hi - lo) / 2);
        }
        trips
    }

    /// Estimated total number of iterations of the nest, including its
    /// weight. This is the `n_j` of §5.2 used for reference weighting.
    pub fn iteration_estimate(&self) -> u64 {
        let per_pass: i64 = self.trip_count_estimates().iter().product();
        per_pass.max(0) as u64 * self.weight
    }

    /// The contiguous chunk `[lo, hi)` of the parallel loop assigned to
    /// `core` out of `n_cores` under block distribution. The last chunk may
    /// be smaller (§5.1).
    pub fn chunk_for_core(&self, core: usize, n_cores: usize) -> (i64, i64) {
        assert!(n_cores > 0 && core < n_cores, "core index out of range");
        let (lo, hi) = self.parallel_bounds();
        let total = (hi - lo).max(0);
        let chunk = (total + n_cores as i64 - 1) / n_cores.max(1) as i64;
        let c_lo = lo + chunk * core as i64;
        let c_hi = (c_lo + chunk).min(hi);
        (c_lo.min(hi), c_hi)
    }

    /// Walks the iterations assigned to one core in lexicographic order,
    /// optionally subsampled.
    ///
    /// `strides[k]` advances loop `k` by that step (use `1` everywhere for
    /// the exact iteration set; larger strides produce a uniform sample used
    /// to keep simulation traces tractable). The parallel dimension is
    /// restricted to the core's block chunk.
    ///
    /// The callback receives the current iteration vector.
    pub fn walk_core_iterations<F>(&self, core: usize, n_cores: usize, strides: &[i64], mut f: F)
    where
        F: FnMut(&[i64]),
    {
        assert_eq!(strides.len(), self.depth(), "one stride per loop required");
        assert!(strides.iter().all(|&s| s >= 1), "strides must be >= 1");
        let (c_lo, c_hi) = self.chunk_for_core(core, n_cores);
        let mut iter = vec![0i64; self.depth()];
        self.walk_rec(0, c_lo, c_hi, strides, &mut iter, &mut f);
    }

    fn walk_rec<F>(
        &self,
        depth: usize,
        c_lo: i64,
        c_hi: i64,
        strides: &[i64],
        iter: &mut Vec<i64>,
        f: &mut F,
    ) where
        F: FnMut(&[i64]),
    {
        if depth == self.depth() {
            f(iter);
            return;
        }
        let (lo, hi) = if depth == self.parallel_dim {
            (c_lo, c_hi)
        } else {
            let prefix = &iter[..depth];
            (
                self.loops[depth].lower.eval(prefix),
                self.loops[depth].upper.eval(prefix),
            )
        };
        let mut v = lo;
        while v < hi {
            iter[depth] = v;
            iter.truncate(depth + 1);
            iter.resize(self.depth(), 0);
            self.walk_rec(depth + 1, c_lo, c_hi, strides, iter, f);
            v += strides[depth];
        }
    }

    /// Iterates over all affine references in the body.
    pub fn affine_refs(&self) -> impl Iterator<Item = (&ArrayRef, &AffineAccess)> {
        self.body
            .iter()
            .flat_map(|s| s.refs.iter())
            .filter_map(|r| match &r.access {
                AccessFn::Affine(a) => Some((r, a)),
                AccessFn::Indexed { .. } => None,
            })
    }

    /// The iteration-space hyperplane vector `h⃗_I` for this nest: the unit
    /// row vector selecting the parallel dimension (§5.1).
    pub fn iteration_hyperplane(&self) -> IVec {
        IVec::unit(self.depth(), self.parallel_dim)
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, l) in self.loops.iter().enumerate() {
            for _ in 0..k {
                write!(f, "  ")?;
            }
            writeln!(
                f,
                "for i{k} in {}..{}{}",
                l.lower,
                l.upper,
                if k == self.parallel_dim {
                    "  // parallel"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_nest(n: i64) -> LoopNest {
        LoopNest::new(
            vec![Loop::constant(0, n), Loop::constant(0, n)],
            0,
            vec![Statement::new(
                vec![ArrayRef::read(ArrayId(0), AffineAccess::identity(2))],
                1,
            )],
            1,
        )
    }

    #[test]
    fn chunking_is_block_contiguous() {
        let nest = square_nest(100);
        let mut covered = Vec::new();
        for core in 0..4 {
            let (lo, hi) = nest.chunk_for_core(core, 4);
            covered.push((lo, hi));
        }
        assert_eq!(covered, vec![(0, 25), (25, 50), (50, 75), (75, 100)]);
    }

    #[test]
    fn chunking_last_chunk_smaller() {
        let nest = square_nest(10);
        // 10 iterations over 4 cores: chunk = 3 → 3,3,3,1.
        let sizes: Vec<i64> = (0..4)
            .map(|c| {
                let (lo, hi) = nest.chunk_for_core(c, 4);
                hi - lo
            })
            .collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn walk_visits_all_core_iterations() {
        let nest = square_nest(8);
        let mut count = 0;
        nest.walk_core_iterations(1, 4, &[1, 1], |it| {
            assert!((2..4).contains(&it[0]));
            assert!((0..8).contains(&it[1]));
            count += 1;
        });
        assert_eq!(count, 2 * 8);
    }

    #[test]
    fn walk_respects_strides() {
        let nest = square_nest(8);
        let mut count = 0;
        nest.walk_core_iterations(0, 1, &[2, 4], |_| count += 1);
        assert_eq!(count, 4 * 2);
    }

    #[test]
    fn triangular_bounds_evaluate_per_prefix() {
        // for i0 in 0..4 (parallel), for i1 in 0..i0
        let nest = LoopNest::new(
            vec![
                Loop::constant(0, 4),
                Loop::new(AffineExpr::constant(0), AffineExpr::var(1, 0)),
            ],
            0,
            vec![],
            1,
        );
        let mut visits = Vec::new();
        nest.walk_core_iterations(0, 1, &[1, 1], |it| visits.push((it[0], it[1])));
        assert_eq!(visits, vec![(1, 0), (2, 0), (2, 1), (3, 0), (3, 1), (3, 2)]);
    }

    #[test]
    fn iteration_ranges_cover_triangular_nests() {
        // for i0 in 0..4, for i1 in 0..i0: i1 reaches at most 2.
        let nest = LoopNest::new(
            vec![
                Loop::constant(0, 4),
                Loop::new(AffineExpr::constant(0), AffineExpr::var(1, 0)),
            ],
            0,
            vec![],
            1,
        );
        assert_eq!(nest.iteration_ranges(), vec![(0, 3), (0, 2)]);
    }

    #[test]
    fn iteration_ranges_flag_empty_domains() {
        let nest = LoopNest::new(vec![Loop::constant(5, 5)], 0, vec![], 1);
        let r = nest.iteration_ranges();
        assert!(r[0].0 > r[0].1, "empty loop must yield an empty range");
    }

    #[test]
    fn iteration_estimate_scales_with_weight() {
        let nest = LoopNest::new(
            vec![Loop::constant(0, 10), Loop::constant(0, 10)],
            0,
            vec![],
            5,
        );
        assert_eq!(nest.iteration_estimate(), 500);
    }

    #[test]
    fn iteration_hyperplane_is_unit_vector() {
        let nest = square_nest(4);
        assert_eq!(nest.iteration_hyperplane(), IVec::unit(2, 0));
    }

    #[test]
    fn affine_refs_skips_indexed() {
        let nest = LoopNest::new(
            vec![Loop::constant(0, 4)],
            0,
            vec![Statement::new(
                vec![
                    ArrayRef::read(ArrayId(0), AffineAccess::identity(1)),
                    ArrayRef::indexed_read(ArrayId(1), TableId(0), AffineExpr::var(1, 0)),
                ],
                0,
            )],
            1,
        );
        assert_eq!(nest.affine_refs().count(), 1);
    }
}
