//! Array dependence analysis.
//!
//! The paper's §1 motivates data-layout transformation over loop
//! restructuring: "loop transformations are constrained by data and
//! control dependences. In contrast, data transformations are essentially
//! a kind of renaming and not affected by dependences." This module makes
//! that contrast checkable: it computes dependence distance vectors
//! between reference pairs, decides loop-permutation legality from them,
//! and (trivially, by construction) shows that any bijective data-layout
//! transformation preserves every dependence.
//!
//! The analysis handles the common *uniform* case exactly — two references
//! with the same access matrix and constant offset difference — and falls
//! back to a conservative GCD-based independence test otherwise.

use crate::access::AffineAccess;
use crate::matrix::{gcd, IVec};
use crate::nest::{ArrayId, LoopNest, RefKind};

/// The result of testing a pair of references for dependence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Dependence {
    /// No iteration pair can touch the same element.
    Independent,
    /// Same element touched at a constant iteration distance: a *uniform*
    /// dependence with the given distance vector (source to sink).
    Uniform(IVec),
    /// A dependence may exist but has no constant distance (coupled
    /// subscripts, parameterized offsets, …).
    Unknown,
}

impl Dependence {
    /// Whether the dependence permits parallel execution of loop `u`:
    /// true when the carried distance at `u` is zero (loop-independent) or
    /// no dependence exists at all.
    pub fn permits_parallel(&self, u: usize) -> bool {
        match self {
            Dependence::Independent => true,
            Dependence::Uniform(d) => u < d.len() && d[u] == 0,
            Dependence::Unknown => false,
        }
    }
}

/// Tests two references (to the same array) for dependence.
///
/// Exact for the uniform case (`A₁ == A₂`); otherwise applies the GCD
/// test row-wise and returns [`Dependence::Unknown`] when it cannot prove
/// independence.
pub fn test_dependence(a: &AffineAccess, b: &AffineAccess) -> Dependence {
    if a.rank() != b.rank() || a.depth() != b.depth() {
        return Dependence::Unknown;
    }
    if a.matrix() == b.matrix() {
        // Uniform: A·i₁ + o₁ = A·i₂ + o₂ ⇔ A·(i₁ − i₂) = o₂ − o₁.
        let diff = b.offset() - a.offset();
        // Solve A·d = diff for a constant d when A has full column rank on
        // its non-zero columns; handle the ubiquitous case where each
        // iterator appears in at most one subscript with coefficient ±1…
        if let Some(d) = solve_uniform(a, &diff) {
            return if d.is_zero() && diff.is_zero() {
                // Same element in the same iteration: output/flow within
                // one statement instance — distance zero.
                Dependence::Uniform(IVec::zeros(a.depth()))
            } else {
                Dependence::Uniform(d)
            };
        }
        // No integer solution means no iteration pair collides.
        if !has_integer_solution(a, &diff) {
            return Dependence::Independent;
        }
        return Dependence::Unknown;
    }
    // Different access matrices: row-wise GCD test for a quick
    // independence proof.
    for r in 0..a.rank() {
        let mut g = 0i64;
        for c in 0..a.depth() {
            g = gcd(g, a.matrix()[(r, c)]);
            g = gcd(g, b.matrix()[(r, c)]);
        }
        let rhs = b.offset()[r] - a.offset()[r];
        if g != 0 && rhs % g != 0 {
            return Dependence::Independent;
        }
        if g == 0 && rhs != 0 {
            return Dependence::Independent;
        }
    }
    Dependence::Unknown
}

/// Attempts to solve `A·d = diff` for a unique constant `d`, exploiting
/// the single-iterator-per-subscript structure of typical stencil
/// accesses.
fn solve_uniform(a: &AffineAccess, diff: &IVec) -> Option<IVec> {
    let mut d = vec![0i64; a.depth()];
    let mut solved = vec![false; a.depth()];
    for r in 0..a.rank() {
        // Find the single non-zero coefficient in this row.
        let nz: Vec<usize> = (0..a.depth())
            .filter(|&c| a.matrix()[(r, c)] != 0)
            .collect();
        match nz.len() {
            0 => {
                if diff[r] != 0 {
                    return None; // constant subscript can never differ
                }
            }
            1 => {
                let c = nz[0];
                let k = a.matrix()[(r, c)];
                if diff[r] % k != 0 {
                    return None;
                }
                let v = diff[r] / k;
                if solved[c] && d[c] != v {
                    return None;
                }
                d[c] = v;
                solved[c] = true;
            }
            _ => return None, // coupled subscripts: give up (Unknown upstream)
        }
    }
    Some(IVec::new(d))
}

/// Whether `A·d = diff` admits *any* integer solution (GCD feasibility
/// row by row).
fn has_integer_solution(a: &AffineAccess, diff: &IVec) -> bool {
    for r in 0..a.rank() {
        let mut g = 0i64;
        for c in 0..a.depth() {
            g = gcd(g, a.matrix()[(r, c)]);
        }
        if g == 0 {
            if diff[r] != 0 {
                return false;
            }
        } else if diff[r] % g != 0 {
            return false;
        }
    }
    true
}

/// A dependence-tested reference pair within one nest, with enough
/// location information to diagnose it: `(statement index, reference
/// index)` coordinates of both references into the nest body.
///
/// `a == b` marks the self-pair of a write reference (its instances in
/// different iterations may conflict with each other).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DependencePair {
    /// `(statement, reference)` coordinates of the first reference.
    pub a: (usize, usize),
    /// `(statement, reference)` coordinates of the second reference.
    pub b: (usize, usize),
    /// The array both references touch.
    pub array: ArrayId,
    /// The dependence-test verdict for the pair.
    pub dep: Dependence,
}

/// Tests every write-involving reference pair of a nest (flow, anti, and
/// output dependences — direction is not distinguished; distances are
/// reported as computed), keeping pair locations for diagnosis.
///
/// Pairs with an indexed reference on either side are reported as
/// [`Dependence::Unknown`]: the subscript comes from a runtime table, so
/// the affine test does not apply.
pub fn nest_dependence_pairs(nest: &LoopNest) -> Vec<DependencePair> {
    let mut out = Vec::new();
    let refs: Vec<_> = nest
        .body()
        .iter()
        .enumerate()
        .flat_map(|(si, s)| s.refs.iter().enumerate().map(move |(ri, r)| ((si, ri), r)))
        .collect();
    for (i, (loc_a, a)) in refs.iter().enumerate() {
        for (loc_b, b) in refs.iter().skip(i) {
            if a.array != b.array {
                continue;
            }
            if a.kind == RefKind::Read && b.kind == RefKind::Read {
                continue;
            }
            let dep = match (a.access.as_affine(), b.access.as_affine()) {
                (Some(aa), Some(bb)) => test_dependence(aa, bb),
                _ => Dependence::Unknown,
            };
            out.push(DependencePair {
                a: *loc_a,
                b: *loc_b,
                array: a.array,
                dep,
            });
        }
    }
    out
}

/// All dependence distance vectors among write-involving reference pairs
/// of a nest, without locations (see [`nest_dependence_pairs`]).
pub fn nest_dependences(nest: &LoopNest) -> Vec<Dependence> {
    nest_dependence_pairs(nest)
        .into_iter()
        .map(|p| p.dep)
        .collect()
}

/// Whether the nest's declared parallel dimension is legal: no dependence
/// is carried by that loop. Indexed references conservatively forbid it.
pub fn parallelization_is_legal(nest: &LoopNest) -> bool {
    nest_dependences(nest)
        .iter()
        .all(|d| d.permits_parallel(nest.parallel_dim()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::IMat;
    use crate::nest::{ArrayId, ArrayRef, Loop, Statement};

    fn acc(m: &IMat, o: Vec<i64>) -> AffineAccess {
        AffineAccess::new(m.clone(), IVec::new(o))
    }

    #[test]
    fn identical_references_depend_at_zero() {
        let m = IMat::identity(2);
        let d = test_dependence(&acc(&m, vec![0, 0]), &acc(&m, vec![0, 0]));
        assert_eq!(d, Dependence::Uniform(IVec::zeros(2)));
        assert!(d.permits_parallel(0));
    }

    #[test]
    fn stencil_offsets_have_unit_distance() {
        // X[i][j] vs X[i][j+1]: carried by loop 1, not by loop 0.
        let m = IMat::identity(2);
        let d = test_dependence(&acc(&m, vec![0, 0]), &acc(&m, vec![0, 1]));
        assert_eq!(d, Dependence::Uniform(IVec::new(vec![0, 1])));
        assert!(d.permits_parallel(0));
        assert!(!d.permits_parallel(1));
    }

    #[test]
    fn strided_accesses_can_be_independent() {
        // X[2i] vs X[2i+1]: even vs odd elements never collide.
        let m = IMat::from_rows(&[&[2]]);
        let d = test_dependence(&acc(&m, vec![0]), &acc(&m, vec![1]));
        assert_eq!(d, Dependence::Independent);
    }

    #[test]
    fn transposed_pair_is_unknown_not_unsound() {
        // X[i][j] vs X[j][i]: coupled; must not claim independence.
        let a = acc(&IMat::identity(2), vec![0, 0]);
        let b = acc(&IMat::from_rows(&[&[0, 1], &[1, 0]]), vec![0, 0]);
        assert_eq!(test_dependence(&a, &b), Dependence::Unknown);
    }

    #[test]
    fn figure9_parallelization_is_legal() {
        // Z[j-1..j+1][i] under i-parallel: all dependences carried by j.
        let m = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let z = ArrayId(0);
        let nest = LoopNest::new(
            vec![Loop::constant(2, 63), Loop::constant(2, 63)],
            0,
            vec![Statement::new(
                vec![
                    ArrayRef::write(z, acc(&m, vec![0, 0])),
                    ArrayRef::read(z, acc(&m, vec![-1, 0])),
                    ArrayRef::read(z, acc(&m, vec![1, 0])),
                ],
                1,
            )],
            1,
        );
        assert!(parallelization_is_legal(&nest));
    }

    #[test]
    fn loop_carried_dependence_blocks_parallelization() {
        // X[i][j] = X[i-1][j]: carried by loop 0.
        let m = IMat::identity(2);
        let x = ArrayId(0);
        let nest = LoopNest::new(
            vec![Loop::constant(1, 64), Loop::constant(0, 64)],
            0,
            vec![Statement::new(
                vec![
                    ArrayRef::write(x, acc(&m, vec![0, 0])),
                    ArrayRef::read(x, acc(&m, vec![-1, 0])),
                ],
                1,
            )],
            1,
        );
        assert!(!parallelization_is_legal(&nest));
    }

    #[test]
    fn pairs_carry_statement_and_ref_coordinates() {
        let m = IMat::identity(1);
        let x = ArrayId(0);
        let nest = LoopNest::new(
            vec![Loop::constant(0, 16)],
            0,
            vec![
                Statement::new(vec![ArrayRef::write(x, acc(&m, vec![0]))], 1),
                Statement::new(vec![ArrayRef::read(x, acc(&m, vec![-1]))], 1),
            ],
            1,
        );
        let pairs = nest_dependence_pairs(&nest);
        // Write self-pair + write-read pair.
        assert_eq!(pairs.len(), 2);
        assert_eq!((pairs[0].a, pairs[0].b), ((0, 0), (0, 0)));
        assert_eq!((pairs[1].a, pairs[1].b), ((0, 0), (1, 0)));
        assert_eq!(pairs[1].dep, Dependence::Uniform(IVec::new(vec![-1])));
    }

    #[test]
    fn reads_alone_never_constrain() {
        let m = IMat::identity(1);
        let x = ArrayId(0);
        let nest = LoopNest::new(
            vec![Loop::constant(0, 16)],
            0,
            vec![Statement::new(
                vec![
                    ArrayRef::read(x, acc(&m, vec![0])),
                    ArrayRef::read(x, acc(&m, vec![-1])),
                ],
                1,
            )],
            1,
        );
        assert!(nest_dependences(&nest).is_empty());
        assert!(parallelization_is_legal(&nest));
    }

    #[test]
    fn data_transformation_preserves_dependences() {
        // The §1 claim, checked concretely: distances are defined on the
        // iteration space, so any layout transformation U (a renaming of
        // the data space) leaves them unchanged.
        let m = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let u = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let a = acc(&m, vec![-1, 0]);
        let b = acc(&m, vec![0, 0]);
        let before = test_dependence(&a, &b);
        let after = test_dependence(&a.transformed(&u), &b.transformed(&u));
        assert_eq!(before, after);
    }
}
