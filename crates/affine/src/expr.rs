//! Affine expressions over loop iterators.
//!
//! Loop bounds in the paper's target programs are affine functions of the
//! *enclosing* loop iterators and loop-independent constants. An
//! [`AffineExpr`] captures `c₀ + Σ cᵢ·iᵢ` and can be evaluated against a
//! (partial) iteration vector.

use crate::matrix::IVec;
use std::fmt;

/// An affine expression `constant + Σ coeffs[k] · iter[k]`.
///
/// # Examples
///
/// ```
/// use hoploc_affine::AffineExpr;
///
/// // 2*i0 + 3, independent of i1.
/// let e = AffineExpr::new(vec![2, 0], 3);
/// assert_eq!(e.eval(&[4, 7]), 11);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    coeffs: Vec<i64>,
    constant: i64,
}

impl AffineExpr {
    /// Creates an expression from iterator coefficients and a constant term.
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Self {
        Self { coeffs, constant }
    }

    /// A constant expression (no iterator dependence).
    pub fn constant(c: i64) -> Self {
        Self {
            coeffs: Vec::new(),
            constant: c,
        }
    }

    /// The expression `iter[k]` with unit coefficient.
    pub fn var(depth: usize, k: usize) -> Self {
        assert!(k < depth, "iterator index out of range");
        let mut coeffs = vec![0; depth];
        coeffs[k] = 1;
        Self {
            coeffs,
            constant: 0,
        }
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Iterator coefficients (may be shorter than the iteration vector;
    /// missing trailing coefficients are zero).
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// Returns `true` if the expression does not depend on any iterator.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Evaluates against an iteration prefix.
    ///
    /// Coefficients beyond `iters.len()` must be zero; this is checked in
    /// debug builds.
    pub fn eval(&self, iters: &[i64]) -> i64 {
        debug_assert!(
            self.coeffs.iter().skip(iters.len()).all(|&c| c == 0),
            "expression depends on an iterator deeper than the given prefix"
        );
        self.constant
            + self
                .coeffs
                .iter()
                .zip(iters)
                .map(|(c, i)| c * i)
                .sum::<i64>()
    }

    /// Evaluates against an [`IVec`] iteration vector.
    pub fn eval_vec(&self, iters: &IVec) -> i64 {
        self.eval(iters.as_slice())
    }

    /// Interval evaluation: the inclusive `(min, max)` the expression can
    /// take when each iterator `k` ranges over the inclusive interval
    /// `ranges[k]`.
    ///
    /// Arithmetic runs in `i128` and the result saturates to `i64`, so the
    /// *analysis* of an overflow-prone program never panics itself —
    /// saturation at `i64::MIN`/`i64::MAX` is the checker's overflow
    /// signal. Coefficients beyond `ranges.len()` contribute as if the
    /// iterator were pinned at 0 (bounds only reference *enclosing*
    /// iterators; a deeper reference is a malformed program the bounds
    /// lints report separately).
    pub fn range(&self, ranges: &[(i64, i64)]) -> (i64, i64) {
        let mut lo = self.constant as i128;
        let mut hi = lo;
        for (k, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (rl, rh) = ranges.get(k).copied().unwrap_or((0, 0));
            let a = c as i128 * rl as i128;
            let b = c as i128 * rh as i128;
            lo += a.min(b);
            hi += a.max(b);
        }
        (saturate_i64(lo), saturate_i64(hi))
    }
}

/// Saturating `i128 → i64` narrowing for interval arithmetic.
fn saturate_i64(x: i128) -> i64 {
    x.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

impl From<i64> for AffineExpr {
    fn from(c: i64) -> Self {
        Self::constant(c)
    }
}

impl fmt::Debug for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AffineExpr({self})")
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (k, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if wrote {
                write!(f, " {} ", if c < 0 { "-" } else { "+" })?;
                if c.abs() != 1 {
                    write!(f, "{}*", c.abs())?;
                }
            } else {
                if c == -1 {
                    write!(f, "-")?;
                } else if c != 1 {
                    write!(f, "{c}*")?;
                }
                wrote = true;
            }
            write!(f, "i{k}")?;
        }
        if !wrote {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0 {
            write!(
                f,
                " {} {}",
                if self.constant < 0 { "-" } else { "+" },
                self.constant.abs()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_definition() {
        let e = AffineExpr::new(vec![1, -2, 0], 5);
        assert_eq!(e.eval(&[10, 3, 99]), 10 - 6 + 5);
    }

    #[test]
    fn constant_ignores_iterators() {
        let e = AffineExpr::constant(7);
        assert_eq!(e.eval(&[]), 7);
        assert_eq!(e.eval(&[1, 2, 3]), 7);
        assert!(e.is_constant());
    }

    #[test]
    fn var_selects_iterator() {
        let e = AffineExpr::var(3, 1);
        assert_eq!(e.eval(&[9, 4, 2]), 4);
    }

    #[test]
    fn range_brackets_all_evaluations() {
        // 2*i0 - i1 + 3 over i0 ∈ [0, 4], i1 ∈ [-1, 2].
        let e = AffineExpr::new(vec![2, -1], 3);
        let (lo, hi) = e.range(&[(0, 4), (-1, 2)]);
        assert_eq!((lo, hi), (1, 12));
        for i0 in 0..=4 {
            for i1 in -1..=2 {
                let v = e.eval(&[i0, i1]);
                assert!(lo <= v && v <= hi);
            }
        }
    }

    #[test]
    fn range_saturates_instead_of_panicking() {
        let e = AffineExpr::new(vec![i64::MAX, i64::MAX], 0);
        let (lo, hi) = e.range(&[(0, i64::MAX), (0, i64::MAX)]);
        assert_eq!(lo, 0);
        assert_eq!(hi, i64::MAX);
    }

    #[test]
    fn display_formats_readably() {
        let e = AffineExpr::new(vec![2, -1], 3);
        assert_eq!(e.to_string(), "2*i0 - i1 + 3");
        assert_eq!(AffineExpr::constant(0).to_string(), "0");
    }
}
