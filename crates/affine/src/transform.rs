//! Loop transformations with dependence-based legality checking.
//!
//! The paper's pass runs *after* "a loop transformation guided by array
//! dependence analysis [that] restructures the intermediate code for
//! improving both parallelism and data locality" (§6.1). This module
//! provides that pre-pass: loop permutation (with lexicographic-positivity
//! legality), automatic selection of an outermost parallel loop, and
//! rectangular tiling — and, by contrast, shows concretely why the paper
//! chose data transformations for its own goal: every one of these is
//! gated on dependences, while `AffineAccess::transformed` never is.

use crate::dependence::{nest_dependences, Dependence};
use crate::matrix::{IMat, IVec};
use crate::nest::{AccessFn, ArrayRef, Loop, LoopNest, Statement};

/// Why a loop transformation was refused.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TransformError {
    /// The permutation vector is not a permutation of `0..depth`.
    NotAPermutation,
    /// A dependence distance becomes lexicographically negative under the
    /// transformation — it would reverse a producer/consumer pair.
    IllegalByDependence,
    /// A dependence could not be characterized, so legality cannot be
    /// proven (indexed references, coupled subscripts).
    UnknownDependence,
    /// Loop bounds depend on iterators in a way the transformation cannot
    /// re-derive (non-rectangular in the permuted dimensions).
    NonRectangularBounds,
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::NotAPermutation => write!(f, "not a permutation of the loop depths"),
            TransformError::IllegalByDependence => {
                write!(f, "transformation reverses a dependence")
            }
            TransformError::UnknownDependence => {
                write!(
                    f,
                    "dependences cannot be characterized; refusing conservatively"
                )
            }
            TransformError::NonRectangularBounds => {
                write!(
                    f,
                    "loop bounds are not rectangular in the permuted dimensions"
                )
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// Whether a distance vector stays lexicographically non-negative after
/// reordering its components by `perm` (entry `k` of the new vector is
/// component `perm[k]` of the old one).
fn still_lex_nonneg(d: &IVec, perm: &[usize]) -> bool {
    for &p in perm {
        match d[p].cmp(&0) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    true
}

/// Checks that every characterizable dependence of the nest remains
/// lexicographically non-negative under the permutation.
pub fn permutation_is_legal(nest: &LoopNest, perm: &[usize]) -> Result<(), TransformError> {
    let depth = nest.depth();
    let mut seen = vec![false; depth];
    if perm.len() != depth {
        return Err(TransformError::NotAPermutation);
    }
    for &p in perm {
        if p >= depth || seen[p] {
            return Err(TransformError::NotAPermutation);
        }
        seen[p] = true;
    }
    for dep in nest_dependences(nest) {
        match dep {
            Dependence::Independent => {}
            Dependence::Uniform(d) => {
                // Normalize the direction: distances may be reported
                // source→sink or sink→source; a legal order preserves
                // whichever orientation was non-negative originally.
                let oriented = if is_lex_nonneg(&d) { d } else { -&d };
                if !still_lex_nonneg(&oriented, perm) {
                    return Err(TransformError::IllegalByDependence);
                }
            }
            Dependence::Unknown => return Err(TransformError::UnknownDependence),
        }
    }
    Ok(())
}

fn is_lex_nonneg(d: &IVec) -> bool {
    for k in 0..d.len() {
        match d[k].cmp(&0) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    true
}

/// Permutes the loops of a rectangular nest, rewriting every affine
/// reference's access matrix (`A' = A·Pᵀ` so that `A'·i⃗' = A·i⃗`).
///
/// `perm[k]` names the old loop that becomes new loop `k`. The parallel
/// dimension follows its loop.
///
/// # Errors
///
/// Refuses non-permutations, dependence-reversing orders, nests with
/// uncharacterizable dependences, and nests whose bounds couple the
/// permuted loops.
pub fn permute_loops(nest: &LoopNest, perm: &[usize]) -> Result<LoopNest, TransformError> {
    permutation_is_legal(nest, perm)?;
    let depth = nest.depth();
    // Rectangularity: every loop's bounds must be constant (bounds that
    // reference outer iterators would need re-derivation under reorder).
    for l in nest.loops() {
        if !l.lower.is_constant() || !l.upper.is_constant() {
            return Err(TransformError::NonRectangularBounds);
        }
    }
    let loops: Vec<Loop> = perm.iter().map(|&p| nest.loops()[p].clone()).collect();
    let new_parallel = perm
        .iter()
        .position(|&p| p == nest.parallel_dim())
        .expect("invariant: permutation_is_legal verified perm is a bijection on 0..depth");

    // Column permutation matrix P with P[(k, perm[k])] = 1: i⃗ = P·i⃗'.
    let mut p_mat = IMat::zeros(depth, depth);
    for (k, &p) in perm.iter().enumerate() {
        p_mat[(p, k)] = 1;
    }
    let body: Vec<Statement> = nest
        .body()
        .iter()
        .map(|s| {
            Statement::new(
                s.refs
                    .iter()
                    .map(|r| ArrayRef {
                        array: r.array,
                        kind: r.kind,
                        access: match &r.access {
                            AccessFn::Affine(a) => {
                                AccessFn::Affine(crate::access::AffineAccess::new(
                                    a.matrix() * &p_mat,
                                    a.offset().clone(),
                                ))
                            }
                            // Indexed positions would need the same column
                            // permutation; conservatively impossible here
                            // because legality already rejected Unknown.
                            AccessFn::Indexed { table, pos } => AccessFn::Indexed {
                                table: *table,
                                pos: pos.clone(),
                            },
                        },
                    })
                    .collect(),
                s.compute_cycles,
            )
        })
        .collect();
    Ok(LoopNest::new(loops, new_parallel, body, nest.weight()))
}

/// Finds the outermost loop that can legally run parallel (no carried
/// dependence), if any — the parallelization step of the paper's pre-pass.
pub fn find_parallel_loop(nest: &LoopNest) -> Option<usize> {
    let deps = nest_dependences(nest);
    (0..nest.depth()).find(|&u| deps.iter().all(|d| d.permits_parallel(u)))
}

/// Rectangularly tiles loop `k` of a nest by `tile`: the loop splits into
/// a tile loop over `⌈extent/tile⌉` tiles and an intra-tile loop, with
/// every reference rewritten through the split (`i_k = tile·t + j`).
///
/// Tiling a single loop by strip-mining is always legal (it only groups
/// iterations without reordering them).
///
/// # Panics
///
/// Panics if `k` is out of range or `tile == 0`.
pub fn strip_mine_loop(nest: &LoopNest, k: usize, tile: i64) -> Result<LoopNest, TransformError> {
    assert!(k < nest.depth(), "loop index out of range");
    assert!(tile > 0, "tile size must be positive");
    let l = &nest.loops()[k];
    if !l.lower.is_constant() || !l.upper.is_constant() {
        return Err(TransformError::NonRectangularBounds);
    }
    let lo = l.lower.eval(&[]);
    let hi = l.upper.eval(&[]);
    let tiles = (hi - lo + tile - 1) / tile.max(1);

    let depth = nest.depth();
    // New iteration order: loops 0..k, tile loop, 0-based intra loop,
    // loops k+1… . Old iterator i_k = lo + tile·t + j.
    let mut loops: Vec<Loop> = Vec::with_capacity(depth + 1);
    loops.extend(nest.loops()[..k].iter().cloned());
    loops.push(Loop::constant(0, tiles));
    loops.push(Loop::constant(0, tile.min(hi - lo).max(1)));
    loops.extend(nest.loops()[k + 1..].iter().cloned());

    // Column map old→new: old column c (≠ k) reads new column (c or c+1);
    // old column k becomes tile·(col k) + (col k+1), plus constant lo.
    let expand = |a: &crate::access::AffineAccess| {
        let m = a.matrix();
        let mut out = IMat::zeros(m.rows(), depth + 1);
        let mut off = a.offset().clone();
        for r in 0..m.rows() {
            for c in 0..depth {
                let v = m[(r, c)];
                if c < k {
                    out[(r, c)] = v;
                } else if c == k {
                    out[(r, k)] = v * tile;
                    out[(r, k + 1)] = v;
                    off[r] += v * lo;
                } else {
                    out[(r, c + 1)] = v;
                }
            }
        }
        crate::access::AffineAccess::new(out, off)
    };
    let body: Vec<Statement> = nest
        .body()
        .iter()
        .map(|s| {
            Statement::new(
                s.refs
                    .iter()
                    .map(|r| ArrayRef {
                        array: r.array,
                        kind: r.kind,
                        access: match &r.access {
                            AccessFn::Affine(a) => AccessFn::Affine(expand(a)),
                            AccessFn::Indexed { .. } => r.access.clone(),
                        },
                    })
                    .collect(),
                s.compute_cycles,
            )
        })
        .collect();
    let parallel = if nest.parallel_dim() <= k {
        nest.parallel_dim()
    } else {
        nest.parallel_dim() + 1
    };
    Ok(LoopNest::new(loops, parallel, body, nest.weight()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AffineAccess;
    use crate::nest::ArrayId;

    fn stencil(down: bool) -> LoopNest {
        // X[i][j] = X[i][j-1] (down=false) or X[i-1][j] (down=true).
        let m = IMat::identity(2);
        let off = if down { vec![-1, 0] } else { vec![0, -1] };
        LoopNest::new(
            vec![Loop::constant(1, 16), Loop::constant(1, 16)],
            0,
            vec![Statement::new(
                vec![
                    ArrayRef::write(ArrayId(0), AffineAccess::new(m.clone(), IVec::zeros(2))),
                    ArrayRef::read(ArrayId(0), AffineAccess::new(m, IVec::new(off))),
                ],
                1,
            )],
            1,
        )
    }

    #[test]
    fn legal_permutation_swaps_access_columns() {
        // Dependence (0, 1): interchange gives (1, 0) — still lex-positive.
        let nest = stencil(false);
        let out = permute_loops(&nest, &[1, 0]).expect("interchange is legal");
        assert_eq!(out.depth(), 2);
        // X[i][j] became X[i'₁][i'₀]: the access matrix is the swap.
        let a = out.body()[0].refs[0].access.as_affine().unwrap();
        assert_eq!(a.matrix(), &IMat::from_rows(&[&[0, 1], &[1, 0]]));
        // Parallel dim followed its loop (old 0 → new 1).
        assert_eq!(out.parallel_dim(), 1);
    }

    #[test]
    fn permuted_accesses_touch_the_same_elements() {
        let nest = stencil(false);
        let out = permute_loops(&nest, &[1, 0]).unwrap();
        let before = nest.body()[0].refs[1].access.as_affine().unwrap();
        let after = out.body()[0].refs[1].access.as_affine().unwrap();
        for i in 1..16 {
            for j in 1..16 {
                assert_eq!(
                    before.eval_slice(&[i, j]),
                    after.eval_slice(&[j, i]),
                    "element mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn identity_permutation_is_always_legal() {
        for down in [false, true] {
            assert!(permute_loops(&stencil(down), &[0, 1]).is_ok());
        }
    }

    #[test]
    fn interchange_both_orientations() {
        // A single uniform dependence (1,0) or (0,1) stays lex-positive
        // under interchange, so both stencils interchange legally; a nest
        // with distance (1,-1) must NOT.
        let m = IMat::identity(2);
        let skew = LoopNest::new(
            vec![Loop::constant(1, 16), Loop::constant(1, 16)],
            0,
            vec![Statement::new(
                vec![
                    ArrayRef::write(ArrayId(0), AffineAccess::new(m.clone(), IVec::zeros(2))),
                    ArrayRef::read(ArrayId(0), AffineAccess::new(m, IVec::new(vec![-1, 1]))),
                ],
                1,
            )],
            1,
        );
        assert_eq!(
            permute_loops(&skew, &[1, 0]).unwrap_err(),
            TransformError::IllegalByDependence
        );
    }

    #[test]
    fn bad_permutations_are_rejected() {
        let nest = stencil(false);
        assert_eq!(
            permute_loops(&nest, &[0, 0]).unwrap_err(),
            TransformError::NotAPermutation
        );
        assert_eq!(
            permute_loops(&nest, &[0]).unwrap_err(),
            TransformError::NotAPermutation
        );
    }

    #[test]
    fn find_parallel_loop_picks_uncarried_dim() {
        // X[i][j] = X[i][j-1]: carried by loop 1 → loop 0 is parallel.
        assert_eq!(find_parallel_loop(&stencil(false)), Some(0));
        // X[i][j] = X[i-1][j]: carried by loop 0 → loop 1 is parallel.
        assert_eq!(find_parallel_loop(&stencil(true)), Some(1));
    }

    #[test]
    fn strip_mining_preserves_touched_elements() {
        let nest = stencil(false);
        let tiled = strip_mine_loop(&nest, 1, 4).expect("strip-mining is legal");
        assert_eq!(tiled.depth(), 3);
        // Collect elements touched by the write in both versions.
        let collect = |n: &LoopNest| {
            let mut v = Vec::new();
            n.walk_core_iterations(0, 1, &vec![1; n.depth()], |it| {
                let a = n.body()[0].refs[0].access.as_affine().unwrap();
                let e = a.eval_slice(it);
                if (1..16).contains(&e[0]) && (1..16).contains(&e[1]) {
                    v.push((e[0], e[1]));
                }
            });
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(collect(&nest), collect(&tiled));
    }

    #[test]
    fn strip_mining_shifts_parallel_dim() {
        let nest = stencil(true); // parallel dim 0
        let tiled = strip_mine_loop(&nest, 0, 4).unwrap();
        // Splitting the parallel loop keeps the tile loop parallel.
        assert_eq!(tiled.parallel_dim(), 0);
        let nest2 = stencil(false);
        let tiled2 = strip_mine_loop(&nest2, 1, 4).unwrap();
        assert_eq!(tiled2.parallel_dim(), 0);
    }
}
