//! Whole programs: arrays, index tables, and loop nests.

use crate::nest::{ArrayId, LoopNest, TableId};
use std::fmt;

/// Declaration of an `n`-dimensional array.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayDecl {
    name: String,
    dims: Vec<i64>,
    elem_size: u32,
}

impl ArrayDecl {
    /// Declares an array.
    ///
    /// `dims` are sizes from slowest- to fastest-varying dimension
    /// (row-major, as assumed throughout the paper); `elem_size` is in
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, any dimension is non-positive, or
    /// `elem_size` is zero.
    pub fn new(name: impl Into<String>, dims: Vec<i64>, elem_size: u32) -> Self {
        assert!(!dims.is_empty(), "array must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "array dimensions must be positive"
        );
        assert!(elem_size > 0, "element size must be positive");
        Self {
            name: name.into(),
            dims,
            elem_size,
        }
    }

    /// The array's name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimension sizes, slowest-varying first.
    pub fn dims(&self) -> &[i64] {
        &self.dims
    }

    /// Number of dimensions `n`.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Element size in bytes.
    pub fn elem_size(&self) -> u32 {
        self.elem_size
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> i64 {
        self.dims.iter().product()
    }

    /// Total footprint in bytes.
    pub fn size_bytes(&self) -> i64 {
        self.num_elements() * self.elem_size as i64
    }

    /// Row-major linearization of a data vector, in elements.
    ///
    /// # Panics
    ///
    /// Panics if the subscript count differs from the rank. Out-of-bounds
    /// subscripts are clamped into the array (the paper's approximated
    /// indexed references may slightly over-run; clamping matches the
    /// "performance, not correctness" contract of §5.4).
    pub fn linearize(&self, subscripts: &[i64]) -> i64 {
        assert_eq!(
            subscripts.len(),
            self.rank(),
            "subscript count must match rank"
        );
        let mut off = 0i64;
        for (k, &s) in subscripts.iter().enumerate() {
            let s = s.clamp(0, self.dims[k] - 1);
            off = off * self.dims[k] + s;
        }
        off
    }
}

impl fmt::Display for ArrayDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for d in &self.dims {
            write!(f, "[{d}]")?;
        }
        write!(f, " ({}B elems)", self.elem_size)
    }
}

/// A data-parallel affine program: the unit the layout pass optimizes.
///
/// # Examples
///
/// ```
/// use hoploc_affine::{AffineAccess, ArrayDecl, ArrayRef, Loop, LoopNest, Program, Statement};
///
/// let mut p = Program::new("example");
/// let z = p.add_array(ArrayDecl::new("Z", vec![64, 64], 8));
/// p.add_nest(LoopNest::new(
///     vec![Loop::constant(0, 64), Loop::constant(0, 64)],
///     0,
///     vec![Statement::new(vec![ArrayRef::read(z, AffineAccess::identity(2))], 1)],
///     1,
/// ));
/// assert_eq!(p.arrays().len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    name: String,
    arrays: Vec<ArrayDecl>,
    tables: Vec<Vec<i64>>,
    nests: Vec<LoopNest>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            arrays: Vec::new(),
            tables: Vec::new(),
            nests: Vec::new(),
        }
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an array declaration, returning its id.
    pub fn add_array(&mut self, decl: ArrayDecl) -> ArrayId {
        self.arrays.push(decl);
        ArrayId(self.arrays.len() - 1)
    }

    /// Adds an index table (contents of e.g. a CRS column-index array),
    /// returning its id.
    pub fn add_table(&mut self, values: Vec<i64>) -> TableId {
        self.tables.push(values);
        TableId(self.tables.len() - 1)
    }

    /// Adds a loop nest.
    pub fn add_nest(&mut self, nest: LoopNest) {
        self.nests.push(nest);
    }

    /// All array declarations.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Looks up an array declaration.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        self.try_array(id).unwrap_or_else(|| {
            panic!(
                "stale ArrayId({}): program {:?} declares {} arrays",
                id.0,
                self.name,
                self.arrays.len()
            )
        })
    }

    /// Looks up an array declaration, returning `None` for a stale id.
    /// Diagnostics-producing consumers (the `hoploc-check` lints) use this
    /// so a malformed program is reported, not panicked on.
    pub fn try_array(&self, id: ArrayId) -> Option<&ArrayDecl> {
        self.arrays.get(id.0)
    }

    /// Looks up an index table.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn table(&self, id: TableId) -> &[i64] {
        self.try_table(id).unwrap_or_else(|| {
            panic!(
                "stale TableId({}): program {:?} declares {} tables",
                id.0,
                self.name,
                self.tables.len()
            )
        })
    }

    /// Looks up an index table, returning `None` for a stale id.
    pub fn try_table(&self, id: TableId) -> Option<&[i64]> {
        self.tables.get(id.0).map(Vec::as_slice)
    }

    /// All index tables, indexed by [`TableId`].
    pub fn tables(&self) -> &[Vec<i64>] {
        &self.tables
    }

    /// All loop nests.
    pub fn nests(&self) -> &[LoopNest] {
        &self.nests
    }

    /// Total estimated dynamic iterations across all nests.
    pub fn iteration_estimate(&self) -> u64 {
        self.nests.iter().map(|n| n.iteration_estimate()).sum()
    }

    /// Iterates over `(nest, reference)` pairs touching the given array.
    pub fn refs_to(
        &self,
        array: ArrayId,
    ) -> impl Iterator<Item = (&LoopNest, &crate::nest::ArrayRef)> {
        self.nests.iter().flat_map(move |n| {
            n.body()
                .iter()
                .flat_map(|s| s.refs.iter())
                .filter(move |r| r.array == array)
                .map(move |r| (n, r))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AffineAccess;
    use crate::nest::{ArrayRef, Loop, Statement};

    #[test]
    fn linearize_row_major() {
        let a = ArrayDecl::new("A", vec![4, 8], 8);
        assert_eq!(a.linearize(&[0, 0]), 0);
        assert_eq!(a.linearize(&[0, 7]), 7);
        assert_eq!(a.linearize(&[1, 0]), 8);
        assert_eq!(a.linearize(&[3, 7]), 31);
    }

    #[test]
    fn linearize_clamps_out_of_bounds() {
        let a = ArrayDecl::new("A", vec![4, 8], 8);
        assert_eq!(a.linearize(&[-3, 9]), a.linearize(&[0, 7]));
    }

    #[test]
    fn footprint_accounts_elem_size() {
        let a = ArrayDecl::new("A", vec![10, 10], 4);
        assert_eq!(a.size_bytes(), 400);
    }

    #[test]
    fn refs_to_filters_by_array() {
        let mut p = Program::new("t");
        let x = p.add_array(ArrayDecl::new("X", vec![16], 8));
        let y = p.add_array(ArrayDecl::new("Y", vec![16], 8));
        p.add_nest(LoopNest::new(
            vec![Loop::constant(0, 16)],
            0,
            vec![Statement::new(
                vec![
                    ArrayRef::read(x, AffineAccess::identity(1)),
                    ArrayRef::write(y, AffineAccess::identity(1)),
                    ArrayRef::read(x, AffineAccess::identity(1)),
                ],
                1,
            )],
            1,
        ));
        assert_eq!(p.refs_to(x).count(), 2);
        assert_eq!(p.refs_to(y).count(), 1);
    }

    #[test]
    fn tables_round_trip() {
        let mut p = Program::new("t");
        let t = p.add_table(vec![3, 1, 4, 1, 5]);
        assert_eq!(p.table(t), &[3, 1, 4, 1, 5]);
    }
}
