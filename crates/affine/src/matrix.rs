//! Dense integer matrices and vectors over `i64`.
//!
//! The layout pass only ever manipulates small matrices (array ranks and
//! loop depths are in single digits), so a simple row-major `Vec<i64>`
//! representation is both adequate and easy to audit. All operations are
//! exact integer arithmetic. Products and accumulations are carried out in
//! `i128` so intermediates cannot wrap even for adversarial inputs; results
//! are narrowed back to `i64` with an explicit overflow panic, and the
//! workspace additionally enables `overflow-checks` in release builds for
//! the remaining plain arithmetic.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense integer matrix in row-major order.
///
/// # Examples
///
/// ```
/// use hoploc_affine::IMat;
///
/// let a = IMat::from_rows(&[&[1, 0], &[0, 2]]);
/// let b = IMat::identity(2);
/// assert_eq!(&a * &b, a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IMat {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have differing lengths.
    pub fn from_rows(rows: &[&[i64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the `r`-th row as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> IVec {
        assert!(r < self.rows, "row index out of bounds");
        IVec::from(&self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Returns the `c`-th column as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> IVec {
        assert!(c < self.cols, "column index out of bounds");
        IVec::new((0..self.rows).map(|r| self[(r, c)]).collect())
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> IMat {
        let mut t = IMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Returns a copy with the `c`-th column removed.
    ///
    /// This is the "submatrix `B`" operation from §5.2 of the paper: drop the
    /// iteration-partition-dimension column of an access matrix.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds or the matrix has a single column.
    pub fn drop_col(&self, c: usize) -> IMat {
        assert!(c < self.cols, "column index out of bounds");
        assert!(self.cols > 1, "cannot drop the only column");
        let mut m = IMat::zeros(self.rows, self.cols - 1);
        for r in 0..self.rows {
            let mut k = 0;
            for j in 0..self.cols {
                if j != c {
                    m[(r, k)] = self[(r, j)];
                    k += 1;
                }
            }
        }
        m
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    /// Multiplies the matrix by a vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &IVec) -> IVec {
        assert_eq!(
            v.len(),
            self.cols,
            "dimension mismatch in matrix-vector product"
        );
        IVec::new(
            (0..self.rows)
                .map(|r| {
                    narrow(
                        (0..self.cols)
                            .map(|c| self[(r, c)] as i128 * v[c] as i128)
                            .sum(),
                    )
                })
                .collect(),
        )
    }

    /// Computes the determinant by fraction-free (Bareiss) elimination.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn det(&self) -> i64 {
        assert_eq!(self.rows, self.cols, "determinant requires a square matrix");
        let n = self.rows;
        let mut m = self.clone();
        let mut sign = 1i64;
        let mut prev = 1i128;
        for k in 0..n {
            if m[(k, k)] == 0 {
                // Find a pivot below.
                let Some(p) = (k + 1..n).find(|&r| m[(r, k)] != 0) else {
                    return 0;
                };
                m.swap_rows(k, p);
                sign = -sign;
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let num = m[(k, k)] as i128 * m[(i, j)] as i128
                        - m[(i, k)] as i128 * m[(k, j)] as i128;
                    debug_assert_eq!(num % prev, 0, "Bareiss division must be exact");
                    m[(i, j)] = narrow(num / prev);
                }
                m[(i, k)] = 0;
            }
            prev = m[(k, k)] as i128;
        }
        sign * m[(n - 1, n - 1)]
    }

    /// Returns `true` if the matrix is square with determinant `±1`.
    pub fn is_unimodular(&self) -> bool {
        self.rows == self.cols && self.det().abs() == 1
    }

    /// Computes the exact inverse of a unimodular matrix.
    ///
    /// Because `det = ±1`, the adjugate divided by the determinant stays
    /// integral, so the inverse is again an integer matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not unimodular.
    pub fn inverse_unimodular(&self) -> IMat {
        let d = self.det();
        assert!(d.abs() == 1, "inverse_unimodular requires det = ±1");
        let n = self.rows;
        if n == 1 {
            return IMat::from_rows(&[&[d]]);
        }
        let mut inv = IMat::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                let minor = self.minor(r, c).det();
                let sign = if (r + c) % 2 == 0 { 1 } else { -1 };
                // Adjugate is the transpose of the cofactor matrix.
                inv[(c, r)] = sign * minor * d; // dividing by d == multiplying by d when d = ±1
            }
        }
        inv
    }

    /// Returns the matrix with row `r` and column `c` removed.
    fn minor(&self, r: usize, c: usize) -> IMat {
        let n = self.rows;
        assert!(n > 1, "minor of a 1x1 matrix is undefined");
        let mut m = IMat::zeros(n - 1, n - 1);
        let mut mi = 0;
        for i in 0..n {
            if i == r {
                continue;
            }
            let mut mj = 0;
            for j in 0..n {
                if j == c {
                    continue;
                }
                m[(mi, mj)] = self[(i, j)];
                mj += 1;
            }
            mi += 1;
        }
        m
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[i64]> {
        self.data.chunks_exact(self.cols)
    }
}

impl Index<(usize, usize)> for IMat {
    type Output = i64;

    fn index(&self, (r, c): (usize, usize)) -> &i64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for IMat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut i64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Mul for &IMat {
    type Output = IMat;

    fn mul(self, rhs: &IMat) -> IMat {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut out = IMat::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for c in 0..rhs.cols {
                out[(r, c)] = narrow(
                    (0..self.cols)
                        .map(|k| self[(r, k)] as i128 * rhs[(k, c)] as i128)
                        .sum(),
                );
            }
        }
        out
    }
}

impl fmt::Debug for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IMat {}x{} [", self.rows, self.cols)?;
        for row in self.iter_rows() {
            writeln!(f, "  {row:?}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, row) in self.iter_rows().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "[")?;
            for (j, x) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{x}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// A dense integer (column) vector.
///
/// Used for iteration vectors, data vectors, hyperplane normals, and affine
/// offsets throughout the crate.
///
/// # Examples
///
/// ```
/// use hoploc_affine::{IMat, IVec};
///
/// let a = IMat::from_rows(&[&[1, 0], &[0, 2]]);
/// let i = IVec::new(vec![1, 2]);
/// assert_eq!(a.mul_vec(&i), IVec::new(vec![1, 4]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct IVec(Vec<i64>);

impl IVec {
    /// Wraps a `Vec<i64>` as a vector.
    pub fn new(v: Vec<i64>) -> Self {
        Self(v)
    }

    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self(vec![0; n])
    }

    /// Creates the unit vector of length `n` with a `1` at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= n`.
    pub fn unit(n: usize, pos: usize) -> Self {
        assert!(pos < n, "unit position out of bounds");
        let mut v = vec![0; n];
        v[pos] = 1;
        Self(v)
    }

    /// Vector length (number of components).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns `true` if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&x| x == 0)
    }

    /// Dot product.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &IVec) -> i64 {
        assert_eq!(self.len(), other.len(), "dimension mismatch in dot product");
        narrow(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(&a, &b)| a as i128 * b as i128)
                .sum(),
        )
    }

    /// The greatest common divisor of all components (0 for the zero vector).
    pub fn gcd(&self) -> i64 {
        self.0.iter().fold(0, |g, &x| gcd(g, x.abs()))
    }

    /// Divides every component by the gcd, making the vector *primitive*.
    ///
    /// A primitive vector is required before unimodular completion: a row of
    /// a unimodular matrix always has co-prime entries. The zero vector is
    /// returned unchanged.
    pub fn to_primitive(&self) -> IVec {
        let g = self.gcd();
        if g <= 1 {
            return self.clone();
        }
        IVec::new(self.0.iter().map(|&x| x / g).collect())
    }

    /// Borrows the components as a slice.
    pub fn as_slice(&self) -> &[i64] {
        &self.0
    }

    /// Consumes the vector and returns the underlying buffer.
    pub fn into_inner(self) -> Vec<i64> {
        self.0
    }

    /// Iterates over components.
    pub fn iter(&self) -> std::slice::Iter<'_, i64> {
        self.0.iter()
    }
}

impl From<&[i64]> for IVec {
    fn from(v: &[i64]) -> Self {
        Self(v.to_vec())
    }
}

impl From<Vec<i64>> for IVec {
    fn from(v: Vec<i64>) -> Self {
        Self(v)
    }
}

impl FromIterator<i64> for IVec {
    fn from_iter<I: IntoIterator<Item = i64>>(iter: I) -> Self {
        Self(iter.into_iter().collect())
    }
}

impl Index<usize> for IVec {
    type Output = i64;

    fn index(&self, i: usize) -> &i64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for IVec {
    fn index_mut(&mut self, i: usize) -> &mut i64 {
        &mut self.0[i]
    }
}

impl Add for &IVec {
    type Output = IVec;

    fn add(self, rhs: &IVec) -> IVec {
        assert_eq!(
            self.len(),
            rhs.len(),
            "dimension mismatch in vector addition"
        );
        IVec::new(self.0.iter().zip(&rhs.0).map(|(a, b)| a + b).collect())
    }
}

impl Sub for &IVec {
    type Output = IVec;

    fn sub(self, rhs: &IVec) -> IVec {
        assert_eq!(
            self.len(),
            rhs.len(),
            "dimension mismatch in vector subtraction"
        );
        IVec::new(self.0.iter().zip(&rhs.0).map(|(a, b)| a - b).collect())
    }
}

impl Neg for &IVec {
    type Output = IVec;

    fn neg(self) -> IVec {
        IVec::new(self.0.iter().map(|&x| -x).collect())
    }
}

impl Mul<i64> for &IVec {
    type Output = IVec;

    fn mul(self, k: i64) -> IVec {
        IVec::new(self.0.iter().map(|&x| x * k).collect())
    }
}

impl fmt::Debug for IVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IVec({:?})", self.0)
    }
}

impl fmt::Display for IVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, x) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, ")")
    }
}

/// Narrows an exact `i128` intermediate back to `i64`, panicking if the
/// mathematically correct result does not fit.
pub(crate) fn narrow(x: i128) -> i64 {
    i64::try_from(x).expect(
        "invariant: exact integer-linear-algebra intermediates fit i64 for all program \
         shapes the IR admits; an overflow here means the input matrix entries were \
         already astronomically large (the hoploc-check HL0309 lint flags such programs)",
    )
}

/// Greatest common divisor of two non-negative integers.
///
/// `gcd(0, 0) == 0` by convention.
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with `a*x + b*y = g`.
pub fn extended_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        let s = if a < 0 { -1 } else { 1 };
        return (a.abs(), s, 0);
    }
    let (g, x1, y1) = extended_gcd(b, a % b);
    (g, y1, x1 - (a / b) * y1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = IMat::from_rows(&[&[1, 2], &[3, 4]]);
        let i = IMat::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn det_of_permutation_is_minus_one() {
        let p = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        assert_eq!(p.det(), -1);
        assert!(p.is_unimodular());
    }

    #[test]
    fn det_of_singular_is_zero() {
        let m = IMat::from_rows(&[&[1, 2], &[2, 4]]);
        assert_eq!(m.det(), 0);
        assert!(!m.is_unimodular());
    }

    #[test]
    fn det_3x3_bareiss() {
        let m = IMat::from_rows(&[&[2, 0, 1], &[1, 1, 0], &[0, 3, 1]]);
        // Expansion: 2*(1*1-0*3) - 0 + 1*(1*3-1*0) = 2 + 3 = 5.
        assert_eq!(m.det(), 5);
    }

    #[test]
    fn inverse_of_unimodular_roundtrips() {
        let u = IMat::from_rows(&[&[1, 2, 0], &[0, 1, 0], &[1, 1, 1]]);
        assert_eq!(u.det(), 1);
        let inv = u.inverse_unimodular();
        assert_eq!(&u * &inv, IMat::identity(3));
        assert_eq!(&inv * &u, IMat::identity(3));
    }

    #[test]
    fn inverse_of_negative_det_unimodular() {
        let u = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let inv = u.inverse_unimodular();
        assert_eq!(&u * &inv, IMat::identity(2));
    }

    #[test]
    fn drop_col_removes_partition_column() {
        // Access matrix of Z[j][i] with iteration (i, j): rows are (0 1),(1 0).
        let a = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let b = a.drop_col(0); // drop u = 0 (the i column)
        assert_eq!(b, IMat::from_rows(&[&[1], &[0]]));
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = IMat::from_rows(&[&[1, 0], &[0, 2]]);
        let v = IVec::new(vec![1, 2]);
        assert_eq!(a.mul_vec(&v), IVec::new(vec![1, 4]));
    }

    #[test]
    fn primitive_vector_divides_by_gcd() {
        let v = IVec::new(vec![2, 4, -6]);
        assert_eq!(v.gcd(), 2);
        assert_eq!(v.to_primitive(), IVec::new(vec![1, 2, -3]));
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        for (a, b) in [(12, 8), (7, 3), (-5, 10), (0, 4), (4, 0), (1, 1)] {
            let (g, x, y) = extended_gcd(a, b);
            assert_eq!(a * x + b * y, g, "bezout failed for ({a},{b})");
            assert_eq!(g, gcd(a, b));
        }
    }

    #[test]
    fn transpose_involution() {
        let a = IMat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_product_panics() {
        let a = IMat::identity(2);
        let b = IMat::zeros(3, 3);
        let _ = &a * &b;
    }
}
