//! Exact integer linear algebra: nullspaces, Hermite normal form, and
//! unimodular completion.
//!
//! Section 5.2 of the paper reduces the Data-to-Core mapping problem to a
//! homogeneous linear system `Bᵀ gᵥᵀ = 0` solved by *integer Gaussian
//! elimination*, after which the partial solution `gᵥ` must be completed
//! into a full unimodular transformation matrix `U`. This module provides
//! those primitives.

use crate::matrix::{extended_gcd, narrow, IMat, IVec};

/// Computes an integer basis of the nullspace `{x ∈ Zⁿ : M·x = 0}`.
///
/// The basis vectors are primitive (their components are co-prime) and the
/// returned set is empty exactly when the kernel is trivial.
///
/// The algorithm brings `M` to *column* echelon form with unimodular column
/// operations tracked in `V`; the columns of `V` below the zero columns of
/// the echelon form span the kernel.
///
/// # Examples
///
/// ```
/// use hoploc_affine::{nullspace, IMat, IVec};
///
/// // Kernel of [1 1] is spanned by (1, -1).
/// let m = IMat::from_rows(&[&[1, 1]]);
/// let basis = nullspace(&m);
/// assert_eq!(basis.len(), 1);
/// assert_eq!(m.mul_vec(&basis[0]), IVec::zeros(1));
/// ```
pub fn nullspace(m: &IMat) -> Vec<IVec> {
    let rows = m.rows();
    let cols = m.cols();
    let mut a = m.clone();
    let mut v = IMat::identity(cols);

    // Column echelon form: for each pivot row, clear all but one column
    // entry using gcd-based column operations.
    let mut pivot_col = 0;
    for r in 0..rows {
        if pivot_col >= cols {
            break;
        }
        // Use the extended Euclidean algorithm to gather the gcd of the row
        // segment into `pivot_col`.
        while let Some(c) = (pivot_col..cols).find(|&c| a[(r, c)] != 0) {
            if c != pivot_col {
                swap_cols(&mut a, &mut v, pivot_col, c);
            }
            // Reduce every other entry in this row modulo the pivot.
            let mut progressed = false;
            for c in pivot_col + 1..cols {
                if a[(r, c)] == 0 {
                    continue;
                }
                let p = a[(r, pivot_col)];
                let q = a[(r, c)];
                let (g, x, y) = extended_gcd(p, q);
                // Replace columns (pivot, c) by (x*pivot + y*c, -(q/g)*pivot + (p/g)*c):
                // the row entries become (g, 0) and the transform has det 1.
                combine_cols(&mut a, &mut v, pivot_col, c, x, y, -(q / g), p / g);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        if a[(r, pivot_col)] != 0 {
            pivot_col += 1;
        }
    }

    // Re-validate which columns of `a` are entirely zero: those columns of
    // `v` are kernel vectors. (With row-by-row processing, a column may be
    // zeroed early and re-filled later, so check the final matrix.)
    let mut basis = Vec::new();
    for c in 0..cols {
        if (0..rows).all(|r| a[(r, c)] == 0) {
            let vec = v.col(c).to_primitive();
            if !vec.is_zero() {
                basis.push(vec);
            }
        }
    }
    basis
}

/// Swaps columns `i` and `j` of both matrices.
fn swap_cols(a: &mut IMat, v: &mut IMat, i: usize, j: usize) {
    for r in 0..a.rows() {
        let t = a[(r, i)];
        a[(r, i)] = a[(r, j)];
        a[(r, j)] = t;
    }
    for r in 0..v.rows() {
        let t = v[(r, i)];
        v[(r, i)] = v[(r, j)];
        v[(r, j)] = t;
    }
}

/// Applies the 2-column transform
/// `(col_i, col_j) ← (x·col_i + y·col_j, s·col_i + t·col_j)` to both
/// matrices. The caller guarantees `x·t − y·s = ±1` so the transform is
/// unimodular.
#[allow(clippy::too_many_arguments)]
fn combine_cols(a: &mut IMat, v: &mut IMat, i: usize, j: usize, x: i64, y: i64, s: i64, t: i64) {
    debug_assert_eq!(
        (x as i128 * t as i128 - y as i128 * s as i128).abs(),
        1,
        "column transform must be unimodular"
    );
    // Products go through i128: Bézout coefficients can be large, and a
    // wrapped entry would silently corrupt the unimodular bookkeeping.
    for m in [a, v] {
        for r in 0..m.rows() {
            let ci = m[(r, i)] as i128;
            let cj = m[(r, j)] as i128;
            m[(r, i)] = narrow(x as i128 * ci + y as i128 * cj);
            m[(r, j)] = narrow(s as i128 * ci + t as i128 * cj);
        }
    }
}

/// Completes a primitive row vector into a unimodular matrix.
///
/// Returns a square matrix `U` with `U.row(row) == g / gcd(g)` and
/// `det(U) = ±1`. This realizes line 7 of Algorithm 1
/// (`Unimodular_Layout_Transformation`): the solved partitioning row `gᵥ`
/// determines `U`; the remaining rows are chosen to make `U` unimodular.
///
/// Returns `None` if `g` is the zero vector (no transformation exists).
///
/// # Examples
///
/// ```
/// use hoploc_affine::{complete_unimodular, IVec};
///
/// let g = IVec::new(vec![1, 0]);
/// let u = complete_unimodular(&g, 1).expect("non-zero row");
/// assert!(u.is_unimodular());
/// assert_eq!(u.row(1), g);
/// ```
pub fn complete_unimodular(g: &IVec, row: usize) -> Option<IMat> {
    let n = g.len();
    assert!(row < n, "target row out of bounds");
    if g.is_zero() {
        return None;
    }
    let g = g.to_primitive();

    // Column-reduce g to (±1, 0, …, 0), tracking W = V⁻¹ with the inverse
    // row operations, so that g = (first row of W) and W is unimodular.
    let mut r = g.clone();
    let mut w = IMat::identity(n);
    // Gather the gcd into position 0.
    if r[0] == 0 {
        let c = (1..n)
            .find(|&c| r[c] != 0)
            .expect("invariant: g.is_zero() returned above, so some component is non-zero");
        let t = r[0];
        r[0] = r[c];
        r[c] = t;
        w.swap_rows(0, c);
    }
    for c in 1..n {
        if r[c] == 0 {
            continue;
        }
        let p = r[0];
        let q = r[c];
        let (gd, x, y) = extended_gcd(p, q);
        // Column op on r: (r0, rc) ← (x·r0 + y·rc, −(q/g)·r0 + (p/g)·rc) = (g, 0).
        // Inverse row op on W: with C = [[x, −q/g], [y, p/g]] acting on
        // columns (0, c), C⁻¹ = [[p/g, q/g], [−y, x]] (det C = 1), applied to
        // rows (0, c) of W from the left.
        r[0] = gd;
        r[c] = 0;
        let (pi, qi) = (p / gd, q / gd);
        for col in 0..n {
            let w0 = w[(0, col)] as i128;
            let wc = w[(c, col)] as i128;
            w[(0, col)] = narrow(pi as i128 * w0 + qi as i128 * wc);
            w[(c, col)] = narrow(-(y as i128) * w0 + x as i128 * wc);
        }
    }
    debug_assert_eq!(r[0].abs(), 1, "primitive vector must reduce to ±1");
    if r[0] == -1 {
        // Negate: g = −(row 0 of W) ⇒ negate row 0.
        for col in 0..n {
            w[(0, col)] = -w[(0, col)];
        }
    }
    debug_assert_eq!(w.row(0), g, "completion must place g on the first row");

    // Move g from row 0 to the requested row.
    w.swap_rows(0, row);
    debug_assert!(w.is_unimodular());
    Some(w)
}

/// Row-style Hermite normal form.
///
/// Returns `(h, t)` with `h = t · m`, `t` unimodular, and `h` in row
/// echelon form where each pivot is positive and entries above a pivot are
/// reduced modulo it. Used by Algorithm 1 (line 11) to repair a candidate
/// transformation matrix that is not unimodular, and generally useful for
/// lattice reasoning about layouts.
///
/// # Examples
///
/// ```
/// use hoploc_affine::{hermite_normal_form, IMat};
///
/// let m = IMat::from_rows(&[&[2, 4], &[1, 3]]);
/// let (h, t) = hermite_normal_form(&m);
/// assert_eq!(&t * &m, h);
/// assert!(t.is_unimodular());
/// ```
pub fn hermite_normal_form(m: &IMat) -> (IMat, IMat) {
    let rows = m.rows();
    let cols = m.cols();
    let mut h = m.clone();
    let mut t = IMat::identity(rows);

    let mut pivot_row = 0;
    for c in 0..cols {
        if pivot_row >= rows {
            break;
        }
        // Gather gcd of column segment into pivot_row via row ops.
        let Some(first) = (pivot_row..rows).find(|&r| h[(r, c)] != 0) else {
            continue;
        };
        if first != pivot_row {
            h.swap_rows(pivot_row, first);
            t.swap_rows(pivot_row, first);
        }
        for r in pivot_row + 1..rows {
            while h[(r, c)] != 0 {
                let q = h[(pivot_row, c)] / h[(r, c)];
                // row[pivot] -= q * row[r], with i128 intermediates so the
                // quotient-scaled row cannot wrap.
                for k in 0..cols {
                    h[(pivot_row, k)] =
                        narrow(h[(pivot_row, k)] as i128 - q as i128 * h[(r, k)] as i128);
                }
                for k in 0..rows {
                    t[(pivot_row, k)] =
                        narrow(t[(pivot_row, k)] as i128 - q as i128 * t[(r, k)] as i128);
                }
                h.swap_rows(pivot_row, r);
                t.swap_rows(pivot_row, r);
            }
        }
        if h[(pivot_row, c)] == 0 {
            continue;
        }
        // Make pivot positive.
        if h[(pivot_row, c)] < 0 {
            for k in 0..cols {
                h[(pivot_row, k)] = -h[(pivot_row, k)];
            }
            for k in 0..rows {
                t[(pivot_row, k)] = -t[(pivot_row, k)];
            }
        }
        // Reduce entries above the pivot.
        let p = h[(pivot_row, c)];
        for r in 0..pivot_row {
            let q = h[(r, c)].div_euclid(p);
            if q != 0 {
                for k in 0..cols {
                    h[(r, k)] = narrow(h[(r, k)] as i128 - q as i128 * h[(pivot_row, k)] as i128);
                }
                for k in 0..rows {
                    t[(r, k)] = narrow(t[(r, k)] as i128 - q as i128 * t[(pivot_row, k)] as i128);
                }
            }
        }
        pivot_row += 1;
    }
    (h, t)
}

/// Solves `M·x = 0` preferring a solution aligned with a desired dimension.
///
/// Returns a primitive kernel vector, choosing — among the basis returned by
/// [`nullspace`] — one with a non-zero component at `preferred` if any
/// exists, otherwise the first basis vector. Returns `None` for a trivial
/// kernel.
///
/// This mirrors the paper's example in §5.2, where solutions for different
/// data partitioning dimensions `v` exist and the slowest-varying dimension
/// is preferred.
pub fn solve_homogeneous(m: &IMat, preferred: usize) -> Option<IVec> {
    let basis = nullspace(m);
    if basis.is_empty() {
        return None;
    }
    basis
        .iter()
        .find(|b| preferred < b.len() && b[preferred] != 0)
        .or(basis.first())
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nullspace_of_identity_is_trivial() {
        assert!(nullspace(&IMat::identity(3)).is_empty());
    }

    #[test]
    fn nullspace_vectors_annihilate() {
        let m = IMat::from_rows(&[&[1, 2, 3], &[0, 1, 1]]);
        let basis = nullspace(&m);
        assert_eq!(basis.len(), 1);
        for b in &basis {
            assert!(m.mul_vec(b).is_zero(), "basis vector not in kernel: {b}");
        }
    }

    #[test]
    fn nullspace_of_zero_matrix_is_full() {
        let m = IMat::zeros(2, 3);
        let basis = nullspace(&m);
        assert_eq!(basis.len(), 3);
    }

    #[test]
    fn paper_example_z_transpose() {
        // Figure 9(a): reference Z[j][i] in loop nest (i, j) with u = 1
        // (the i-loop is parallel, iterators ordered (i, j)).
        // Access matrix A = [[0, 1], [1, 0]] (row 0 indexes with j, row 1 with i).
        // B = A without the u-th (i) column = [[1], [0]]ᵀ → column vector (1, 0)?
        // In the paper u = 1 refers to the first iterator (i), so we drop
        // column 0: B = [[1], [0]].
        let a = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let b = a.drop_col(0);
        // Solve Bᵀ g = 0: Bᵀ = [1, 0], kernel spanned by (0, 1).
        let g = solve_homogeneous(&b.transpose(), 0).expect("kernel exists");
        assert_eq!(b.transpose().mul_vec(&g), IVec::zeros(1));
        // The paper says for v = 2 (second data dim, index 1) the solution has
        // a 1 in position 0 — i.e. gᵥ = (0, 1) means data dim 2 tracks j? In
        // our orientation the kernel of [1 0] is (0, ±1).
        assert_eq!(g.to_primitive().as_slice()[0], 0);
        assert_ne!(g[1], 0);
    }

    #[test]
    fn complete_unimodular_places_row() {
        let g = IVec::new(vec![2, 3]);
        let u = complete_unimodular(&g, 0).unwrap();
        assert!(u.is_unimodular());
        assert_eq!(u.row(0), g); // (2,3) is already primitive
    }

    #[test]
    fn complete_unimodular_divides_gcd() {
        let g = IVec::new(vec![2, 4]);
        let u = complete_unimodular(&g, 1).unwrap();
        assert!(u.is_unimodular());
        assert_eq!(u.row(1), IVec::new(vec![1, 2]));
    }

    #[test]
    fn complete_unimodular_zero_is_none() {
        assert!(complete_unimodular(&IVec::zeros(3), 0).is_none());
    }

    #[test]
    fn complete_unimodular_various_rows() {
        for n in 1..5usize {
            for row in 0..n {
                let g = IVec::new((0..n as i64).map(|i| 3 * i - 2).collect());
                let u = complete_unimodular(&g, row).unwrap();
                assert!(u.is_unimodular(), "not unimodular for n={n} row={row}");
                assert_eq!(u.row(row), g.to_primitive());
            }
        }
    }

    #[test]
    fn hnf_reconstructs() {
        let m = IMat::from_rows(&[&[4, 6], &[2, 2], &[0, 8]]);
        let (h, t) = hermite_normal_form(&m);
        assert_eq!(&t * &m, h);
        assert!(t.is_unimodular());
        // Echelon shape: entry below first pivot must be 0.
        assert_eq!(h[(1, 0)], 0);
        assert_eq!(h[(2, 0)], 0);
        assert_eq!(h[(2, 1)], 0);
    }

    #[test]
    fn hnf_pivots_positive() {
        let m = IMat::from_rows(&[&[-3, 1], &[1, -2]]);
        let (h, t) = hermite_normal_form(&m);
        assert_eq!(&t * &m, h);
        assert!(h[(0, 0)] > 0);
    }

    #[test]
    fn solve_homogeneous_prefers_dimension() {
        // Kernel of the 1x3 zero map is everything; prefer dim 2.
        let m = IMat::zeros(1, 3);
        let g = solve_homogeneous(&m, 2).unwrap();
        assert_ne!(g[2], 0);
    }
}
