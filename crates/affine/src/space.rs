//! Hyperplanes and data-space partitioning (§5.1–§5.2 of the paper).

use crate::matrix::IVec;
use std::fmt;

/// A hyperplane `h⃗ · p⃗ = c` in a `k`-dimensional integer polyhedron.
///
/// In the paper, parallel families of hyperplanes partition both the
/// iteration space (via `h⃗_I`, orthogonal to the iteration partition
/// dimension `u`) and the transformed data space (via `h⃗_A`, orthogonal to
/// the data partitioning dimension `v`).
///
/// # Examples
///
/// ```
/// use hoploc_affine::{Hyperplane, IVec};
///
/// let h = Hyperplane::new(IVec::new(vec![0, 1]), 5);
/// assert!(h.contains(&IVec::new(vec![9, 5])));
/// assert!(!h.contains(&IVec::new(vec![5, 9])));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Hyperplane {
    normal: IVec,
    offset: i64,
}

impl Hyperplane {
    /// Creates a hyperplane from its normal vector and offset.
    ///
    /// # Panics
    ///
    /// Panics if the normal is the zero vector.
    pub fn new(normal: IVec, offset: i64) -> Self {
        assert!(!normal.is_zero(), "hyperplane normal must be non-zero");
        Self { normal, offset }
    }

    /// The hyperplane orthogonal to dimension `dim` at position `offset`,
    /// i.e. `p[dim] = offset`.
    pub fn orthogonal_to(k: usize, dim: usize, offset: i64) -> Self {
        Self::new(IVec::unit(k, dim), offset)
    }

    /// The normal (hyperplane) vector `h⃗`.
    pub fn normal(&self) -> &IVec {
        &self.normal
    }

    /// The hyperplane offset `c`.
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// Whether a point lies on the hyperplane.
    pub fn contains(&self, p: &IVec) -> bool {
        self.normal.dot(p) == self.offset
    }

    /// Whether two points lie on a common parallel hyperplane of this
    /// family, i.e. `h⃗·(p⃗₁ − p⃗₂) = 0` (Eq. 1 of the paper).
    pub fn coplanar(&self, p1: &IVec, p2: &IVec) -> bool {
        self.normal.dot(&(p1 - p2)) == 0
    }
}

impl fmt::Display for Hyperplane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} · p = {}", self.normal, self.offset)
    }
}

/// Partitions the `dim`-th axis of a data space of extent `extent` into
/// `blocks` equal blocks (the last block may be smaller), returning the
/// block index for a given coordinate.
///
/// This is the block structure that the parallel hyperplane family
/// orthogonal to `v` induces on the transformed data space in §5.2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockPartition {
    extent: i64,
    block_size: i64,
}

impl BlockPartition {
    /// Splits `[0, extent)` into `blocks` contiguous blocks.
    ///
    /// # Panics
    ///
    /// Panics if `extent <= 0` or `blocks == 0`.
    pub fn new(extent: i64, blocks: usize) -> Self {
        assert!(extent > 0, "extent must be positive");
        assert!(blocks > 0, "block count must be positive");
        let block_size = (extent + blocks as i64 - 1) / blocks as i64;
        Self {
            extent,
            block_size: block_size.max(1),
        }
    }

    /// Block size `b` (elements along the partitioned dimension per block).
    pub fn block_size(&self) -> i64 {
        self.block_size
    }

    /// The block index owning a coordinate, clamping out-of-range inputs.
    pub fn block_of(&self, coord: i64) -> i64 {
        coord.clamp(0, self.extent - 1) / self.block_size
    }

    /// The extent being partitioned.
    pub fn extent(&self) -> i64 {
        self.extent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coplanar_matches_eq1() {
        // h_I = (1, 0): iterations on a common hyperplane share i0.
        let h = Hyperplane::orthogonal_to(2, 0, 0);
        assert!(h.coplanar(&IVec::new(vec![3, 1]), &IVec::new(vec![3, 9])));
        assert!(!h.coplanar(&IVec::new(vec![3, 1]), &IVec::new(vec![4, 1])));
    }

    #[test]
    fn block_partition_covers_evenly() {
        let p = BlockPartition::new(64, 4);
        assert_eq!(p.block_size(), 16);
        assert_eq!(p.block_of(0), 0);
        assert_eq!(p.block_of(15), 0);
        assert_eq!(p.block_of(16), 1);
        assert_eq!(p.block_of(63), 3);
    }

    #[test]
    fn block_partition_clamps() {
        let p = BlockPartition::new(64, 4);
        assert_eq!(p.block_of(-5), 0);
        assert_eq!(p.block_of(1000), 3);
    }

    #[test]
    fn block_partition_uneven_tail() {
        let p = BlockPartition::new(10, 4);
        assert_eq!(p.block_size(), 3);
        assert_eq!(p.block_of(9), 3);
    }
}
