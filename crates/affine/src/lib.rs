//! # hoploc-affine
//!
//! Exact integer linear algebra and an affine loop-nest intermediate
//! representation, forming the compiler substrate for the *off-chip access
//! localization* pass of Ding et al., *Optimizing Off-Chip Accesses in
//! Multicores* (PLDI 2015).
//!
//! The crate provides, bottom-up:
//!
//! * [`IMat`] / [`IVec`] — dense matrices/vectors over `i64` with exact
//!   determinants, unimodularity checks, and unimodular inverses;
//! * [`nullspace`], [`hermite_normal_form`], [`complete_unimodular`] — the
//!   integer Gaussian elimination toolkit used to solve `Bᵀ gᵥᵀ = 0` and
//!   complete `gᵥ` into a unimodular layout transformation `U` (§5.2);
//! * [`AffineExpr`], [`AffineAccess`] — affine bounds and array subscript
//!   functions `A·i⃗ + o⃗`;
//! * [`Loop`], [`LoopNest`], [`Statement`], [`ArrayRef`] — parallelized
//!   affine loop nests with block-distributed parallel dimensions;
//! * [`Program`], [`ArrayDecl`] — whole data-parallel programs, including
//!   index tables for the indexed references of §5.4;
//! * [`Hyperplane`], [`BlockPartition`] — the geometric vocabulary of §5.1;
//! * [`test_dependence`], [`parallelization_is_legal`] — the array
//!   dependence analysis backing §1's contrast between loop restructuring
//!   (dependence-constrained) and data-layout transformation (a renaming,
//!   dependence-free);
//! * [`permute_loops`], [`strip_mine_loop`], [`find_parallel_loop`] — the
//!   dependence-gated loop pre-pass the paper runs before its layout pass
//!   (§6.1).
//!
//! # Example: the paper's running transformation
//!
//! The parallel code of Figure 9(a) accesses `Z[j][i]` in an `(i, j)` nest
//! with the `i` loop parallel. Solving `Bᵀ gᵥᵀ = 0` for the submatrix `B`
//! (drop the parallel column of the access matrix) yields the row that
//! determines the dimension-swapping transformation `U`:
//!
//! ```
//! use hoploc_affine::{complete_unimodular, solve_homogeneous, AffineAccess, IMat, IVec};
//!
//! // Z[j][i] with iterators (i, j): A = [[0, 1], [1, 0]], parallel dim u = 0.
//! let access = AffineAccess::new(IMat::from_rows(&[&[0, 1], &[1, 0]]), IVec::zeros(2));
//! let b = access.submatrix(0);
//! let g = solve_homogeneous(&b.transpose(), 0).expect("solvable");
//! let u = complete_unimodular(&g, 0).expect("non-trivial row");
//! assert!(u.is_unimodular());
//! // The transformed reference is Z'[i][j]: data dim 0 now tracks i.
//! let t = access.transformed(&u);
//! assert_eq!(t.eval(&IVec::new(vec![3, 7]))[0], 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod access;
mod dependence;
mod expr;
mod matrix;
mod nest;
mod program;
mod solve;
mod space;
mod transform;

pub use access::AffineAccess;
pub use dependence::{
    nest_dependence_pairs, nest_dependences, parallelization_is_legal, test_dependence, Dependence,
    DependencePair,
};
pub use expr::AffineExpr;
pub use matrix::{extended_gcd, gcd, IMat, IVec};
pub use nest::{AccessFn, ArrayId, ArrayRef, Loop, LoopNest, RefKind, Statement, TableId};
pub use program::{ArrayDecl, Program};
pub use solve::{complete_unimodular, hermite_normal_form, nullspace, solve_homogeneous};
pub use space::{BlockPartition, Hyperplane};
pub use transform::{
    find_parallel_loop, permutation_is_legal, permute_loops, strip_mine_loop, TransformError,
};
