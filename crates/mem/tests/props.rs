//! Property-based tests of the memory controller: conservation, ordering,
//! and timing invariants under arbitrary request streams.

use hoploc_mem::{McConfig, MemoryController};
use proptest::prelude::*;

/// Strategy: a stream of (address, inter-arrival gap) pairs.
fn stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..1 << 20, 0u64..200), 1..120)
}

proptest! {
    #[test]
    fn every_request_completes_exactly_once(reqs in stream()) {
        let mut mc = MemoryController::new(McConfig::default());
        let mut now = 0;
        let mut tokens = Vec::new();
        for (i, &(addr, gap)) in reqs.iter().enumerate() {
            now += gap;
            tokens.extend(mc.enqueue(addr, i as u64, now).into_iter().map(|c| c.token));
        }
        tokens.extend(mc.flush().into_iter().map(|c| c.token));
        tokens.sort_unstable();
        let expect: Vec<u64> = (0..reqs.len() as u64).collect();
        prop_assert_eq!(tokens, expect);
    }

    #[test]
    fn completions_never_precede_service(reqs in stream()) {
        let mut mc = MemoryController::new(McConfig::default());
        let timing = *mc.config();
        let min_service = timing.timing.row_hit_cycles + timing.timing.burst_cycles;
        let mut now = 0;
        let mut arrivals = std::collections::HashMap::new();
        let mut done = Vec::new();
        for (i, &(addr, gap)) in reqs.iter().enumerate() {
            now += gap;
            arrivals.insert(i as u64, now);
            done.extend(mc.enqueue(addr, i as u64, now));
        }
        done.extend(mc.flush());
        for c in done {
            let arrival = arrivals[&c.token];
            prop_assert!(c.finish >= arrival + min_service,
                "token {} finished {} < arrival {} + min {}",
                c.token, c.finish, arrival, min_service);
            prop_assert_eq!(arrival + c.queue_cycles + c.service_cycles, c.finish);
        }
    }

    #[test]
    fn stats_are_consistent(reqs in stream()) {
        let mut mc = MemoryController::new(McConfig::default());
        let mut now = 0;
        for (i, &(addr, gap)) in reqs.iter().enumerate() {
            now += gap;
            mc.enqueue(addr, i as u64, now);
        }
        mc.flush();
        let s = mc.stats();
        prop_assert_eq!(s.served, reqs.len() as u64);
        prop_assert!(s.row_hits <= s.served);
        prop_assert!(s.avg_memory_latency() >= 0.0);
    }

    #[test]
    fn ideal_mode_is_flat_and_instant(reqs in stream()) {
        let mut mc = MemoryController::new(McConfig { ideal: true, ..McConfig::default() });
        let mut now = 0;
        for (i, &(addr, gap)) in reqs.iter().enumerate() {
            now += gap;
            let done = mc.enqueue(addr, i as u64, now);
            prop_assert_eq!(done.len(), 1);
            prop_assert_eq!(done[0].queue_cycles, 0);
        }
        prop_assert!(mc.flush().is_empty());
    }

    #[test]
    fn poll_makes_progress(reqs in stream()) {
        // Whatever is pending must become serviceable by its earliest
        // start time — polls never deadlock.
        let mut mc = MemoryController::new(McConfig::default());
        let mut now = 0;
        let mut completed = 0usize;
        for (i, &(addr, gap)) in reqs.iter().enumerate() {
            now += gap;
            completed += mc.enqueue(addr, i as u64, now).len();
        }
        let mut guard = 0;
        while let Some(t) = mc.earliest_pending_start() {
            completed += mc.poll(t + 1).len();
            guard += 1;
            prop_assert!(guard < 10_000, "poll loop failed to converge");
        }
        prop_assert_eq!(completed, reqs.len());
    }
}
