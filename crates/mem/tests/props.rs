//! Property-based tests of the memory controller: conservation, ordering,
//! and timing invariants under arbitrary request streams.

use hoploc_mem::{McConfig, MemoryController};
use hoploc_ptest::{run_cases, SmallRng};

/// A stream of (address, inter-arrival gap) pairs.
fn stream(rng: &mut SmallRng) -> Vec<(u64, u64)> {
    let n = rng.usize_in(1..120);
    (0..n)
        .map(|_| (rng.u64_in(0..1 << 20), rng.u64_in(0..200)))
        .collect()
}

#[test]
fn every_request_completes_exactly_once() {
    run_cases("every_request_completes_exactly_once", 128, |rng| {
        let reqs = stream(rng);
        let mut mc = MemoryController::new(McConfig::default());
        let mut now = 0;
        let mut tokens = Vec::new();
        for (i, &(addr, gap)) in reqs.iter().enumerate() {
            now += gap;
            tokens.extend(mc.enqueue(addr, i as u64, now).into_iter().map(|c| c.token));
        }
        tokens.extend(mc.flush().into_iter().map(|c| c.token));
        tokens.sort_unstable();
        let expect: Vec<u64> = (0..reqs.len() as u64).collect();
        assert_eq!(tokens, expect);
    });
}

#[test]
fn completions_never_precede_service() {
    run_cases("completions_never_precede_service", 128, |rng| {
        let reqs = stream(rng);
        let mut mc = MemoryController::new(McConfig::default());
        let timing = *mc.config();
        let min_service = timing.timing.row_hit_cycles + timing.timing.burst_cycles;
        let mut now = 0;
        let mut arrivals = std::collections::HashMap::new();
        let mut done = Vec::new();
        for (i, &(addr, gap)) in reqs.iter().enumerate() {
            now += gap;
            arrivals.insert(i as u64, now);
            done.extend(mc.enqueue(addr, i as u64, now));
        }
        done.extend(mc.flush());
        for c in done {
            let arrival = arrivals[&c.token];
            assert!(
                c.finish >= arrival + min_service,
                "token {} finished {} < arrival {} + min {}",
                c.token,
                c.finish,
                arrival,
                min_service
            );
            assert_eq!(arrival + c.queue_cycles + c.service_cycles, c.finish);
        }
    });
}

#[test]
fn stats_are_consistent() {
    run_cases("stats_are_consistent", 128, |rng| {
        let reqs = stream(rng);
        let mut mc = MemoryController::new(McConfig::default());
        let mut now = 0;
        for (i, &(addr, gap)) in reqs.iter().enumerate() {
            now += gap;
            mc.enqueue(addr, i as u64, now);
        }
        mc.flush();
        let s = mc.stats();
        assert_eq!(s.served, reqs.len() as u64);
        assert!(s.row_hits <= s.served);
        assert!(s.avg_memory_latency() >= 0.0);
    });
}

#[test]
fn ideal_mode_is_flat_and_instant() {
    run_cases("ideal_mode_is_flat_and_instant", 128, |rng| {
        let reqs = stream(rng);
        let mut mc = MemoryController::new(McConfig {
            ideal: true,
            ..McConfig::default()
        });
        let mut now = 0;
        for (i, &(addr, gap)) in reqs.iter().enumerate() {
            now += gap;
            let done = mc.enqueue(addr, i as u64, now);
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].queue_cycles, 0);
        }
        assert!(mc.flush().is_empty());
    });
}

#[test]
fn poll_makes_progress() {
    run_cases("poll_makes_progress", 128, |rng| {
        // Whatever is pending must become serviceable by its earliest
        // start time — polls never deadlock.
        let reqs = stream(rng);
        let mut mc = MemoryController::new(McConfig::default());
        let mut now = 0;
        let mut completed = 0usize;
        for (i, &(addr, gap)) in reqs.iter().enumerate() {
            now += gap;
            completed += mc.enqueue(addr, i as u64, now).len();
        }
        let mut guard = 0;
        while let Some(t) = mc.earliest_pending_start() {
            completed += mc.poll(t + 1).len();
            guard += 1;
            assert!(guard < 10_000, "poll loop failed to converge");
        }
        assert_eq!(completed, reqs.len());
    });
}
