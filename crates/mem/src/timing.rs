//! DRAM device timing parameters.

/// Service-time parameters of a DRAM device, expressed in core cycles.
///
/// Defaults are derived from the Micron DDR3-1600 part the paper simulates
/// (Table 1), assuming a 2 GHz core clock: CAS ≈ 13.75 ns ≈ 28 cycles,
/// a closed-row activation adds tRP + tRCD ≈ 27.5 ns ≈ 55 cycles, and a
/// 256-byte L2 line occupies a dual-rate 25.6 GB/s channel ≈ 10 ns ≈ 20
/// cycles — the channel bounds a controller's throughput at roughly the
/// corner-link bandwidth, exactly the pressure §6.2's M1-vs-M2 discussion
/// turns on.
///
/// # Examples
///
/// ```
/// use hoploc_mem::DramTiming;
///
/// let t = DramTiming::default();
/// assert!(t.row_miss_cycles > t.row_hit_cycles);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DramTiming {
    /// Column access to an already-open row.
    pub row_hit_cycles: u64,
    /// Precharge + activate + column access on a row-buffer miss.
    pub row_miss_cycles: u64,
    /// Data-burst occupancy of the shared channel per request.
    pub burst_cycles: u64,
}

impl Default for DramTiming {
    fn default() -> Self {
        Self {
            row_hit_cycles: 28,
            row_miss_cycles: 83,
            burst_cycles: 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ddr3_shaped() {
        let t = DramTiming::default();
        // A row miss should cost roughly 2-4x a row hit for DDR3 parts.
        let ratio = t.row_miss_cycles as f64 / t.row_hit_cycles as f64;
        assert!(
            (2.0..4.0).contains(&ratio),
            "ratio {ratio} out of DDR3 range"
        );
    }
}
