//! # hoploc-mem
//!
//! DRAM memory-controller model for the hoploc simulator: per-bank queues,
//! row buffers, FR-FCFS scheduling, a shared response channel, and the
//! queueing statistics the paper's Figures 4/14/16/18 are built on.
//!
//! The *ideal* controller mode ([`McConfig::ideal`]) implements the memory
//! half of the paper's **optimal scheme** (§2): every request is served at
//! a fixed row-hit latency with no bank contention.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod controller;
mod timing;

pub use controller::{
    BankFault, Completion, McConfig, McFaults, McStats, MemoryController, RetryPolicy, RowPolicy,
};
pub use timing::DramTiming;
